//! Property-based integration tests on the workspace's core invariants.

use bemcap_linalg::{LuFactor, Matrix};
use bemcap_par::{ij_to_k, k_to_ij, partition_ranges};
use bemcap_quad::analytic;
use bemcap_quad::gauss::GaussRule;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The 4-D closed form equals outer-quadrature × inner-2-D-closed-form
    /// for random separated parallel rectangles.
    #[test]
    fn galerkin_closed_form_matches_quadrature(
        ax0 in -2.0..2.0f64, aw in 0.2..2.0f64,
        ay0 in -2.0..2.0f64, ah in 0.2..2.0f64,
        bx0 in -2.0..2.0f64, bw in 0.2..2.0f64,
        by0 in -2.0..2.0f64, bh in 0.2..2.0f64,
        z in 0.3..3.0f64,
    ) {
        let v = analytic::galerkin_parallel(
            (ax0, ax0 + aw), (ay0, ay0 + ah), (bx0, bx0 + bw), (by0, by0 + bh), z);
        let rule = GaussRule::new(16);
        let reference = rule.integrate_2d(ax0, ax0 + aw, ay0, ay0 + ah, |x, y| {
            analytic::rect_potential(bx0, bx0 + bw, by0, by0 + bh, z, x, y)
        });
        prop_assert!((v - reference).abs() < 1e-6 * reference.abs().max(1e-12),
            "closed {v} vs quad {reference}");
    }

    /// The collocation closed form equals raw 2-D quadrature at random
    /// (separated) targets.
    #[test]
    fn collocation_matches_quadrature(
        x0 in -1.0..1.0f64, w in 0.2..2.0f64,
        y0 in -1.0..1.0f64, h in 0.2..2.0f64,
        z in 0.2..3.0f64, px in -3.0..3.0f64, py in -3.0..3.0f64,
    ) {
        let v = analytic::rect_potential(x0, x0 + w, y0, y0 + h, z, px, py);
        let rule = GaussRule::new(32);
        let reference = rule.integrate_2d(x0, x0 + w, y0, y0 + h, |x, y| {
            1.0 / ((px - x).powi(2) + (py - y).powi(2) + z * z).sqrt()
        });
        prop_assert!((v - reference).abs() < 1e-8 * reference.abs());
    }

    /// LU solve round-trips random diagonally dominant systems.
    #[test]
    fn lu_round_trip(seed in 0u64..1000, n in 2usize..20) {
        let a = Matrix::from_fn(n, n, |i, j| {
            let h = seed.wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add((i * 31 + j) as u64)
                .wrapping_mul(0x2545F4914F6CDD1D);
            let v = (h >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            if i == j { v + n as f64 } else { v }
        });
        let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.17).sin()).collect();
        let b = a.matvec(&x_true);
        let lu = LuFactor::new(a).expect("well conditioned");
        let x = lu.solve_vec(&b).expect("solve");
        for (xi, ti) in x.iter().zip(&x_true) {
            prop_assert!((xi - ti).abs() < 1e-9);
        }
    }

    /// Triangular index bijection and partition cover (the Algorithm 1
    /// bookkeeping), stressed jointly.
    #[test]
    fn k_partitions_enumerate_upper_triangle(m in 1usize..120, d in 1usize..16) {
        let total = m * (m + 1) / 2;
        let mut count = 0usize;
        for range in partition_ranges(total, d) {
            for k in range {
                let (i, j) = k_to_ij(k);
                prop_assert!(i <= j && j < m);
                prop_assert_eq!(ij_to_k(i, j), k);
                count += 1;
            }
        }
        prop_assert_eq!(count, total);
    }

    /// Symmetry of the engine's raw pair integral under operand swap for
    /// random parallel panels (P̃ = P̃ᵀ, the property Algorithm 1 exploits).
    #[test]
    fn pair_integral_symmetry(
        u0 in -2.0..2.0f64, w in 0.3..1.5f64,
        v0 in -2.0..2.0f64, h in 0.3..1.5f64,
        dz in 0.2..2.0f64,
    ) {
        use bemcap_geom::{Axis, Panel};
        use bemcap_quad::galerkin::{GalerkinEngine, PanelShape};
        let eng = GalerkinEngine::default();
        let a = Panel::new(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0)).expect("panel");
        let b = Panel::new(Axis::Z, dz, (u0, u0 + w), (v0, v0 + h)).expect("panel");
        let ab = eng.panel_pair(&a, PanelShape::Flat, &b, PanelShape::Flat);
        let ba = eng.panel_pair(&b, PanelShape::Flat, &a, PanelShape::Flat);
        prop_assert!((ab - ba).abs() < 1e-10 * ab.abs().max(1e-30));
        prop_assert!(ab > 0.0);
    }
}

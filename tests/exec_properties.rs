//! Property-based tests of the shared execution core
//! (`bemcap_core::exec`): for random families, pool sizes, queue
//! depths, and coalescing windows,
//!
//! * coalesced, uncoalesced, and direct single-shot extraction are
//!   **bit-identical** (CI re-runs this under `BEMCAP_POOL=1,4`);
//! * a full admission queue returns a structured `Busy` rejection and
//!   the run never deadlocks — every admitted ticket resolves;
//! * a failing job fails only its own submission, even inside a
//!   coalesced micro-batch.

use std::sync::Arc;

use bemcap_core::exec::{ExecConfig, Executor, Ticket};
use bemcap_core::{BatchJob, CoreError, Extractor, TemplateCache};
use bemcap_geom::structures::{self, BusParams, CrossingParams};
use bemcap_geom::Geometry;
use proptest::prelude::*;

fn crossing(h: f64) -> Geometry {
    structures::crossing_wires(CrossingParams { separation: h, ..Default::default() })
}

fn job(h: f64) -> BatchJob {
    BatchJob::new(format!("h={h}"), crossing(h))
}

fn matrix_of(sub: &bemcap_core::Submission, idx: usize) -> Vec<f64> {
    let (extraction, _) = sub.outcomes[idx].result.as_ref().expect("job ok");
    extraction.capacitance().matrix().as_slice().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One random 3-point family through executors with a random pool
    /// size, queue depth, and coalescing window vs the same executor
    /// with coalescing off vs direct extraction: all bit-identical, in
    /// input order.
    #[test]
    fn coalesced_uncoalesced_and_direct_are_bit_identical(
        h1 in 0.3..1.5f64,
        h2 in 0.3..1.5f64,
        h3 in 0.3..1.5f64,
        workers in 1usize..5,
        depth in 3usize..64,
        window in 2usize..9,
    ) {
        let hs: Vec<f64> = [h1, h2, h3].iter().map(|h| h * 1e-6).collect();
        let ex = Extractor::new();
        let coalescing = Executor::new(ExecConfig {
            workers,
            queue_depth: depth,
            coalesce_limit: window,
        });
        let solo = Executor::new(ExecConfig {
            workers,
            queue_depth: depth,
            coalesce_limit: 1,
        });
        let cache_a = Arc::new(TemplateCache::unbounded());
        let cache_b = Arc::new(TemplateCache::unbounded());
        let on: Vec<Ticket> = hs
            .iter()
            .map(|&h| {
                coalescing
                    .submit(&ex, Some(Arc::clone(&cache_a)), vec![job(h)])
                    .expect("depth >= jobs admits everything")
            })
            .collect();
        let off: Vec<Ticket> = hs
            .iter()
            .map(|&h| {
                solo.submit(&ex, Some(Arc::clone(&cache_b)), vec![job(h)])
                    .expect("depth >= jobs admits everything")
            })
            .collect();
        for ((h, a), b) in hs.iter().zip(on).zip(off) {
            let (sa, sb) = (a.wait(), b.wait());
            let direct = ex.extract(&crossing(*h)).expect("direct");
            prop_assert_eq!(
                matrix_of(&sa, 0),
                direct.capacitance().matrix().as_slice().to_vec(),
                "coalescing window {} differs from direct at h={}", window, h
            );
            prop_assert_eq!(
                matrix_of(&sb, 0),
                direct.capacitance().matrix().as_slice().to_vec(),
                "uncoalesced differs from direct at h={}", h
            );
        }
        // The uncoalesced executor must not have coalesced anything.
        prop_assert_eq!(solo.stats().coalesced, 0);
    }

    /// Storm a tiny queue: admitted submissions all resolve correctly
    /// (no deadlock — the test finishing is the assertion), rejections
    /// are structured `Busy` values with the configured depth, and
    /// accounting adds up.
    #[test]
    fn full_queue_rejects_with_busy_and_every_ticket_resolves(
        depth in 1usize..3,
        window in 1usize..5,
    ) {
        let exec = Executor::new(ExecConfig { workers: 1, queue_depth: depth, coalesce_limit: window });
        let ex = Extractor::new();
        // A moderately slow job shape so the single worker stays behind
        // the submission loop.
        let geo = structures::bus_crossing(2, 2, BusParams::default());
        let mut tickets = Vec::new();
        let mut busy = 0usize;
        for i in 0..24 {
            match exec.submit(&ex, None, vec![BatchJob::new(format!("j{i}"), geo.clone())]) {
                Ok(t) => tickets.push(t),
                Err(CoreError::Busy { queued, depth: d }) => {
                    prop_assert_eq!(d, depth);
                    prop_assert!(queued <= depth);
                    busy += 1;
                }
                Err(other) => prop_assert!(false, "unexpected error {:?}", other),
            }
        }
        // 24 instant submissions against a depth-1..2 queue of slow jobs:
        // the queue must have been full at least once.
        prop_assert!(busy > 0, "no Busy seen: depth={} window={}", depth, window);
        let admitted = tickets.len();
        let reference = ex.extract(&geo).expect("direct");
        for t in tickets {
            let sub = t.wait();
            prop_assert!(sub.first_failure().is_none());
            prop_assert_eq!(
                matrix_of(&sub, 0),
                reference.capacitance().matrix().as_slice().to_vec()
            );
        }
        let stats = exec.stats();
        prop_assert_eq!(stats.rejected, busy);
        prop_assert_eq!(stats.submitted, admitted);
        prop_assert_eq!(stats.jobs, admitted);
    }

    /// A bad geometry sandwiched between good submissions (freely
    /// coalescible: same config, same cache): only its own submission
    /// fails, and the good ones stay bit-identical to direct extraction.
    #[test]
    fn failing_submission_is_isolated(
        h1 in 0.3..1.5f64,
        h2 in 0.3..1.5f64,
        window in 1usize..9,
    ) {
        let (h1, h2) = (h1 * 1e-6, h2 * 1e-6);
        let exec = Executor::new(ExecConfig { workers: 1, queue_depth: 8, coalesce_limit: window });
        let ex = Extractor::new();
        let cache = Arc::new(TemplateCache::unbounded());
        let good1 = exec.submit(&ex, Some(Arc::clone(&cache)), vec![job(h1)]).expect("good1");
        let bad = exec
            .submit(
                &ex,
                Some(Arc::clone(&cache)),
                vec![BatchJob::new("empty", Geometry::new(vec![]))],
            )
            .expect("bad admitted");
        let good2 = exec.submit(&ex, Some(Arc::clone(&cache)), vec![job(h2)]).expect("good2");
        let (s1, sb, s2) = (good1.wait(), bad.wait(), good2.wait());
        match sb.first_failure() {
            Some((0, CoreError::EmptyGeometry)) => {}
            other => prop_assert!(false, "expected EmptyGeometry at 0, got {:?}", other),
        }
        for (h, sub) in [(h1, &s1), (h2, &s2)] {
            prop_assert!(sub.first_failure().is_none(), "good submission failed");
            let direct = ex.extract(&crossing(h)).expect("direct");
            prop_assert_eq!(
                matrix_of(sub, 0),
                direct.capacitance().matrix().as_slice().to_vec()
            );
        }
    }
}

/// The `BEMCAP_POOL`-sized default executor (what `sweep()` and default
/// batch runs use, and what CI's pool matrix varies): results must be
/// bit-identical to direct extraction at whatever size the environment
/// picked.
#[test]
fn default_sized_executor_matches_direct_extraction() {
    let exec = Executor::new(ExecConfig::default());
    let ex = Extractor::new();
    let hs = [0.4e-6, 0.7e-6, 1.0e-6, 1.3e-6];
    let tickets: Vec<Ticket> =
        hs.iter().map(|&h| exec.submit(&ex, None, vec![job(h)]).expect("admitted")).collect();
    for (h, t) in hs.iter().zip(tickets) {
        let sub = t.wait();
        let direct = ex.extract(&crossing(*h)).expect("direct");
        assert_eq!(matrix_of(&sub, 0), direct.capacitance().matrix().as_slice().to_vec(), "h={h}");
    }
    let stats = exec.stats();
    assert_eq!(stats.jobs, hs.len());
    assert_eq!(stats.rejected, 0);
}

/// A multi-job submission (the wire `batch` op's shape) is one
/// micro-batch: results in input order, bit-identical to single shots.
#[test]
fn multi_job_submission_matches_singles() {
    let exec = Executor::new(ExecConfig { workers: 2, queue_depth: 16, coalesce_limit: 16 });
    let ex = Extractor::new();
    let hs = [0.5e-6, 0.8e-6, 1.1e-6];
    let sub = exec
        .submit(
            &ex,
            Some(Arc::new(TemplateCache::unbounded())),
            hs.iter().map(|&h| job(h)).collect(),
        )
        .expect("admitted")
        .wait();
    assert_eq!(sub.outcomes.len(), hs.len());
    assert_eq!(sub.micro_batch_jobs, hs.len());
    for (i, h) in hs.iter().enumerate() {
        let direct = ex.extract(&crossing(*h)).expect("direct");
        assert_eq!(
            matrix_of(&sub, i),
            direct.capacitance().matrix().as_slice().to_vec(),
            "index {i}"
        );
    }
}

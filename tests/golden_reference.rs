//! Golden-reference regression tests: three canonical geometries with
//! committed capacitance matrices under `tests/golden/`, checked against
//! all four solver backends with per-method tolerances.
//!
//! The fixtures pin the *physics* of the repository: any change that
//! shifts a capacitance matrix beyond the tolerance band of its method —
//! a quadrature regression, a broken template law, a solver sign slip —
//! fails here even if every internal consistency test still passes.
//!
//! The committed values are the dense piecewise-constant Galerkin solve
//! ([`Method::PwcDense`]) at `REFERENCE_DIVISIONS`, the exact reference
//! discretization of the workspace. Regenerate after an *intentional*
//! physics change with:
//!
//! ```text
//! cargo test --release --test golden_reference -- --ignored --nocapture
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use bemcap_core::{Extractor, Method};
use bemcap_geom::structures::{self, BusParams, CrossingParams};
use bemcap_geom::Geometry;

/// Mesh divisions of the committed dense reference.
const REFERENCE_DIVISIONS: usize = 8;

/// A committed golden capacitance matrix.
struct Golden {
    names: Vec<String>,
    /// Row-major n×n entries in farad.
    c: Vec<f64>,
}

impl Golden {
    fn dim(&self) -> usize {
        self.names.len()
    }

    fn get(&self, i: usize, j: usize) -> f64 {
        self.c[i * self.dim() + j]
    }

    fn max_abs(&self) -> f64 {
        self.c.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

/// The three canonical geometries (kept deliberately small so all four
/// backends run in seconds).
fn cases() -> Vec<(&'static str, Geometry)> {
    vec![
        ("plate_pair", structures::parallel_plates(1.0e-6, 1.0e-6, 0.2e-6)),
        ("crossing_wires", structures::crossing_wires(CrossingParams::default())),
        // 2 wires along x crossing 1 wire along y: the smallest multi-net
        // bus with distinct self/coupling structure.
        ("bus3", structures::bus_crossing(2, 1, BusParams::default())),
    ]
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

fn load_golden(name: &str) -> Golden {
    let path = fixture_path(name);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
    let mut names: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut conductors = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("conductors") => {
                conductors = parts.next().expect("conductor count").parse().expect("count")
            }
            Some("names") => names = parts.map(str::to_string).collect(),
            Some("row") => {
                rows.push(parts.map(|v| v.parse::<f64>().expect("matrix entry")).collect())
            }
            other => panic!("unrecognized golden line {other:?} in {name}"),
        }
    }
    assert_eq!(names.len(), conductors, "{name}: names vs conductor count");
    assert_eq!(rows.len(), conductors, "{name}: row count");
    assert!(rows.iter().all(|r| r.len() == conductors), "{name}: ragged matrix");
    Golden { names, c: rows.concat() }
}

fn reference_extractor() -> Extractor {
    Extractor::new().method(Method::PwcDense).mesh_divisions(REFERENCE_DIVISIONS)
}

/// Per-method relative tolerance against the dense golden matrix, scaled
/// by the matrix's largest entry.
///
/// * `PwcDense` regenerates the committed values: machine-precision band
///   (loose enough to survive benign float reassociation in refactors);
/// * `Auto` resolves to `PwcDense` for every golden geometry (they are
///   all far below the dense panel cap), so it inherits the dense band;
/// * `PwcFmm` / `PwcPfft` share the discretization but truncate the
///   far-field: a few percent;
/// * `InstantiableBasis` is a different (compact) discretization
///   philosophy: the band reflects the coarse template sets of small
///   structures, as in the paper's accuracy discussion.
fn tolerance(method: Method) -> f64 {
    // Measured worst deviations at generation time (see the regenerate
    // test's output): fmm ≤ 5.4e-4, pfft ≤ 7.6e-3, instantiable ≤ 1.1e-2;
    // each band leaves an order-of-magnitude margin.
    match method {
        Method::PwcDense | Method::Auto => 1e-9,
        Method::PwcFmm => 1e-2,
        Method::PwcPfft => 5e-2,
        Method::InstantiableBasis => 0.1,
    }
}

fn extractor_for(method: Method) -> Extractor {
    match method {
        Method::InstantiableBasis => Extractor::new(),
        m => Extractor::new().method(m).mesh_divisions(REFERENCE_DIVISIONS),
    }
}

const ALL_METHODS: [Method; 5] =
    [Method::PwcDense, Method::PwcFmm, Method::PwcPfft, Method::InstantiableBasis, Method::Auto];

fn check_case(name: &str) {
    let (_, geo) = cases().into_iter().find(|(n, _)| *n == name).expect("known case");
    let golden = load_golden(name);
    let scale = golden.max_abs();
    for method in ALL_METHODS {
        let extractor = extractor_for(method);
        if method == Method::Auto {
            // The tolerance premise: every golden geometry is small
            // enough that Auto's policy lands on the dense reference.
            assert_eq!(extractor.resolved_method(&geo), Method::PwcDense, "{name}: auto policy");
        }
        let out = extractor.extract(&geo).expect("extraction");
        let c = out.capacitance();
        assert_eq!(c.dim(), golden.dim(), "{name}/{method:?}: dimension");
        assert_eq!(c.names(), &golden.names[..], "{name}/{method:?}: conductor names");
        // Solver-stats contract: iterative backends report Krylov
        // counters, direct solves (and Auto resolving to one) do not.
        match method {
            Method::PwcFmm | Method::PwcPfft => {
                let stats = out.report().krylov.expect("iterative backends report krylov stats");
                assert!(stats.iterations > 0, "{name}/{method:?}");
            }
            _ => assert!(out.report().krylov.is_none(), "{name}/{method:?}"),
        }
        let tol = tolerance(method);
        for i in 0..c.dim() {
            for j in 0..c.dim() {
                let got = c.get(i, j);
                let want = golden.get(i, j);
                assert!(
                    (got - want).abs() <= tol * scale,
                    "{name}/{method:?} entry ({i},{j}): got {got:e}, golden {want:e} \
                     (rel {:.3e}, tol {tol:.0e})",
                    (got - want).abs() / scale,
                );
            }
        }
        // Physics invariants must hold for every method, not just
        // closeness to the fixture. Direct solves are symmetric to
        // round-off; the Krylov-based baselines only to their residual
        // tolerance.
        let max_asym = match method {
            Method::PwcDense | Method::InstantiableBasis | Method::Auto => 1e-6,
            Method::PwcFmm | Method::PwcPfft => 1e-3,
        };
        assert!(c.asymmetry() < max_asym, "{name}/{method:?}: asymmetry {}", c.asymmetry());
        for i in 0..c.dim() {
            assert!(c.get(i, i) > 0.0, "{name}/{method:?}: diagonal {i}");
        }
    }
}

#[test]
fn golden_plate_pair() {
    check_case("plate_pair");
}

#[test]
fn golden_crossing_wires() {
    check_case("crossing_wires");
}

#[test]
fn golden_bus3() {
    check_case("bus3");
}

/// Rewrites the fixtures from the dense reference solver and prints each
/// method's worst deviation (run with `--nocapture` to read them). Ignored
/// in normal runs — regenerating is an explicit, reviewed act.
#[test]
#[ignore = "rewrites tests/golden/ in place; run after intentional physics changes"]
fn regenerate_golden_fixtures() {
    for (name, geo) in cases() {
        let out = reference_extractor().extract(&geo).expect("reference extraction");
        let c = out.capacitance();
        let mut text = String::new();
        let _ = writeln!(text, "# golden capacitance matrix — {name} (farad)");
        let _ =
            writeln!(text, "# reference: Method::PwcDense, mesh_divisions = {REFERENCE_DIVISIONS}");
        let _ = writeln!(
            text,
            "# regenerate: cargo test --release --test golden_reference -- --ignored --nocapture"
        );
        let _ = writeln!(text, "conductors {}", c.dim());
        let _ = writeln!(text, "names {}", c.names().join(" "));
        for i in 0..c.dim() {
            let row: Vec<String> = (0..c.dim()).map(|j| format!("{:?}", c.get(i, j))).collect();
            let _ = writeln!(text, "row {}", row.join(" "));
        }
        let path = fixture_path(name);
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        fs::write(&path, text).expect("write fixture");
        eprintln!("wrote {}", path.display());
        // Report each method's deviation so tolerances stay data-driven.
        let scale = c.matrix().max_abs();
        for method in ALL_METHODS {
            let got = extractor_for(method).extract(&geo).expect("extraction");
            let mut worst = 0.0_f64;
            for i in 0..c.dim() {
                for j in 0..c.dim() {
                    worst = worst.max((got.capacitance().get(i, j) - c.get(i, j)).abs() / scale);
                }
            }
            eprintln!(
                "  {method:?}: worst rel deviation {worst:.3e} (tol {:.0e})",
                tolerance(method)
            );
        }
    }
}

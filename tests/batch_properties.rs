//! Property-based tests of the batch extraction invariants: for random
//! geometry families and pool sizes,
//!
//! * results come back in input order whatever the pool size;
//! * the shared pair-integral cache never changes a result bit;
//! * every returned capacitance matrix is symmetric, has positive
//!   diagonal, negative couplings, and is diagonally dominant (positive
//!   row sums — capacitance to infinity).

use std::sync::Arc;

use bemcap_core::cache::{TemplateCache, ENTRY_BYTES};
use bemcap_core::{BatchExtractor, Extractor};
use bemcap_geom::structures::{self, CrossingParams};
use proptest::prelude::*;

fn crossing(h: f64) -> bemcap_geom::Geometry {
    structures::crossing_wires(CrossingParams { separation: h, ..Default::default() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One random family (three separations, shuffled magnitudes) through
    /// a random pool size, cached — checked against the uncached
    /// single-worker run and the physical matrix invariants.
    #[test]
    fn batch_order_cache_and_matrix_invariants(
        h1 in 0.3..1.5f64,
        h2 in 0.3..1.5f64,
        h3 in 0.3..1.5f64,
        workers in 1usize..6,
    ) {
        let params: Vec<f64> = [h1, h2, h3].iter().map(|h| h * 1e-6).collect();
        let cached = BatchExtractor::new(Extractor::new())
            .workers(workers)
            .extract_family(&params, crossing)
            .expect("cached batch");
        // Order: the i-th result is the i-th parameter, not scheduler order.
        let got: Vec<f64> =
            cached.points().iter().map(|p| p.parameter.expect("family parameter")).collect();
        prop_assert_eq!(&got, &params, "workers={}", workers);

        // Cache off, single worker: the reference execution. Must be
        // bit-identical to the cached, pooled run.
        let reference = BatchExtractor::new(Extractor::new())
            .workers(1)
            .cache(false)
            .extract_family(&params, crossing)
            .expect("reference batch");
        for (a, b) in cached.points().iter().zip(reference.points()) {
            prop_assert_eq!(
                a.extraction.capacitance().matrix().as_slice(),
                b.extraction.capacitance().matrix().as_slice(),
                "workers={} job={}", workers, a.job.index
            );
        }

        // Cache accounting invariants: the default per-run cache is
        // unbounded, so nothing ever gets evicted, every miss inserts
        // exactly one entry, and the report aggregates the per-job
        // counters; the human-readable report surfaces hit rate and
        // evictions.
        let total = cached.report().cache;
        prop_assert_eq!(total.evictions, 0, "unbounded cache must not evict");
        prop_assert_eq!(total.inserted_bytes, total.misses * ENTRY_BYTES);
        let summed = cached.points().iter().fold((0, 0), |(e, b), p| {
            (e + p.job.cache.evictions, b + p.job.cache.inserted_bytes)
        });
        prop_assert_eq!((total.evictions, total.inserted_bytes), summed);
        let shown = format!("{}", cached.report());
        prop_assert!(shown.contains("% hit rate"), "display shows hit rate: {}", shown);
        prop_assert!(shown.contains("evictions"), "display shows evictions: {}", shown);
        prop_assert!(shown.contains("queue wait"), "display shows queue wait: {}", shown);
        prop_assert!(shown.contains("jobs/micro-batch"), "display shows coalescing: {}", shown);

        // Execution-core accounting: a private per-run executor gets the
        // jobs as ceil(jobs/workers)-sized chunk submissions, one
        // micro-batch each, deterministically; it never rejects.
        let exec = cached.report().exec;
        let chunk_size = params.len().div_ceil(workers);
        let chunks = params.len().div_ceil(chunk_size);
        prop_assert_eq!(exec.submitted, chunks);
        prop_assert_eq!(exec.jobs, params.len());
        prop_assert_eq!(exec.rejected, 0, "per-run executor must never reject");
        prop_assert_eq!(exec.micro_batches, chunks);
        prop_assert_eq!(exec.coalesced, 0, "chunk submissions never coalesce with each other");
        prop_assert!(exec.queue_seconds >= 0.0);

        // Matrix invariants on every returned point.
        for p in cached.points() {
            let c = p.extraction.capacitance();
            prop_assert!(c.asymmetry() < 1e-6, "asymmetry {}", c.asymmetry());
            for i in 0..c.dim() {
                prop_assert!(c.get(i, i) > 0.0, "diagonal {i}");
                let mut row_sum = 0.0;
                for j in 0..c.dim() {
                    if i != j {
                        prop_assert!(c.get(i, j) < 0.0, "coupling ({i},{j}) = {}", c.get(i, j));
                    }
                    row_sum += c.get(i, j);
                }
                // Diagonal dominance: self capacitance outweighs the
                // couplings (the grounded-at-infinity row sum).
                prop_assert!(row_sum > 0.0, "row {i} sum {row_sum}");
            }
        }
    }

    /// Duplicated parameters: later identical jobs must be pure cache
    /// hits, and still bit-identical to their first occurrence.
    #[test]
    fn duplicate_jobs_are_full_hits(h in 0.35..1.4f64, workers in 1usize..4) {
        let h = h * 1e-6;
        let params = [h, h];
        let result = BatchExtractor::new(Extractor::new())
            .workers(workers)
            .extract_family(&params, crossing)
            .expect("batch");
        let a = result.points()[0].extraction.capacitance().matrix();
        let b = result.points()[1].extraction.capacitance().matrix();
        prop_assert_eq!(a.as_slice(), b.as_slice());
        // With one worker the second job sees everything the first
        // computed; with more workers the jobs may race, so only demand
        // hits when sequential.
        if workers == 1 {
            let stats = result.points()[1].job.cache;
            prop_assert!(stats.misses == 0, "expected pure hits, got {:?}", stats);
        }
    }

    /// A memory-bounded shared cache under random pressure: the bound
    /// holds, evictions are observed (and counted consistently), and the
    /// results stay bit-identical to the uncached reference — eviction
    /// can cost recomputation, never correctness.
    #[test]
    fn bounded_cache_respects_bound_and_never_changes_results(
        h1 in 0.3..1.5f64,
        h2 in 0.3..1.5f64,
        h3 in 0.3..1.5f64,
        h4 in 0.3..1.5f64,
        workers in 1usize..5,
        cap_entries in 24usize..96,
    ) {
        let params: Vec<f64> = [h1, h2, h3, h4].iter().map(|h| h * 1e-6).collect();
        let cache = Arc::new(TemplateCache::with_max_bytes(cap_entries * ENTRY_BYTES));
        let bounded = BatchExtractor::new(Extractor::new())
            .workers(workers)
            .shared_cache(Arc::clone(&cache))
            .extract_family(&params, crossing)
            .expect("bounded batch");
        let reference = BatchExtractor::new(Extractor::new())
            .workers(1)
            .cache(false)
            .extract_family(&params, crossing)
            .expect("reference batch");
        for (a, b) in bounded.points().iter().zip(reference.points()) {
            prop_assert_eq!(
                a.extraction.capacitance().matrix().as_slice(),
                b.extraction.capacitance().matrix().as_slice(),
                "workers={} cap={}", workers, cap_entries
            );
        }
        let bound = cache.max_bytes().expect("bounded cache");
        prop_assert!(cache.resident_bytes() <= bound,
            "resident {} over bound {}", cache.resident_bytes(), bound);
        // Four crossing-wire jobs need well over 96 distinct pair
        // integrals: a bound this small must evict.
        prop_assert!(bounded.report().cache.evictions > 0,
            "no evictions at cap {} entries", cap_entries);
        prop_assert_eq!(cache.lifetime().evictions, bounded.report().cache.evictions);
    }
}

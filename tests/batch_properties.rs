//! Property-based tests of the batch extraction invariants: for random
//! geometry families and pool sizes,
//!
//! * results come back in input order whatever the pool size;
//! * the shared pair-integral cache never changes a result bit;
//! * every returned capacitance matrix is symmetric, has positive
//!   diagonal, negative couplings, and is diagonally dominant (positive
//!   row sums — capacitance to infinity).

use bemcap_core::{BatchExtractor, Extractor};
use bemcap_geom::structures::{self, CrossingParams};
use proptest::prelude::*;

fn crossing(h: f64) -> bemcap_geom::Geometry {
    structures::crossing_wires(CrossingParams { separation: h, ..Default::default() })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// One random family (three separations, shuffled magnitudes) through
    /// a random pool size, cached — checked against the uncached
    /// single-worker run and the physical matrix invariants.
    #[test]
    fn batch_order_cache_and_matrix_invariants(
        h1 in 0.3..1.5f64,
        h2 in 0.3..1.5f64,
        h3 in 0.3..1.5f64,
        workers in 1usize..6,
    ) {
        let params: Vec<f64> = [h1, h2, h3].iter().map(|h| h * 1e-6).collect();
        let cached = BatchExtractor::new(Extractor::new())
            .workers(workers)
            .extract_family(&params, crossing)
            .expect("cached batch");
        // Order: the i-th result is the i-th parameter, not scheduler order.
        let got: Vec<f64> =
            cached.points().iter().map(|p| p.parameter.expect("family parameter")).collect();
        prop_assert_eq!(&got, &params, "workers={}", workers);

        // Cache off, single worker: the reference execution. Must be
        // bit-identical to the cached, pooled run.
        let reference = BatchExtractor::new(Extractor::new())
            .workers(1)
            .cache(false)
            .extract_family(&params, crossing)
            .expect("reference batch");
        for (a, b) in cached.points().iter().zip(reference.points()) {
            prop_assert_eq!(
                a.extraction.capacitance().matrix().as_slice(),
                b.extraction.capacitance().matrix().as_slice(),
                "workers={} job={}", workers, a.job.index
            );
        }

        // Matrix invariants on every returned point.
        for p in cached.points() {
            let c = p.extraction.capacitance();
            prop_assert!(c.asymmetry() < 1e-6, "asymmetry {}", c.asymmetry());
            for i in 0..c.dim() {
                prop_assert!(c.get(i, i) > 0.0, "diagonal {i}");
                let mut row_sum = 0.0;
                for j in 0..c.dim() {
                    if i != j {
                        prop_assert!(c.get(i, j) < 0.0, "coupling ({i},{j}) = {}", c.get(i, j));
                    }
                    row_sum += c.get(i, j);
                }
                // Diagonal dominance: self capacitance outweighs the
                // couplings (the grounded-at-infinity row sum).
                prop_assert!(row_sum > 0.0, "row {i} sum {row_sum}");
            }
        }
    }

    /// Duplicated parameters: later identical jobs must be pure cache
    /// hits, and still bit-identical to their first occurrence.
    #[test]
    fn duplicate_jobs_are_full_hits(h in 0.35..1.4f64, workers in 1usize..4) {
        let h = h * 1e-6;
        let params = [h, h];
        let result = BatchExtractor::new(Extractor::new())
            .workers(workers)
            .extract_family(&params, crossing)
            .expect("batch");
        let a = result.points()[0].extraction.capacitance().matrix();
        let b = result.points()[1].extraction.capacitance().matrix();
        prop_assert_eq!(a.as_slice(), b.as_slice());
        // With one worker the second job sees everything the first
        // computed; with more workers the jobs may race, so only demand
        // hits when sequential.
        if workers == 1 {
            let stats = result.points()[1].job.cache;
            prop_assert!(stats.misses == 0, "expected pure hits, got {:?}", stats);
        }
    }
}

//! End-to-end tests of the `bemcapd` daemon: concurrent clients get
//! results **bit-identical** to in-process extraction (cache cold or
//! warm, any `BEMCAP_POOL`), malformed input of every kind gets a
//! structured JSON error instead of a panic or a dropped connection, the
//! memory-bounded cache evicts under pressure without changing a bit,
//! and shutdown is clean.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use bemcap::prelude::*;
use bemcap_serve::{ServeError, ServerHandle};

mod common;
use common::wait_until;

/// The golden-fixture geometries of `tests/golden/` (same constructors
/// as `tests/golden_reference.rs`).
fn golden_geometries() -> Vec<(&'static str, Geometry)> {
    use structures::{BusParams, CrossingParams};
    vec![
        ("plate_pair", structures::parallel_plates(1.0e-6, 1.0e-6, 0.2e-6)),
        ("crossing_wires", structures::crossing_wires(CrossingParams::default())),
        ("bus3", structures::bus_crossing(2, 1, BusParams::default())),
    ]
}

fn spawn_server(cfg: ServerConfig) -> ServerHandle {
    Server::bind(cfg).expect("bind loopback").spawn().expect("spawn daemon")
}

fn default_server() -> ServerHandle {
    spawn_server(ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() })
}

fn assert_bit_identical(reply: &bemcap_serve::ExtractReply, local: &Extraction, context: &str) {
    let c = local.capacitance();
    assert_eq!(reply.dim(), c.dim(), "{context}: dimension");
    assert_eq!(reply.names, c.names(), "{context}: names");
    for i in 0..c.dim() {
        for j in 0..c.dim() {
            assert_eq!(
                reply.get(i, j).to_bits(),
                c.get(i, j).to_bits(),
                "{context}: C({i},{j}) {} vs {}",
                reply.get(i, j),
                c.get(i, j)
            );
        }
    }
}

#[test]
fn concurrent_clients_bit_identical_to_in_process_cold_and_warm() {
    let server = default_server();
    let addr = server.addr();
    const CLIENTS: usize = 4;
    let geometries = Arc::new(golden_geometries());
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let geometries = Arc::clone(&geometries);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                client.ping().expect("ping");
                // Two passes: the first may be cold, the second hits a
                // cache warmed by up to CLIENTS threads — results must be
                // bit-identical either way.
                for pass in 0..2 {
                    for (name, geo) in geometries.iter() {
                        let reply = client
                            .extract(geo, &ExtractOptions::default())
                            .expect("daemon extraction");
                        let local = Extractor::new().extract(geo).expect("local extraction");
                        assert_bit_identical(
                            &reply,
                            &local,
                            &format!("client {t} pass {pass} {name}"),
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    assert!(stats.cache.hits > 0, "warm passes must hit the shared cache");
    assert!(stats.cache_entries > 0);
    // 4 clients × 2 passes × 3 extracts, + pings + this stats request.
    assert!(stats.requests >= (CLIENTS * 2 * 3) as u64);
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn wire_batch_op_is_bit_identical_to_single_shot() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let geometries: Vec<Geometry> = golden_geometries().into_iter().map(|(_, geo)| geo).collect();
    let replies =
        client.extract_batch(&geometries, &ExtractOptions::default()).expect("batch over the wire");
    assert_eq!(replies.len(), geometries.len());
    for (i, (reply, geo)) in replies.iter().zip(&geometries).enumerate() {
        // Bit-identical to in-process extraction...
        let local = Extractor::new().extract(geo).expect("local extraction");
        assert_bit_identical(reply, &local, &format!("batch entry {i}"));
        // ...and to the single-shot wire op.
        let single = client.extract(geo, &ExtractOptions::default()).expect("single");
        for r in 0..reply.dim() {
            for c in 0..reply.dim() {
                assert_eq!(reply.get(r, c).to_bits(), single.get(r, c).to_bits());
            }
        }
    }
    // An empty batch frame is fine.
    let empty = client.extract_batch(&[], &ExtractOptions::default()).expect("empty batch");
    assert!(empty.is_empty());
    // A frame with a failing geometry reports its index and fails whole.
    let mut with_bad = geometries.clone();
    with_bad.insert(1, Geometry::new(vec![]));
    match client.extract_batch(&with_bad, &ExtractOptions::default()) {
        // An empty geometry is caught at the parse stage (`geometry`
        // code); either stage must name the failing index.
        Err(ServeError::Remote { code, message }) => {
            assert!(code == "geometry" || code == "extraction", "{code}: {message}");
            assert!(message.contains("geometry 1"), "{message}");
        }
        other => panic!("expected remote error, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn overloaded_daemon_answers_busy_and_recovers() {
    // One worker, one queue slot, no coalescing: the third concurrent
    // request must be refused with a structured `busy` error.
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_depth: 1,
        coalesce_limit: 1,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let slow_geo = structures::bus_crossing(3, 3, structures::BusParams::default());
    let wait_geo = structures::crossing_wires(structures::CrossingParams::default());

    // Connect every client up front: the daemon's accept loop polls on
    // a tick, so a fresh TCP connect can cost a whole tick — paying it
    // inside the worker-busy window would make the queue race flaky on
    // a fast machine (the slow job could finish before the second
    // request ever arrived).
    let mut slow_client = Client::connect(addr).expect("slow client connect");
    let mut queued_client = Client::connect(addr).expect("queued client connect");
    let mut probe = Client::connect(addr).expect("probe connect");

    // Occupy the worker with a long extraction on its own connection.
    let slow = {
        let geo = slow_geo.clone();
        std::thread::spawn(move || {
            slow_client.extract(&geo, &ExtractOptions::default()).expect("slow extraction succeeds")
        })
    };
    wait_until("the slow job is running", || probe.stats().expect("stats").running >= 1);

    // Fill the single queue slot from the second (already-open)
    // connection.
    let queued = {
        let geo = wait_geo.clone();
        std::thread::spawn(move || {
            queued_client
                .extract(&geo, &ExtractOptions::default())
                .expect("queued extraction succeeds")
        })
    };
    wait_until("the second job is queued", || probe.stats().expect("stats").queued >= 1);

    // Worker busy + queue full: the probe's extraction must be refused
    // immediately with the busy code, not block.
    match probe.extract(&wait_geo, &ExtractOptions::default()) {
        Err(ServeError::Remote { code, message }) => {
            assert_eq!(code, "busy");
            assert!(message.contains("queue depth 1"), "{message}");
        }
        other => panic!("expected busy rejection, got {other:?}"),
    }

    // Both in-flight requests finish normally and bit-identically.
    let slow_reply = slow.join().expect("slow thread");
    let queued_reply = queued.join().expect("queued thread");
    assert_bit_identical(
        &slow_reply,
        &Extractor::new().extract(&slow_geo).expect("local slow"),
        "slow request",
    );
    assert_bit_identical(
        &queued_reply,
        &Extractor::new().extract(&wait_geo).expect("local queued"),
        "queued request",
    );

    // The rejection shows up in the daemon's executor counters, and the
    // daemon keeps serving afterwards.
    let stats = probe.stats().expect("stats after storm");
    assert!(stats.exec.rejected >= 1, "rejection must be counted: {:?}", stats.exec);
    assert_eq!(stats.queue_depth, 1);
    let after = probe.extract(&wait_geo, &ExtractOptions::default()).expect("daemon recovered");
    assert!(after.dim() > 0);
    probe.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn concurrent_same_config_requests_coalesce() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    // Single worker and a wide window: while one request runs, the
    // others pile up and must merge into shared micro-batches.
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        coalesce_limit: 16,
        ..ServerConfig::default()
    });
    let addr = server.addr();
    let coalesced = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let coalesced = Arc::clone(&coalesced);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let geo = structures::crossing_wires(structures::CrossingParams::default());
                for _ in 0..6 {
                    let reply = client.extract(&geo, &ExtractOptions::default()).expect("extract");
                    coalesced.fetch_add(usize::from(reply.coalesced), Ordering::Relaxed);
                    let local = Extractor::new().extract(&geo).expect("local");
                    assert_bit_identical(&reply, &local, &format!("client {t}"));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    let mut client = Client::connect(addr).expect("connect for stats");
    let stats = client.stats().expect("stats");
    // 4 clients x 6 identical-config requests against one worker: some
    // of them must have shared a micro-batch (the executor only merges
    // requests that were concurrently waiting, which this storm forces).
    assert!(
        stats.exec.coalesced > 0,
        "no coalescing under a 4-client identical-config storm: {:?}",
        stats.exec
    );
    assert_eq!(stats.exec.coalesced, coalesced.load(Ordering::Relaxed));
    assert!(stats.exec.coalescing_ratio() > 1.0);
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn non_default_methods_run_through_the_daemon() {
    let server = default_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let geo = structures::crossing_wires(structures::CrossingParams::default());
    let options =
        ExtractOptions { method: Method::PwcDense, mesh_divisions: Some(4), ..Default::default() };
    let reply = client.extract(&geo, &options).expect("pwc-dense over the wire");
    let local =
        Extractor::new().method(Method::PwcDense).mesh_divisions(4).extract(&geo).expect("local");
    assert_eq!(reply.method, "pwc-dense");
    assert_bit_identical(&reply, &local, "pwc-dense");
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn every_method_variant_with_typed_configs_is_bit_identical_via_the_daemon() {
    // All five Method variants — including Auto and non-default typed
    // backend configs — through the daemon, each bit-identical to the
    // in-process extraction built from the same knobs; iterative
    // backends' solver stats round-trip alongside.
    let server = default_server();
    let mut client = Client::connect(server.addr()).expect("connect");
    let geo = structures::crossing_wires(structures::CrossingParams::default());

    let fmm = FmmConfig { theta: 0.35, leaf_size: 10 };
    let pfft = PfftConfig { spacing_factor: 1.1, ..Default::default() };
    let krylov = KrylovConfig { tol: 1e-7, restart: 30, max_iters: 500 };
    let cases: Vec<(ExtractOptions, Extractor, &str, bool)> = vec![
        (ExtractOptions::default(), Extractor::new(), "instantiable", false),
        (
            ExtractOptions {
                method: Method::PwcDense,
                mesh_divisions: Some(5),
                ..Default::default()
            },
            Extractor::new().method(Method::PwcDense).mesh_divisions(5),
            "pwc-dense",
            false,
        ),
        (
            ExtractOptions {
                method: Method::PwcFmm,
                mesh_divisions: Some(5),
                fmm: Some(fmm),
                krylov: Some(krylov),
                precond: Some(PrecondKind::BlockJacobi { block: 8 }),
                ..Default::default()
            },
            Extractor::new()
                .method(Method::PwcFmm)
                .mesh_divisions(5)
                .fmm_config(fmm)
                .krylov_config(krylov)
                .preconditioner(PrecondKind::BlockJacobi { block: 8 }),
            "pwc-fmm",
            true,
        ),
        (
            ExtractOptions {
                method: Method::PwcPfft,
                mesh_divisions: Some(5),
                pfft: Some(pfft),
                krylov: Some(krylov),
                ..Default::default()
            },
            Extractor::new()
                .method(Method::PwcPfft)
                .mesh_divisions(5)
                .pfft_config(pfft)
                .krylov_config(krylov),
            "pwc-pfft",
            true,
        ),
        (
            ExtractOptions {
                method: Method::Auto,
                mesh_divisions: Some(5),
                auto_budget: Some(64 << 20),
                ..Default::default()
            },
            Extractor::new().method(Method::Auto).mesh_divisions(5).auto_memory_budget(64 << 20),
            "pwc-dense", // Auto resolves to dense at this size
            false,
        ),
    ];
    for (options, local_extractor, want_method, iterative) in cases {
        let reply = client.extract(&geo, &options).expect("daemon extraction");
        let local = local_extractor.extract(&geo).expect("local extraction");
        assert_eq!(reply.method, want_method);
        assert_eq!(reply.method, local.report().method, "{want_method}: resolved names agree");
        assert_bit_identical(&reply, &local, want_method);
        assert_eq!(reply.workers, local.report().workers, "{want_method}: workers");
        if iterative {
            let wire = reply.solver.expect("iterative backends report solver stats");
            let here = local.report().krylov.expect("local stats");
            assert_eq!(
                (wire.iterations, wire.restarts, wire.residual.to_bits()),
                (here.iterations, here.restarts, here.residual.to_bits()),
                "{want_method}: solver stats round-trip bit-exactly"
            );
            assert!(wire.residual < krylov.tol);
        } else {
            assert!(reply.solver.is_none(), "{want_method}: direct solves carry no solver stats");
        }
    }
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn warm_requests_are_pure_cache_hits() {
    // One worker per request makes the second identical request's
    // hit-set deterministic: everything is resident, zero misses.
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let geo = structures::crossing_wires(structures::CrossingParams::default());
    let cold = client.extract(&geo, &ExtractOptions::default()).expect("cold");
    let warm = client.extract(&geo, &ExtractOptions::default()).expect("warm");
    assert!(cold.cache.misses > 0, "first request computes");
    assert_eq!(warm.cache.misses, 0, "second identical request is all hits: {:?}", warm.cache);
    assert_eq!(warm.cache.hits, cold.cache.lookups());
    for i in 0..warm.dim() {
        for j in 0..warm.dim() {
            assert_eq!(warm.get(i, j).to_bits(), cold.get(i, j).to_bits());
        }
    }
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn bounded_cache_evicts_under_pressure_without_changing_results() {
    use bemcap_core::cache::ENTRY_BYTES;
    // ~48 entries of budget vs a family needing far more.
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_max_bytes: Some(48 * ENTRY_BYTES),
        workers: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut evictions = 0;
    for i in 0..4 {
        let sep = (4 + i) as f64 * 0.2e-6;
        let geo = structures::crossing_wires(structures::CrossingParams {
            separation: sep,
            ..Default::default()
        });
        let reply = client.extract(&geo, &ExtractOptions::default()).expect("extract");
        let local = Extractor::new().extract(&geo).expect("local");
        assert_bit_identical(&reply, &local, &format!("bounded sep={sep:e}"));
        evictions += reply.cache.evictions;
    }
    let stats = client.stats().expect("stats");
    assert!(evictions > 0, "a 48-entry bound must evict on this family");
    assert_eq!(stats.cache.evictions, evictions, "daemon counters match per-request sums");
    let bound = stats.cache_max_bytes.expect("bounded cache");
    assert!(stats.cache_resident_bytes <= bound, "{} > {bound}", stats.cache_resident_bytes);
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn malformed_requests_get_structured_errors_and_the_connection_survives() {
    let server = spawn_server(ServerConfig {
        addr: "127.0.0.1:0".into(),
        max_frame_bytes: 64 << 10,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.addr()).expect("connect");

    // Invalid JSON.
    let v = client.send_raw("this is not json").expect("response");
    assert_eq!(v["ok"].as_bool(), Some(false));
    assert_eq!(v["error"]["code"].as_str(), Some("parse"));

    // Valid JSON, invalid request: the recoverable id is still echoed.
    let v = client.send_raw(r#"{"op":"selfdestruct","id":5}"#).expect("response");
    assert_eq!(v["error"]["code"].as_str(), Some("bad-request"));
    assert_eq!(v["id"].as_u64(), Some(5));

    // Bad geometry (also checks id echo on errors).
    let v = client
        .send_raw(r#"{"op":"extract","id":77,"geometry":"box 0 0 0 1 1 1\n"}"#)
        .expect("response");
    assert_eq!(v["error"]["code"].as_str(), Some("geometry"));
    assert_eq!(v["id"].as_u64(), Some(77));
    assert!(v["error"]["message"].as_str().unwrap().contains("line 1"));

    // Degenerate box: caught by the geometry layer, not a panic.
    let v = client
        .send_raw(r#"{"op":"extract","geometry":"conductor a\nbox 0 0 0 0 1 1\n"}"#)
        .expect("response");
    assert_eq!(v["error"]["code"].as_str(), Some("geometry"));

    // Oversized frame: drained and answered, not buffered or dropped.
    let big = format!(r#"{{"op":"extract","geometry":"{}"}}"#, "x".repeat(80 << 10));
    let v = client.send_raw(&big).expect("response");
    assert_eq!(v["error"]["code"].as_str(), Some("oversized"));

    // The same connection still works after every error.
    client.ping().expect("connection survives malformed traffic");

    // Remote errors surface as ServeError::Remote through typed calls.
    match client.extract_text("nonsense\n", &ExtractOptions::default()) {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, "geometry"),
        other => panic!("expected remote geometry error, got {other:?}"),
    }
    client.ping().expect("still alive");

    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn typed_options_against_a_pre_v3_daemon_fail_instead_of_silently_downgrading() {
    use std::net::TcpListener;
    // A canned v2-style daemon: answers one extract with a report that
    // lacks the v3 `workers` marker (a real v2 daemon ignores the typed
    // fields entirely and solves under its own defaults).
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind fake daemon");
    let addr = listener.local_addr().expect("addr");
    let fake = std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        for _ in 0..2 {
            line.clear();
            if reader.read_line(&mut line).expect("read") == 0 {
                return;
            }
            let id: u64 = line
                .split("\"id\":")
                .nth(1)
                .and_then(|s| s.trim_start().split(|c: char| !c.is_ascii_digit()).next())
                .and_then(|s| s.parse().ok())
                .expect("request id");
            let response = format!(
                "{{\"id\":{id},\"ok\":true,\"result\":{{\"names\":[\"a\"],\"matrix\":[[1.0]],\
                 \"report\":{{\"method\":\"instantiable\",\"n\":4,\"m_templates\":null,\
                 \"setup_seconds\":0.1,\"solve_seconds\":0.1,\"memory_bytes\":128}},\
                 \"cache\":{{\"hits\":0,\"misses\":1,\"evictions\":0,\"inserted_bytes\":192,\
                 \"hit_rate\":0.0}}}}}}\n"
            );
            (&stream).write_all(response.as_bytes()).expect("write");
        }
    });
    let mut client = Client::connect(addr).expect("connect");
    let geo = structures::crossing_wires(structures::CrossingParams::default());
    // Typed backend options against the v2-shaped report: refused.
    let typed = ExtractOptions {
        krylov: Some(KrylovConfig { tol: 1e-9, ..Default::default() }),
        ..Default::default()
    };
    match client.extract(&geo, &typed) {
        Err(ServeError::Protocol(msg)) => {
            assert!(msg.contains("typed backend options"), "{msg}");
        }
        other => panic!("expected a protocol error, got {other:?}"),
    }
    // The same report without typed options decodes leniently.
    let reply = client.extract(&geo, &ExtractOptions::default()).expect("lenient decode");
    assert_eq!((reply.workers, reply.solver), (1, None));
    drop(client);
    fake.join().expect("fake daemon thread");
}

#[test]
fn bad_utf8_gets_a_structured_error() {
    let server = default_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect raw");
    stream.write_all(b"\xff\xfe{\"op\":\"ping\"}\n").expect("write bad utf8");
    stream.flush().expect("flush");
    let mut line = String::new();
    BufReader::new(stream.try_clone().expect("clone")).read_line(&mut line).expect("read");
    assert!(line.contains("\"ok\":false") && line.contains("utf8"), "got: {line}");
    // Same raw connection keeps working.
    stream.write_all(b"{\"op\":\"ping\"}\n").expect("write ping");
    let mut line2 = String::new();
    BufReader::new(stream).read_line(&mut line2).expect("read");
    assert!(line2.contains("\"pong\":true"), "got: {line2}");

    let mut client = Client::connect(server.addr()).expect("connect");
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn truncated_frames_do_not_kill_the_daemon() {
    let server = default_server();
    {
        // A frame cut off mid-line, then the peer vanishes.
        let mut stream = TcpStream::connect(server.addr()).expect("connect raw");
        stream.write_all(b"{\"op\":\"ext").expect("write partial");
        stream.flush().expect("flush");
    } // dropped: connection closed with an incomplete frame
    {
        // An empty connection (open, close, no bytes).
        let _ = TcpStream::connect(server.addr()).expect("connect raw");
    }
    let mut client = Client::connect(server.addr()).expect("connect after truncation");
    client.ping().expect("daemon alive after truncated frames");
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

#[test]
fn blank_lines_are_ignored() {
    let server = default_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect raw");
    stream.write_all(b"\n\r\n{\"op\":\"ping\"}\n").expect("write");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("read");
    assert!(line.contains("\"pong\":true"), "got: {line}");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

//! Shared helpers of the integration-test tree.

use std::time::{Duration, Instant};

/// How long [`wait_until`] keeps polling before failing the test.
pub const WAIT_DEADLINE: Duration = Duration::from_secs(60);

/// Polls `probe` with a small backoff until it returns `true`, failing
/// the test with a message naming `what` once [`WAIT_DEADLINE`] passes.
///
/// The bounded replacement for fixed-sleep polling loops: on a fast
/// machine the wait ends at the first true probe, on a loaded CI box it
/// keeps trying for the full deadline instead of flaking.
pub fn wait_until(what: &str, mut probe: impl FnMut() -> bool) {
    let deadline = Instant::now() + WAIT_DEADLINE;
    while !probe() {
        assert!(
            Instant::now() < deadline,
            "timed out after {WAIT_DEADLINE:?} waiting until {what}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

//! Cross-solver validation: four independent solver stacks (instantiable
//! basis, dense PWC, multipole, precorrected FFT) must agree on the same
//! physics.

use bemcap_core::solver::DensePwcSolver;
use bemcap_core::{BatchExtractor, Extractor, Method};
use bemcap_fmm::FmmSolver;
use bemcap_geom::structures::{self, CrossingParams};
use bemcap_geom::{Geometry, Mesh, EPS0};
use bemcap_pfft::{operator::solve_capacitance as pfft_solve, PfftConfig};

#[test]
fn four_solvers_agree_on_crossing_wires() {
    let geo = structures::crossing_wires(CrossingParams::default());
    let mesh = Mesh::uniform(&geo, 8);

    let dense = DensePwcSolver.solve(&geo, &mesh).expect("dense");
    let fmm = FmmSolver::default().solve(&geo, &mesh).expect("fmm").capacitance;
    let pfft = pfft_solve(&geo, &mesh, PfftConfig::default(), 1e-6, 40, 600).expect("pfft");
    let inst = Extractor::new()
        .method(Method::InstantiableBasis)
        .extract(&geo)
        .expect("instantiable")
        .capacitance()
        .matrix()
        .clone();

    // Accelerated solvers vs the dense exact discretization: tight.
    for (name, c) in [("fmm", &fmm), ("pfft", &pfft)] {
        for i in 0..2 {
            for j in 0..2 {
                let a = dense.get(i, j);
                let b = c.get(i, j);
                assert!((a - b).abs() < 3e-2 * a.abs(), "{name} ({i},{j}): {b} vs dense {a}");
            }
        }
    }
    // The compact instantiable basis vs the same-physics reference:
    // looser (different discretization philosophy), but the coupling term
    // must be in the same few-percent-to-tens-of-percent band the paper
    // reports for coarse template sets.
    let ci = -inst.get(0, 1);
    let cd = -dense.get(0, 1);
    assert!((ci - cd).abs() / cd < 0.3, "instantiable coupling {ci} vs dense {cd}");
}

#[test]
fn capacitance_matrix_properties_hold_everywhere() {
    // Physical invariants: symmetric, positive diagonal, negative
    // off-diagonal, diagonally dominant (sum of each row ≥ 0 for a
    // complete system grounded at infinity).
    let geo = structures::bus_crossing(3, 3, structures::BusParams::default());
    let out = Extractor::new().extract(&geo).expect("extraction");
    let c = out.capacitance();
    let n = c.dim();
    assert_eq!(n, 6);
    for i in 0..n {
        assert!(c.get(i, i) > 0.0, "diagonal {i}");
        let mut row_sum = 0.0;
        for j in 0..n {
            if i != j {
                assert!(c.get(i, j) < 0.0, "off-diagonal ({i},{j}) = {}", c.get(i, j));
            }
            row_sum += c.get(i, j);
        }
        assert!(row_sum > 0.0, "row {i} sum {row_sum} (capacitance to infinity)");
    }
    assert!(c.asymmetry() < 1e-6);
}

#[test]
fn parallel_plate_scaling_laws() {
    // C grows ~linearly with area and ~inversely with gap; check both
    // trends with the instantiable solver.
    let c_of = |w: f64, gap: f64| {
        let geo = structures::parallel_plates(w, w, gap);
        let out = Extractor::new().method(Method::PwcDense).mesh_divisions(8).extract(&geo);
        -out.expect("extraction").capacitance().get(0, 1)
    };
    let base = c_of(1.0e-6, 0.2e-6);
    let wide = c_of(2.0e-6, 0.2e-6); // 4x area
    let tight = c_of(1.0e-6, 0.1e-6); // half gap
    assert!(wide > 2.5 * base, "area scaling: {wide} vs {base}");
    assert!(tight > 1.5 * base, "gap scaling: {tight} vs {base}");
    // And the ideal-plate floor.
    assert!(base > EPS0 * 1.0e-12 / 0.2e-6);
}

/// The h-family used by the batch-vs-single cross-validations.
fn crossing_family(hs: &[f64]) -> Vec<Geometry> {
    hs.iter()
        .map(|&h| {
            structures::crossing_wires(CrossingParams { separation: h, ..Default::default() })
        })
        .collect()
}

#[test]
fn batch_is_bit_identical_to_single_for_direct_solvers() {
    // The batch engine re-states the sequential assembly loop (shared
    // engine, optional cache): for the direct-solve paths the result must
    // be the *same bits* as one-at-a-time extraction, at any pool size,
    // cache on or off.
    let hs = [0.4e-6, 0.7e-6, 1.0e-6];
    let geos = crossing_family(&hs);
    // `Auto` resolves to the dense direct solver at this size, so it
    // belongs in the bit-identity class.
    for method in [Method::InstantiableBasis, Method::PwcDense, Method::Auto] {
        let ex = Extractor::new().method(method).mesh_divisions(6);
        let singles: Vec<_> =
            geos.iter().map(|g| ex.extract(g).expect("single extraction")).collect();
        for workers in [1, 3] {
            for cache in [false, true] {
                let result = BatchExtractor::new(ex.clone())
                    .workers(workers)
                    .cache(cache)
                    .extract_geometries(geos.clone())
                    .expect("batch extraction");
                for (single, point) in singles.iter().zip(result.points()) {
                    assert_eq!(
                        single.capacitance().matrix().as_slice(),
                        point.extraction.capacitance().matrix().as_slice(),
                        "{method:?} workers={workers} cache={cache} job {}",
                        point.job.index,
                    );
                }
            }
        }
    }
}

#[test]
fn batch_is_tolerance_bounded_for_iterative_solvers() {
    // FMM and pFFT go through Krylov solves; batch runs them through the
    // unchanged one-at-a-time path, so agreement should still be far
    // inside the solver tolerance — but the contract we pin is the
    // tolerance bound, not bit-identity.
    let hs = [0.5e-6, 0.9e-6];
    let geos = crossing_family(&hs);
    for method in [Method::PwcFmm, Method::PwcPfft] {
        let ex = Extractor::new().method(method).mesh_divisions(6);
        let singles: Vec<_> =
            geos.iter().map(|g| ex.extract(g).expect("single extraction")).collect();
        let result = BatchExtractor::new(ex.clone())
            .workers(2)
            .extract_geometries(geos.clone())
            .expect("batch extraction");
        for (single, point) in singles.iter().zip(result.points()) {
            let a = single.capacitance();
            let b = point.extraction.capacitance();
            let scale = a.matrix().max_abs();
            for i in 0..a.dim() {
                for j in 0..a.dim() {
                    assert!(
                        (a.get(i, j) - b.get(i, j)).abs() < 1e-6 * scale,
                        "{method:?} job {} entry ({i},{j}): {} vs {}",
                        point.job.index,
                        a.get(i, j),
                        b.get(i, j),
                    );
                }
            }
        }
    }
}

#[test]
fn krylov_caps_steer_the_unified_path() {
    // The typed iterative config is honored end to end: a looser
    // tolerance stops earlier (fewer iterations, larger residual bound),
    // and both runs stay inside their own reported residual.
    use bemcap_core::KrylovConfig;
    let geo = structures::crossing_wires(CrossingParams::default());
    for method in [Method::PwcFmm, Method::PwcPfft] {
        let run = |tol: f64| {
            Extractor::new()
                .method(method)
                .mesh_divisions(6)
                .krylov_config(KrylovConfig { tol, ..Default::default() })
                .extract(&geo)
                .expect("extraction")
        };
        let loose = run(1e-3);
        let tight = run(1e-9);
        let (ls, ts) =
            (loose.report().krylov.expect("stats"), tight.report().krylov.expect("stats"));
        assert!(
            ls.iterations < ts.iterations,
            "{method:?}: loose {} vs tight {}",
            ls.iterations,
            ts.iterations
        );
        assert!(ls.residual < 1e-3 && ts.residual < 1e-9, "{method:?}: {ls:?} {ts:?}");
        // Same physics either way, inside the loose tolerance band.
        let scale = tight.capacitance().matrix().max_abs();
        for i in 0..2 {
            for j in 0..2 {
                let d = (loose.capacitance().get(i, j) - tight.capacitance().get(i, j)).abs();
                assert!(d < 1e-2 * scale, "{method:?} ({i},{j})");
            }
        }
    }
}

#[test]
fn eps_rel_scales_capacitance_linearly() {
    let geo = structures::crossing_wires(CrossingParams::default());
    let geo_hi = geo.clone().with_eps_rel(3.9);
    let c1 = Extractor::new().extract(&geo).expect("eps 1").capacitance().get(0, 0);
    let c39 = Extractor::new().extract(&geo_hi).expect("eps 3.9").capacitance().get(0, 0);
    assert!((c39 / c1 - 3.9).abs() < 1e-6, "ratio {}", c39 / c1);
}

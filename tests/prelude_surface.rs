//! Integration coverage of the `bemcap::prelude` surface: everything here
//! goes through the facade's glob import, the way an application would,
//! and runs [`Extractor`] with every [`Method`] variant on one small
//! geometry.

use bemcap::prelude::*;

/// All five solver backends, with the report name each produces on the
/// elementary crossing-wire problem (`Auto` resolves to the dense
/// reference at this size — the report names what actually ran).
const METHODS: [(Method, &str); 5] = [
    (Method::InstantiableBasis, "instantiable"),
    (Method::PwcDense, "pwc-dense"),
    (Method::PwcFmm, "pwc-fmm"),
    (Method::PwcPfft, "pwc-pfft"),
    (Method::Auto, "pwc-dense"),
];

#[test]
fn every_method_variant_extracts_the_crossing_pair() {
    let geo = structures::crossing_wires(structures::CrossingParams::default());
    let dense_coupling = {
        let out = Extractor::new().method(Method::PwcDense).extract(&geo).expect("dense");
        -out.capacitance().get(0, 1)
    };
    assert!(dense_coupling > 0.0);

    for (method, name) in METHODS {
        let extraction: Extraction = Extractor::new()
            .method(method)
            .mesh_divisions(8)
            .extract(&geo)
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        let c: &CapacitanceMatrix = extraction.capacitance();
        assert_eq!(c.dim(), geo.conductor_count(), "{name}: one row per conductor");
        for i in 0..c.dim() {
            assert!(c.get(i, i) > 0.0, "{name}: self capacitance ({i},{i})");
            for j in 0..c.dim() {
                if i != j {
                    assert!(c.get(i, j) < 0.0, "{name}: coupling ({i},{j})");
                }
            }
        }

        // Same physics across backends: couplings agree with the dense
        // reference (loose band — the instantiable basis is a different
        // discretization philosophy, cf. tests/solver_cross_validation.rs).
        let coupling = -c.get(0, 1);
        assert!(
            (coupling - dense_coupling).abs() / dense_coupling < 0.3,
            "{name}: coupling {coupling} vs dense {dense_coupling}"
        );

        // The report is part of the prelude-visible Extraction API, and
        // names the backend that actually ran.
        let r = extraction.report();
        assert_eq!(r.method, name, "{method:?}: report method name");
        assert!(r.setup_seconds >= 0.0 && r.solve_seconds >= 0.0, "{name}: timings");
        assert!(r.n > 0, "{name}: system dimension");
        assert!(r.workers >= 1, "{name}: worker count");
    }
}

#[test]
fn typed_backend_configs_compose_through_the_prelude() {
    // The whole typed-config surface is reachable from one glob import.
    let geo = structures::crossing_wires(structures::CrossingParams::default());
    let extraction = Extractor::new()
        .method(Method::PwcFmm)
        .mesh_divisions(5)
        .fmm_config(FmmConfig { theta: 0.4, leaf_size: 10 })
        .pfft_config(PfftConfig::default())
        .krylov_config(KrylovConfig { tol: 1e-7, restart: 30, max_iters: 500 })
        .preconditioner(PrecondKind::Diagonal)
        .auto_memory_budget(128 << 20)
        .extract(&geo)
        .expect("typed-config extraction");
    let report: &ExtractionReport = extraction.report();
    let stats: SolverStats = report.krylov.expect("iterative backend reports solver stats");
    assert!(stats.iterations > 0);
    assert!(stats.residual < 1e-7);
    // The Backend trait object is part of the public surface too.
    let backend: Box<dyn Backend> = Extractor::new().method(Method::Auto).backend();
    let mut words = Vec::new();
    backend.digest(&mut words);
    assert!(!words.is_empty(), "auto backend digests its full candidate set");
}

#[test]
fn prelude_geometry_types_compose() {
    // Build a geometry by hand from the prelude's types rather than a
    // generator: two unit plates face to face.
    let lower = Conductor::new("lower").with_box(
        Box3::new(Point3::new(0.0, 0.0, 0.0), Point3::new(1e-6, 1e-6, 0.1e-6)).expect("box"),
    );
    let upper = Conductor::new("upper").with_box(
        Box3::new(Point3::new(0.0, 0.0, 0.3e-6), Point3::new(1e-6, 1e-6, 0.4e-6)).expect("box"),
    );
    let geo = Geometry::new(vec![lower, upper]);
    assert_eq!(geo.conductor_count(), 2);

    let mesh = Mesh::uniform(&geo, 6);
    assert!(mesh.panel_count() > 0);

    let out = Extractor::new().method(Method::PwcDense).mesh_divisions(6).extract(&geo);
    let out = out.expect("hand-built geometry extracts");
    assert!(out.capacitance().get(0, 1) < 0.0);
}

#[test]
fn panel_type_is_usable_through_the_prelude() {
    // `Panel` is exported for users who drive the quadrature layer
    // directly; construct one and sanity-check its area.
    let p = Panel::new(bemcap::geom::Axis::Z, 0.0, (0.0, 2.0), (0.0, 3.0)).expect("panel");
    assert!((p.area() - 6.0).abs() < 1e-12);
}

//! Cross-crate consistency of the parallel machinery: every execution
//! mode of Algorithm 1 produces the same system, the index math agrees
//! between crates, and the simulated machine reproduces the analytic
//! Amdahl limits.

use bemcap_basis::instantiate::{instantiate, InstantiateConfig};
use bemcap_basis::TemplateIndex;
use bemcap_core::assembly;
use bemcap_geom::structures;
use bemcap_par::{k_to_ij, triangle_size, CommModel, MachineSim, Phase, Universe};
use bemcap_quad::galerkin::GalerkinEngine;

#[test]
fn all_assembly_modes_bitwise_close() {
    let geo = structures::bus_crossing(2, 3, structures::BusParams::default());
    let set = instantiate(&geo, &InstantiateConfig::default()).expect("basis");
    let index = TemplateIndex::new(&set);
    let eng = GalerkinEngine::default();
    let nc = geo.conductor_count();
    let seq = assembly::assemble_sequential(&eng, &index, &set, nc, 1.0);
    for workers in 1..=4 {
        let (thr, timings) = assembly::assemble_threaded(&eng, &index, &set, nc, 1.0, workers);
        assert_eq!(timings.len(), workers);
        assert!((&seq.p - &thr.p).max_abs() < 1e-10 * seq.p.max_abs());
        let dist = assembly::assemble_distributed(&eng, &index, &set, nc, 1.0, workers);
        assert!((&seq.p - &dist.p).max_abs() < 1e-10 * seq.p.max_abs());
    }
}

#[test]
fn labels_are_monotone_so_distributed_columns_work() {
    // The distributed partial-matrix scheme (Fig. 5) relies on l_i ≤ l_j
    // for i ≤ j: labels must be nondecreasing in template order.
    let geo = structures::bus_crossing(3, 3, structures::BusParams::default());
    let set = instantiate(&geo, &InstantiateConfig::default()).expect("basis");
    let index = TemplateIndex::new(&set);
    for t in 1..index.template_count() {
        assert!(index.label(t - 1) <= index.label(t));
    }
    // And the k-loop covers the full triangle.
    let m = index.template_count();
    let last = triangle_size(m) - 1;
    assert_eq!(k_to_ij(last), (m - 1, m - 1));
}

#[test]
fn message_passing_ring_and_gather_compose() {
    // A slightly larger protocol exercise: tree reduction of partial sums.
    let results = Universe::run(6, |comm| {
        let mine = (comm.rank() + 1) as f64;
        if comm.rank() == 0 {
            let mut total = mine;
            for src in 1..comm.size() {
                total += comm.recv_f64s(src).expect("partial")[0];
            }
            total
        } else {
            comm.send_f64s(0, &[mine]).expect("send partial");
            0.0
        }
    });
    assert_eq!(results[0], 21.0);
}

#[test]
fn machine_sim_matches_amdahl_closed_form() {
    for d in [2usize, 4, 8] {
        for serial_frac in [0.05, 0.2] {
            let total = 10.0;
            let serial = serial_frac * total;
            let parallel = total - serial;
            let phases1 = [
                Phase::Serial { seconds: serial },
                Phase::Parallel { costs_per_node: vec![parallel] },
            ];
            let t1 = MachineSim::new(1, CommModel::shared_memory()).simulate(&phases1).makespan;
            let phases_d = [
                Phase::Serial { seconds: serial },
                Phase::Parallel { costs_per_node: vec![parallel / d as f64; d] },
            ];
            let rd = MachineSim::new(d, CommModel::shared_memory()).simulate(&phases_d);
            let expect = 1.0 / (serial_frac + (1.0 - serial_frac) / d as f64);
            assert!(
                (rd.speedup(t1) - expect).abs() < 1e-9,
                "d={d} f={serial_frac}: {} vs {expect}",
                rd.speedup(t1)
            );
        }
    }
}

#[test]
fn measured_chunk_costs_drive_high_efficiency() {
    // End-to-end Table 3 pipeline on a small bus: measure chunk costs,
    // simulate D nodes, and require the paper's qualitative result —
    // high efficiency for the embarrassingly parallel setup.
    let geo = structures::bus_crossing(4, 4, structures::BusParams::default());
    let set = instantiate(&geo, &InstantiateConfig::default()).expect("basis");
    let index = TemplateIndex::new(&set);
    let eng = GalerkinEngine::default();
    let costs = assembly::measure_chunk_costs(&eng, &index, 1.0, 512);
    let t1 =
        MachineSim::new(1, CommModel::shared_memory()).simulate_setup(&costs, 0, 0.0, 0.0).makespan;
    // Thresholds are loose because this small bus has few entries and the
    // costs are measured in a debug build on a shared host: partition
    // granularity and timer noise dominate at high D. The release-build
    // 12×12/24×24 harness reaches the paper's ~85–90 % (EXPERIMENTS.md
    // Table 3).
    for (d, floor) in [(2usize, 0.75), (4, 0.65), (8, 0.5), (10, 0.45)] {
        let r = MachineSim::new(d, CommModel::shared_memory()).simulate_setup(
            &costs,
            index.basis_count() * index.basis_count() * 8,
            0.0,
            0.0,
        );
        let eff = r.efficiency(t1);
        assert!(eff > floor, "d={d}: efficiency {eff}");
    }
}

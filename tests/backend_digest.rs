//! Property tests of the solver-configuration digest
//! (`Extractor::config_digest`) — the identity the execution core
//! coalesces on. The contract pinned here:
//!
//! * two extractors differing in **any** knob of the *active* backend's
//!   typed config (pFFT grid spacing, FMM tolerance, Krylov caps,
//!   preconditioner, Auto budget) can never share a digest, so the
//!   executor can never merge them into one micro-batch — coalescing
//!   across differing backend configs is impossible *by construction*;
//! * equal configurations always share a digest, so legitimate
//!   coalescing keeps working;
//! * knobs of an *inactive* backend do not leak into the digest, so they
//!   cannot spuriously block coalescing.

use std::sync::Arc;

use bemcap_core::exec::{ExecConfig, Executor};
use bemcap_core::{BatchJob, Extractor, FmmConfig, KrylovConfig, Method, PfftConfig, PrecondKind};
use bemcap_geom::structures::{self, CrossingParams};
use proptest::prelude::*;

fn crossing_job() -> BatchJob {
    BatchJob::new("probe", structures::crossing_wires(CrossingParams::default()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every active-backend knob separates digests; the untouched clone
    /// never does.
    #[test]
    fn active_backend_config_knobs_always_separate_digests(
        theta in 0.2..0.8f64,
        dtheta in 0.01..0.3f64,
        spacing in 0.8..1.6f64,
        dspacing in 0.01..0.5f64,
        tol_exp in 4i32..10,
        block in 2usize..32,
        budget_mib in 1usize..1024,
    ) {
        let tol = 10f64.powi(-tol_exp);
        // FMM: theta, krylov tolerance, preconditioner.
        let fmm = Extractor::new()
            .method(Method::PwcFmm)
            .fmm_config(FmmConfig { theta, ..Default::default() })
            .krylov_config(KrylovConfig { tol, ..Default::default() });
        prop_assert_eq!(fmm.config_digest(), fmm.clone().config_digest(), "clone must match");
        let fmm_theta = fmm
            .clone()
            .fmm_config(FmmConfig { theta: theta + dtheta, ..Default::default() });
        prop_assert_ne!(fmm.config_digest(), fmm_theta.config_digest(), "theta");
        let fmm_tol = fmm
            .clone()
            .krylov_config(KrylovConfig { tol: tol * 0.5, ..Default::default() });
        prop_assert_ne!(fmm.config_digest(), fmm_tol.config_digest(), "krylov tol");
        let fmm_pre = fmm.clone().preconditioner(PrecondKind::BlockJacobi { block });
        prop_assert_ne!(fmm.config_digest(), fmm_pre.config_digest(), "preconditioner");

        // pFFT: grid spacing.
        let pfft = Extractor::new()
            .method(Method::PwcPfft)
            .pfft_config(PfftConfig { spacing_factor: spacing, ..Default::default() });
        let pfft_spacing = pfft.clone().pfft_config(PfftConfig {
            spacing_factor: spacing + dspacing,
            ..Default::default()
        });
        prop_assert_eq!(pfft.config_digest(), pfft.clone().config_digest());
        prop_assert_ne!(pfft.config_digest(), pfft_spacing.config_digest(), "spacing");

        // Auto folds in the budget and every candidate's knobs.
        let auto = Extractor::new().method(Method::Auto).auto_memory_budget(budget_mib << 20);
        let auto_budget = auto.clone().auto_memory_budget((budget_mib << 20) + 1);
        prop_assert_ne!(auto.config_digest(), auto_budget.config_digest(), "auto budget");
        let auto_fmm = auto
            .clone()
            .fmm_config(FmmConfig { theta: theta + dtheta, ..Default::default() });
        prop_assert_ne!(auto.config_digest(), auto_fmm.config_digest(), "auto fmm candidate");

        // Different methods never share a digest.
        for (a, b) in [
            (Method::InstantiableBasis, Method::PwcDense),
            (Method::PwcFmm, Method::PwcPfft),
            (Method::PwcDense, Method::Auto),
        ] {
            prop_assert_ne!(
                Extractor::new().method(a).config_digest(),
                Extractor::new().method(b).config_digest(),
                "methods {:?} vs {:?}", a, b
            );
        }
    }

    /// Inactive backends' knobs are not folded in: an instantiable
    /// extractor keeps its digest whatever the (unused) pFFT/FMM configs
    /// say, so unrelated knobs cannot block legitimate coalescing.
    #[test]
    fn inactive_backend_config_does_not_leak_into_the_digest(
        theta in 0.2..0.8f64,
        spacing in 0.8..1.6f64,
    ) {
        let base = Extractor::new(); // instantiable
        let with_unused = base
            .clone()
            .fmm_config(FmmConfig { theta, ..Default::default() })
            .pfft_config(PfftConfig { spacing_factor: spacing, ..Default::default() });
        prop_assert_eq!(base.config_digest(), with_unused.config_digest());
        // The same knobs on the dense backend are inert too.
        let dense = Extractor::new().method(Method::PwcDense).mesh_divisions(5);
        let dense_unused = dense
            .clone()
            .fmm_config(FmmConfig { theta, ..Default::default() });
        prop_assert_eq!(dense.config_digest(), dense_unused.config_digest());
    }
}

/// End to end: submissions whose backend configs differ run in separate
/// micro-batches whatever the timing — the executor keys micro-batches
/// on the digest, and unequal digests cannot collide.
#[test]
fn differing_backend_configs_never_coalesce_on_an_executor() {
    let exec = Executor::new(ExecConfig { workers: 2, queue_depth: 16, coalesce_limit: 16 });
    let base = Extractor::new().method(Method::PwcPfft).mesh_divisions(3);
    let variants = [
        base.clone(),
        base.clone().pfft_config(PfftConfig { spacing_factor: 1.2, ..Default::default() }),
        base.clone().krylov_config(KrylovConfig { tol: 1e-8, ..Default::default() }),
        base.clone().preconditioner(PrecondKind::Identity),
    ];
    let tickets: Vec<_> = variants
        .iter()
        .map(|ex| exec.submit(ex, None, vec![crossing_job()]).expect("admitted"))
        .collect();
    let mut batches: Vec<u64> = Vec::new();
    for t in tickets {
        let sub = t.wait();
        assert!(sub.first_failure().is_none());
        assert!(!batches.contains(&sub.micro_batch), "distinct configs shared a micro-batch");
        batches.push(sub.micro_batch);
    }
    assert_eq!(exec.stats().coalesced, 0);
    assert_eq!(exec.stats().micro_batches, 4);

    // Control: bit-identical configs on one shared cache are allowed to
    // coalesce (and always produce correct results either way).
    let cache = Arc::new(bemcap_core::TemplateCache::unbounded());
    let twins: Vec<_> = (0..3)
        .map(|_| {
            exec.submit(&base, Some(Arc::clone(&cache)), vec![crossing_job()]).expect("admitted")
        })
        .collect();
    for t in twins {
        assert!(t.wait().first_failure().is_none());
    }
}

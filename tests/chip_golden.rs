//! Golden full-chip fixtures: three small multi-net layouts with
//! committed *sparse* chip capacitance matrices under `tests/golden/`,
//! checked through the windowed extraction path — in-process
//! ([`ChipExtractor`]) and over the wire (the daemon's v4 `chip` op) —
//! for the dense reference, the precorrected-FFT baseline, and the
//! `auto` policy.
//!
//! The fixtures pin the *stitched* physics: the partition, the halo
//! neighborhoods, the owned-row stitching, and the sparsity pattern
//! itself (which nets share a window is part of the contract). The
//! committed values are the dense piecewise-constant reference
//! ([`Method::PwcDense`]) at `REFERENCE_DIVISIONS`. Regenerate after an
//! intentional physics or partitioning change with:
//!
//! ```text
//! cargo test --release --test chip_golden -- --ignored --nocapture
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

use bemcap_core::chip::{ChipCapacitance, ChipExtractor};
use bemcap_core::{Extractor, Method};
use bemcap_geom::structures::{self, BusParams};
use bemcap_geom::{Box3, Conductor, Geometry};
use bemcap_serve::{ChipOptions, ExtractOptions, Server, ServerConfig};

/// Mesh divisions of the committed dense reference (the workspace-wide
/// reference discretization, as in `tests/golden_reference.rs`).
const REFERENCE_DIVISIONS: usize = 8;

/// One golden chip case: a layout plus its partition configuration.
struct ChipCase {
    name: &'static str,
    geo: Geometry,
    nx: usize,
    ny: usize,
    halo: f64,
}

/// Two clusters of posts far apart: with a 2×1 grid and a small halo the
/// clusters never share a window, so the chip matrix is genuinely sparse
/// (cross-cluster entries are structurally absent).
fn far_clusters() -> Geometry {
    let post = |name: &str, x0: f64| {
        Conductor::new(name).with_box(
            Box3::from_bounds((x0, x0 + 1.0e-6), (0.0, 1.0e-6), (0.0, 1.0e-6)).expect("valid post"),
        )
    };
    Geometry::new(vec![post("a", 0.0), post("b", 2.0e-6), post("c", 20.0e-6), post("d", 22.0e-6)])
}

fn cases() -> Vec<ChipCase> {
    vec![
        ChipCase {
            name: "chip_bus4",
            geo: structures::bus_crossing(2, 2, BusParams::default()),
            nx: 2,
            ny: 2,
            halo: 2.0e-6,
        },
        ChipCase {
            name: "chip_bus6",
            geo: structures::bus_crossing(3, 3, BusParams::default()),
            nx: 2,
            ny: 2,
            halo: 2.0e-6,
        },
        ChipCase { name: "chip_clusters", geo: far_clusters(), nx: 2, ny: 1, halo: 2.0e-6 },
    ]
}

/// A committed golden sparse chip matrix.
struct Golden {
    names: Vec<String>,
    nx: usize,
    ny: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Golden {
    fn max_abs(&self) -> f64 {
        self.entries.iter().fold(0.0_f64, |m, &(_, _, v)| m.max(v.abs()))
    }

    fn get(&self, i: usize, j: usize) -> f64 {
        self.entries
            .binary_search_by_key(&(i, j), |&(ei, ej, _)| (ei, ej))
            .map_or(0.0, |at| self.entries[at].2)
    }
}

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(format!("{name}.txt"))
}

fn load_golden(name: &str) -> Golden {
    let path = fixture_path(name);
    let text = fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden chip fixture {}: {e}", path.display()));
    let mut names: Vec<String> = Vec::new();
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    let (mut conductors, mut nnz) = (0usize, 0usize);
    let (mut nx, mut ny) = (0usize, 0usize);
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("conductors") => {
                conductors = parts.next().expect("conductor count").parse().expect("count")
            }
            Some("names") => names = parts.map(str::to_string).collect(),
            Some("windows") => {
                nx = parts.next().expect("nx").parse().expect("nx");
                ny = parts.next().expect("ny").parse().expect("ny");
            }
            Some("nnz") => nnz = parts.next().expect("nnz").parse().expect("nnz"),
            Some("entry") => {
                let i: usize = parts.next().expect("row").parse().expect("row");
                let j: usize = parts.next().expect("col").parse().expect("col");
                let v: f64 = parts.next().expect("value").parse().expect("value");
                entries.push((i, j, v));
            }
            other => panic!("unrecognized golden line {other:?} in {name}"),
        }
    }
    assert_eq!(names.len(), conductors, "{name}: names vs conductor count");
    assert_eq!(entries.len(), nnz, "{name}: entry count vs nnz");
    assert!(entries.windows(2).all(|p| (p[0].0, p[0].1) < (p[1].0, p[1].1)), "{name}: order");
    Golden { names, nx, ny, entries }
}

/// Per-method tolerance bands, mirroring `tests/golden_reference.rs`
/// (auto resolves to the dense reference for every window here — the
/// subproblems are far below its dense panel cap).
fn tolerance(method: Method) -> f64 {
    match method {
        Method::PwcDense | Method::Auto => 1e-9,
        Method::PwcPfft => 5e-2,
        Method::PwcFmm => 1e-2,
        Method::InstantiableBasis => 0.1,
    }
}

fn extractor_for(method: Method) -> Extractor {
    Extractor::new().method(method).mesh_divisions(REFERENCE_DIVISIONS)
}

/// The methods the chip fixtures cover: the dense reference, the
/// precorrected-FFT baseline, and the auto policy.
const CHIP_METHODS: [Method; 3] = [Method::PwcDense, Method::PwcPfft, Method::Auto];

fn chip_for(case: &ChipCase, method: Method) -> ChipExtractor {
    ChipExtractor::new(extractor_for(method)).windows(case.nx, case.ny).halo(case.halo)
}

fn check_against_golden(
    golden: &Golden,
    names: &[String],
    entries: &[(usize, usize, f64)],
    method: Method,
    context: &str,
) {
    assert_eq!(names, &golden.names[..], "{context}: conductor names");
    // The sparsity pattern is part of the contract: which net pairs share
    // a window depends only on the partition, never on the solver.
    let pattern: Vec<(usize, usize)> = entries.iter().map(|&(i, j, _)| (i, j)).collect();
    let golden_pattern: Vec<(usize, usize)> =
        golden.entries.iter().map(|&(i, j, _)| (i, j)).collect();
    assert_eq!(pattern, golden_pattern, "{context}: sparsity pattern");
    let tol = tolerance(method);
    let scale = golden.max_abs();
    for &(i, j, got) in entries {
        let want = golden.get(i, j);
        assert!(
            (got - want).abs() <= tol * scale,
            "{context} entry ({i},{j}): got {got:e}, golden {want:e} (rel {:.3e}, tol {tol:.0e})",
            (got - want).abs() / scale,
        );
    }
}

fn chip_entries(c: &ChipCapacitance) -> Vec<(usize, usize, f64)> {
    c.matrix().iter().collect()
}

fn check_case_in_process(name: &str) {
    let case = cases().into_iter().find(|c| c.name == name).expect("known case");
    let golden = load_golden(name);
    assert_eq!((golden.nx, golden.ny), (case.nx, case.ny), "{name}: fixture grid");
    for method in CHIP_METHODS {
        let full = chip_for(&case, method).extract(&case.geo).expect("chip extraction");
        let c = full.capacitance();
        check_against_golden(
            &golden,
            c.names(),
            &chip_entries(c),
            method,
            &format!("{name}/{method:?}"),
        );
        for i in 0..c.dim() {
            assert!(c.get(i, i) > 0.0, "{name}/{method:?}: diagonal {i}");
        }
    }
}

#[test]
fn golden_chip_bus4() {
    check_case_in_process("chip_bus4");
}

#[test]
fn golden_chip_bus6() {
    check_case_in_process("chip_bus6");
}

#[test]
fn golden_chip_clusters() {
    check_case_in_process("chip_clusters");
}

/// The far-cluster layout must be *structurally* sparse: no committed
/// entry couples the two clusters, and the matrix is half empty.
#[test]
fn golden_clusters_fixture_is_structurally_sparse() {
    let golden = load_golden("chip_clusters");
    let cluster = |i: usize| usize::from(i >= 2); // a,b = 0 — c,d = 1
    assert!(golden.entries.iter().all(|&(i, j, _)| cluster(i) == cluster(j)));
    assert_eq!(golden.entries.len(), 8, "two dense 2x2 blocks");
}

/// Every golden case and method through the daemon's `chip` op: the wire
/// result must be bit-identical to the in-process extraction of the same
/// configuration (shared executor, process caches, and serialization may
/// not change a bit) and therefore also inside the fixture band.
#[test]
fn golden_chips_over_the_wire_match_in_process_bits() {
    let server = Server::bind(ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
        .expect("bind loopback")
        .spawn()
        .expect("spawn daemon");
    let mut client = bemcap_serve::Client::connect(server.addr()).expect("connect");
    client.ping().expect("v4 daemon");
    for case in cases() {
        let golden = load_golden(case.name);
        for method in CHIP_METHODS {
            let context = format!("{}/{method:?}/wire", case.name);
            let local = chip_for(&case, method).extract(&case.geo).expect("in-process chip");
            let reply = client
                .chip(
                    &case.geo,
                    &ChipOptions {
                        extract: ExtractOptions {
                            method,
                            mesh_divisions: Some(REFERENCE_DIVISIONS),
                            ..Default::default()
                        },
                        nx: case.nx,
                        ny: case.ny,
                        halo: Some(case.halo),
                    },
                )
                .expect("chip over the wire");
            let c = local.capacitance();
            assert_eq!(reply.windows, local.report().windows, "{context}: window count");
            assert_eq!(reply.nnz(), c.matrix().nnz(), "{context}: nnz");
            for ((wi, wj, wv), (li, lj, lv)) in reply.entries.iter().zip(c.matrix().iter()) {
                assert_eq!((*wi, *wj), (li, lj), "{context}: entry order");
                assert_eq!(wv.to_bits(), lv.to_bits(), "{context}: C({li},{lj}) {wv} vs {lv}");
            }
            check_against_golden(&golden, &reply.names, &reply.entries, method, &context);
        }
    }
    // A repeated request is answered from the daemon's window cache.
    let case = &cases()[0];
    let reply = client
        .chip(
            &case.geo,
            &ChipOptions {
                extract: ExtractOptions {
                    method: Method::PwcDense,
                    mesh_divisions: Some(REFERENCE_DIVISIONS),
                    ..Default::default()
                },
                nx: case.nx,
                ny: case.ny,
                halo: Some(case.halo),
            },
        )
        .expect("warm chip request");
    assert_eq!(reply.extracted, 0, "second identical request reuses every window");
    assert_eq!(reply.reused, reply.windows);
    client.shutdown().expect("shutdown");
    server.join().expect("clean daemon exit");
}

/// Rewrites the chip fixtures from the dense reference and prints each
/// method's worst deviation. Ignored in normal runs — regenerating is an
/// explicit, reviewed act.
#[test]
#[ignore = "rewrites tests/golden/chip_*.txt in place; run after intentional changes"]
fn regenerate_chip_fixtures() {
    for case in cases() {
        let full = chip_for(&case, Method::PwcDense).extract(&case.geo).expect("reference chip");
        let c = full.capacitance();
        let mut text = String::new();
        let _ = writeln!(text, "# golden chip capacitance — {} (farad, sparse entries)", case.name);
        let _ = writeln!(
            text,
            "# reference: Method::PwcDense, mesh_divisions = {REFERENCE_DIVISIONS}, \
             windows {}x{}, halo {:?}",
            case.nx, case.ny, case.halo
        );
        let _ = writeln!(
            text,
            "# regenerate: cargo test --release --test chip_golden -- --ignored --nocapture"
        );
        let _ = writeln!(text, "conductors {}", c.dim());
        let _ = writeln!(text, "names {}", c.names().join(" "));
        let _ = writeln!(text, "windows {} {}", case.nx, case.ny);
        let _ = writeln!(text, "nnz {}", c.matrix().nnz());
        for (i, j, v) in c.matrix().iter() {
            let _ = writeln!(text, "entry {i} {j} {v:?}");
        }
        let path = fixture_path(case.name);
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        fs::write(&path, text).expect("write fixture");
        eprintln!("wrote {}", path.display());
        let scale = c.matrix().max_abs();
        for method in CHIP_METHODS {
            let got = chip_for(&case, method).extract(&case.geo).expect("chip extraction");
            let mut worst = 0.0_f64;
            for (i, j, v) in got.capacitance().matrix().iter() {
                worst = worst.max((v - c.get(i, j)).abs() / scale);
            }
            eprintln!(
                "  {method:?}: worst rel deviation {worst:.3e} (tol {:.0e})",
                tolerance(method)
            );
        }
    }
}

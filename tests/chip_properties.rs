//! Property-based tests of the full-chip windowing invariants
//! (partition → per-window extraction → stitch → incremental ECO):
//!
//! * with a halo covering the whole chip, the stitched matrix is
//!   **bit-identical** to the monolithic extraction for any window grid;
//! * pool size and window count never change a bit of the stitched
//!   matrix;
//! * a moderate halo keeps the stitched matrix close to the monolithic
//!   answer (the windowing approximation error is bounded);
//! * re-extraction after an empty diff reuses every window and returns
//!   bit-identical results without running a single job;
//! * an ECO touching one net re-extracts exactly the windows whose halo
//!   sees the change, and the incremental result is bit-identical to a
//!   from-scratch extraction of the revision.

use bemcap_core::chip::{ChipCapacitance, ChipExtractor};
use bemcap_core::Extractor;
use bemcap_geom::structures::{self, BusParams};
use bemcap_geom::{Conductor, Geometry, GeometryDiff, Point3};
use proptest::prelude::*;

fn bus(m: usize, n: usize) -> Geometry {
    structures::bus_crossing(m, n, BusParams::default())
}

/// A halo no window's neighborhood can outgrow: the chip's bounding-box
/// diameter. Every window then sees every conductor.
fn chip_diameter(geo: &Geometry) -> f64 {
    let (lo, hi) = geo.bounds();
    (hi.x - lo.x).abs() + (hi.y - lo.y).abs()
}

/// Rebuilds `geo` with the named conductor translated by `d`.
fn nudge(geo: &Geometry, name: &str, d: Point3) -> Geometry {
    let conductors = geo
        .conductors()
        .iter()
        .map(|c| {
            if c.name() != name {
                return c.clone();
            }
            let mut nc = Conductor::new(c.name());
            for b in c.boxes() {
                nc.push_box(b.translated(d));
            }
            nc
        })
        .collect();
    Geometry::new(conductors).with_eps_rel(geo.eps_rel())
}

fn assert_chip_bits_equal(a: &ChipCapacitance, b: &ChipCapacitance, context: &str) {
    assert_eq!(a.dim(), b.dim(), "{context}: dimension");
    assert_eq!(a.names(), b.names(), "{context}: names");
    assert_eq!(a.matrix().nnz(), b.matrix().nnz(), "{context}: sparsity pattern");
    for ((ia, ja, va), (ib, jb, vb)) in a.matrix().iter().zip(b.matrix().iter()) {
        assert_eq!((ia, ja), (ib, jb), "{context}: entry order");
        assert_eq!(va.to_bits(), vb.to_bits(), "{context}: C({ia},{ja}) {va} vs {vb}");
    }
}

proptest! {
    /// Any window grid with a chip-covering halo gives every window the
    /// complete geometry, so the stitched sparse matrix must equal the
    /// monolithic dense one bit for bit — the windowing machinery can
    /// only ever drop *far* coupling, never corrupt near coupling.
    #[test]
    fn chip_with_covering_halo_is_bitwise_monolithic(
        nx in 1usize..4,
        ny in 1usize..3,
        m in 2usize..4,
    ) {
        let geo = bus(m, 2);
        let chip = ChipExtractor::new(Extractor::new())
            .windows(nx, ny)
            .halo(chip_diameter(&geo));
        let full = chip.extract(&geo).expect("chip extraction");
        let mono = Extractor::new().extract(&geo).expect("monolithic extraction");
        let c = mono.capacitance();
        prop_assert_eq!(full.capacitance().dim(), c.dim());
        for i in 0..c.dim() {
            for j in 0..c.dim() {
                prop_assert_eq!(
                    full.capacitance().get(i, j).to_bits(),
                    c.get(i, j).to_bits(),
                    "windows={}x{} entry ({},{})", nx, ny, i, j
                );
            }
        }
    }

    /// The stitched matrix is a pure function of (geometry, partition,
    /// solver config): worker-pool size must never change a bit, whatever
    /// the grid. (The CI matrix re-runs this whole suite under
    /// BEMCAP_POOL=1 and 4, covering the env-driven default pool too.)
    #[test]
    fn pool_size_never_changes_stitched_bits(
        workers in 2usize..5,
        nx in 1usize..4,
        ny in 1usize..3,
    ) {
        let geo = bus(2, 2);
        let halo = 2.0e-6;
        let one = ChipExtractor::new(Extractor::new()).windows(nx, ny).halo(halo).workers(1);
        let many = ChipExtractor::new(Extractor::new()).windows(nx, ny).halo(halo).workers(workers);
        let a = one.extract(&geo).expect("single worker");
        let b = many.extract(&geo).expect("worker pool");
        assert_chip_bits_equal(
            a.capacitance(),
            b.capacitance(),
            &format!("workers 1 vs {workers}, grid {nx}x{ny}"),
        );
        prop_assert_eq!(a.report().extracted, b.report().extracted);
    }
}

/// A moderate halo (one pitch beyond the neighbors) keeps the windowed
/// self-capacitances within a few percent of the monolithic ones: the
/// geodesic-neighborhood claim behind windowed extraction. Couplings
/// between nets sharing a window match to the same band.
#[test]
fn moderate_halo_tracks_monolithic_within_tolerance() {
    let geo = bus(3, 3);
    let chip = ChipExtractor::new(Extractor::new()).windows(2, 2).halo(2.0e-6);
    let full = chip.extract(&geo).expect("chip extraction");
    let mono = Extractor::new().extract(&geo).expect("monolithic extraction");
    let c = mono.capacitance();
    for i in 0..c.dim() {
        let (got, want) = (full.capacitance().get(i, i), c.get(i, i));
        let rel = (got - want).abs() / want.abs();
        assert!(rel < 0.05, "diagonal {i}: {got:e} vs {want:e} (rel {rel:.3})");
    }
    // Stored couplings (nets sharing a window) track the dense answer.
    let scale = full.capacitance().matrix().max_abs();
    for (i, j, v) in full.capacitance().matrix().iter() {
        if i != j {
            assert!(
                (v - c.get(i, j)).abs() / scale < 0.05,
                "coupling ({i},{j}): {v:e} vs {:e}",
                c.get(i, j)
            );
        }
    }
}

/// An empty diff is the ECO identity: nothing re-extracts, every window
/// is a cache hit, and the matrix is bit-identical.
#[test]
fn empty_diff_reuses_every_window_bit_identically() {
    let geo = bus(3, 2);
    let chip = ChipExtractor::new(Extractor::new()).windows(2, 2).halo(2.0e-6);
    let first = chip.extract(&geo).expect("cold run");
    assert!(first.report().extracted > 0, "cold run extracts");

    let diff = GeometryDiff::between(&geo, &geo.clone());
    assert!(diff.is_empty());
    let again = chip.reextract(&geo, &diff).expect("no-op reextraction");
    let r = again.report();
    assert_eq!(r.touched, Some(0), "empty diff touches no window");
    assert_eq!(r.extracted, 0, "no window re-extracts");
    assert_eq!(r.reused, first.report().extracted + first.report().reused);
    assert_eq!(r.window_cache.hits, r.reused, "reuse is exactly the cache hits");
    assert_eq!(r.busy_seconds, 0.0, "no job ran");
    assert_chip_bits_equal(first.capacitance(), again.capacitance(), "no-op ECO");
}

/// An ECO nudging one edge net re-extracts exactly the windows whose
/// halo intersects the change — asserted through the per-run window
/// cache counters — and the incrementally stitched matrix is
/// bit-identical to a from-scratch extraction of the revision.
#[test]
fn eco_reextracts_only_touched_windows_and_matches_from_scratch() {
    let geo = bus(3, 3);
    let halo = 1.0e-6;
    let chip = ChipExtractor::new(Extractor::new()).windows(2, 2).halo(halo);
    chip.extract(&geo).expect("warm the window cache");

    // Nudge the first lower-layer wire (at the chip's y edge) upward:
    // its xy footprint is unchanged, so only the windows whose halo
    // reaches that edge see different content.
    let revised = nudge(&geo, "mx0", Point3::new(0.0, 0.0, 0.02e-6));
    let diff = GeometryDiff::between(&geo, &revised);
    assert_eq!(diff.changed_names(), ["mx0".to_string()]);

    let eco = chip.reextract(&revised, &diff).expect("incremental reextraction");
    let r = eco.report();
    assert!(r.extracted > 0, "the change must re-extract something");
    assert!(r.extracted < r.windows, "an edge ECO must not re-extract the whole chip");
    assert_eq!(r.touched, Some(r.extracted), "touched set = re-extracted set");
    assert_eq!(r.window_cache.misses, r.extracted, "misses are exactly the re-runs");
    assert_eq!(r.window_cache.hits, r.reused, "hits are exactly the reuses");

    // From scratch, cold caches: the incremental path may not change bits.
    let scratch = ChipExtractor::new(Extractor::new())
        .windows(2, 2)
        .halo(halo)
        .extract(&revised)
        .expect("from-scratch extraction of the revision");
    assert_eq!(scratch.report().extracted, scratch.report().windows, "scratch run is cold");
    assert_chip_bits_equal(eco.capacitance(), scratch.capacitance(), "incremental vs scratch");
}

//! # bemcap — parallel boundary element method for capacitance extraction
//!
//! Facade crate re-exporting the full `bemcap` workspace: a reproduction of
//! Hsiao & Daniel, *"A Highly Scalable Parallel Boundary Element Method for
//! Capacitance Extraction"*, DAC 2011.
//!
//! The headline idea: use **instantiable basis functions** (a compact
//! representation built from flat and arch templates) so the BEM system is
//! tiny, the dense direct solve is negligible, and >95 % of the runtime is
//! the *embarrassingly parallel* matrix-filling step — which scales to ~90 %
//! parallel efficiency where multipole- and FFT-accelerated solvers saturate
//! near 8 cores.
//!
//! ## Quickstart
//!
//! ```
//! use bemcap::prelude::*;
//!
//! // The 24×24 crossing-bus example of the paper, shrunk to 4×4 for the test.
//! let geo = structures::bus_crossing(4, 4, structures::BusParams::default());
//! let extraction = Extractor::new()
//!     .method(Method::InstantiableBasis)
//!     .extract(&geo)?;
//! let c = extraction.capacitance();
//! assert_eq!(c.dim(), 8);            // 8 conductors
//! assert!(c.get(0, 0) > 0.0);        // self capacitance positive
//! assert!(c.get(0, 1) < 0.0);        // coupling capacitance negative
//! # Ok::<(), bemcap::core::CoreError>(())
//! ```
//!
//! See the `examples/` directory for the paper's workloads and the
//! `bemcap-bench` crate for the table/figure reproduction harnesses.

pub use bemcap_accel as accel;
pub use bemcap_basis as basis;
pub use bemcap_core as core;
pub use bemcap_fmm as fmm;
pub use bemcap_geom as geom;
pub use bemcap_linalg as linalg;
pub use bemcap_par as par;
pub use bemcap_pfft as pfft;
pub use bemcap_quad as quad;
pub use bemcap_router as router;
pub use bemcap_serve as serve;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use bemcap_core::{
        Backend, BatchExtractor, BatchJob, BatchPoint, BatchReport, BatchResult, CacheStats,
        CapacitanceMatrix, ChipCapacitance, ChipExtraction, ChipExtractor, ChipReport, ExecConfig,
        ExecStats, Executor, Extraction, ExtractionReport, Extractor, FmmConfig, JobReport,
        KrylovConfig, Method, PfftConfig, PrecondKind, SolverStats, TemplateCache, WindowCache,
    };
    pub use bemcap_geom::{
        structures, Box3, Conductor, Geometry, GeometryDiff, Layout, Mesh, Panel, Partition,
        PartitionConfig, Point3, Rect, Window,
    };
    pub use bemcap_linalg::SparseMatrix;
    pub use bemcap_router::{Router, RouterConfig};
    pub use bemcap_serve::{
        ChipOptions, ChipReply, Client, ExtractOptions, ServeError, Server, ServerConfig,
    };
}

//! End-to-end tests of the v5 `metrics` op: counters must stay monotonic
//! while scrapes race live traffic, and — once the daemon quiesces —
//! reconcile exactly with the daemon's own `stats`/`chip` reports.
//!
//! The metrics registry is process-lifetime and shared by every
//! extractor in the process, so these tests (a) assert on *deltas*
//! between a before and an after scrape, never on absolute values, and
//! (b) serialize on one lock so no two of them interleave traffic into
//! the shared counters. This file is its own test binary, so no other
//! test process shares the registry.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};

use bemcap_geom::structures::{self, BusParams, CrossingParams};
use bemcap_serve::{ChipOptions, Client, ExtractOptions, MetricsReply, Server, ServerConfig};

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests sharing the process-global registry. An earlier
/// panicking test poisons the mutex but leaves the registry perfectly
/// usable, so recover the guard instead of cascading the failure.
fn serialize() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn counter(m: &MetricsReply, name: &str) -> u64 {
    m.counter(name).unwrap_or_else(|| panic!("scrape is missing counter {name}"))
}

/// Drives a mixed extract + chip workload against a fresh daemon while
/// two scraper connections hammer the `metrics` op, then checks the
/// quiesced counters against the daemon's own accounting.
fn scrapes_race_traffic_then_reconcile(workers: usize) {
    let _guard = serialize();
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        ..ServerConfig::default()
    })
    .expect("bind daemon")
    .spawn()
    .expect("spawn daemon");
    let addr = server.addr().to_string();

    let mut probe = Client::connect(addr.as_str()).expect("probe connect");
    let before = probe.metrics().expect("scrape before traffic");

    let stop = AtomicBool::new(false);
    let (extracts, chip_extracted, chip_reused) = std::thread::scope(|scope| {
        let addr = addr.as_str();
        let stop = &stop;
        // Two scrapers race the traffic; every counter they observe must
        // be non-decreasing across their own scrape sequence.
        let scrapers: Vec<_> = (0..2)
            .map(|s| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("scraper connect");
                    let mut last: Vec<(String, u64)> = Vec::new();
                    let mut scrapes = 0_u64;
                    while !stop.load(Ordering::Relaxed) {
                        let m = client.metrics().expect("scrape under traffic");
                        for (name, value) in &m.counters {
                            let prev = m_lookup(&last, name);
                            assert!(
                                prev <= *value,
                                "scraper {s}: counter {name} went backwards: {prev} -> {value}"
                            );
                        }
                        last = m.counters;
                        scrapes += 1;
                    }
                    scrapes
                })
            })
            .collect();
        let traffic = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("traffic connect");
            let geo = structures::crossing_wires(CrossingParams::default());
            let chip_geo = structures::bus_crossing(2, 2, BusParams::default());
            let extracts = 6;
            for _ in 0..extracts {
                client.extract(&geo, &ExtractOptions::default()).expect("extract");
            }
            // Same layout twice: the second pass reuses cached windows,
            // so both arms of the extracted/reused split get traffic.
            let cold = client.chip(&chip_geo, &ChipOptions::default()).expect("cold chip");
            let warm = client.chip(&chip_geo, &ChipOptions::default()).expect("warm chip");
            assert!(warm.reused > 0, "second chip pass must reuse windows");
            (extracts, cold.extracted + warm.extracted, cold.reused + warm.reused)
        });
        let totals = traffic.join().expect("traffic thread");
        stop.store(true, Ordering::Relaxed);
        for s in scrapers {
            assert!(s.join().expect("scraper thread") > 0, "scraper never scraped");
        }
        totals
    });

    // Quiesced: registry deltas reconcile with the daemon's reports.
    let after = probe.metrics().expect("scrape after traffic");
    let stats = probe.stats().expect("daemon stats");
    let delta = |name: &str| counter(&after, name) - counter(&before, name);

    // Template cache: hits + misses == lookups, and both match the
    // daemon's lifetime cache stats (this daemon owns the only active
    // template cache in the process while the lock is held).
    assert_eq!(delta("bemcap_template_cache_hits_total"), stats.cache.hits as u64);
    assert_eq!(delta("bemcap_template_cache_misses_total"), stats.cache.misses as u64);
    assert_eq!(
        delta("bemcap_template_cache_hits_total") + delta("bemcap_template_cache_misses_total"),
        stats.cache.lookups() as u64
    );

    // Window cache and the chip windows triple.
    assert_eq!(delta("bemcap_window_cache_hits_total"), stats.window_cache.hits as u64);
    assert_eq!(delta("bemcap_window_cache_misses_total"), stats.window_cache.misses as u64);
    assert_eq!(
        delta("bemcap_chip_windows_extracted_total") + delta("bemcap_chip_windows_reused_total"),
        delta("bemcap_chip_windows_total")
    );
    assert_eq!(delta("bemcap_chip_windows_extracted_total"), chip_extracted as u64);
    assert_eq!(delta("bemcap_chip_windows_reused_total"), chip_reused as u64);

    // Executor: every admitted submission, micro-batch, and job of this
    // run went through this daemon's shared executor.
    assert_eq!(delta("bemcap_exec_submitted_total"), stats.exec.submitted as u64);
    assert_eq!(delta("bemcap_exec_rejected_total"), stats.exec.rejected as u64);
    assert_eq!(delta("bemcap_exec_coalesced_total"), stats.exec.coalesced as u64);
    assert_eq!(delta("bemcap_exec_micro_batches_total"), stats.exec.micro_batches as u64);
    assert_eq!(delta("bemcap_exec_jobs_total"), stats.exec.jobs as u64);

    // Solve-phase instrumentation moved: at least one extraction per
    // wire request, and nonzero solve time for the batch of them.
    assert!(delta("bemcap_extractions_total") >= extracts as u64);
    assert!(delta("bemcap_extract_solve_nanos_total") > 0);

    probe.shutdown().expect("shutdown");
    server.join().expect("daemon exit");
}

fn m_lookup(samples: &[(String, u64)], name: &str) -> u64 {
    samples.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v)
}

#[test]
fn metrics_reconcile_with_a_single_worker() {
    scrapes_race_traffic_then_reconcile(1);
}

#[test]
fn metrics_reconcile_with_a_worker_pool() {
    scrapes_race_traffic_then_reconcile(4);
}

#[test]
fn idle_scrape_exposes_the_full_counter_set_and_gauges() {
    let _guard = serialize();
    let server =
        Server::bind(ServerConfig { addr: "127.0.0.1:0".into(), ..ServerConfig::default() })
            .expect("bind daemon")
            .spawn()
            .expect("spawn daemon");
    let mut client = Client::connect(server.addr()).expect("connect");
    let m = client.metrics().expect("idle scrape");
    // Every core counter is present (at whatever the process has
    // accumulated) before this daemon serves any extraction.
    for name in [
        "bemcap_extractions_total",
        "bemcap_exec_submitted_total",
        "bemcap_template_cache_hits_total",
        "bemcap_window_cache_misses_total",
        "bemcap_chip_windows_total",
    ] {
        assert!(m.counter(name).is_some(), "missing counter {name}\n{}", m.text);
    }
    for name in [
        "bemcap_daemon_uptime_seconds",
        "bemcap_exec_queued_jobs",
        "bemcap_template_cache_resident_bytes",
        "bemcap_window_cache_entries",
    ] {
        assert!(m.gauge(name).is_some(), "missing gauge {name}\n{}", m.text);
    }
    // The text exposition carries one HELP/TYPE pair per sample line.
    let samples = m.text.lines().filter(|l| !l.starts_with('#') && !l.trim().is_empty()).count();
    assert_eq!(samples, m.counters.len() + m.gauges.len());
    client.shutdown().expect("shutdown");
    server.join().expect("daemon exit");
}

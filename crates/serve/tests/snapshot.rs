//! End-to-end tests of the v6 cache snapshot/restore cycle and the
//! client's IO-timeout plumbing.

use std::time::Duration;

use bemcap_geom::structures::{self, CrossingParams};
use bemcap_serve::{Client, ExtractOptions, ServeError, Server, ServerConfig};

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("bemcap-snap-e2e-{tag}-{}", std::process::id()))
}

/// Warm daemon A, snapshot its pair-integral cache, cold-start daemon B
/// from the file: B's first request must hit the restored entries and
/// produce the exact bits A computed.
#[test]
fn a_snapshot_warm_starts_a_second_daemon() {
    let geo = structures::crossing_wires(CrossingParams::default());
    let options = ExtractOptions::default();
    let path = temp_path("warmstart");

    let a = Server::bind(ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
        .expect("bind daemon A")
        .spawn()
        .expect("spawn daemon A");
    let mut client = Client::connect(a.addr()).expect("connect A");
    let cold = client.extract(&geo, &options).expect("cold extract");
    assert!(cold.cache.misses > 0, "cold run must populate the cache");
    let snap = client.snapshot(path.to_str().unwrap()).expect("snapshot");
    assert!(snap.entries > 0, "warm cache snapshots entries");
    assert!(snap.bytes > 0);
    client.shutdown().expect("shutdown A");
    a.join().expect("A exit");

    let b = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_restore: Some(path.clone()),
        ..Default::default()
    })
    .expect("bind daemon B");
    assert_eq!(b.restored_cache_entries(), Some(snap.entries), "B restored A's entries");
    let b = b.spawn().expect("spawn daemon B");
    let mut client = Client::connect(b.addr()).expect("connect B");
    let warm = client.extract(&geo, &options).expect("warm extract");
    assert_eq!(warm.cache.misses, 0, "every template lookup hits the restored cache");
    assert!(warm.cache.hits > 0);
    let cold_bits: Vec<u64> = cold.matrix.iter().flatten().map(|v| v.to_bits()).collect();
    let warm_bits: Vec<u64> = warm.matrix.iter().flatten().map(|v| v.to_bits()).collect();
    assert_eq!(warm_bits, cold_bits, "restored-cache result diverged bitwise");
    client.shutdown().expect("shutdown B");
    b.join().expect("B exit");
    std::fs::remove_file(&path).ok();
}

/// A corrupt snapshot must fail daemon startup loudly, not limp along
/// with half a cache.
#[test]
fn a_truncated_snapshot_fails_startup() {
    let path = temp_path("corrupt");
    std::fs::write(&path, "bemcap-template-cache v1 3\ndeadbeef\n").expect("write corrupt file");
    let err = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_restore: Some(path.clone()),
        ..Default::default()
    })
    .map(|_| ())
    .expect_err("corrupt snapshot must fail bind");
    assert!(err.to_string().contains("cache restore"), "{err}");
    std::fs::remove_file(&path).ok();
}

/// `set_io_timeout` bounds a read against a peer that never answers;
/// `connect_with_timeout` bounds the dial itself.
#[test]
fn io_timeouts_bound_a_mute_peer() {
    // A listener that accepts and then stays silent forever.
    let mute = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = mute.local_addr().unwrap();
    let keep: std::thread::JoinHandle<Vec<std::net::TcpStream>> = std::thread::spawn(move || {
        // Hold the accepted sockets open so the client blocks on read,
        // not on EOF.
        (0..1).filter_map(|_| mute.accept().ok().map(|(s, _)| s)).collect()
    });

    let mut client =
        Client::connect_with_timeout(addr, Duration::from_millis(500)).expect("connect");
    client.set_io_timeout(Some(Duration::from_millis(100))).expect("set timeout");
    let start = std::time::Instant::now();
    match client.ping() {
        Err(ServeError::Io(_)) | Err(ServeError::Protocol(_)) => {}
        other => panic!("mute peer must time the ping out, got {other:?}"),
    }
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "timeout did not bound the read: {:?}",
        start.elapsed()
    );
    drop(keep.join().expect("accept thread"));
}

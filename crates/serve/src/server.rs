//! The `bemcapd` daemon: a std-`TcpListener` extraction service.
//!
//! One OS thread per connection reads newline-delimited JSON requests
//! (see [`crate::protocol`]) and answers in order — but connection
//! threads only **parse, enqueue, and respond**. Extraction itself runs
//! on the daemon's process-lifetime [`Executor`]
//! (`bemcap_core::exec`), shared by every connection:
//!
//! * CPU concurrency is bounded by the executor's worker pool, not the
//!   connection count;
//! * at most [`ExecConfig::queue_depth`] jobs wait at once — beyond
//!   that, requests get a structured `busy` error immediately instead of
//!   piling up (`--queue`, env `BEMCAP_QUEUE`);
//! * concurrent same-configuration requests **coalesce** into shared
//!   micro-batches (one Galerkin engine, warm accel tables, cache
//!   locality), with results demultiplexed back per request
//!   (`--coalesce` caps the window).
//!
//! All connections also share one process-lifetime [`TemplateCache`], so
//! the pair integrals a request computes stay warm for every later
//! request — the serving-side payoff of the paper's instantiable-basis
//! economics: per-structure setup is cheap, and what little there is
//! gets amortized across the daemon's lifetime instead of one process
//! run.
//!
//! Robustness rules (tested in `tests/serve_daemon.rs`):
//!
//! * malformed JSON, bad requests, geometry errors, and extraction
//!   failures all produce a structured `{"ok":false,...}` response on the
//!   same connection — the daemon never panics on input and never drops a
//!   connection silently while the peer is still there;
//! * frames larger than [`ServerConfig::max_frame_bytes`] are drained and
//!   answered with an `oversized` error without buffering the payload;
//! * non-UTF-8 frames get a `utf8` error;
//! * a truncated frame (peer vanished mid-line) just ends the connection.
//!
//! Shutdown: the `shutdown` op flips a flag; the accept loop stops, every
//! connection thread notices within its read-timeout tick, finishes its
//! in-flight request, and [`Server::run`] returns after joining them all.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bemcap_core::batch::default_pool_size;
use bemcap_core::cache::TemplateCache;
use bemcap_core::chip::{ChipExtractor, WindowCache};
use bemcap_core::exec::{default_queue_depth, ExecConfig, Executor, DEFAULT_COALESCE_LIMIT};
use bemcap_core::metrics::{metrics as core_metrics, Metric, MetricKind, Registry};
use bemcap_core::{BatchJob, CoreError, Extractor, JobOutcome, Submission};
use bemcap_geom::io::parse_geometry;
use bemcap_geom::Geometry;
use serde_json::{json, Value};

use crate::framing::{next_frame, Frame};
use crate::protocol::{
    self, build_extractor, cache_stats_value, codes, error_response, exec_stats_value, ok_response,
    ExtractOptions, Request, PROTOCOL_VERSION,
};

/// How often a blocked connection read wakes up to check the shutdown
/// flag (and how often the accept loop polls). Bounds shutdown latency.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see [`Server::local_addr`]).
    pub addr: String,
    /// Memory bound of the shared [`TemplateCache`] in bytes
    /// (`None` = unbounded). Default 64 MiB.
    pub cache_max_bytes: Option<usize>,
    /// Worker pool size of the shared executor all requests run on.
    /// Default: `BEMCAP_POOL` or 1.
    pub workers: usize,
    /// Largest accepted request frame in bytes. Default 8 MiB.
    pub max_frame_bytes: usize,
    /// Admission queue depth of the shared executor: the most jobs that
    /// may wait at once before requests are refused with a `busy` error.
    /// Default: `BEMCAP_QUEUE` or 256.
    pub queue_depth: usize,
    /// Most jobs one coalesced micro-batch may hold (1 disables request
    /// coalescing). Default 16.
    pub coalesce_limit: usize,
    /// Memory bound of the shared per-window result cache that makes
    /// `chip` re-extraction incremental (`None` = unbounded).
    /// Default 64 MiB.
    pub window_cache_max_bytes: Option<usize>,
    /// Pair-integral cache snapshot to load at bind time (v6 warm
    /// restart; written by an earlier daemon's `snapshot` op). `None`
    /// (the default) starts cold. Entries beyond the configured cache
    /// bound are skipped, never force-evicted.
    pub cache_restore: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            cache_max_bytes: Some(64 << 20),
            workers: default_pool_size(),
            max_frame_bytes: 8 << 20,
            queue_depth: default_queue_depth(),
            coalesce_limit: DEFAULT_COALESCE_LIMIT,
            window_cache_max_bytes: Some(64 << 20),
            cache_restore: None,
        }
    }
}

struct ServerState {
    cfg: ServerConfig,
    cache: Arc<TemplateCache>,
    window_cache: Arc<WindowCache>,
    executor: Arc<Executor>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    connections: AtomicU64,
    started: Instant,
}

impl ServerState {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound, not-yet-running daemon. [`Server::bind`] → [`Server::run`]
/// (blocking) or [`Server::spawn`] (background thread, for tests and
/// embedded use).
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
    restored: Option<usize>,
}

impl Server {
    /// Binds the listener, builds the process-lifetime cache, and starts
    /// the shared executor every request will run on. Also pre-builds
    /// the §4.2.3 accel tables so no request is ever billed for them.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] for a zero worker count, queue
    /// depth, or coalescing window; any socket error from bind.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        if cfg.workers == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "daemon needs at least one extraction worker",
            ));
        }
        if cfg.queue_depth == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "daemon needs a queue depth of at least one job",
            ));
        }
        if cfg.coalesce_limit == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "coalescing window must be at least 1 (1 = off)",
            ));
        }
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        listener.set_nonblocking(true)?;
        bemcap_accel::fastmath::warm_tables();
        let cache = Arc::new(match cfg.cache_max_bytes {
            Some(bytes) => TemplateCache::with_max_bytes(bytes),
            None => TemplateCache::unbounded(),
        });
        let restored = match &cfg.cache_restore {
            None => None,
            Some(path) => {
                let file = std::fs::File::open(path).map_err(|e| {
                    io::Error::new(e.kind(), format!("cache restore '{}': {e}", path.display()))
                })?;
                let count = cache.restore_from(BufReader::new(file)).map_err(|e| {
                    io::Error::new(e.kind(), format!("cache restore '{}': {e}", path.display()))
                })?;
                Some(count)
            }
        };
        let window_cache = Arc::new(match cfg.window_cache_max_bytes {
            Some(bytes) => WindowCache::with_max_bytes(bytes),
            None => WindowCache::unbounded(),
        });
        let executor = Arc::new(Executor::new(ExecConfig {
            workers: cfg.workers,
            queue_depth: cfg.queue_depth,
            coalesce_limit: cfg.coalesce_limit,
        }));
        let state = Arc::new(ServerState {
            cfg,
            cache,
            window_cache,
            executor,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            started: Instant::now(),
        });
        Ok(Server { listener, state, restored })
    }

    /// Entries admitted from the [`ServerConfig::cache_restore`]
    /// snapshot at bind time (`None` when no restore was configured).
    pub fn restored_cache_entries(&self) -> Option<usize> {
        self.restored
    }

    /// The address actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Any socket error from `local_addr`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The daemon's shared pair-integral cache.
    pub fn cache(&self) -> Arc<TemplateCache> {
        Arc::clone(&self.state.cache)
    }

    /// Serves until a `shutdown` request arrives, then joins every
    /// connection thread and returns.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop socket errors (per-connection errors are handled
    /// per connection).
    pub fn run(self) -> io::Result<()> {
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.state.stopping() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    state.connections.fetch_add(1, Ordering::Relaxed);
                    handlers.push(std::thread::spawn(move || handle_connection(&state, stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_TICK);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            // Reap finished handlers so a long-lived daemon does not grow
            // an unbounded join list.
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        Ok(())
    }

    /// Runs the daemon on a background thread; the returned handle knows
    /// the bound address and joins on [`ServerHandle::join`].
    ///
    /// # Errors
    ///
    /// Any socket error from `local_addr`.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let cache = self.cache();
        let thread = std::thread::spawn(move || self.run());
        Ok(ServerHandle { addr, cache, thread })
    }
}

/// A daemon running on a background thread (see [`Server::spawn`]).
pub struct ServerHandle {
    addr: SocketAddr,
    cache: Arc<TemplateCache>,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl ServerHandle {
    /// The bound address to connect clients to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's shared pair-integral cache.
    pub fn cache(&self) -> Arc<TemplateCache> {
        Arc::clone(&self.cache)
    }

    /// Waits for the daemon to shut down (send the `shutdown` op first).
    ///
    /// # Errors
    ///
    /// The daemon's exit status; panics if the daemon thread panicked.
    pub fn join(self) -> io::Result<()> {
        self.thread.join().expect("daemon thread panicked")
    }
}

fn handle_connection(state: &ServerState, stream: TcpStream) {
    // Per-connection failures just end the connection: the peer is gone
    // or the socket is broken, so there is nobody left to tell.
    let _ = serve_connection(state, stream);
}

fn serve_connection(state: &ServerState, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let stop = || state.stopping();
    loop {
        let frame = match next_frame(&mut reader, state.cfg.max_frame_bytes, &stop)? {
            None => return Ok(()),
            Some(frame) => frame,
        };
        let response = match frame {
            Frame::Oversized => error_response(
                None,
                codes::OVERSIZED,
                &format!("request frame exceeds {} bytes", state.cfg.max_frame_bytes),
            ),
            Frame::Line(bytes) => match std::str::from_utf8(&bytes) {
                Err(e) => error_response(None, codes::UTF8, &format!("request is not UTF-8: {e}")),
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => dispatch(state, line),
            },
        };
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Handles one request line and returns the response line. Never panics
/// on any input; every failure maps to a structured error response.
fn dispatch(state: &ServerState, line: &str) -> String {
    state.requests.fetch_add(1, Ordering::Relaxed);
    let request = match protocol::decode_request(line) {
        Ok(request) => request,
        // Echo the id when the decoder recovered one (it is None only
        // when the frame never parsed far enough to have an id).
        Err(e) => return error_response(e.id, e.code, &e.message),
    };
    match request {
        Request::Ping { id } => ok_response(
            id,
            json!({ "pong": true, "proto": PROTOCOL_VERSION, "version": env!("CARGO_PKG_VERSION") }),
        ),
        Request::Stats { id } => {
            let cache = &state.cache;
            let exec = &state.executor;
            ok_response(
                id,
                json!({
                    "cache": cache_stats_value(&cache.lifetime()),
                    "cache_entries": cache.len(),
                    "cache_resident_bytes": cache.resident_bytes(),
                    "cache_max_bytes": cache.max_bytes(),
                    "window_cache": cache_stats_value(&state.window_cache.lifetime()),
                    "window_cache_entries": state.window_cache.len(),
                    "window_cache_resident_bytes": state.window_cache.resident_bytes(),
                    "window_cache_max_bytes": state.window_cache.max_bytes(),
                    "uptime_seconds": state.started.elapsed().as_secs_f64(),
                    "requests": state.requests.load(Ordering::Relaxed) as f64,
                    "connections": state.connections.load(Ordering::Relaxed) as f64,
                    "workers": state.cfg.workers,
                    "queue": json!({
                        "depth": state.cfg.queue_depth,
                        "coalesce_limit": state.cfg.coalesce_limit,
                        "queued": exec.queued_jobs(),
                        "running": exec.running_jobs(),
                    }),
                    "exec": exec_stats_value(&exec.stats()),
                }),
            )
        }
        Request::Metrics { id } => ok_response(id, metrics_scrape(state)),
        Request::RouteStats { id } => error_response(
            id,
            codes::BAD_REQUEST,
            "route_stats is answered by the bemcaprd front tier; \
             a daemon serves stats and metrics",
        ),
        Request::Snapshot { id, path } => match snapshot_cache(state, &path) {
            Ok(result) => ok_response(id, result),
            Err(e) => error_response(id, e.code, &e.message),
        },
        Request::Shutdown { id } => {
            state.shutdown.store(true, Ordering::SeqCst);
            ok_response(id, json!({ "stopping": true }))
        }
        Request::Extract { id, geometry, options } => match extract(state, &geometry, options) {
            Ok(result) => ok_response(id, result),
            Err(e) => error_response(id, e.code, &e.message),
        },
        Request::Batch { id, geometries, options } => match batch(state, &geometries, options) {
            Ok(result) => ok_response(id, result),
            Err(e) => error_response(id, e.code, &e.message),
        },
        Request::Chip { id, geometry, options, nx, ny, halo } => {
            match chip(state, &geometry, options, nx, ny, halo) {
                Ok(result) => ok_response(id, result),
                Err(e) => error_response(id, e.code, &e.message),
            }
        }
    }
}

#[derive(Debug)]
struct DispatchError {
    code: &'static str,
    message: String,
}

/// Daemon-level gauges of the v5 `metrics` op. Counters are incremented
/// by the hot layers themselves (`bemcap_core::metrics`); gauges describe
/// *instantaneous* state the daemon owns — cache residency, queue
/// occupancy, uptime — so they are written only here, at scrape time,
/// from the live `ServerState`. That keeps every scrape honest (no stale
/// values from instances that no longer exist) and keeps gauge updates
/// entirely off the request hot path.
struct DaemonGauges {
    uptime_seconds: &'static Metric,
    requests: &'static Metric,
    connections: &'static Metric,
    exec_queued_jobs: &'static Metric,
    exec_running_jobs: &'static Metric,
    template_cache_entries: &'static Metric,
    template_cache_resident_bytes: &'static Metric,
    window_cache_entries: &'static Metric,
    window_cache_resident_bytes: &'static Metric,
}

fn daemon_gauges() -> &'static DaemonGauges {
    static GAUGES: OnceLock<DaemonGauges> = OnceLock::new();
    GAUGES.get_or_init(|| {
        let r = Registry::global();
        DaemonGauges {
            uptime_seconds: r
                .gauge("bemcap_daemon_uptime_seconds", "Whole seconds since the daemon started."),
            requests: r.gauge("bemcap_daemon_requests", "Requests handled since start (all ops)."),
            connections: r.gauge("bemcap_daemon_connections", "Connections accepted since start."),
            exec_queued_jobs: r
                .gauge("bemcap_exec_queued_jobs", "Jobs waiting in the admission queue right now."),
            exec_running_jobs: r
                .gauge("bemcap_exec_running_jobs", "Jobs executing on workers right now."),
            template_cache_entries: r.gauge(
                "bemcap_template_cache_entries",
                "Resident pair-integral cache entries right now.",
            ),
            template_cache_resident_bytes: r.gauge(
                "bemcap_template_cache_resident_bytes",
                "Approximate resident pair-integral cache bytes right now.",
            ),
            window_cache_entries: r
                .gauge("bemcap_window_cache_entries", "Resident window-cache results right now."),
            window_cache_resident_bytes: r.gauge(
                "bemcap_window_cache_resident_bytes",
                "Approximate resident window-cache bytes right now.",
            ),
        }
    })
}

/// Builds the v5 `metrics` result: refreshes the daemon gauges from the
/// live state, then snapshots the whole global registry as both the
/// Prometheus text exposition and structured counter/gauge maps.
fn metrics_scrape(state: &ServerState) -> Value {
    // Touch the core handles so a scrape of an idle daemon still exposes
    // every counter (at zero) instead of a set that grows as code paths
    // first run.
    let _ = core_metrics();
    let g = daemon_gauges();
    g.uptime_seconds.set(state.started.elapsed().as_secs());
    g.requests.set(state.requests.load(Ordering::Relaxed));
    g.connections.set(state.connections.load(Ordering::Relaxed));
    g.exec_queued_jobs.set(state.executor.queued_jobs() as u64);
    g.exec_running_jobs.set(state.executor.running_jobs() as u64);
    g.template_cache_entries.set(state.cache.len() as u64);
    g.template_cache_resident_bytes.set(state.cache.resident_bytes() as u64);
    g.window_cache_entries.set(state.window_cache.len() as u64);
    g.window_cache_resident_bytes.set(state.window_cache.resident_bytes() as u64);
    let registry = Registry::global();
    let mut counters: Vec<(String, Value)> = Vec::new();
    let mut gauges: Vec<(String, Value)> = Vec::new();
    for s in registry.snapshot() {
        let pair = (s.name.to_string(), Value::Number(s.value as f64));
        match s.kind {
            MetricKind::Counter => counters.push(pair),
            MetricKind::Gauge => gauges.push(pair),
        }
    }
    json!({
        "text": registry.render_prometheus(),
        "counters": Value::Object(counters),
        "gauges": Value::Object(gauges),
    })
}

/// Writes the daemon's pair-integral cache to `path` (v6 `snapshot` op)
/// and reports what landed on disk. Any filesystem failure maps to a
/// structured `bad-request` (the path came from the request) so the
/// connection survives a bad mount or a full disk.
fn snapshot_cache(state: &ServerState, path: &str) -> Result<Value, DispatchError> {
    let write = || -> io::Result<(usize, u64)> {
        let mut w = BufWriter::new(std::fs::File::create(path)?);
        let entries = state.cache.snapshot_to(&mut w)?;
        w.flush()?;
        Ok((entries, std::fs::metadata(path)?.len()))
    };
    let (entries, bytes) = write().map_err(|e| DispatchError {
        code: codes::BAD_REQUEST,
        message: format!("cannot write cache snapshot to '{path}': {e}"),
    })?;
    Ok(json!({ "path": path, "entries": entries, "bytes": bytes as f64 }))
}

/// Parses one embedded geometry, labeling errors with the job index for
/// multi-geometry frames.
fn parse_job(text: &str, index: Option<usize>) -> Result<Geometry, DispatchError> {
    parse_geometry(text).map_err(|e| DispatchError {
        code: codes::GEOMETRY,
        message: match index {
            Some(i) => format!("geometry {i}: {e}"),
            None => e.to_string(),
        },
    })
}

/// Submits jobs to the daemon's shared executor and waits for the
/// demultiplexed results — the only execution path of the daemon.
fn run_on_executor(
    state: &ServerState,
    extractor: &Extractor,
    jobs: Vec<BatchJob>,
) -> Result<Submission, DispatchError> {
    let ticket = state.executor.submit(extractor, Some(Arc::clone(&state.cache)), jobs).map_err(
        |e| match e {
            CoreError::Busy { .. } => DispatchError { code: codes::BUSY, message: e.to_string() },
            other => DispatchError { code: codes::EXTRACTION, message: other.to_string() },
        },
    )?;
    Ok(ticket.wait())
}

/// Serializes one job's extraction as a result object.
fn extraction_value(
    extraction: &bemcap_core::Extraction,
    cache: &bemcap_core::CacheStats,
) -> Value {
    let c = extraction.capacitance();
    let report = extraction.report();
    let matrix: Vec<Value> = (0..c.dim())
        .map(|i| Value::Array((0..c.dim()).map(|j| Value::Number(c.get(i, j))).collect()))
        .collect();
    json!({
        "names": c.names().to_vec(),
        "matrix": Value::Array(matrix),
        "report": json!({
            "method": report.method.as_str(),
            "n": report.n,
            "m_templates": report.m_templates,
            "workers": report.workers,
            "setup_seconds": report.setup_seconds,
            "solve_seconds": report.solve_seconds,
            "memory_bytes": report.memory_bytes,
            "solver": report
                .krylov
                .as_ref()
                .map_or(Value::Null, protocol::solver_stats_value),
        }),
        "cache": cache_stats_value(cache),
    })
}

/// Serializes a batch submission's outcomes after failure screening.
///
/// `batch()` maps any failed outcome to a frame-level error before this
/// runs, so every outcome should carry a result. If one does not, that is
/// a daemon bug (the screening and the executor disagree about what
/// failed) — report it as a structured `internal` error on this frame
/// instead of panicking the connection thread, so the client gets a
/// diagnosable reply and the daemon keeps serving.
fn batch_results(outcomes: &[JobOutcome]) -> Result<Vec<Value>, DispatchError> {
    outcomes
        .iter()
        .enumerate()
        .map(|(index, o)| match &o.result {
            Ok((extraction, cache)) => Ok(extraction_value(extraction, cache)),
            Err(e) => Err(DispatchError {
                code: codes::INTERNAL,
                message: format!(
                    "batch outcome {index} failed after failure screening ({e}); \
                     this is a daemon bug — please report it"
                ),
            }),
        })
        .collect()
}

/// Per-submission executor record, attached to every extraction result.
fn submission_exec_value(sub: &Submission) -> Value {
    json!({
        "queue_seconds": sub.queue_seconds,
        "coalesced": sub.coalesced,
        "micro_batch_jobs": sub.micro_batch_jobs,
    })
}

fn extract(
    state: &ServerState,
    geometry: &str,
    options: ExtractOptions,
) -> Result<Value, DispatchError> {
    let geo = parse_job(geometry, None)?;
    let extractor = build_extractor(&options);
    let sub = run_on_executor(state, &extractor, vec![BatchJob::new("request", geo)])?;
    let outcome = &sub.outcomes[0];
    let (extraction, cache) = outcome
        .result
        .as_ref()
        .map_err(|e| DispatchError { code: codes::EXTRACTION, message: e.to_string() })?;
    let mut result = extraction_value(extraction, cache);
    if let Value::Object(entries) = &mut result {
        entries.push(("exec".to_string(), submission_exec_value(&sub)));
    }
    Ok(result)
}

fn batch(
    state: &ServerState,
    geometries: &[String],
    options: ExtractOptions,
) -> Result<Value, DispatchError> {
    let jobs: Vec<BatchJob> = geometries
        .iter()
        .enumerate()
        .map(|(i, text)| Ok(BatchJob::new(format!("job{i}"), parse_job(text, Some(i))?)))
        .collect::<Result<_, DispatchError>>()?;
    if jobs.is_empty() {
        return Ok(json!({ "results": Value::Array(Vec::new()) }));
    }
    let extractor = build_extractor(&options);
    let sub = run_on_executor(state, &extractor, jobs)?;
    // Lowest-failing-index semantics, mirroring `CoreError::BatchJob`:
    // the whole frame fails with the first failing geometry's error.
    if let Some((index, e)) = sub.first_failure() {
        return Err(DispatchError {
            code: codes::EXTRACTION,
            message: format!("geometry {index}: {e}"),
        });
    }
    let results = batch_results(&sub.outcomes)?;
    Ok(json!({
        "results": Value::Array(results),
        "exec": submission_exec_value(&sub),
    }))
}

/// Runs a full-chip windowed extraction (v4 `chip` op) on the daemon's
/// shared executor, reusing its process-lifetime window and
/// pair-integral caches — so an unchanged layout re-requested later (an
/// ECO flow over the wire) reuses every untouched window.
fn chip(
    state: &ServerState,
    geometry: &str,
    options: ExtractOptions,
    nx: usize,
    ny: usize,
    halo: Option<f64>,
) -> Result<Value, DispatchError> {
    let geo = parse_job(geometry, None)?;
    let mut chip = ChipExtractor::new(build_extractor(&options))
        .windows(nx, ny)
        .executor(Arc::clone(&state.executor))
        .window_cache(Arc::clone(&state.window_cache))
        .shared_cache(Arc::clone(&state.cache));
    if let Some(h) = halo {
        chip = chip.halo(h);
    }
    let full = chip.extract(&geo).map_err(|e| match e {
        CoreError::Busy { .. } => DispatchError { code: codes::BUSY, message: e.to_string() },
        CoreError::Geometry(_) => DispatchError { code: codes::GEOMETRY, message: e.to_string() },
        other => DispatchError { code: codes::EXTRACTION, message: other.to_string() },
    })?;
    let c = full.capacitance();
    let report = full.report();
    let entries: Vec<Value> = c
        .matrix()
        .iter()
        .map(|(i, j, v)| {
            Value::Array(vec![Value::Number(i as f64), Value::Number(j as f64), Value::Number(v)])
        })
        .collect();
    Ok(json!({
        "names": c.names().to_vec(),
        "dim": c.dim(),
        "entries": Value::Array(entries),
        "report": json!({
            "windows": report.windows,
            "extracted": report.extracted,
            "reused": report.reused,
            "nnz": report.nnz,
            "workers": report.workers,
            "wall_seconds": report.wall_seconds,
            "busy_seconds": report.busy_seconds,
            "queue_seconds": report.queue_seconds,
        }),
        "cache": cache_stats_value(&report.template_cache),
        "window_cache": cache_stats_value(&report.window_cache),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(max_frame: usize) -> ServerState {
        let cfg =
            ServerConfig { max_frame_bytes: max_frame, workers: 1, ..ServerConfig::default() };
        ServerState {
            executor: Arc::new(Executor::new(ExecConfig {
                workers: cfg.workers,
                queue_depth: cfg.queue_depth,
                coalesce_limit: cfg.coalesce_limit,
            })),
            cfg,
            cache: Arc::new(TemplateCache::unbounded()),
            window_cache: Arc::new(WindowCache::unbounded()),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    #[test]
    fn dispatch_ping_stats_and_errors() {
        let state = test_state(1 << 20);
        let v = serde_json::from_str(&dispatch(&state, r#"{"op":"ping","id":5}"#)).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["id"].as_u64(), Some(5));
        assert_eq!(v["result"]["proto"].as_u64(), Some(PROTOCOL_VERSION));

        let v = serde_json::from_str(&dispatch(&state, "certainly not json")).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"]["code"].as_str(), Some(codes::PARSE));

        let v = serde_json::from_str(&dispatch(&state, r#"{"op":"fly"}"#)).unwrap();
        assert_eq!(v["error"]["code"].as_str(), Some(codes::BAD_REQUEST));

        let v = serde_json::from_str(&dispatch(&state, r#"{"op":"stats"}"#)).unwrap();
        assert_eq!(v["result"]["requests"].as_u64(), Some(4));
        assert_eq!(v["result"]["cache_entries"].as_u64(), Some(0));
        // The executor-queue section is always present.
        assert_eq!(v["result"]["queue"]["queued"].as_u64(), Some(0));
        assert!(v["result"]["queue"]["depth"].as_u64().unwrap() >= 1);
        assert_eq!(v["result"]["exec"]["rejected"].as_u64(), Some(0));
    }

    #[test]
    fn dispatch_extract_and_geometry_error() {
        let state = test_state(1 << 20);
        let line = r#"{"op":"extract","id":1,"geometry":"conductor a\nbox 0 0 0 1e-6 1e-6 1e-6\nconductor b\nbox 0 0 2e-6 1e-6 1e-6 3e-6\n"}"#;
        let v = serde_json::from_str(&dispatch(&state, line)).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        let result = &v["result"];
        assert_eq!(result["names"][0].as_str(), Some("a"));
        assert_eq!(result["matrix"].as_array().unwrap().len(), 2);
        assert!(result["matrix"][0][0].as_f64().unwrap() > 0.0);
        assert!(result["matrix"][0][1].as_f64().unwrap() < 0.0);
        assert_eq!(result["report"]["method"].as_str(), Some("instantiable"));
        assert!(!state.cache.is_empty(), "extraction must warm the daemon cache");

        let v = serde_json::from_str(&dispatch(
            &state,
            r#"{"op":"extract","id":2,"geometry":"box 0 0 0 1 1 1\n"}"#,
        ))
        .unwrap();
        assert_eq!(v["error"]["code"].as_str(), Some(codes::GEOMETRY));
        assert_eq!(v["id"].as_u64(), Some(2));

        // A conductor-less description is rejected at the geometry layer.
        let v = serde_json::from_str(&dispatch(
            &state,
            r#"{"op":"extract","geometry":"eps_rel 1.0\n"}"#,
        ))
        .unwrap();
        assert_eq!(v["error"]["code"].as_str(), Some(codes::GEOMETRY));
    }

    #[test]
    fn dispatch_batch_runs_and_reports_failing_index() {
        let state = test_state(1 << 20);
        let a =
            "conductor a\\nbox 0 0 0 1e-6 1e-6 1e-6\\nconductor b\\nbox 0 0 2e-6 1e-6 1e-6 3e-6\\n";
        let line = format!(r#"{{"op":"batch","id":4,"geometries":["{a}","{a}"]}}"#);
        let v = serde_json::from_str(&dispatch(&state, &line)).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        let results = v["result"]["results"].as_array().unwrap();
        assert_eq!(results.len(), 2);
        // Identical geometries in one frame: both matrices bit-identical.
        assert_eq!(
            serde_json::to_string(&results[0]["matrix"]).unwrap(),
            serde_json::to_string(&results[1]["matrix"]).unwrap()
        );
        assert_eq!(v["result"]["exec"]["micro_batch_jobs"].as_u64(), Some(2));

        // A bad geometry fails the frame with its index in the message.
        let line = format!(r#"{{"op":"batch","id":5,"geometries":["{a}","broken"]}}"#);
        let v = serde_json::from_str(&dispatch(&state, &line)).unwrap();
        assert_eq!(v["error"]["code"].as_str(), Some(codes::GEOMETRY));
        assert!(v["error"]["message"].as_str().unwrap().contains("geometry 1"), "{v:?}");

        // An empty frame is answered with an empty results array.
        let v =
            serde_json::from_str(&dispatch(&state, r#"{"op":"batch","geometries":[]}"#)).unwrap();
        assert_eq!(v["result"]["results"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn dispatch_chip_extracts_and_reuses_windows() {
        let state = test_state(1 << 20);
        let geo = "conductor a\\nbox 0 0 0 1e-6 1e-6 1e-6\\nconductor b\\nbox 4e-6 0 0 5e-6 1e-6 1e-6\\nconductor c\\nbox 0 4e-6 0 1e-6 5e-6 1e-6\\n";
        let line =
            format!(r#"{{"op":"chip","id":7,"geometry":"{geo}","windows":[2,2],"halo":2e-6}}"#);
        let v = serde_json::from_str(&dispatch(&state, &line)).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        let result = &v["result"];
        assert_eq!(result["dim"].as_u64(), Some(3));
        assert_eq!(result["names"].as_array().unwrap().len(), 3);
        let entries = result["entries"].as_array().unwrap();
        assert_eq!(entries.len() as u64, result["report"]["nnz"].as_u64().unwrap());
        assert!(entries.iter().all(|e| e.as_array().unwrap().len() == 3));
        // Diagonal entries are positive self-capacitances.
        let diag: Vec<f64> = entries
            .iter()
            .map(|e| e.as_array().unwrap())
            .filter(|e| e[0].as_u64() == e[1].as_u64())
            .map(|e| e[2].as_f64().unwrap())
            .collect();
        assert_eq!(diag.len(), 3);
        assert!(diag.iter().all(|&d| d > 0.0), "{diag:?}");
        let windows = result["report"]["windows"].as_u64().unwrap();
        assert_eq!(result["report"]["extracted"].as_u64(), Some(windows));

        // The same frame again: the daemon's window cache answers it.
        let v = serde_json::from_str(&dispatch(&state, &line)).unwrap();
        assert_eq!(v["result"]["report"]["extracted"].as_u64(), Some(0), "{v:?}");
        assert_eq!(v["result"]["report"]["reused"].as_u64(), Some(windows));

        // Stats now expose the resident window cache.
        let v = serde_json::from_str(&dispatch(&state, r#"{"op":"stats"}"#)).unwrap();
        assert!(v["result"]["window_cache_entries"].as_u64().unwrap() >= 1);
        assert!(v["result"]["window_cache"]["hits"].as_u64().unwrap() >= 1);

        // Bad geometry and bad partition map to the geometry code.
        let v = serde_json::from_str(&dispatch(&state, r#"{"op":"chip","geometry":"broken"}"#))
            .unwrap();
        assert_eq!(v["error"]["code"].as_str(), Some(codes::GEOMETRY));
    }

    #[test]
    fn busy_executor_maps_to_the_busy_code() {
        let state = test_state(1 << 20);
        // A frame larger than the whole admission queue can never run.
        let geo =
            "conductor a\\nbox 0 0 0 1e-6 1e-6 1e-6\\nconductor b\\nbox 0 0 2e-6 1e-6 1e-6 3e-6\\n";
        let many: Vec<String> =
            (0..state.cfg.queue_depth + 1).map(|_| format!("\"{geo}\"")).collect();
        let line = format!(r#"{{"op":"batch","id":9,"geometries":[{}]}}"#, many.join(","));
        let v = serde_json::from_str(&dispatch(&state, &line)).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"]["code"].as_str(), Some(codes::BUSY), "{v:?}");
        assert_eq!(v["id"].as_u64(), Some(9));
    }

    #[test]
    fn dispatch_metrics_scrapes_the_registry() {
        let state = test_state(1 << 20);
        let v = serde_json::from_str(&dispatch(&state, r#"{"op":"metrics","id":3}"#)).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        assert_eq!(v["id"].as_u64(), Some(3));
        let text = v["result"]["text"].as_str().unwrap();
        // Core counters are registered even on an idle daemon, and the
        // exposition is well-formed HELP/TYPE/sample triples.
        assert!(text.contains("# TYPE bemcap_extractions_total counter"), "{text}");
        assert!(text.contains("# TYPE bemcap_daemon_uptime_seconds gauge"), "{text}");
        for chunk in text.split("# HELP ").skip(1) {
            assert!(chunk.contains("# TYPE "), "sample without TYPE line: {chunk}");
        }
        let before = v["result"]["counters"]["bemcap_extractions_total"].as_u64().unwrap();
        assert_eq!(v["result"]["gauges"]["bemcap_template_cache_entries"].as_u64(), Some(0));

        // Traffic moves the counters; residency shows up in the gauges.
        let geo = r#"{"op":"extract","id":4,"geometry":"conductor a\nbox 0 0 0 1e-6 1e-6 1e-6\nconductor b\nbox 0 0 2e-6 1e-6 1e-6 3e-6\n"}"#;
        let v = serde_json::from_str(&dispatch(&state, geo)).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        let v = serde_json::from_str(&dispatch(&state, r#"{"op":"metrics","id":5}"#)).unwrap();
        let after = v["result"]["counters"]["bemcap_extractions_total"].as_u64().unwrap();
        assert!(after > before, "extraction counter did not move: {before} -> {after}");
        assert!(v["result"]["gauges"]["bemcap_template_cache_entries"].as_u64().unwrap() > 0);
    }

    #[test]
    fn stray_batch_failure_is_an_internal_error_not_a_panic() {
        // batch_results sees a failed outcome only if the screening in
        // batch() and the executor disagree — simulate that directly.
        let ok_outcome = || {
            let state = test_state(1 << 20);
            let geo = "conductor a\nbox 0 0 0 1e-6 1e-6 1e-6\n";
            let parsed = parse_job(geo, None).unwrap();
            let extractor = build_extractor(&ExtractOptions::default());
            let sub =
                run_on_executor(&state, &extractor, vec![BatchJob::new("t", parsed)]).unwrap();
            sub.outcomes.into_iter().next().unwrap()
        };
        let good = ok_outcome();
        let bad = JobOutcome { result: Err(CoreError::EmptyGeometry), seconds: 0.0, worker: 0 };

        let ok = batch_results(std::slice::from_ref(&good)).unwrap();
        assert_eq!(ok.len(), 1);
        assert!(ok[0].get("matrix").is_some());

        let err = batch_results(&[good, bad]).unwrap_err();
        assert_eq!(err.code, codes::INTERNAL);
        assert!(err.message.contains("outcome 1"), "{}", err.message);
        assert!(err.message.contains("daemon bug"), "{}", err.message);
    }

    #[test]
    fn dispatch_snapshot_writes_a_restorable_file() {
        let state = test_state(1 << 20);
        let geo = r#"{"op":"extract","id":1,"geometry":"conductor a\nbox 0 0 0 1e-6 1e-6 1e-6\nconductor b\nbox 0 0 2e-6 1e-6 1e-6 3e-6\n"}"#;
        let v = serde_json::from_str(&dispatch(&state, geo)).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        let warm = state.cache.len();
        assert!(warm > 0);

        let path = std::env::temp_dir().join(format!("bemcapd-snap-test-{}", std::process::id()));
        let line = format!(r#"{{"op":"snapshot","id":2,"path":"{}"}}"#, path.display());
        let v = serde_json::from_str(&dispatch(&state, &line)).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true), "{v:?}");
        assert_eq!(v["result"]["entries"].as_u64(), Some(warm as u64));
        assert!(v["result"]["bytes"].as_u64().unwrap() > 0);

        // The file restores into a fresh cache with the same residency.
        let fresh = TemplateCache::unbounded();
        let file = std::fs::File::open(&path).unwrap();
        assert_eq!(fresh.restore_from(io::BufReader::new(file)).unwrap(), warm);
        assert_eq!(fresh.len(), warm);
        let _ = std::fs::remove_file(&path);

        // An unwritable path is a structured error, not a dead thread.
        let v = serde_json::from_str(&dispatch(
            &state,
            r#"{"op":"snapshot","id":3,"path":"/nonexistent-dir/snap"}"#,
        ))
        .unwrap();
        assert_eq!(v["error"]["code"].as_str(), Some(codes::BAD_REQUEST), "{v:?}");

        // Plain daemons refuse the router-only stats op.
        let v = serde_json::from_str(&dispatch(&state, r#"{"op":"route_stats"}"#)).unwrap();
        assert_eq!(v["error"]["code"].as_str(), Some(codes::BAD_REQUEST));
        assert!(v["error"]["message"].as_str().unwrap().contains("bemcaprd"), "{v:?}");
    }

    #[test]
    fn shutdown_flips_the_flag() {
        let state = test_state(1 << 20);
        assert!(!state.stopping());
        let v = serde_json::from_str(&dispatch(&state, r#"{"op":"shutdown"}"#)).unwrap();
        assert_eq!(v["result"]["stopping"].as_bool(), Some(true));
        assert!(state.stopping());
    }
}

//! Newline-delimited frame reading shared by `bemcapd` and the
//! `bemcaprd` front tier.
//!
//! Both services speak the same wire protocol over plain TCP, so they
//! share one framing loop: size-capped line reads that never buffer an
//! oversized payload and that wake on the socket's read timeout to poll
//! a stop flag (bounding shutdown latency without a dedicated signal
//! channel).

use std::io::{self, BufRead, BufReader};
use std::net::TcpStream;

/// One frame from the peer: a complete line, or notice that the line
/// blew the size limit (already drained to its newline).
pub enum Frame {
    /// A complete line within the size cap (terminator stripped).
    Line(Vec<u8>),
    /// The line exceeded the cap; its bytes were discarded, not stored.
    Oversized,
}

/// Reads newline-delimited frames with a size cap, waking on the read
/// timeout to poll `stop`. Returns `Ok(None)` on EOF (including a
/// truncated final frame — the peer is gone, there is nobody to answer)
/// or when `stop` fires.
///
/// # Errors
///
/// Socket errors other than the timeout/interrupt kinds the loop
/// absorbs.
pub fn next_frame(
    reader: &mut BufReader<TcpStream>,
    max: usize,
    stop: &dyn Fn() -> bool,
) -> io::Result<Option<Frame>> {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(available) => available,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop() {
                    return Ok(None);
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            return Ok(None);
        }
        let (consumed, complete) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !oversized {
                    line.extend_from_slice(&available[..pos]);
                }
                (pos + 1, true)
            }
            None => {
                if !oversized {
                    line.extend_from_slice(available);
                }
                (available.len(), false)
            }
        };
        reader.consume(consumed);
        // Strip a CRLF terminator before the size check, so a payload of
        // exactly `max` bytes is accepted whether the peer ends frames
        // with \n or \r\n (a \r mid-frame is payload and still counts).
        if complete && line.last() == Some(&b'\r') {
            line.pop();
        }
        if line.len() > max {
            oversized = true;
            line.clear();
        }
        if complete {
            return Ok(Some(if oversized { Frame::Oversized } else { Frame::Line(line) }));
        }
    }
}

//! Error type of the service layer (client side and server plumbing).

use std::error::Error;
use std::fmt;
use std::io;

/// Errors surfaced by the `bemcap-serve` client library and server.
#[derive(Debug)]
pub enum ServeError {
    /// A socket operation failed.
    Io(io::Error),
    /// The peer sent something that is not a well-formed protocol frame
    /// (bad JSON, missing fields, closed mid-response).
    Protocol(String),
    /// The daemon answered with a structured error response.
    Remote {
        /// Machine-readable error code (see `protocol::codes`).
        code: String,
        /// Human-readable description.
        message: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "service I/O error: {e}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Remote { code, message } => {
                write!(f, "daemon error [{code}]: {message}")
            }
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::Remote { code: "geometry".into(), message: "bad box".into() };
        let s = format!("{e}");
        assert!(s.contains("geometry") && s.contains("bad box"));
        assert!(e.source().is_none());
        let e: ServeError = io::Error::other("nope").into();
        assert!(e.source().is_some());
        assert!(format!("{e}").contains("nope"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ServeError>();
    }
}

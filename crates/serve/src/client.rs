//! The `bemcapd` client library: a blocking, line-oriented connection.
//!
//! One [`Client`] wraps one TCP connection and issues requests in order
//! (the protocol has no pipelining; correlation ids exist so callers can
//! still verify pairing). All numeric payloads decode to the exact `f64`
//! bits the daemon computed — see [`crate::protocol`].

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use bemcap_core::{CacheStats, ExecStats, SolverStats};
use bemcap_geom::io::write_geometry;
use bemcap_geom::Geometry;
use serde_json::Value;

use crate::error::ServeError;
use crate::protocol::{
    self, cache_stats_from_value, encode_request, exec_stats_from_value, solver_stats_from_value,
    ExtractOptions, Request,
};

/// A blocking connection to a running `bemcapd`.
///
/// ```no_run
/// use bemcap_serve::{Client, ExtractOptions};
/// use bemcap_geom::structures::{self, CrossingParams};
///
/// let mut client = Client::connect("127.0.0.1:4545")?;
/// let geo = structures::crossing_wires(CrossingParams::default());
/// let reply = client.extract(&geo, &ExtractOptions::default())?;
/// assert!(reply.get(0, 1) < 0.0); // coupling capacitance
/// # Ok::<(), bemcap_serve::ServeError>(())
/// ```
pub struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
    next_id: u64,
}

/// A decoded `extract` response.
#[derive(Debug, Clone)]
pub struct ExtractReply {
    /// Conductor net names, in matrix index order.
    pub names: Vec<String>,
    /// Row-major capacitance matrix (farad), bit-identical to the
    /// daemon-side computation.
    pub matrix: Vec<Vec<f64>>,
    /// Solver backend that ran ("instantiable", "pwc-dense", ...) — for
    /// `auto` requests, the backend the daemon resolved to.
    pub method: String,
    /// System dimension N.
    pub n: usize,
    /// Workers the daemon's setup step used (1 when a pre-v3 daemon
    /// omitted the field — tolerated only for requests that carry no
    /// typed backend options; see [`Client::extract`]).
    pub workers: usize,
    /// Daemon-side setup seconds.
    pub setup_seconds: f64,
    /// Daemon-side solve seconds.
    pub solve_seconds: f64,
    /// Iterative-solver counters (iterations, restarts, residual) for
    /// Krylov backends; `None` for direct solves and pre-v3 daemons.
    pub solver: Option<SolverStats>,
    /// Pair-integral cache counters of this request.
    pub cache: CacheStats,
    /// Seconds the request waited in the daemon's admission queue before
    /// its micro-batch started (0 when the daemon predates the field).
    pub queue_seconds: f64,
    /// Whether the daemon coalesced this request into a micro-batch
    /// opened by an earlier concurrent request.
    pub coalesced: bool,
}

impl ExtractReply {
    /// Entry C_ij.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.matrix[i][j]
    }

    /// Number of conductors.
    pub fn dim(&self) -> usize {
        self.matrix.len()
    }
}

/// Options of a full-chip windowed `chip` request (protocol v4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipOptions {
    /// Solver configuration, shared by every window.
    pub extract: ExtractOptions,
    /// Window grid columns.
    pub nx: usize,
    /// Window grid rows.
    pub ny: usize,
    /// Halo margin around each core tile in layout units
    /// (`None` = the daemon's default).
    pub halo: Option<f64>,
}

impl Default for ChipOptions {
    fn default() -> ChipOptions {
        ChipOptions { extract: ExtractOptions::default(), nx: 2, ny: 2, halo: None }
    }
}

/// A decoded `chip` response: the stitched sparse chip capacitance
/// matrix plus the daemon-side windowing report.
#[derive(Debug, Clone)]
pub struct ChipReply {
    /// Conductor net names, in matrix index order.
    pub names: Vec<String>,
    /// Matrix dimension (number of conductors).
    pub dim: usize,
    /// Stored sparse entries `(i, j, c_ij)` in row-major order,
    /// bit-identical to the daemon-side computation.
    pub entries: Vec<(usize, usize, f64)>,
    /// Windows in the daemon's partition.
    pub windows: usize,
    /// Windows extracted for this request (window-cache misses).
    pub extracted: usize,
    /// Windows reused from the daemon's window cache.
    pub reused: usize,
    /// Worker threads the windows ran on.
    pub workers: usize,
    /// Daemon-side wall-clock seconds of the chip extraction.
    pub wall_seconds: f64,
    /// Pair-integral cache counters aggregated over extracted windows.
    pub cache: CacheStats,
    /// Window-cache counters of this request (hits = reused windows).
    pub window_cache: CacheStats,
}

impl ChipReply {
    /// Entry C_ij in farad; `0.0` for net pairs sharing no window.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.entries
            .binary_search_by_key(&(i, j), |&(ei, ej, _)| (ei, ej))
            .map_or(0.0, |at| self.entries[at].2)
    }

    /// Stored entries (the sparse matrix's nonzero pattern size).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }
}

/// A decoded `stats` response.
#[derive(Debug, Clone)]
pub struct DaemonStats {
    /// Lifetime cache counters across all connections.
    pub cache: CacheStats,
    /// Resident cache entries right now.
    pub cache_entries: usize,
    /// Approximate resident cache bytes right now.
    pub cache_resident_bytes: usize,
    /// Configured cache bound (`None` = unbounded).
    pub cache_max_bytes: Option<usize>,
    /// Seconds since the daemon started.
    pub uptime_seconds: f64,
    /// Requests handled since start (all ops, all connections).
    pub requests: u64,
    /// Connections accepted since start.
    pub connections: u64,
    /// Worker pool size of the daemon's shared executor.
    pub workers: usize,
    /// Admission queue depth (most jobs that may wait at once).
    pub queue_depth: usize,
    /// Coalescing window (most jobs one micro-batch may hold).
    pub coalesce_limit: usize,
    /// Jobs waiting in the queue right now.
    pub queued: usize,
    /// Jobs executing on workers right now.
    pub running: usize,
    /// Lifetime executor counters (admission, rejections, coalescing).
    pub exec: ExecStats,
    /// Lifetime window-cache counters of the `chip` op (v4; all zero
    /// when the daemon predates the field).
    pub window_cache: CacheStats,
    /// Resident window-cache entries right now (v4; 0 for older
    /// daemons).
    pub window_cache_entries: usize,
}

/// A decoded `snapshot` response (protocol v6): what the daemon wrote
/// to its filesystem.
#[derive(Debug, Clone)]
pub struct SnapshotReply {
    /// Daemon-side path the snapshot landed at (echoed from the request).
    pub path: String,
    /// Pair-integral cache entries serialized.
    pub entries: usize,
    /// Snapshot file size in bytes.
    pub bytes: u64,
}

/// One replica's row in a `route_stats` response (protocol v6).
#[derive(Debug, Clone)]
pub struct ReplicaStats {
    /// The replica's daemon address as the router dials it.
    pub addr: String,
    /// Whether the router currently routes to this replica.
    pub healthy: bool,
    /// Consecutive health-check failures (resets to 0 on any success).
    pub consecutive_failures: u64,
    /// Requests the router sent to this replica since start.
    pub requests: u64,
    /// Connection-level failures talking to this replica since start
    /// (structured backend errors are *not* counted — they are answers).
    pub errors: u64,
}

/// A decoded `route_stats` response (protocol v6) from the `bemcaprd`
/// front tier. A plain daemon answers the op with `bad-request`, so a
/// successful decode also tells the caller it is talking to a router.
#[derive(Debug, Clone)]
pub struct RouteStatsReply {
    /// Per-replica health and traffic counters, in configuration order.
    pub replicas: Vec<ReplicaStats>,
    /// Replicas currently routable.
    pub healthy: usize,
    /// Payload requests proxied to replicas since start.
    pub proxied: u64,
    /// Requests retried on another replica after a connection-level
    /// failure.
    pub failovers: u64,
    /// Requests answered with the `upstream` error (every replica
    /// unreachable).
    pub upstream_errors: u64,
    /// Health-check ejections since start.
    pub ejections: u64,
    /// Re-admissions of previously ejected replicas since start.
    pub readmissions: u64,
}

/// A decoded `metrics` response (protocol v5): one scrape of the
/// daemon's process-lifetime observability registry.
#[derive(Debug, Clone)]
pub struct MetricsReply {
    /// Prometheus-style text exposition — ready to serve to a scraper
    /// or dump to a log verbatim.
    pub text: String,
    /// Monotonic counters as `(name, value)`, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges as `(name, value)`, sorted by name.
    pub gauges: Vec<(String, u64)>,
}

impl MetricsReply {
    /// Value of the counter `name`, or `None` if the daemon did not
    /// expose it.
    pub fn counter(&self, name: &str) -> Option<u64> {
        lookup(&self.counters, name)
    }

    /// Value of the gauge `name`, or `None` if the daemon did not
    /// expose it.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        lookup(&self.gauges, name)
    }
}

fn lookup(samples: &[(String, u64)], name: &str) -> Option<u64> {
    samples.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

fn proto_err(msg: impl Into<String>) -> ServeError {
    ServeError::Protocol(msg.into())
}

/// Decodes one extraction result object (the `extract` result, or one
/// entry of a `batch` result's `results` array).
fn decode_extract_result(result: &Value) -> Result<ExtractReply, ServeError> {
    let names: Vec<String> = result
        .get("names")
        .and_then(Value::as_array)
        .ok_or_else(|| proto_err("extract response missing 'names'"))?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Option<_>>()
        .ok_or_else(|| proto_err("non-string conductor name"))?;
    let rows = result
        .get("matrix")
        .and_then(Value::as_array)
        .ok_or_else(|| proto_err("extract response missing 'matrix'"))?;
    let mut matrix: Vec<Vec<f64>> = Vec::with_capacity(rows.len());
    for row in rows {
        let cells = row.as_array().ok_or_else(|| proto_err("matrix row is not an array"))?;
        matrix.push(
            cells
                .iter()
                .map(Value::as_f64)
                .collect::<Option<Vec<f64>>>()
                .ok_or_else(|| proto_err("non-numeric matrix entry"))?,
        );
    }
    if matrix.len() != names.len() || matrix.iter().any(|r| r.len() != names.len()) {
        return Err(proto_err("matrix shape does not match conductor names"));
    }
    let report = result.get("report").ok_or_else(|| proto_err("missing 'report'"))?;
    let cache =
        cache_stats_from_value(result.get("cache").ok_or_else(|| proto_err("missing 'cache'"))?)
            .map_err(|e| proto_err(e.message))?;
    Ok(ExtractReply {
        names,
        matrix,
        method: report
            .get("method")
            .and_then(Value::as_str)
            .ok_or_else(|| proto_err("report missing 'method'"))?
            .to_string(),
        n: report.get("n").and_then(Value::as_u64).ok_or_else(|| proto_err("report missing 'n'"))?
            as usize,
        // Additive v3 fields: lenient decode so older daemons still work.
        workers: report.get("workers").and_then(Value::as_u64).unwrap_or(1) as usize,
        setup_seconds: report.get("setup_seconds").and_then(Value::as_f64).unwrap_or(0.0),
        solve_seconds: report.get("solve_seconds").and_then(Value::as_f64).unwrap_or(0.0),
        solver: match report.get("solver") {
            None | Some(Value::Null) => None,
            Some(v) => Some(solver_stats_from_value(v).map_err(|e| proto_err(e.message))?),
        },
        cache,
        queue_seconds: 0.0,
        coalesced: false,
    })
}

/// Decodes a `chip` result object into a [`ChipReply`].
fn decode_chip_result(result: &Value) -> Result<ChipReply, ServeError> {
    let names: Vec<String> = result
        .get("names")
        .and_then(Value::as_array)
        .ok_or_else(|| proto_err("chip response missing 'names'"))?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Option<_>>()
        .ok_or_else(|| proto_err("non-string conductor name"))?;
    let dim = result
        .get("dim")
        .and_then(Value::as_u64)
        .ok_or_else(|| proto_err("chip response missing 'dim'"))? as usize;
    if dim != names.len() {
        return Err(proto_err("chip dimension does not match conductor names"));
    }
    let mut entries: Vec<(usize, usize, f64)> = Vec::new();
    for e in result
        .get("entries")
        .and_then(Value::as_array)
        .ok_or_else(|| proto_err("chip response missing 'entries'"))?
    {
        let triplet = e
            .as_array()
            .filter(|t| t.len() == 3)
            .ok_or_else(|| proto_err("chip entries must be [i, j, value] triplets"))?;
        let i = triplet[0].as_u64().ok_or_else(|| proto_err("non-integer chip row index"))?;
        let j = triplet[1].as_u64().ok_or_else(|| proto_err("non-integer chip column index"))?;
        let v = triplet[2].as_f64().ok_or_else(|| proto_err("non-numeric chip entry"))?;
        if i as usize >= dim || j as usize >= dim {
            return Err(proto_err("chip entry index out of range"));
        }
        entries.push((i as usize, j as usize, v));
    }
    // The daemon emits CSR row-major order already; sort defensively so
    // `ChipReply::get`'s binary search never depends on wire order.
    entries.sort_by_key(|&(i, j, _)| (i, j));
    let report = result.get("report").ok_or_else(|| proto_err("chip missing 'report'"))?;
    let ruint = |name: &str| {
        report
            .get(name)
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| proto_err(format!("chip report missing '{name}'")))
    };
    Ok(ChipReply {
        names,
        dim,
        entries,
        windows: ruint("windows")?,
        extracted: ruint("extracted")?,
        reused: ruint("reused")?,
        workers: ruint("workers")?,
        wall_seconds: report.get("wall_seconds").and_then(Value::as_f64).unwrap_or(0.0),
        cache: cache_stats_from_value(
            result.get("cache").ok_or_else(|| proto_err("chip missing 'cache'"))?,
        )
        .map_err(|e| proto_err(e.message))?,
        window_cache: cache_stats_from_value(
            result.get("window_cache").ok_or_else(|| proto_err("chip missing 'window_cache'"))?,
        )
        .map_err(|e| proto_err(e.message))?,
    })
}

/// Reads one unsigned field of the `stats` response's `queue` section.
fn queue_uint(result: &Value, name: &str) -> Result<usize, ServeError> {
    result
        .get("queue")
        .and_then(|q| q.get(name))
        .and_then(Value::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| proto_err(format!("stats queue section missing '{name}'")))
}

/// Fills the per-submission executor record into a reply (lenient: a
/// missing record leaves the defaults, for older daemons).
fn apply_exec_info(reply: &mut ExtractReply, exec: Option<&Value>) {
    if let Some(exec) = exec {
        reply.queue_seconds = exec.get("queue_seconds").and_then(Value::as_f64).unwrap_or(0.0);
        reply.coalesced = exec.get("coalesced").and_then(Value::as_bool).unwrap_or(false);
    }
}

/// Moves the value of `key` out of an owned JSON object.
fn take_field(v: Value, key: &str) -> Option<Value> {
    match v {
        Value::Object(entries) => entries.into_iter().find(|(k, _)| k == key).map(|(_, val)| val),
        _ => None,
    }
}

/// Whether the request relies on protocol-v3 typed backend fields that a
/// pre-v3 daemon would silently ignore. (`method: auto` needs no guard —
/// older daemons reject the unknown method name outright.)
fn uses_typed_backend_options(options: &ExtractOptions) -> bool {
    options.fmm.is_some()
        || options.pfft.is_some()
        || options.krylov.is_some()
        || options.precond.is_some()
        || options.auto_budget.is_some()
}

/// Guards typed-option requests against pre-v3 daemons: such a daemon
/// ignores the unknown config fields and solves with its defaults, which
/// would hand back a matrix computed under a *different* configuration
/// with no error. v3 daemons always emit `report.workers`, so its absence
/// identifies the downgrade deterministically.
///
/// # Errors
///
/// [`ServeError::Protocol`] when the report lacks the v3 marker.
fn require_v3_report(result: &Value, options: &ExtractOptions) -> Result<(), ServeError> {
    if !uses_typed_backend_options(options) {
        return Ok(());
    }
    let has_marker = result.get("report").and_then(|r| r.get("workers")).is_some();
    if has_marker {
        Ok(())
    } else {
        Err(proto_err(
            "daemon predates protocol v3 and would silently ignore the typed backend \
             options (fmm/pfft/krylov/precond/auto_budget) — upgrade the daemon or \
             drop the typed fields",
        ))
    }
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ServeError> {
        Client::from_stream(TcpStream::connect(addr)?)
    }

    /// Connects with a bound on how long the TCP connect may block
    /// (tried against each resolved address in turn). The front tier's
    /// health checker depends on this: a hung replica must cost one
    /// timeout, not a stuck thread.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when no resolved address accepts within
    /// `timeout` (the last attempt's error) or `addr` resolves to
    /// nothing.
    pub fn connect_with_timeout(
        addr: impl ToSocketAddrs,
        timeout: Duration,
    ) -> Result<Client, ServeError> {
        let mut last: Option<std::io::Error> = None;
        for resolved in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&resolved, timeout) {
                Ok(stream) => return Client::from_stream(stream),
                Err(e) => last = Some(e),
            }
        }
        Err(last
            .unwrap_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "address resolved to no socket addresses",
                )
            })
            .into())
    }

    fn from_stream(stream: TcpStream) -> Result<Client, ServeError> {
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client { reader, stream, next_id: 0 })
    }

    /// Bounds every subsequent read and write on this connection
    /// (`None` removes the bound — the default). When a timeout fires
    /// mid-response the stream may hold a partial line, so treat the
    /// connection as dead and reconnect instead of issuing another
    /// request on it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`]; the OS rejects a zero duration.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServeError> {
        self.stream.set_read_timeout(timeout)?;
        self.stream.set_write_timeout(timeout)?;
        Ok(())
    }

    /// Extracts the capacitance matrix of `geo` on the daemon.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] for daemon-side failures, [`ServeError::Io`]
    /// / [`ServeError::Protocol`] for transport problems —
    /// including when typed backend options (v3) are set but the daemon
    /// predates protocol v3, which would otherwise silently solve under
    /// its own defaults.
    pub fn extract(
        &mut self,
        geo: &Geometry,
        options: &ExtractOptions,
    ) -> Result<ExtractReply, ServeError> {
        self.extract_text(&write_geometry(geo), options)
    }

    /// Like [`Client::extract`], for geometry already in the
    /// `bemcap_geom::io` text format.
    ///
    /// # Errors
    ///
    /// As [`Client::extract`].
    pub fn extract_text(
        &mut self,
        geometry: &str,
        options: &ExtractOptions,
    ) -> Result<ExtractReply, ServeError> {
        let id = self.fresh_id();
        let result = self.roundtrip(&Request::Extract {
            id: Some(id),
            geometry: geometry.to_string(),
            options: *options,
        })?;
        require_v3_report(&result, options)?;
        let mut reply = decode_extract_result(&result)?;
        apply_exec_info(&mut reply, result.get("exec"));
        Ok(reply)
    }

    /// Extracts many geometries in one `batch` frame: all of them run as
    /// one daemon-side executor submission (one micro-batch), so engine
    /// setup and the queue slot are amortized across the family. Results
    /// come back in input order, each bit-identical to a single-shot
    /// [`Client::extract`] of the same geometry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with code `busy` when the daemon's queue
    /// cannot admit the frame, code `geometry`/`extraction` (message
    /// naming the lowest failing index) when a geometry fails; transport
    /// errors as [`Client::extract`].
    pub fn extract_batch(
        &mut self,
        geometries: &[Geometry],
        options: &ExtractOptions,
    ) -> Result<Vec<ExtractReply>, ServeError> {
        let id = self.fresh_id();
        let result = self.roundtrip(&Request::Batch {
            id: Some(id),
            geometries: geometries.iter().map(write_geometry).collect(),
            options: *options,
        })?;
        let entries = result
            .get("results")
            .and_then(Value::as_array)
            .ok_or_else(|| proto_err("batch response missing 'results'"))?;
        let mut replies = Vec::with_capacity(entries.len());
        for entry in entries {
            require_v3_report(entry, options)?;
            let mut reply = decode_extract_result(entry)?;
            // The executor record is per submission: shared by the frame.
            apply_exec_info(&mut reply, result.get("exec"));
            replies.push(reply);
        }
        if replies.len() != geometries.len() {
            return Err(proto_err("batch response count does not match request"));
        }
        Ok(replies)
    }

    /// Full-chip windowed extraction (protocol v4): the daemon
    /// partitions the layout into `nx × ny` overlapping windows,
    /// extracts each one (reusing its process-lifetime window cache,
    /// which makes a re-sent revision incremental), and answers with
    /// the stitched *sparse* chip matrix. A pre-v4 daemon rejects the
    /// unknown `chip` op with a `bad-request` error — it never degrades
    /// silently.
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with code `busy` under daemon overload,
    /// `geometry` for unusable layouts or partitions, `extraction` when
    /// a window fails, `bad-request` from pre-v4 daemons; transport
    /// errors as [`Client::extract`].
    pub fn chip(&mut self, geo: &Geometry, options: &ChipOptions) -> Result<ChipReply, ServeError> {
        self.chip_text(&write_geometry(geo), options)
    }

    /// Like [`Client::chip`], for geometry already in the
    /// `bemcap_geom::io` text format.
    ///
    /// # Errors
    ///
    /// As [`Client::chip`].
    pub fn chip_text(
        &mut self,
        geometry: &str,
        options: &ChipOptions,
    ) -> Result<ChipReply, ServeError> {
        let id = self.fresh_id();
        let result = self.roundtrip(&Request::Chip {
            id: Some(id),
            geometry: geometry.to_string(),
            options: options.extract,
            nx: options.nx,
            ny: options.ny,
            halo: options.halo,
        })?;
        decode_chip_result(&result)
    }

    /// Liveness probe; checks the daemon speaks at least this client's
    /// protocol version (the protocol evolves additively, so a newer
    /// daemon still serves every op this client can send).
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] when the daemon's version is older than
    /// the client's; transport errors as usual.
    pub fn ping(&mut self) -> Result<(), ServeError> {
        let id = self.fresh_id();
        let result = self.roundtrip(&Request::Ping { id: Some(id) })?;
        match result.get("proto").and_then(Value::as_u64) {
            Some(v) if v >= protocol::PROTOCOL_VERSION => Ok(()),
            Some(v) => Err(proto_err(format!(
                "protocol version mismatch: daemon speaks {v}, client needs {}",
                protocol::PROTOCOL_VERSION
            ))),
            None => Err(proto_err("ping response missing 'proto'")),
        }
    }

    /// Daemon-level statistics.
    ///
    /// # Errors
    ///
    /// As [`Client::extract`].
    pub fn stats(&mut self) -> Result<DaemonStats, ServeError> {
        let id = self.fresh_id();
        let result = self.roundtrip(&Request::Stats { id: Some(id) })?;
        let uint = |name: &str| {
            result
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| proto_err(format!("stats response missing '{name}'")))
        };
        Ok(DaemonStats {
            cache: cache_stats_from_value(
                result.get("cache").ok_or_else(|| proto_err("stats missing 'cache'"))?,
            )
            .map_err(|e| proto_err(e.message))?,
            cache_entries: uint("cache_entries")? as usize,
            cache_resident_bytes: uint("cache_resident_bytes")? as usize,
            cache_max_bytes: match result.get("cache_max_bytes") {
                None | Some(Value::Null) => None,
                Some(v) => {
                    Some(v.as_u64().ok_or_else(|| proto_err("bad 'cache_max_bytes'"))? as usize)
                }
            },
            uptime_seconds: result.get("uptime_seconds").and_then(Value::as_f64).unwrap_or(0.0),
            requests: uint("requests")?,
            connections: uint("connections")?,
            workers: uint("workers")? as usize,
            queue_depth: queue_uint(&result, "depth")?,
            coalesce_limit: queue_uint(&result, "coalesce_limit")?,
            queued: queue_uint(&result, "queued")?,
            running: queue_uint(&result, "running")?,
            exec: exec_stats_from_value(
                result.get("exec").ok_or_else(|| proto_err("stats missing 'exec'"))?,
            )
            .map_err(|e| proto_err(e.message))?,
            // Additive v4 fields: lenient decode so older daemons work.
            window_cache: result
                .get("window_cache")
                .and_then(|v| cache_stats_from_value(v).ok())
                .unwrap_or_default(),
            window_cache_entries: result
                .get("window_cache_entries")
                .and_then(Value::as_u64)
                .unwrap_or(0) as usize,
        })
    }

    /// Scrapes the daemon's observability registry (protocol v5): the
    /// Prometheus text exposition plus the same samples as structured
    /// counter/gauge lists. Pre-v5 daemons answer with a `bad-request`
    /// error ([`ServeError::Remote`]).
    ///
    /// # Errors
    ///
    /// As [`Client::extract`].
    pub fn metrics(&mut self) -> Result<MetricsReply, ServeError> {
        let id = self.fresh_id();
        let result = self.roundtrip(&Request::Metrics { id: Some(id) })?;
        let samples = |field: &str| -> Result<Vec<(String, u64)>, ServeError> {
            match result.get(field) {
                Some(Value::Object(entries)) => entries
                    .iter()
                    .map(|(name, v)| {
                        v.as_u64().map(|n| (name.clone(), n)).ok_or_else(|| {
                            proto_err(format!("non-integer metric '{name}' in '{field}'"))
                        })
                    })
                    .collect(),
                _ => Err(proto_err(format!("metrics response missing '{field}' object"))),
            }
        };
        Ok(MetricsReply {
            text: result
                .get("text")
                .and_then(Value::as_str)
                .ok_or_else(|| proto_err("metrics response missing 'text'"))?
                .to_string(),
            counters: samples("counters")?,
            gauges: samples("gauges")?,
        })
    }

    /// Asks the daemon to write its pair-integral cache to `path` on
    /// *the daemon's* filesystem (protocol v6) — the warm-restart seam
    /// paired with `bemcapd --cache-restore`. Pre-v6 daemons answer
    /// `bad-request`, as does the `bemcaprd` router (snapshots are
    /// per-daemon state; address each replica directly).
    ///
    /// # Errors
    ///
    /// [`ServeError::Remote`] with code `bad-request` when the daemon
    /// cannot write the file; transport errors as [`Client::extract`].
    pub fn snapshot(&mut self, path: &str) -> Result<SnapshotReply, ServeError> {
        let id = self.fresh_id();
        let result = self.roundtrip(&Request::Snapshot { id: Some(id), path: path.to_string() })?;
        Ok(SnapshotReply {
            path: result
                .get("path")
                .and_then(Value::as_str)
                .ok_or_else(|| proto_err("snapshot response missing 'path'"))?
                .to_string(),
            entries: result
                .get("entries")
                .and_then(Value::as_u64)
                .ok_or_else(|| proto_err("snapshot response missing 'entries'"))?
                as usize,
            bytes: result
                .get("bytes")
                .and_then(Value::as_u64)
                .ok_or_else(|| proto_err("snapshot response missing 'bytes'"))?,
        })
    }

    /// Router-level statistics (protocol v6): replica health and the
    /// front tier's failover counters. A plain daemon answers
    /// `bad-request` ([`ServeError::Remote`]) — callers use that to
    /// detect which kind of peer they reached.
    ///
    /// # Errors
    ///
    /// As [`Client::extract`].
    pub fn route_stats(&mut self) -> Result<RouteStatsReply, ServeError> {
        let id = self.fresh_id();
        let result = self.roundtrip(&Request::RouteStats { id: Some(id) })?;
        let uint = |name: &str| {
            result
                .get(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| proto_err(format!("route_stats response missing '{name}'")))
        };
        let mut replicas = Vec::new();
        for r in result
            .get("replicas")
            .and_then(Value::as_array)
            .ok_or_else(|| proto_err("route_stats response missing 'replicas'"))?
        {
            let runit = |name: &str| {
                r.get(name)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| proto_err(format!("replica entry missing '{name}'")))
            };
            replicas.push(ReplicaStats {
                addr: r
                    .get("addr")
                    .and_then(Value::as_str)
                    .ok_or_else(|| proto_err("replica entry missing 'addr'"))?
                    .to_string(),
                healthy: r
                    .get("healthy")
                    .and_then(Value::as_bool)
                    .ok_or_else(|| proto_err("replica entry missing 'healthy'"))?,
                consecutive_failures: runit("consecutive_failures")?,
                requests: runit("requests")?,
                errors: runit("errors")?,
            });
        }
        Ok(RouteStatsReply {
            replicas,
            healthy: uint("healthy")? as usize,
            proxied: uint("proxied")?,
            failovers: uint("failovers")?,
            upstream_errors: uint("upstream_errors")?,
            ejections: uint("ejections")?,
            readmissions: uint("readmissions")?,
        })
    }

    /// Asks the daemon to shut down cleanly.
    ///
    /// # Errors
    ///
    /// As [`Client::extract`].
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        let id = self.fresh_id();
        let result = self.roundtrip(&Request::Shutdown { id: Some(id) })?;
        match result.get("stopping").and_then(Value::as_bool) {
            Some(true) => Ok(()),
            _ => Err(proto_err("daemon did not acknowledge shutdown")),
        }
    }

    /// Sends one raw frame line (no newline) and returns the full decoded
    /// response object — the escape hatch for protocol tests.
    ///
    /// # Errors
    ///
    /// Transport errors; the response is returned whether `ok` or not.
    pub fn send_raw(&mut self, line: &str) -> Result<Value, ServeError> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        self.read_response()
    }

    fn fresh_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    /// Sends a request and returns its `result`, enforcing the response
    /// envelope (`ok`, echoed id, `error` on failure).
    fn roundtrip(&mut self, request: &Request) -> Result<Value, ServeError> {
        let response = self.send_raw(&encode_request(request))?;
        match response.get("ok").and_then(Value::as_bool) {
            Some(true) => {
                // Success responses must echo the request id; error
                // responses may carry null (the daemon cannot always
                // recover an id from a malformed frame).
                let expected = match request {
                    Request::Ping { id }
                    | Request::Stats { id }
                    | Request::Metrics { id }
                    | Request::RouteStats { id }
                    | Request::Shutdown { id }
                    | Request::Extract { id, .. }
                    | Request::Batch { id, .. }
                    | Request::Chip { id, .. }
                    | Request::Snapshot { id, .. } => *id,
                };
                if let Some(want) = expected {
                    let got = response.get("id").and_then(Value::as_u64);
                    if got != Some(want) {
                        return Err(proto_err(format!(
                            "response id {got:?} does not match request {want}"
                        )));
                    }
                }
                // Move the result subtree out of the owned response — an
                // extract result holds the full matrix, not worth cloning.
                take_field(response, "result")
                    .ok_or_else(|| proto_err("ok response missing 'result'"))
            }
            Some(false) => {
                let error = response.get("error");
                Err(ServeError::Remote {
                    code: error
                        .and_then(|e| e.get("code"))
                        .and_then(Value::as_str)
                        .unwrap_or("unknown")
                        .to_string(),
                    message: error
                        .and_then(|e| e.get("message"))
                        .and_then(Value::as_str)
                        .unwrap_or("daemon reported an error without a message")
                        .to_string(),
                })
            }
            _ => Err(proto_err("response missing boolean 'ok'")),
        }
    }

    fn read_response(&mut self) -> Result<Value, ServeError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(proto_err("daemon closed the connection"));
        }
        serde_json::from_str(line.trim_end_matches(['\n', '\r']))
            .map_err(|e| proto_err(format!("invalid response JSON: {e}")))
    }
}

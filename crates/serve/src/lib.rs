//! # bemcap-serve — the long-running extraction service
//!
//! The paper's instantiable-basis economics (conf_dac_HsiaoD11) make
//! per-structure setup cheap and the pair-integral work *reusable*: two
//! structures sharing a template pair share the integral, bit for bit.
//! A one-shot CLI throws that reuse away at every process exit. This
//! crate keeps the engine resident:
//!
//! * [`Server`] / the `bemcapd` binary — a std-`TcpListener` daemon
//!   (thread per connection for I/O, no async runtime) speaking a
//!   newline-delimited JSON protocol. Extraction runs on one shared,
//!   admission-controlled [`bemcap_core::exec::Executor`]: connection
//!   threads only parse, enqueue, and respond; overload degrades into
//!   structured `busy` rejections; concurrent same-configuration
//!   requests coalesce into engine-sharing micro-batches. One
//!   process-lifetime, memory-bounded [`bemcap_core::TemplateCache`] is
//!   shared across every request;
//! * [`Client`] — the matching blocking client library (single
//!   [`Client::extract`] and many-geometry [`Client::extract_batch`]);
//! * [`protocol`] — the single encode/decode implementation both sides
//!   use (reference: `docs/WIRE_PROTOCOL.md`).
//!
//! Results over the wire are **bit-identical** to in-process extraction:
//! matrices serialize with Rust's shortest-round-trip `f64` formatting,
//! and the shared cache only ever returns the exact bits a recomputation
//! would produce, whatever its bound or eviction history.
//!
//! ## Quickstart
//!
//! ```text
//! $ cargo run --release -p bemcap-serve --bin bemcapd -- --addr 127.0.0.1:4545
//! bemcapd listening on 127.0.0.1:4545 (workers=1, queue=256, coalesce=16, cache=64.0 MiB, frame<=8.0 MiB)
//! ```
//!
//! ```no_run
//! use bemcap_serve::{Client, ExtractOptions};
//! use bemcap_geom::structures::{self, CrossingParams};
//!
//! let mut client = Client::connect("127.0.0.1:4545")?;
//! client.ping()?;
//! let geo = structures::crossing_wires(CrossingParams::default());
//! let reply = client.extract(&geo, &ExtractOptions::default())?;
//! println!("C01 = {:e} F (cache {})", reply.get(0, 1), reply.cache);
//! # Ok::<(), bemcap_serve::ServeError>(())
//! ```

pub mod client;
pub mod error;
pub mod framing;
pub mod protocol;
pub mod server;

pub use client::{
    ChipOptions, ChipReply, Client, DaemonStats, ExtractReply, MetricsReply, ReplicaStats,
    RouteStatsReply, SnapshotReply,
};
pub use error::ServeError;
pub use protocol::ExtractOptions;
pub use server::{Server, ServerConfig, ServerHandle};

//! `bemcapd` — the bemcap extraction daemon.
//!
//! Binds a TCP port, keeps the Galerkin engine's accel tables and a
//! memory-bounded pair-integral cache warm for its whole lifetime, and
//! answers newline-delimited JSON requests (`docs/WIRE_PROTOCOL.md`).
//!
//! ```text
//! bemcapd [--addr HOST:PORT] [--cache-mb N | --cache-unbounded]
//!         [--workers N] [--queue N] [--coalesce N] [--max-frame-mb N]
//!         [--cache-restore PATH]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:0` (a free port, printed at startup),
//! 64 MiB cache, `BEMCAP_POOL` (or 1) workers, `BEMCAP_QUEUE` (or 256)
//! admission-queue slots, a 16-job coalescing window, 8 MiB frames.
//! `--cache-restore` warm-starts the pair-integral cache from a
//! snapshot written by the v6 `snapshot` op (a bad or truncated file
//! fails startup loudly). Nonsense values (zero, non-numeric) are
//! rejected with the usage message. Exits 0 after a `shutdown` request
//! drains.

use std::process::ExitCode;

use bemcap_serve::{Server, ServerConfig};

const USAGE: &str = "usage: bemcapd [--addr HOST:PORT] [--cache-mb N | --cache-unbounded] \
                     [--workers N] [--queue N] [--coalesce N] [--max-frame-mb N] \
                     [--cache-restore PATH]\n\
                     env fallbacks: BEMCAP_POOL (workers), BEMCAP_QUEUE (queue depth)";

fn parse_args(args: &[String]) -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value\n{USAGE}"));
        let positive = |name: &str, raw: String| {
            raw.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("{name} needs a positive integer\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--cache-mb" => {
                let mb: usize = value("--cache-mb")?
                    .parse()
                    .map_err(|e| format!("bad --cache-mb: {e}\n{USAGE}"))?;
                cfg.cache_max_bytes = Some(mb << 20);
            }
            "--cache-unbounded" => cfg.cache_max_bytes = None,
            "--workers" => cfg.workers = positive("--workers", value("--workers")?)?,
            "--queue" => cfg.queue_depth = positive("--queue", value("--queue")?)?,
            "--coalesce" => cfg.coalesce_limit = positive("--coalesce", value("--coalesce")?)?,
            "--max-frame-mb" => {
                cfg.max_frame_bytes = positive("--max-frame-mb", value("--max-frame-mb")?)? << 20;
            }
            "--cache-restore" => {
                cfg.cache_restore = Some(value("--cache-restore")?.into());
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(cfg)
}

fn fmt_mib(bytes: usize) -> String {
    format!("{:.1} MiB", bytes as f64 / (1 << 20) as f64)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let cache_desc = cfg.cache_max_bytes.map_or("unbounded".to_string(), fmt_mib);
    let frame_desc = fmt_mib(cfg.max_frame_bytes);
    let workers = cfg.workers;
    let queue = cfg.queue_depth;
    let coalesce = cfg.coalesce_limit;
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("bemcapd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(count) = server.restored_cache_entries() {
        println!("bemcapd: restored {count} cache entries from snapshot");
    }
    match server.local_addr() {
        Ok(addr) => {
            // The startup line is part of the interface: scripts (and the
            // CI smoke job) scrape the bound address from it.
            println!(
                "bemcapd listening on {addr} (workers={workers}, queue={queue}, \
                 coalesce={coalesce}, cache={cache_desc}, frame<={frame_desc})"
            );
        }
        Err(e) => {
            eprintln!("bemcapd: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => {
            println!("bemcapd: shutdown complete");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bemcapd: fatal: {e}");
            ExitCode::FAILURE
        }
    }
}

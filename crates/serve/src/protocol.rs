//! The `bemcapd` wire protocol: newline-delimited JSON frames.
//!
//! One request per line, one response per line, in order, over a plain
//! TCP stream — trivially scriptable (`nc`, shell, any language with a
//! socket and a JSON parser) and cheap to parse with the vendored
//! `serde_json` stub. The full field reference lives in
//! `docs/WIRE_PROTOCOL.md`; this module is the single implementation of
//! encode and decode, used by both the daemon and the client library so
//! the two cannot drift.
//!
//! Requests carry geometry in the `bemcap_geom::io` text format (embedded
//! as one JSON string). Responses carry capacitance matrices as `f64`
//! arrays serialized with Rust's shortest-round-trip formatting, so a
//! value decoded by the client is **bit-identical** to the `f64` the
//! engine produced — the property behind the daemon's determinism tests.

use bemcap_core::{
    CacheStats, ExecStats, Extractor, FmmConfig, KrylovConfig, Method, PfftConfig, PrecondKind,
    SolverStats,
};
use serde_json::{json, Value};

/// Protocol revision, reported by the `ping` op. Bump on any change to
/// the frame shapes. Version 2 added the `batch` op, the `busy` error
/// code, the per-request `exec` record, and the executor-queue `stats`
/// fields — all additive, so version-1 frames still decode. Note the
/// version-1 client library's `ping` probe enforced exact equality and
/// therefore refuses a v2 daemon; from v2 on, clients accept any daemon
/// speaking at least their own version.
///
/// Version 3 (additive): `extract`/`batch` accept the `auto` method and
/// typed backend configuration fields (`fmm`, `pfft`, `krylov`,
/// `precond`, `auto_budget`); result `report`s carry `workers` and, for
/// iterative backends, a `solver` record (iterations, restarts,
/// residual). Version-2 frames still decode unchanged.
///
/// Version 4 (additive): the `chip` op — full-chip windowed extraction.
/// A `chip` request carries one geometry, the shared solver-option
/// fields, an optional `windows` `[nx, ny]` grid (default `[2, 2]`) and
/// an optional `halo` margin; the result is a *sparse* chip matrix
/// (`entries` triplets instead of a dense `matrix`), a windowing
/// `report`, and the daemon's window-cache counters. The daemon `stats`
/// response gains a `window_cache` section. Version-3 frames still
/// decode unchanged; pre-v4 daemons answer `chip` with a `bad-request`
/// error, so clients fail loudly instead of degrading.
///
/// Version 5 (additive): the `metrics` op — a scrape of the daemon's
/// process-lifetime observability counters. The result carries the
/// Prometheus text exposition (`text`) plus the same samples as
/// structured JSON (`counters` / `gauges` objects mapping metric name
/// to value). Also adds the `internal` error code for daemon-side
/// invariant violations that previously killed the connection thread.
/// Version-4 frames still decode unchanged; pre-v5 daemons answer
/// `metrics` with a `bad-request` error.
///
/// Version 6 (additive): the front-tier revision. Adds the `snapshot`
/// op (the daemon writes its pair-integral cache to a file the
/// `--cache-restore` flag reads back at the next start), the
/// `route_stats` op (answered by the `bemcaprd` router with replica
/// health and shard distribution; plain daemons answer `bad-request`),
/// and the `upstream` error code (the router exhausted every replica
/// for a request — connection-level failures only, structured backend
/// errors always pass through verbatim). Version-5 frames still decode
/// unchanged; pre-v6 daemons answer `snapshot` with a `bad-request`
/// error, so deploy tooling fails loudly instead of skipping the warm
/// handoff silently.
pub const PROTOCOL_VERSION: u64 = 6;

/// Machine-readable error codes of structured error responses.
pub mod codes {
    /// The request line is not valid JSON.
    pub const PARSE: &str = "parse";
    /// The request line is valid JSON but not a valid request (unknown
    /// op, missing or mistyped field).
    pub const BAD_REQUEST: &str = "bad-request";
    /// The embedded geometry failed to parse or is degenerate.
    pub const GEOMETRY: &str = "geometry";
    /// The extraction itself failed.
    pub const EXTRACTION: &str = "extraction";
    /// The request frame exceeded the daemon's size limit.
    pub const OVERSIZED: &str = "oversized";
    /// The request frame is not valid UTF-8.
    pub const UTF8: &str = "utf8";
    /// The daemon's execution queue is full; nothing was executed.
    /// Retry later (structured backpressure, not a failure of the
    /// request itself).
    pub const BUSY: &str = "busy";
    /// A daemon-side invariant broke while building the response (v5).
    /// The request was well-formed; the failure is a daemon bug worth
    /// reporting — but it stays a structured response, never a dropped
    /// connection.
    pub const INTERNAL: &str = "internal";
    /// The router could not reach any replica for this request (v6):
    /// every connection attempt failed at the transport level. Only the
    /// `bemcaprd` front tier emits it — a structured error produced *by*
    /// a replica (`busy`, `geometry`, ...) is relayed verbatim, never
    /// rewritten into this code.
    pub const UPSTREAM: &str = "upstream";
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Extract the capacitance matrix of one geometry.
    Extract {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
        /// Geometry in the `bemcap_geom::io` text format.
        geometry: String,
        /// Solver configuration.
        options: ExtractOptions,
    },
    /// Extract many geometries under one solver configuration in a
    /// single frame — they run as one executor submission (one
    /// micro-batch), amortizing engine setup and queue slots.
    Batch {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
        /// Geometries in the `bemcap_geom::io` text format, answered in
        /// this order.
        geometries: Vec<String>,
        /// Solver configuration, shared by every geometry in the frame.
        options: ExtractOptions,
    },
    /// Full-chip windowed extraction (v4): partition the geometry into
    /// an overlapping window grid, extract every window on the daemon's
    /// shared executor (reusing its process-lifetime window cache), and
    /// answer with the stitched sparse chip matrix.
    Chip {
        /// Client-chosen correlation id, echoed in the response.
        id: Option<u64>,
        /// Geometry in the `bemcap_geom::io` text format.
        geometry: String,
        /// Solver configuration, shared by every window.
        options: ExtractOptions,
        /// Window grid columns (wire field `windows: [nx, ny]`).
        nx: usize,
        /// Window grid rows.
        ny: usize,
        /// Halo margin around each core tile in layout units
        /// (`None` = the partitioner's default).
        halo: Option<f64>,
    },
    /// Liveness / version probe.
    Ping {
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// Daemon-level statistics (cache residency, lifetime counters).
    Stats {
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// Write the daemon's pair-integral cache to a file (v6) in the
    /// versioned text format of `bemcap_core::cache` — the warm-restart
    /// seam: a later daemon started with `--cache-restore <path>` begins
    /// life with these entries resident.
    Snapshot {
        /// Echoed correlation id.
        id: Option<u64>,
        /// Daemon-side filesystem path to write (created or truncated).
        path: String,
    },
    /// Router-level statistics (v6): replica health, per-replica
    /// request/error counts, failover and ejection counters. Answered
    /// by the `bemcaprd` front tier; a plain daemon answers
    /// `bad-request`, which is how clients tell the two apart.
    RouteStats {
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// Scrape of the process-lifetime observability metrics (v5):
    /// Prometheus text exposition plus structured counter/gauge maps.
    Metrics {
        /// Echoed correlation id.
        id: Option<u64>,
    },
    /// Ask the daemon to stop accepting connections and exit cleanly.
    Shutdown {
        /// Echoed correlation id.
        id: Option<u64>,
    },
}

/// Solver configuration of an `extract` request. Every field has a
/// server-side default, so `{"op":"extract","geometry":"..."}` is a
/// complete request. The typed backend fields (v3) are optional and
/// additive: `None` means "the extractor's default", exactly as if the
/// field were absent from the frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtractOptions {
    /// Solver backend (default [`Method::InstantiableBasis`]).
    pub method: Method,
    /// §4.2.3 tabulated-primitive acceleration (default off).
    pub accelerated: bool,
    /// Mesh resolution for the piecewise-constant backends
    /// (`None` = the extractor's default).
    pub mesh_divisions: Option<usize>,
    /// Multipole operator tuning (v3).
    pub fmm: Option<FmmConfig>,
    /// Precorrected-FFT operator tuning (v3).
    pub pfft: Option<PfftConfig>,
    /// Iterative caps shared by the Krylov backends (v3).
    pub krylov: Option<KrylovConfig>,
    /// Preconditioner choice for the Krylov backends (v3).
    pub precond: Option<PrecondKind>,
    /// `auto` method memory budget in bytes (v3).
    pub auto_budget: Option<usize>,
}

impl Default for ExtractOptions {
    fn default() -> ExtractOptions {
        ExtractOptions {
            method: Method::InstantiableBasis,
            accelerated: false,
            mesh_divisions: None,
            fmm: None,
            pfft: None,
            krylov: None,
            precond: None,
            auto_budget: None,
        }
    }
}

/// Builds the extractor a request's solver options describe, including
/// the v3 typed backend configurations. Unset fields keep the
/// extractor's defaults, so a v2 frame builds exactly the extractor it
/// always did. The daemon uses it to execute requests; the `bemcaprd`
/// router uses it to compute the same `config_digest` the daemon would,
/// which is what makes digest-affinity routing line up with the
/// backend's coalescing and cache identity.
pub fn build_extractor(options: &ExtractOptions) -> Extractor {
    let mut extractor = Extractor::new().method(options.method).accelerated(options.accelerated);
    if let Some(d) = options.mesh_divisions {
        extractor = extractor.mesh_divisions(d);
    }
    if let Some(f) = options.fmm {
        extractor = extractor.fmm_config(f);
    }
    if let Some(p) = options.pfft {
        extractor = extractor.pfft_config(p);
    }
    if let Some(k) = options.krylov {
        extractor = extractor.krylov_config(k);
    }
    if let Some(p) = options.precond {
        extractor = extractor.preconditioner(p);
    }
    if let Some(b) = options.auto_budget {
        extractor = extractor.auto_memory_budget(b);
    }
    extractor
}

/// A request decode failure, carrying the error code the daemon should
/// answer with and the request id when it was recoverable (so error
/// responses can still echo it for client-side correlation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// One of the [`codes`] constants.
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The request's correlation id, when it could be parsed before the
    /// error (always `None` for [`codes::PARSE`] failures).
    pub id: Option<u64>,
}

impl WireError {
    fn bad(message: impl Into<String>) -> WireError {
        WireError { code: codes::BAD_REQUEST, message: message.into(), id: None }
    }

    fn with_id(mut self, id: Option<u64>) -> WireError {
        self.id = id;
        self
    }
}

/// The wire name of a [`Method`] (matches the `method` strings of
/// extraction reports; `auto` resolves server-side, so reports never
/// carry it back).
pub fn method_name(method: Method) -> &'static str {
    match method {
        Method::InstantiableBasis => "instantiable",
        Method::PwcDense => "pwc-dense",
        Method::PwcFmm => "pwc-fmm",
        Method::PwcPfft => "pwc-pfft",
        Method::Auto => "auto",
    }
}

/// Parses a wire method name.
pub fn parse_method(name: &str) -> Option<Method> {
    match name {
        "instantiable" => Some(Method::InstantiableBasis),
        "pwc-dense" => Some(Method::PwcDense),
        "pwc-fmm" => Some(Method::PwcFmm),
        "pwc-pfft" => Some(Method::PwcPfft),
        "auto" => Some(Method::Auto),
        _ => None,
    }
}

fn id_of(v: &Value) -> Result<Option<u64>, WireError> {
    match v.get("id") {
        None => Ok(None),
        Some(Value::Null) => Ok(None),
        Some(id) => id
            .as_u64()
            .map(Some)
            .ok_or_else(|| WireError::bad("'id' must be a non-negative integer")),
    }
}

/// Decodes one request line. Unknown top-level fields are ignored for
/// forward compatibility; unknown ops and mistyped fields are errors.
///
/// # Errors
///
/// [`WireError`] with code [`codes::PARSE`] for invalid JSON,
/// [`codes::BAD_REQUEST`] for a well-formed but invalid request.
pub fn decode_request(line: &str) -> Result<Request, WireError> {
    let v = serde_json::from_str(line).map_err(|e| WireError {
        code: codes::PARSE,
        message: e.to_string(),
        id: None,
    })?;
    let id = id_of(&v)?;
    decode_op(&v, id).map_err(|e| e.with_id(id))
}

fn decode_op(v: &Value, id: Option<u64>) -> Result<Request, WireError> {
    let op = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or_else(|| WireError::bad("request needs a string 'op' field"))?;
    match op {
        "ping" => Ok(Request::Ping { id }),
        "stats" => Ok(Request::Stats { id }),
        "metrics" => Ok(Request::Metrics { id }),
        "route_stats" => Ok(Request::RouteStats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "snapshot" => {
            let path = v
                .get("path")
                .and_then(Value::as_str)
                .filter(|p| !p.is_empty())
                .ok_or_else(|| WireError::bad("'snapshot' needs a non-empty string 'path' field"))?
                .to_string();
            Ok(Request::Snapshot { id, path })
        }
        "extract" => {
            let geometry = v
                .get("geometry")
                .and_then(Value::as_str)
                .ok_or_else(|| WireError::bad("'extract' needs a string 'geometry' field"))?
                .to_string();
            Ok(Request::Extract { id, geometry, options: decode_options(v)? })
        }
        "batch" => {
            let entries = v
                .get("geometries")
                .and_then(Value::as_array)
                .ok_or_else(|| WireError::bad("'batch' needs a 'geometries' array field"))?;
            let geometries: Vec<String> = entries
                .iter()
                .map(|g| g.as_str().map(str::to_string))
                .collect::<Option<_>>()
                .ok_or_else(|| WireError::bad("'geometries' entries must be strings"))?;
            Ok(Request::Batch { id, geometries, options: decode_options(v)? })
        }
        "chip" => {
            let geometry = v
                .get("geometry")
                .and_then(Value::as_str)
                .ok_or_else(|| WireError::bad("'chip' needs a string 'geometry' field"))?
                .to_string();
            let (nx, ny) = decode_window_grid(v)?;
            let halo =
                match v.get("halo").filter(|h| !h.is_null()) {
                    None => None,
                    Some(h) => Some(h.as_f64().filter(|x| x.is_finite() && *x >= 0.0).ok_or_else(
                        || WireError::bad("'halo' must be a finite non-negative number"),
                    )?),
                };
            Ok(Request::Chip { id, geometry, options: decode_options(v)?, nx, ny, halo })
        }
        other => Err(WireError::bad(format!(
            "unknown op '{other}' (expected extract, batch, chip, ping, stats, \
             metrics, route_stats, snapshot or shutdown)"
        ))),
    }
}

/// Decodes a `chip` request's optional `windows: [nx, ny]` field
/// (default `[2, 2]`, matching the engine's default partition).
fn decode_window_grid(v: &Value) -> Result<(usize, usize), WireError> {
    let Some(w) = v.get("windows").filter(|w| !w.is_null()) else {
        return Ok((2, 2));
    };
    let entries = w
        .as_array()
        .filter(|entries| entries.len() == 2)
        .ok_or_else(|| WireError::bad("'windows' must be a two-entry [nx, ny] array"))?;
    let grid: Vec<usize> = entries
        .iter()
        .map(|n| n.as_u64().filter(|&n| n > 0).map(|n| n as usize))
        .collect::<Option<_>>()
        .ok_or_else(|| WireError::bad("'windows' entries must be positive integers"))?;
    Ok((grid[0], grid[1]))
}

fn obj_f64(v: &Value, ctx: &str, name: &str) -> Result<f64, WireError> {
    v.get(name)
        .and_then(Value::as_f64)
        .ok_or_else(|| WireError::bad(format!("'{ctx}' needs a number '{name}' field")))
}

fn obj_uint(v: &Value, ctx: &str, name: &str) -> Result<usize, WireError> {
    v.get(name)
        .and_then(Value::as_u64)
        .map(|n| n as usize)
        .ok_or_else(|| WireError::bad(format!("'{ctx}' needs a non-negative integer '{name}'")))
}

/// Decodes the shared solver-option fields of `extract` and `batch`
/// requests. Optional fields: absent and null both mean "use the
/// default" (the encoder emits null for unset options).
fn decode_options(v: &Value) -> Result<ExtractOptions, WireError> {
    let mut options = ExtractOptions::default();
    if let Some(m) = v.get("method").filter(|m| !m.is_null()) {
        let name = m.as_str().ok_or_else(|| WireError::bad("'method' must be a string"))?;
        options.method = parse_method(name).ok_or_else(|| {
            WireError::bad(format!(
                "unknown method '{name}' \
                 (expected instantiable, pwc-dense, pwc-fmm, pwc-pfft or auto)"
            ))
        })?;
    }
    if let Some(a) = v.get("accelerated").filter(|a| !a.is_null()) {
        options.accelerated =
            a.as_bool().ok_or_else(|| WireError::bad("'accelerated' must be a boolean"))?;
    }
    if let Some(d) = v.get("mesh_divisions").filter(|d| !d.is_null()) {
        let n = d
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| WireError::bad("'mesh_divisions' must be a positive integer"))?;
        options.mesh_divisions = Some(n as usize);
    }
    if let Some(f) = v.get("fmm").filter(|f| !f.is_null()) {
        options.fmm = Some(FmmConfig {
            theta: obj_f64(f, "fmm", "theta")?,
            leaf_size: obj_uint(f, "fmm", "leaf_size")?,
        });
    }
    if let Some(p) = v.get("pfft").filter(|p| !p.is_null()) {
        options.pfft = Some(PfftConfig {
            spacing_factor: obj_f64(p, "pfft", "spacing_factor")?,
            near_cells: obj_uint(p, "pfft", "near_cells")?,
            max_grid_points: obj_uint(p, "pfft", "max_grid_points")?,
        });
    }
    if let Some(k) = v.get("krylov").filter(|k| !k.is_null()) {
        options.krylov = Some(KrylovConfig {
            tol: obj_f64(k, "krylov", "tol")?,
            restart: obj_uint(k, "krylov", "restart")?,
            max_iters: obj_uint(k, "krylov", "max_iters")?,
        });
    }
    if let Some(p) = v.get("precond").filter(|p| !p.is_null()) {
        options.precond = Some(match p {
            Value::String(s) if s == "identity" => PrecondKind::Identity,
            Value::String(s) if s == "diagonal" => PrecondKind::Diagonal,
            obj => match obj.get("block_jacobi").and_then(Value::as_u64) {
                Some(block) if block > 0 => PrecondKind::BlockJacobi { block: block as usize },
                _ => {
                    return Err(WireError::bad(
                        "'precond' must be \"identity\", \"diagonal\" \
                         or {\"block_jacobi\": <positive block size>}",
                    ))
                }
            },
        });
    }
    if let Some(b) = v.get("auto_budget").filter(|b| !b.is_null()) {
        let bytes = b
            .as_u64()
            .filter(|&n| n > 0)
            .ok_or_else(|| WireError::bad("'auto_budget' must be a positive byte count"))?;
        options.auto_budget = Some(bytes as usize);
    }
    Ok(options)
}

fn precond_value(precond: Option<PrecondKind>) -> Value {
    match precond {
        None => Value::Null,
        Some(PrecondKind::Identity) => Value::String("identity".into()),
        Some(PrecondKind::Diagonal) => Value::String("diagonal".into()),
        Some(PrecondKind::BlockJacobi { block }) => json!({ "block_jacobi": block }),
    }
}

/// Appends the v3 typed backend option fields to an encoded request
/// object (null when unset, mirroring the decoder's "absent = default").
fn push_backend_options(v: &mut Value, options: &ExtractOptions) {
    let Value::Object(entries) = v else { return };
    entries.push((
        "fmm".into(),
        options.fmm.map_or(Value::Null, |f| json!({ "theta": f.theta, "leaf_size": f.leaf_size })),
    ));
    entries.push((
        "pfft".into(),
        options.pfft.map_or(Value::Null, |p| {
            json!({
                "spacing_factor": p.spacing_factor,
                "near_cells": p.near_cells,
                "max_grid_points": p.max_grid_points,
            })
        }),
    ));
    entries.push((
        "krylov".into(),
        options.krylov.map_or(
            Value::Null,
            |k| json!({ "tol": k.tol, "restart": k.restart, "max_iters": k.max_iters }),
        ),
    ));
    entries.push(("precond".into(), precond_value(options.precond)));
    entries.push(("auto_budget".into(), options.auto_budget.map_or(Value::Null, |b| json!(b))));
}

/// Encodes a request as one frame line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    let v = match req {
        Request::Ping { id } => json!({ "op": "ping", "id": *id }),
        Request::Stats { id } => json!({ "op": "stats", "id": *id }),
        Request::Metrics { id } => json!({ "op": "metrics", "id": *id }),
        Request::RouteStats { id } => json!({ "op": "route_stats", "id": *id }),
        Request::Shutdown { id } => json!({ "op": "shutdown", "id": *id }),
        Request::Snapshot { id, path } => {
            json!({ "op": "snapshot", "id": *id, "path": path.as_str() })
        }
        Request::Extract { id, geometry, options } => {
            let mut v = json!({
                "op": "extract",
                "id": *id,
                "geometry": geometry.as_str(),
                "method": method_name(options.method),
                "accelerated": options.accelerated,
                "mesh_divisions": options.mesh_divisions,
            });
            push_backend_options(&mut v, options);
            v
        }
        Request::Batch { id, geometries, options } => {
            let mut v = json!({
                "op": "batch",
                "id": *id,
                "geometries": Value::Array(
                    geometries.iter().map(|g| Value::String(g.clone())).collect()
                ),
                "method": method_name(options.method),
                "accelerated": options.accelerated,
                "mesh_divisions": options.mesh_divisions,
            });
            push_backend_options(&mut v, options);
            v
        }
        Request::Chip { id, geometry, options, nx, ny, halo } => {
            let mut v = json!({
                "op": "chip",
                "id": *id,
                "geometry": geometry.as_str(),
                "windows": Value::Array(vec![
                    Value::Number(*nx as f64),
                    Value::Number(*ny as f64),
                ]),
                "halo": halo.map_or(Value::Null, Value::Number),
                "method": method_name(options.method),
                "accelerated": options.accelerated,
                "mesh_divisions": options.mesh_divisions,
            });
            push_backend_options(&mut v, options);
            v
        }
    };
    serde_json::to_string(&v).expect("stub serializer is infallible")
}

fn id_value(id: Option<u64>) -> Value {
    id.map_or(Value::Null, |n| Value::Number(n as f64))
}

/// Encodes a success response frame around `result`.
pub fn ok_response(id: Option<u64>, result: Value) -> String {
    let v = json!({ "id": id_value(id), "ok": true, "result": result });
    serde_json::to_string(&v).expect("stub serializer is infallible")
}

/// Encodes a structured error response frame.
pub fn error_response(id: Option<u64>, code: &str, message: &str) -> String {
    let v = json!({
        "id": id_value(id),
        "ok": false,
        "error": json!({ "code": code, "message": message }),
    });
    serde_json::to_string(&v).expect("stub serializer is infallible")
}

/// Serializes cache counters for a response body.
pub fn cache_stats_value(stats: &CacheStats) -> Value {
    json!({
        "hits": stats.hits,
        "misses": stats.misses,
        "evictions": stats.evictions,
        "inserted_bytes": stats.inserted_bytes,
        "hit_rate": stats.hit_rate(),
    })
}

/// Decodes cache counters from a response body.
///
/// # Errors
///
/// [`WireError`] with [`codes::BAD_REQUEST`] when a field is missing or
/// mistyped.
pub fn cache_stats_from_value(v: &Value) -> Result<CacheStats, WireError> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| WireError::bad(format!("cache stats missing '{name}'")))
    };
    Ok(CacheStats {
        hits: field("hits")?,
        misses: field("misses")?,
        evictions: field("evictions")?,
        inserted_bytes: field("inserted_bytes")?,
    })
}

/// Serializes iterative-solver counters for a response `report` (v3).
pub fn solver_stats_value(stats: &SolverStats) -> Value {
    json!({
        "iterations": stats.iterations,
        "restarts": stats.restarts,
        "residual": stats.residual,
    })
}

/// Decodes iterative-solver counters from a response `report`.
///
/// # Errors
///
/// [`WireError`] with [`codes::BAD_REQUEST`] when a field is missing or
/// mistyped.
pub fn solver_stats_from_value(v: &Value) -> Result<SolverStats, WireError> {
    Ok(SolverStats {
        iterations: obj_uint(v, "solver", "iterations")?,
        restarts: obj_uint(v, "solver", "restarts")?,
        residual: obj_f64(v, "solver", "residual")?,
    })
}

/// Serializes executor counters for a response body.
pub fn exec_stats_value(stats: &ExecStats) -> Value {
    json!({
        "submitted": stats.submitted,
        "rejected": stats.rejected,
        "coalesced": stats.coalesced,
        "micro_batches": stats.micro_batches,
        "jobs": stats.jobs,
        "queue_seconds": stats.queue_seconds,
        "coalescing_ratio": stats.coalescing_ratio(),
    })
}

/// Decodes executor counters from a response body.
///
/// # Errors
///
/// [`WireError`] with [`codes::BAD_REQUEST`] when a field is missing or
/// mistyped.
pub fn exec_stats_from_value(v: &Value) -> Result<ExecStats, WireError> {
    let field = |name: &str| {
        v.get(name)
            .and_then(Value::as_u64)
            .map(|n| n as usize)
            .ok_or_else(|| WireError::bad(format!("exec stats missing '{name}'")))
    };
    Ok(ExecStats {
        submitted: field("submitted")?,
        rejected: field("rejected")?,
        coalesced: field("coalesced")?,
        micro_batches: field("micro_batches")?,
        jobs: field("jobs")?,
        queue_seconds: v
            .get("queue_seconds")
            .and_then(Value::as_f64)
            .ok_or_else(|| WireError::bad("exec stats missing 'queue_seconds'"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Ping { id: Some(7) },
            Request::Stats { id: None },
            Request::Metrics { id: Some(11) },
            Request::Metrics { id: None },
            Request::RouteStats { id: Some(12) },
            Request::RouteStats { id: None },
            Request::Snapshot { id: Some(13), path: "/tmp/cache.snap".into() },
            Request::Snapshot { id: None, path: "relative/path.snap".into() },
            Request::Shutdown { id: Some(0) },
            Request::Extract {
                id: Some(3),
                geometry: "conductor a\nbox 0 0 0 1 1 1\n".into(),
                options: ExtractOptions {
                    method: Method::PwcDense,
                    accelerated: true,
                    mesh_divisions: Some(6),
                    ..Default::default()
                },
            },
            Request::Extract {
                id: Some(8),
                geometry: "conductor a\nbox 0 0 0 1 1 1\n".into(),
                options: ExtractOptions {
                    method: Method::Auto,
                    mesh_divisions: Some(5),
                    fmm: Some(FmmConfig { theta: 0.3, leaf_size: 9 }),
                    pfft: Some(PfftConfig {
                        spacing_factor: 1.25,
                        near_cells: 3,
                        max_grid_points: 1 << 20,
                    }),
                    krylov: Some(KrylovConfig { tol: 1e-8, restart: 25, max_iters: 900 }),
                    precond: Some(PrecondKind::BlockJacobi { block: 12 }),
                    auto_budget: Some(64 << 20),
                    ..Default::default()
                },
            },
            Request::Batch {
                id: Some(4),
                geometries: vec![
                    "conductor a\nbox 0 0 0 1 1 1\n".into(),
                    "conductor b\nbox 0 0 0 2 2 2\n".into(),
                ],
                options: ExtractOptions {
                    method: Method::PwcPfft,
                    krylov: Some(KrylovConfig { tol: 1e-7, restart: 30, max_iters: 500 }),
                    precond: Some(PrecondKind::Identity),
                    ..Default::default()
                },
            },
            Request::Batch {
                id: Some(5),
                geometries: vec!["conductor a\nbox 0 0 0 1 1 1\n".into()],
                options: ExtractOptions::default(),
            },
            Request::Chip {
                id: Some(6),
                geometry: "conductor a\nbox 0 0 0 1 1 1\n".into(),
                options: ExtractOptions { method: Method::PwcDense, ..Default::default() },
                nx: 3,
                ny: 2,
                halo: Some(2.5e-6),
            },
            Request::Chip {
                id: None,
                geometry: "conductor a\nbox 0 0 0 1 1 1\n".into(),
                options: ExtractOptions::default(),
                nx: 2,
                ny: 2,
                halo: None,
            },
        ];
        for req in reqs {
            let line = encode_request(&req);
            assert!(!line.contains('\n'), "frames are single lines: {line}");
            assert_eq!(decode_request(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn backend_config_f64_fields_round_trip_bit_exactly() {
        // Coalescing safety across the wire depends on decoded configs
        // being the very f64s the client sent.
        let tol = f64::from_bits(1.0e-7_f64.to_bits() + 1);
        let req = Request::Extract {
            id: Some(1),
            geometry: "g".into(),
            options: ExtractOptions {
                method: Method::PwcFmm,
                fmm: Some(FmmConfig { theta: 0.45000000000000007, leaf_size: 12 }),
                krylov: Some(KrylovConfig { tol, restart: 40, max_iters: 600 }),
                ..Default::default()
            },
        };
        match decode_request(&encode_request(&req)).unwrap() {
            Request::Extract { options, .. } => {
                assert_eq!(options.fmm.unwrap().theta.to_bits(), 0.45000000000000007_f64.to_bits());
                assert_eq!(options.krylov.unwrap().tol.to_bits(), tol.to_bits());
            }
            other => panic!("expected extract, got {other:?}"),
        }
    }

    #[test]
    fn bad_backend_config_fields_are_rejected() {
        let bad = [
            r#"{"op":"extract","geometry":"g","fmm":{"theta":"x","leaf_size":2}}"#,
            r#"{"op":"extract","geometry":"g","fmm":{"theta":0.4}}"#,
            r#"{"op":"extract","geometry":"g","pfft":{"spacing_factor":1.0}}"#,
            r#"{"op":"extract","geometry":"g","krylov":{"tol":1e-6,"restart":40}}"#,
            r#"{"op":"extract","geometry":"g","precond":"magic"}"#,
            r#"{"op":"extract","geometry":"g","precond":{"block_jacobi":0}}"#,
            r#"{"op":"extract","geometry":"g","auto_budget":0}"#,
            r#"{"op":"extract","geometry":"g","method":"auto","auto_budget":-5}"#,
        ];
        for line in bad {
            assert_eq!(decode_request(line).unwrap_err().code, codes::BAD_REQUEST, "{line}");
        }
    }

    #[test]
    fn solver_stats_round_trip() {
        let stats = SolverStats { iterations: 120, restarts: 2, residual: 3.5e-7 };
        let v = solver_stats_value(&stats);
        assert_eq!(solver_stats_from_value(&v).unwrap(), stats);
        assert!(solver_stats_from_value(&json!({ "iterations": 1 })).is_err());
    }

    #[test]
    fn minimal_extract_request_uses_defaults() {
        let req = decode_request(r#"{"op":"extract","geometry":"conductor a\nbox 0 0 0 1 1 1\n"}"#)
            .unwrap();
        match req {
            Request::Extract { id, options, .. } => {
                assert_eq!(id, None);
                assert_eq!(options, ExtractOptions::default());
            }
            other => panic!("expected extract, got {other:?}"),
        }
    }

    #[test]
    fn unknown_top_level_fields_are_ignored() {
        let req = decode_request(r#"{"op":"ping","id":1,"future_field":[1,2]}"#).unwrap();
        assert_eq!(req, Request::Ping { id: Some(1) });
    }

    #[test]
    fn decode_errors_carry_codes() {
        assert_eq!(decode_request("not json").unwrap_err().code, codes::PARSE);
        assert_eq!(decode_request("{}").unwrap_err().code, codes::BAD_REQUEST);
        assert_eq!(decode_request(r#"{"op":"launch"}"#).unwrap_err().code, codes::BAD_REQUEST);
        assert_eq!(decode_request(r#"{"op":"extract"}"#).unwrap_err().code, codes::BAD_REQUEST);
        assert_eq!(
            decode_request(r#"{"op":"extract","geometry":"x","method":"magic"}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            decode_request(r#"{"op":"extract","geometry":"x","mesh_divisions":0}"#)
                .unwrap_err()
                .code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            decode_request(r#"{"op":"ping","id":-1}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            decode_request(r#"{"op":"ping","id":1.5}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
    }

    #[test]
    fn bad_request_errors_keep_the_recoverable_id() {
        let e = decode_request(r#"{"op":"extract","id":9,"geometry":"g","method":"magic"}"#)
            .unwrap_err();
        assert_eq!((e.code, e.id), (codes::BAD_REQUEST, Some(9)));
        let e = decode_request(r#"{"op":"fly","id":3}"#).unwrap_err();
        assert_eq!(e.id, Some(3));
        // Parse failures never have an id; a bad id field cannot echo it.
        assert_eq!(decode_request("not json").unwrap_err().id, None);
        assert_eq!(decode_request(r#"{"op":"ping","id":-1}"#).unwrap_err().id, None);
    }

    #[test]
    fn snapshot_requests_need_a_path() {
        let bad = [
            r#"{"op":"snapshot"}"#,
            r#"{"op":"snapshot","path":7}"#,
            r#"{"op":"snapshot","path":null}"#,
            r#"{"op":"snapshot","path":""}"#,
        ];
        for line in bad {
            assert_eq!(decode_request(line).unwrap_err().code, codes::BAD_REQUEST, "{line}");
        }
        match decode_request(r#"{"op":"snapshot","id":2,"path":"warm.snap"}"#).unwrap() {
            Request::Snapshot { id, path } => {
                assert_eq!((id, path.as_str()), (Some(2), "warm.snap"));
            }
            other => panic!("expected snapshot, got {other:?}"),
        }
    }

    #[test]
    fn build_extractor_digest_tracks_the_options() {
        // The router keys its shard choice on this digest; it must move
        // with any option that changes the solver configuration and be
        // identical for identical options.
        let base = ExtractOptions::default();
        let a = build_extractor(&base).config_digest();
        assert_eq!(a, build_extractor(&base).config_digest());
        let accel = ExtractOptions { accelerated: true, ..base };
        assert_ne!(a, build_extractor(&accel).config_digest());
        let meshed = ExtractOptions { method: Method::PwcDense, mesh_divisions: Some(6), ..base };
        assert_ne!(a, build_extractor(&meshed).config_digest());
    }

    #[test]
    fn null_id_is_accepted() {
        assert_eq!(
            decode_request(r#"{"op":"ping","id":null}"#).unwrap(),
            Request::Ping { id: None }
        );
    }

    #[test]
    fn null_optional_fields_mean_defaults() {
        // The encoder emits null for unset options; the decoder must
        // treat that exactly like an absent field.
        let line = r#"{"op":"extract","geometry":"g","method":null,"accelerated":null,"mesh_divisions":null}"#;
        match decode_request(line).unwrap() {
            Request::Extract { options, .. } => assert_eq!(options, ExtractOptions::default()),
            other => panic!("expected extract, got {other:?}"),
        }
    }

    #[test]
    fn method_names_round_trip() {
        for m in [
            Method::InstantiableBasis,
            Method::PwcDense,
            Method::PwcFmm,
            Method::PwcPfft,
            Method::Auto,
        ] {
            assert_eq!(parse_method(method_name(m)), Some(m));
        }
        assert_eq!(parse_method("fastcap"), None);
    }

    #[test]
    fn responses_are_single_lines_with_echoed_id() {
        let ok = ok_response(Some(9), json!({ "pong": true }));
        let v = serde_json::from_str(&ok).unwrap();
        assert_eq!(v["id"].as_u64(), Some(9));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["result"]["pong"].as_bool(), Some(true));

        let err = error_response(None, codes::OVERSIZED, "frame too large");
        let v = serde_json::from_str(&err).unwrap();
        assert!(v["id"].is_null());
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"]["code"].as_str(), Some(codes::OVERSIZED));
        assert!(!ok.contains('\n') && !err.contains('\n'));
    }

    #[test]
    fn batch_requests_decode_and_reject_bad_shapes() {
        let req = decode_request(r#"{"op":"batch","geometries":["g1","g2"],"method":"pwc-dense"}"#)
            .unwrap();
        match req {
            Request::Batch { id, geometries, options } => {
                assert_eq!(id, None);
                assert_eq!(geometries, vec!["g1".to_string(), "g2".to_string()]);
                assert_eq!(options.method, Method::PwcDense);
            }
            other => panic!("expected batch, got {other:?}"),
        }
        // An empty list is well-formed (the daemon answers with an empty
        // results array).
        match decode_request(r#"{"op":"batch","geometries":[]}"#).unwrap() {
            Request::Batch { geometries, .. } => assert!(geometries.is_empty()),
            other => panic!("expected batch, got {other:?}"),
        }
        assert_eq!(decode_request(r#"{"op":"batch"}"#).unwrap_err().code, codes::BAD_REQUEST);
        assert_eq!(
            decode_request(r#"{"op":"batch","geometries":"g1"}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            decode_request(r#"{"op":"batch","geometries":[1,2]}"#).unwrap_err().code,
            codes::BAD_REQUEST
        );
        assert_eq!(
            decode_request(r#"{"op":"batch","geometries":["g"],"method":"magic"}"#)
                .unwrap_err()
                .code,
            codes::BAD_REQUEST
        );
    }

    #[test]
    fn chip_requests_decode_with_defaults_and_reject_bad_shapes() {
        // Minimal frame: default 2×2 grid, default halo, default options.
        match decode_request(r#"{"op":"chip","geometry":"g"}"#).unwrap() {
            Request::Chip { nx, ny, halo, options, .. } => {
                assert_eq!((nx, ny), (2, 2));
                assert_eq!(halo, None);
                assert_eq!(options, ExtractOptions::default());
            }
            other => panic!("expected chip, got {other:?}"),
        }
        // Null windows and halo mean the defaults, like every optional.
        match decode_request(r#"{"op":"chip","geometry":"g","windows":null,"halo":null}"#).unwrap()
        {
            Request::Chip { nx, ny, halo, .. } => {
                assert_eq!((nx, ny, halo), (2, 2, None));
            }
            other => panic!("expected chip, got {other:?}"),
        }
        let bad = [
            r#"{"op":"chip"}"#,
            r#"{"op":"chip","geometry":"g","windows":[2]}"#,
            r#"{"op":"chip","geometry":"g","windows":[2,2,2]}"#,
            r#"{"op":"chip","geometry":"g","windows":[0,2]}"#,
            r#"{"op":"chip","geometry":"g","windows":"2x2"}"#,
            r#"{"op":"chip","geometry":"g","windows":[2,"2"]}"#,
            r#"{"op":"chip","geometry":"g","halo":-1.0}"#,
            r#"{"op":"chip","geometry":"g","halo":"wide"}"#,
            r#"{"op":"chip","geometry":"g","method":"magic"}"#,
        ];
        for line in bad {
            assert_eq!(decode_request(line).unwrap_err().code, codes::BAD_REQUEST, "{line}");
        }
    }

    #[test]
    fn exec_stats_round_trip() {
        let stats = ExecStats {
            submitted: 9,
            rejected: 2,
            coalesced: 4,
            micro_batches: 5,
            jobs: 9,
            queue_seconds: 0.25,
        };
        let v = exec_stats_value(&stats);
        assert_eq!(exec_stats_from_value(&v).unwrap(), stats);
        assert!((v["coalescing_ratio"].as_f64().unwrap() - 9.0 / 5.0).abs() < 1e-12);
        assert!(exec_stats_from_value(&json!({ "submitted": 1 })).is_err());
    }

    #[test]
    fn cache_stats_round_trip() {
        let stats = CacheStats { hits: 10, misses: 4, evictions: 2, inserted_bytes: 768 };
        let v = cache_stats_value(&stats);
        assert_eq!(cache_stats_from_value(&v).unwrap(), stats);
        assert!((v["hit_rate"].as_f64().unwrap() - 10.0 / 14.0).abs() < 1e-12);
        assert!(cache_stats_from_value(&json!({ "hits": 1 })).is_err());
    }
}

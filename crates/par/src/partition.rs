//! The independent iteration index of Algorithm 1.
//!
//! The template matrix P̃ ∈ R^{M×M} is symmetric; only its upper triangle
//! (including the diagonal) is computed. Algorithm 1 iterates a flat index
//! `k ∈ [0, M(M+1)/2)` that is converted to matrix coordinates (i, j) with
//! the closed form
//!
//! ```text
//! j = ⌊(−1 + √(1 + 8k)) / 2⌋ ,   i = k − j(j+1)/2 ,   i ≤ j
//! ```
//!
//! so the work can be split into D contiguous ranges with no shared state.

use std::ops::Range;

/// Number of entries in the upper triangle (with diagonal) of an `m × m`
/// matrix: `m(m+1)/2` — the `K` of Algorithm 1.
pub fn triangle_size(m: usize) -> usize {
    m * (m + 1) / 2
}

/// Converts the flat upper-triangle index `k` to coordinates `(i, j)` with
/// `i ≤ j`, enumerating column by column: (0,0), (0,1), (1,1), (0,2), …
///
/// Uses the paper's closed form with an integer correction step so the
/// result is exact for every representable `k` (the floating-point square
/// root alone can be off by one near perfect squares).
pub fn k_to_ij(k: usize) -> (usize, usize) {
    let mut j = ((-1.0 + (1.0 + 8.0 * k as f64).sqrt()) / 2.0) as usize;
    // Correct any off-by-one from floating-point rounding.
    while triangle_size(j + 1) <= k {
        j += 1;
    }
    while triangle_size(j) > k {
        j -= 1;
    }
    let i = k - triangle_size(j);
    (i, j)
}

/// Inverse of [`k_to_ij`].
///
/// # Panics
///
/// Panics if `i > j`.
pub fn ij_to_k(i: usize, j: usize) -> usize {
    assert!(i <= j, "upper-triangle coordinates require i <= j");
    triangle_size(j) + i
}

/// Splits `[0, total)` into `d` contiguous ranges as Algorithm 1 does:
/// the first `d − 1` ranges have exactly `⌊total/d⌋` elements and the last
/// takes the remainder.
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn partition_ranges(total: usize, d: usize) -> Vec<Range<usize>> {
    assert!(d > 0, "need at least one partition");
    let base = total / d;
    let mut out = Vec::with_capacity(d);
    let mut start = 0;
    for node in 0..d {
        let len = if node + 1 == d { total - start } else { base };
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn enumeration_order() {
        let expected = [(0, 0), (0, 1), (1, 1), (0, 2), (1, 2), (2, 2), (0, 3)];
        for (k, &ij) in expected.iter().enumerate() {
            assert_eq!(k_to_ij(k), ij, "k={k}");
        }
    }

    #[test]
    fn round_trip_small() {
        for k in 0..triangle_size(100) {
            let (i, j) = k_to_ij(k);
            assert!(i <= j);
            assert_eq!(ij_to_k(i, j), k);
        }
    }

    #[test]
    fn round_trip_large_indices() {
        // Near-perfect-square ks where the float sqrt is error-prone.
        for &m in &[1_000_000usize, 1_048_576, 33_554_431] {
            for delta in 0..3 {
                let k = triangle_size(m) + delta;
                let (i, j) = k_to_ij(k);
                assert_eq!(ij_to_k(i, j), k, "k={k}");
            }
        }
    }

    #[test]
    fn partition_covers_exactly() {
        for total in [0usize, 1, 10, 55, 1000, 1001] {
            for d in 1..=12 {
                let parts = partition_ranges(total, d);
                assert_eq!(parts.len(), d);
                let mut cursor = 0;
                for p in &parts {
                    assert_eq!(p.start, cursor);
                    cursor = p.end;
                }
                assert_eq!(cursor, total);
                // First d-1 parts equal-sized.
                for p in &parts[..d - 1] {
                    assert_eq!(p.len(), total / d);
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_partitions_panic() {
        let _ = partition_ranges(10, 0);
    }

    #[test]
    #[should_panic]
    fn ij_to_k_checks_triangle() {
        let _ = ij_to_k(3, 2);
    }

    proptest! {
        #[test]
        fn prop_bijection(k in 0usize..200_000_000) {
            let (i, j) = k_to_ij(k);
            prop_assert!(i <= j);
            prop_assert_eq!(ij_to_k(i, j), k);
        }

        #[test]
        fn prop_partition_is_exact_cover(total in 0usize..100_000, d in 1usize..64) {
            let parts = partition_ranges(total, d);
            let sum: usize = parts.iter().map(|p| p.len()).sum();
            prop_assert_eq!(sum, total);
            prop_assert!(parts.windows(2).all(|w| w[0].end == w[1].start));
        }

        #[test]
        fn prop_k_enumerates_every_cell(m in 1usize..60) {
            // Every (i, j) with i <= j < m is hit exactly once.
            let mut seen = vec![false; m * m];
            for k in 0..triangle_size(m) {
                let (i, j) = k_to_ij(k);
                prop_assert!(j < m);
                let flat = i * m + j;
                prop_assert!(!seen[flat], "duplicate ({i},{j})");
                seen[flat] = true;
            }
            let count = seen.iter().filter(|&&s| s).count();
            prop_assert_eq!(count, triangle_size(m));
        }
    }
}

//! Error types for the parallel substrate.

use std::error::Error;
use std::fmt;

/// Errors from the message-passing runtime and the machine simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A rank index was outside `0..size`.
    RankOutOfRange {
        /// The offending rank.
        rank: usize,
        /// Communicator size.
        size: usize,
    },
    /// The peer's channel endpoint was dropped (peer panicked or exited).
    Disconnected {
        /// The peer rank involved.
        peer: usize,
    },
    /// A received message payload had an unexpected size or tag.
    MalformedMessage {
        /// Description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for ParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParError::RankOutOfRange { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            ParError::Disconnected { peer } => write!(f, "peer rank {peer} disconnected"),
            ParError::MalformedMessage { detail } => write!(f, "malformed message: {detail}"),
        }
    }
}

impl Error for ParError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(format!("{}", ParError::RankOutOfRange { rank: 5, size: 2 }).contains('5'));
        assert!(format!("{}", ParError::Disconnected { peer: 1 }).contains('1'));
    }
}

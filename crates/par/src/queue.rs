//! A long-lived work queue over OS worker threads — the substrate of
//! `bemcap-core`'s execution subsystem.
//!
//! [`run_partitioned`](crate::pool::run_partitioned) and
//! [`map_ordered`](crate::pool::map_ordered) are *scoped*: they spawn
//! workers for one parallel region and join them before returning, which
//! is exactly Algorithm 1's fork/join shape but useless for a daemon that
//! must keep one bounded pool alive across requests. [`WorkQueue`] is the
//! persistent counterpart: a fixed set of worker threads popping boxed
//! tasks from one FIFO queue, with
//!
//! * **strict FIFO dispatch** — tasks start in push order (completion
//!   order depends on task durations, so consumers that need ordered
//!   results demultiplex through their own channels);
//! * **worker identity** — each task receives the index of the worker
//!   running it, for the same per-worker accounting the scoped pool
//!   reports;
//! * **clean teardown** — dropping the queue closes it, lets queued tasks
//!   drain, and joins every worker.
//!
//! The queue itself is unbounded: admission control (rejecting work when
//! too much is waiting) is a policy question that lives in
//! `bemcap-core::exec`, which tracks waiting work and refuses submissions
//! before they ever reach this queue.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce(usize) + Send + 'static>;

struct State {
    tasks: VecDeque<Task>,
    open: bool,
}

struct Shared {
    state: Mutex<State>,
    ready: Condvar,
}

/// A fixed pool of worker threads draining one FIFO task queue. See the
/// module docs for the contract.
pub struct WorkQueue {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkQueue")
            .field("workers", &self.workers.len())
            .field("queued", &self.queued())
            .finish()
    }
}

impl WorkQueue {
    /// Starts `workers` threads waiting on an empty queue.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> WorkQueue {
        assert!(workers > 0, "work queue needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State { tasks: VecDeque::new(), open: true }),
            ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();
        WorkQueue { shared, workers: handles }
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Number of tasks pushed but not yet started.
    pub fn queued(&self) -> usize {
        self.shared.state.lock().expect("work queue poisoned").tasks.len()
    }

    /// Appends a task to the queue; some worker will eventually run it
    /// with its worker index. Tasks must not panic: a panicking task
    /// kills its worker thread (and panics the eventual [`WorkQueue`]
    /// drop), it does not poison the queue for other tasks.
    pub fn push(&self, task: impl FnOnce(usize) + Send + 'static) {
        let mut state = self.shared.state.lock().expect("work queue poisoned");
        assert!(state.open, "push on a closed work queue");
        state.tasks.push_back(Box::new(task));
        drop(state);
        self.shared.ready.notify_one();
    }
}

impl Drop for WorkQueue {
    /// Closes the queue, lets already-queued tasks drain, and joins every
    /// worker.
    fn drop(&mut self) {
        if let Ok(mut state) = self.shared.state.lock() {
            state.open = false;
        }
        self.shared.ready.notify_all();
        for handle in self.workers.drain(..) {
            handle.join().expect("work queue worker panicked");
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("work queue poisoned");
            loop {
                if let Some(task) = state.tasks.pop_front() {
                    break task;
                }
                if !state.open {
                    return;
                }
                state = shared.ready.wait(state).expect("work queue poisoned");
            }
        };
        task(worker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn tasks_run_and_drain_on_drop() {
        let counter = Arc::new(AtomicUsize::new(0));
        let queue = WorkQueue::new(3);
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            queue.push(move |_| {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(queue); // joins after draining
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn single_worker_runs_in_fifo_order() {
        let queue = WorkQueue::new(1);
        let (tx, rx) = mpsc::channel();
        for i in 0..20 {
            let tx = tx.clone();
            queue.push(move |_| tx.send(i).expect("receiver alive"));
        }
        let got: Vec<i32> = (0..20).map(|_| rx.recv().expect("task ran")).collect();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn workers_report_their_index() {
        let queue = WorkQueue::new(4);
        assert_eq!(queue.worker_count(), 4);
        let (tx, rx) = mpsc::channel();
        for _ in 0..40 {
            let tx = tx.clone();
            queue.push(move |w| tx.send(w).expect("receiver alive"));
        }
        for _ in 0..40 {
            assert!(rx.recv().expect("task ran") < 4);
        }
    }

    #[test]
    fn queued_counts_waiting_tasks() {
        let queue = WorkQueue::new(1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel();
        queue.push(move |_| {
            started_tx.send(()).expect("main alive");
            block_rx.recv().expect("released");
        });
        started_rx.recv().expect("first task started");
        // The worker is occupied: everything pushed now must wait.
        for _ in 0..5 {
            queue.push(|_| {});
        }
        assert_eq!(queue.queued(), 5);
        block_tx.send(()).expect("worker alive");
        drop(queue);
    }

    #[test]
    #[should_panic]
    fn zero_workers_panics() {
        let _ = WorkQueue::new(0);
    }
}

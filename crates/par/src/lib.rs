//! # bemcap-par — parallel execution substrate
//!
//! Everything the paper's §3/§5 need to run Algorithm 1:
//!
//! * [`partition`] — the independent index `k` over the upper triangle of
//!   P̃, its closed-form conversion to (i, j), and the balanced static
//!   partition into D ranges;
//! * [`pool`] — shared-memory execution (the OpenMP analogue of Fig. 4)
//!   with crossbeam scoped threads and private per-thread accumulation;
//! * [`mpi`] — an in-process message-passing runtime (the MPI analogue of
//!   Figs. 5–6): ranks, byte-counted send/recv, barriers — the paper itself
//!   "simulates the distributed memory behavior ... through MPI" on one
//!   machine;
//! * [`machine`] — a **deterministic parallel-machine simulator**: replays
//!   measured task costs on D virtual nodes with a latency+bandwidth
//!   communication model, producing the speedup/efficiency numbers of
//!   Table 3 and Fig. 8 on hosts with fewer physical cores (DESIGN.md §3);
//! * [`queue`] — a long-lived FIFO work queue over a fixed worker pool,
//!   the substrate of `bemcap-core`'s admission-controlled executor (the
//!   scoped pool forks and joins per region; the queue stays alive for a
//!   daemon's lifetime);
//! * [`trace`] — workload-balance statistics for the static partition,
//!   plus the process-lifetime metrics layer: atomic counter/gauge
//!   [`trace::Metric`]s in a global [`trace::Registry`] and
//!   [`trace::Span`] timing scopes, scrapable as a Prometheus-style
//!   text exposition.
//!
//! ```
//! use bemcap_par::partition::{k_to_ij, triangle_size};
//!
//! let m = 5;
//! let total = triangle_size(m);
//! assert_eq!(total, 15);
//! let (i, j) = k_to_ij(total - 1);
//! assert_eq!((i, j), (m - 1, m - 1)); // last k maps to the last diagonal
//! ```

pub mod error;
pub mod machine;
pub mod mpi;
pub mod partition;
pub mod pool;
pub mod queue;
pub mod trace;

pub use error::ParError;
pub use machine::{CommModel, MachineSim, Phase, SimReport};
pub use mpi::{Comm, Universe};
pub use partition::{ij_to_k, k_to_ij, partition_ranges, triangle_size};
pub use queue::WorkQueue;
pub use trace::{Metric, MetricKind, MetricSample, Registry, Span};

//! Deterministic parallel-machine simulator.
//!
//! The paper's scaling numbers (Table 3, Fig. 8) were measured on 4- and
//! 10-core machines. This host may have fewer physical cores, so wall-clock
//! speedups are not measurable directly; instead we *replay measured task
//! costs* on a simulated machine (DESIGN.md §3):
//!
//! * every task's cost is a real, measured single-thread duration;
//! * D virtual nodes execute their assigned tasks back to back;
//! * communication is charged with a latency + bandwidth (α–β) model using
//!   the *actual byte counts* of the message-passing runtime;
//! * barriers and serial sections model the algorithms' dependency
//!   structure (tree levels for FMM, transposes for FFT, the final gather
//!   of partial matrices for Algorithm 1).
//!
//! Because every input is measured and the schedule is deterministic, the
//! resulting speedup/efficiency reflect the *algorithms'* scalability —
//! load balance, serial fraction, communication volume — rather than the
//! host's core count.

use serde::{Deserialize, Serialize};

/// α–β communication cost model: a message of `b` bytes costs
/// `latency + b · inv_bandwidth` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommModel {
    /// Per-message latency α in seconds.
    pub latency: f64,
    /// Inverse bandwidth β in seconds per byte.
    pub inv_bandwidth: f64,
}

impl CommModel {
    /// A shared-memory-like model: sub-microsecond latency, tens of GB/s.
    pub fn shared_memory() -> CommModel {
        CommModel { latency: 2.0e-7, inv_bandwidth: 1.0 / 20.0e9 }
    }

    /// A commodity-cluster model: ~10 µs latency, ~1 GB/s links — the
    /// regime of the 1996/2001 baselines of Fig. 8.
    pub fn cluster() -> CommModel {
        CommModel { latency: 1.0e-5, inv_bandwidth: 1.0 / 1.0e9 }
    }

    /// Cost of one point-to-point message of `bytes`.
    pub fn message_cost(&self, bytes: usize) -> f64 {
        self.latency + bytes as f64 * self.inv_bandwidth
    }
}

/// One step of a simulated parallel program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// Every node runs independently; `costs_per_node[d]` seconds on node d.
    Parallel {
        /// Per-node compute seconds (length must equal the node count).
        costs_per_node: Vec<f64>,
    },
    /// All nodes wait for the slowest.
    Barrier,
    /// A single node (node 0) works while the others idle.
    Serial {
        /// Seconds of serial work.
        seconds: f64,
    },
    /// Every node exchanges `bytes` with every other node (dense
    /// all-to-all, e.g. an FFT transpose or Krylov residual exchange).
    AllToAll {
        /// Bytes per pairwise message.
        bytes: usize,
    },
    /// Node 0 sends `bytes` to every other node (tree broadcast).
    Broadcast {
        /// Bytes broadcast.
        bytes: usize,
    },
    /// Every node sends its payload to node 0, which receives serially —
    /// the partial-matrix gather of Fig. 6.
    GatherTo0 {
        /// Bytes sent by each node (length must equal the node count;
        /// entry 0 is ignored).
        bytes_per_node: Vec<usize>,
    },
}

/// Result of simulating a phase list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Number of simulated nodes.
    pub nodes: usize,
    /// Simulated makespan in seconds.
    pub makespan: f64,
    /// Total compute seconds summed over nodes (work).
    pub total_work: f64,
    /// Seconds attributed to communication on the critical path.
    pub comm_seconds: f64,
}

impl SimReport {
    /// Speedup with respect to a single-node time `t1`.
    pub fn speedup(&self, t1: f64) -> f64 {
        t1 / self.makespan
    }

    /// Parallel efficiency with respect to a single-node time `t1`.
    pub fn efficiency(&self, t1: f64) -> f64 {
        self.speedup(t1) / self.nodes as f64
    }
}

/// The simulated machine: D nodes plus a communication model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineSim {
    nodes: usize,
    comm: CommModel,
}

impl MachineSim {
    /// Creates a machine with `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize, comm: CommModel) -> MachineSim {
        assert!(nodes > 0, "machine needs at least one node");
        MachineSim { nodes, comm }
    }

    /// Node count.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The communication model.
    pub fn comm(&self) -> CommModel {
        self.comm
    }

    /// Executes the phases and reports the makespan.
    ///
    /// # Panics
    ///
    /// Panics if a per-node vector's length differs from the node count.
    pub fn simulate(&self, phases: &[Phase]) -> SimReport {
        let d = self.nodes;
        let mut clock = vec![0.0f64; d];
        let mut total_work = 0.0;
        let mut comm_seconds = 0.0;
        for phase in phases {
            match phase {
                Phase::Parallel { costs_per_node } => {
                    assert_eq!(costs_per_node.len(), d, "per-node cost vector length");
                    for (c, cost) in clock.iter_mut().zip(costs_per_node) {
                        *c += cost;
                        total_work += cost;
                    }
                }
                Phase::Barrier => {
                    let max = clock.iter().cloned().fold(0.0, f64::max);
                    clock.fill(max);
                }
                Phase::Serial { seconds } => {
                    let max = clock.iter().cloned().fold(0.0, f64::max);
                    clock.fill(max);
                    clock[0] += seconds;
                    total_work += seconds;
                    // Later phases that need all nodes will re-sync; a
                    // serial region implicitly holds the others at the sync
                    // point.
                    let max = clock.iter().cloned().fold(0.0, f64::max);
                    clock.fill(max);
                }
                Phase::AllToAll { bytes } => {
                    if d > 1 {
                        let before = clock.iter().cloned().fold(0.0, f64::max);
                        let cost = (d - 1) as f64 * self.comm.message_cost(*bytes);
                        clock.fill(before + cost);
                        comm_seconds += cost;
                    }
                }
                Phase::Broadcast { bytes } => {
                    if d > 1 {
                        let before = clock.iter().cloned().fold(0.0, f64::max);
                        let hops = (d as f64).log2().ceil();
                        let cost = hops * self.comm.message_cost(*bytes);
                        clock.fill(before + cost);
                        comm_seconds += cost;
                    }
                }
                Phase::GatherTo0 { bytes_per_node } => {
                    assert_eq!(bytes_per_node.len(), d, "per-node byte vector length");
                    // Node 0 drains the senders in arrival order; each
                    // transfer serializes on the receiver's link.
                    let mut t0 = clock[0];
                    let mut arrivals: Vec<(f64, usize)> =
                        (1..d).map(|s| (clock[s] + self.comm.latency, bytes_per_node[s])).collect();
                    arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));
                    let before = t0;
                    for (arrival, bytes) in arrivals {
                        t0 = t0.max(arrival) + bytes as f64 * self.comm.inv_bandwidth;
                    }
                    comm_seconds += t0 - before;
                    clock[0] = t0;
                }
            }
        }
        let makespan = clock.iter().cloned().fold(0.0, f64::max);
        SimReport { nodes: d, makespan, total_work, comm_seconds }
    }

    /// Convenience: simulate Algorithm 1's setup on this machine from the
    /// per-task costs. Tasks are split into D contiguous ranges (the static
    /// partition); the per-node partial matrices of `partial_bytes` are
    /// gathered to node 0; `serial_pre`/`serial_post` model the sequential
    /// sections (input parsing + allocation, and the dense solve).
    pub fn simulate_setup(
        &self,
        task_costs: &[f64],
        partial_bytes: usize,
        serial_pre: f64,
        serial_post: f64,
    ) -> SimReport {
        let ranges = crate::partition::partition_ranges(task_costs.len(), self.nodes);
        let costs: Vec<f64> = ranges.iter().map(|r| task_costs[r.clone()].iter().sum()).collect();
        let mut bytes = vec![partial_bytes; self.nodes];
        bytes[0] = 0;
        self.simulate(&[
            Phase::Serial { seconds: serial_pre },
            Phase::Broadcast { bytes: 1024 }, // template definitions
            Phase::Parallel { costs_per_node: costs },
            Phase::GatherTo0 { bytes_per_node: bytes },
            Phase::Serial { seconds: serial_post },
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(d: usize) -> MachineSim {
        MachineSim::new(d, CommModel::shared_memory())
    }

    #[test]
    fn perfect_parallel_work_scales_linearly() {
        let costs = vec![1.0; 8];
        let r1 = machine(1).simulate(&[Phase::Parallel { costs_per_node: vec![8.0] }]);
        let r8 = machine(8).simulate(&[Phase::Parallel { costs_per_node: costs }]);
        assert_eq!(r1.makespan, 8.0);
        assert_eq!(r8.makespan, 1.0);
        assert!((r8.efficiency(r1.makespan) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn barrier_waits_for_slowest() {
        let r = machine(3).simulate(&[
            Phase::Parallel { costs_per_node: vec![1.0, 5.0, 2.0] },
            Phase::Barrier,
            Phase::Parallel { costs_per_node: vec![1.0, 1.0, 1.0] },
        ]);
        assert_eq!(r.makespan, 6.0);
    }

    #[test]
    fn serial_section_amdahl() {
        // 10 % serial fraction: Amdahl limit at D=10 is 1/(0.1+0.9/10)=5.26
        let d = 10;
        let serial = 1.0;
        let parallel = 9.0;
        let t1 = machine(1)
            .simulate(&[
                Phase::Serial { seconds: serial },
                Phase::Parallel { costs_per_node: vec![parallel] },
            ])
            .makespan;
        let rd = machine(d).simulate(&[
            Phase::Serial { seconds: serial },
            Phase::Parallel { costs_per_node: vec![parallel / d as f64; d] },
        ]);
        assert!((rd.speedup(t1) - 10.0 / 1.9).abs() < 1e-9);
    }

    #[test]
    fn comm_phases_charge_time() {
        let m = MachineSim::new(4, CommModel::cluster());
        let r = m.simulate(&[Phase::AllToAll { bytes: 1_000_000 }]);
        // 3 messages × (10 µs + 1 ms) each.
        assert!((r.makespan - 3.0 * (1.0e-5 + 1.0e-3)).abs() < 1e-9);
        assert!(r.comm_seconds > 0.0);
        let rb = m.simulate(&[Phase::Broadcast { bytes: 1_000_000 }]);
        assert!((rb.makespan - 2.0 * (1.0e-5 + 1.0e-3)).abs() < 1e-9);
    }

    #[test]
    fn gather_serializes_on_root() {
        let m = MachineSim::new(3, CommModel::cluster());
        let r = m.simulate(&[
            Phase::Parallel { costs_per_node: vec![0.0, 1.0, 1.0] },
            Phase::GatherTo0 { bytes_per_node: vec![0, 1_000_000, 1_000_000] },
        ]);
        // Root waits for the 1 s arrivals, then drains 2 MB at 1 GB/s.
        assert!(r.makespan >= 1.0 + 2.0e-3 - 1e-9, "{}", r.makespan);
    }

    #[test]
    fn single_node_has_no_comm() {
        let r = machine(1)
            .simulate(&[Phase::AllToAll { bytes: 1 << 20 }, Phase::Broadcast { bytes: 1 << 20 }]);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.comm_seconds, 0.0);
    }

    #[test]
    fn setup_simulation_high_efficiency() {
        // Algorithm 1 on uniform task costs: efficiency should be ≈ 1 up to
        // the tiny serial and gather overheads — the paper's ~90 %.
        // 0.1 s of parallel work, 0.2 % serial: eff@10 ≈ 0.98 (Amdahl).
        let tasks = vec![1e-5; 10_000];
        let t1 = machine(1).simulate_setup(&tasks, 0, 1e-4, 1e-4).makespan;
        for d in [2, 4, 8, 10] {
            let r = machine(d).simulate_setup(&tasks, 80_000, 1e-4, 1e-4);
            let eff = r.efficiency(t1);
            assert!(eff > 0.9 && eff <= 1.0, "d={d}: eff={eff}");
        }
    }

    #[test]
    #[should_panic]
    fn wrong_cost_vector_length_panics() {
        let _ = machine(2).simulate(&[Phase::Parallel { costs_per_node: vec![1.0] }]);
    }
}

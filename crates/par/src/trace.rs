//! Workload-balance statistics for the static k-partition.
//!
//! §3 argues that dividing work by *entries of P̃* is "sufficiently
//! balanced" even though individual integral costs vary with template type
//! and orientation. These statistics quantify that claim for Table 3's
//! commentary.

use serde::{Deserialize, Serialize};

use crate::partition::partition_ranges;

/// Balance statistics of one partitioned workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalanceStats {
    /// Per-node total cost.
    pub per_node: Vec<f64>,
    /// Largest per-node cost.
    pub max: f64,
    /// Mean per-node cost.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfect balance; the parallel efficiency of a
    /// pure compute phase is bounded by `mean / max`.
    pub imbalance: f64,
}

/// Computes balance statistics for `task_costs` split into `d` contiguous
/// ranges (Algorithm 1's partition).
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn balance_of_partition(task_costs: &[f64], d: usize) -> BalanceStats {
    let per_node: Vec<f64> = partition_ranges(task_costs.len(), d)
        .into_iter()
        .map(|r| task_costs[r].iter().sum())
        .collect();
    let max = per_node.iter().cloned().fold(0.0, f64::max);
    let mean = per_node.iter().sum::<f64>() / d as f64;
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    BalanceStats { per_node, max, mean, imbalance }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_are_balanced() {
        let costs = vec![1.0; 1000];
        let s = balance_of_partition(&costs, 8);
        assert!(s.imbalance < 1.01, "imbalance {}", s.imbalance);
        assert_eq!(s.per_node.len(), 8);
    }

    #[test]
    fn skewed_costs_show_imbalance() {
        // All cost concentrated in the first range.
        let mut costs = vec![0.0; 100];
        for c in costs.iter_mut().take(25) {
            *c = 1.0;
        }
        let s = balance_of_partition(&costs, 4);
        assert!((s.imbalance - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_workload() {
        let s = balance_of_partition(&[], 4);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!(s.max, 0.0);
    }
}

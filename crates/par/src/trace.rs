//! Workload-balance statistics and the process-lifetime metrics layer.
//!
//! Two independent facilities share this module:
//!
//! * [`BalanceStats`] / [`balance_of_partition`] — §3 argues that
//!   dividing work by *entries of P̃* is "sufficiently balanced" even
//!   though individual integral costs vary with template type and
//!   orientation. These statistics quantify that claim for Table 3's
//!   commentary.
//! * [`Metric`] / [`Registry`] / [`Span`] — a lightweight observability
//!   substrate: monotonic counters and point-in-time gauges over a
//!   single `AtomicU64` each, registered once in a process-lifetime
//!   [`Registry`] and scraped as a Prometheus-style text exposition or a
//!   structured snapshot. The hot path costs one relaxed atomic add and
//!   never allocates; registration (cold, once per metric name) leaks
//!   one small allocation so handles are `&'static` and free to copy
//!   into any thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::partition::partition_ranges;

/// Balance statistics of one partitioned workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalanceStats {
    /// Per-node total cost.
    pub per_node: Vec<f64>,
    /// Largest per-node cost.
    pub max: f64,
    /// Mean per-node cost.
    pub mean: f64,
    /// `max / mean` — 1.0 is perfect balance; the parallel efficiency of a
    /// pure compute phase is bounded by `mean / max`.
    pub imbalance: f64,
}

/// Computes balance statistics for `task_costs` split into `d` contiguous
/// ranges (Algorithm 1's partition).
///
/// # Panics
///
/// Panics if `d == 0`.
pub fn balance_of_partition(task_costs: &[f64], d: usize) -> BalanceStats {
    let per_node: Vec<f64> = partition_ranges(task_costs.len(), d)
        .into_iter()
        .map(|r| task_costs[r].iter().sum())
        .collect();
    let max = per_node.iter().cloned().fold(0.0, f64::max);
    let mean = per_node.iter().sum::<f64>() / d as f64;
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    BalanceStats { per_node, max, mean, imbalance }
}

/// What a [`Metric`] measures, mirroring the two Prometheus families the
/// text exposition can express.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically non-decreasing over the process lifetime
    /// (increment-only; resets only with the process).
    Counter,
    /// A point-in-time value, overwritten at will — typically set right
    /// before a scrape from whatever owns the instantaneous state.
    Gauge,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One named metric: a `u64` cell plus its exposition metadata.
///
/// Handles are `&'static` (see [`Registry::counter`] /
/// [`Registry::gauge`]), so hot paths copy a pointer once at startup and
/// then pay exactly one relaxed atomic RMW per event — no locks, no
/// allocation, no branching on whether a sink is attached.
#[derive(Debug)]
pub struct Metric {
    name: &'static str,
    help: &'static str,
    kind: MetricKind,
    value: AtomicU64,
}

impl Metric {
    /// Metric name as registered (Prometheus conventions: counters end
    /// in `_total`, time accumulators name their unit).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line human description, emitted as the `# HELP` line.
    pub fn help(&self) -> &'static str {
        self.help
    }

    /// Counter or gauge.
    pub fn kind(&self) -> MetricKind {
        self.kind
    }

    /// Adds `delta` (counters; also usable for gauge adjustments).
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrites the value (gauges: the instantaneous state).
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// One metric's state at scrape time (see [`Registry::snapshot`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricSample {
    /// Metric name as registered.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Value at the moment of the snapshot.
    pub value: u64,
}

/// A set of registered [`Metric`]s, scrapable as a whole.
///
/// Almost every caller wants [`Registry::global`] — the process-lifetime
/// registry every subsystem registers into, which a daemon scrape or a
/// `--metrics` dump renders in one call. Separate registries exist only
/// so tests can exercise rendering hermetically.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<Vec<&'static Metric>>,
}

impl Registry {
    /// An empty registry (tests; production code uses
    /// [`Registry::global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-lifetime registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Registers (or finds) a monotonic counter named `name`.
    ///
    /// Registration is idempotent: the first call for a name leaks one
    /// [`Metric`] into the process lifetime and later calls return the
    /// same handle, so concurrent initialization from several subsystems
    /// is safe and double-counting is impossible.
    pub fn counter(&self, name: &'static str, help: &'static str) -> &'static Metric {
        self.register(name, help, MetricKind::Counter)
    }

    /// Registers (or finds) a gauge named `name` (see
    /// [`Registry::counter`] for idempotence).
    pub fn gauge(&self, name: &'static str, help: &'static str) -> &'static Metric {
        self.register(name, help, MetricKind::Gauge)
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
    ) -> &'static Metric {
        let mut metrics = self.metrics.lock().expect("metric registry poisoned");
        if let Some(existing) = metrics.iter().find(|m| m.name == name) {
            debug_assert_eq!(existing.kind, kind, "metric '{name}' re-registered as another kind");
            return existing;
        }
        let metric: &'static Metric =
            Box::leak(Box::new(Metric { name, help, kind, value: AtomicU64::new(0) }));
        metrics.push(metric);
        metric
    }

    /// Every registered metric with its current value, sorted by name
    /// (deterministic scrape order regardless of registration order).
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let metrics = self.metrics.lock().expect("metric registry poisoned");
        let mut samples: Vec<MetricSample> = metrics
            .iter()
            .map(|m| MetricSample { name: m.name, help: m.help, kind: m.kind, value: m.get() })
            .collect();
        samples.sort_by_key(|s| s.name);
        samples
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` / `name value`, one family per metric).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for s in self.snapshot() {
            out.push_str("# HELP ");
            out.push_str(s.name);
            out.push(' ');
            out.push_str(s.help);
            out.push_str("\n# TYPE ");
            out.push_str(s.name);
            out.push(' ');
            out.push_str(s.kind.as_str());
            out.push('\n');
            out.push_str(s.name);
            out.push(' ');
            out.push_str(&s.value.to_string());
            out.push('\n');
        }
        out
    }
}

/// A timing scope: accumulates its wall-clock duration, in nanoseconds,
/// into a counter when dropped.
///
/// ```
/// use bemcap_par::trace::{Registry, Span};
///
/// let nanos = Registry::global()
///     .counter("doc_phase_nanos_total", "Nanoseconds spent in the documented phase.");
/// {
///     let _span = Span::enter(nanos);
///     // ... the measured phase ...
/// }
/// assert!(nanos.get() > 0);
/// ```
#[must_use = "a span accumulates time when dropped; binding it to _ ends it immediately"]
pub struct Span<'a> {
    metric: &'a Metric,
    start: Instant,
}

impl<'a> Span<'a> {
    /// Starts timing; the elapsed nanoseconds land in `metric` on drop.
    pub fn enter(metric: &'a Metric) -> Span<'a> {
        Span { metric, start: Instant::now() }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        // u64 nanoseconds overflow after ~584 years of accumulated time;
        // saturate rather than wrap if a clock misbehaves that badly.
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.metric.add(nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_costs_are_balanced() {
        let costs = vec![1.0; 1000];
        let s = balance_of_partition(&costs, 8);
        assert!(s.imbalance < 1.01, "imbalance {}", s.imbalance);
        assert_eq!(s.per_node.len(), 8);
    }

    #[test]
    fn skewed_costs_show_imbalance() {
        // All cost concentrated in the first range.
        let mut costs = vec![0.0; 100];
        for c in costs.iter_mut().take(25) {
            *c = 1.0;
        }
        let s = balance_of_partition(&costs, 4);
        assert!((s.imbalance - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_workload() {
        let s = balance_of_partition(&[], 4);
        assert_eq!(s.imbalance, 1.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn counters_accumulate_and_registration_is_idempotent() {
        let registry = Registry::new();
        let a = registry.counter("test_events_total", "Events seen.");
        let again = registry.counter("test_events_total", "Events seen.");
        assert!(std::ptr::eq(a, again), "same name must yield the same handle");
        a.inc();
        again.add(4);
        assert_eq!(a.get(), 5);
        assert_eq!(registry.snapshot().len(), 1, "no duplicate registration");
    }

    #[test]
    fn gauges_overwrite() {
        let registry = Registry::new();
        let g = registry.gauge("test_resident", "Resident things.");
        g.set(42);
        g.set(7);
        assert_eq!(g.get(), 7);
        assert_eq!(g.kind(), MetricKind::Gauge);
    }

    #[test]
    fn spans_accumulate_elapsed_nanos() {
        let registry = Registry::new();
        let nanos = registry.counter("test_phase_nanos_total", "Phase time.");
        {
            let _span = Span::enter(nanos);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let first = nanos.get();
        assert!(first >= 2_000_000, "slept 2ms but recorded {first}ns");
        {
            let _span = Span::enter(nanos);
        }
        assert!(nanos.get() >= first, "spans only ever add");
    }

    #[test]
    fn prometheus_rendering_is_sorted_and_well_formed() {
        let registry = Registry::new();
        registry.counter("test_b_total", "Second alphabetically.").add(3);
        registry.gauge("test_a_resident", "First alphabetically.").set(9);
        let text = registry.render_prometheus();
        let expected = "# HELP test_a_resident First alphabetically.\n\
                        # TYPE test_a_resident gauge\n\
                        test_a_resident 9\n\
                        # HELP test_b_total Second alphabetically.\n\
                        # TYPE test_b_total counter\n\
                        test_b_total 3\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let m = Registry::global().counter("test_global_probe_total", "Probe.");
        let again = Registry::global().counter("test_global_probe_total", "Probe.");
        assert!(std::ptr::eq(m, again));
    }

    #[test]
    fn snapshot_reflects_current_values() {
        let registry = Registry::new();
        let c = registry.counter("test_snap_total", "Snapshot probe.");
        c.add(11);
        let s = &registry.snapshot()[0];
        assert_eq!((s.name, s.kind, s.value), ("test_snap_total", MetricKind::Counter, 11));
        assert_eq!(s.help, "Snapshot probe.");
    }
}

//! Shared-memory parallel execution (the OpenMP analogue, Fig. 4).
//!
//! The paper's shared-memory flow: the main thread allocates P, spawns
//! D − 1 worker threads, each thread computes the P̃ entries of its
//! partition in *private* memory and merges the result; threads then join
//! back into the main thread. [`run_partitioned`] reproduces exactly that
//! structure with crossbeam scoped threads: workers return private values
//! that the caller merges, so there is no locking on the hot path.

use std::time::Instant;

use crate::partition::partition_ranges;

/// Per-worker timing of one parallel region.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerTiming {
    /// Worker index (0 = the main thread's share).
    pub worker: usize,
    /// The half-open range of `k` indices this worker processed.
    pub range: std::ops::Range<usize>,
    /// Wall-clock seconds spent inside the worker body.
    pub seconds: f64,
}

/// Runs `work` over `[0, total)` split into `threads` contiguous ranges
/// (Algorithm 1's partition), each on its own scoped thread; returns the
/// workers' private results plus per-worker timings, in worker order.
///
/// The closure receives `(worker_index, range)` and must accumulate into
/// private state it returns — mirroring Fig. 4 where each thread writes a
/// private copy before the merge.
///
/// # Panics
///
/// Panics if `threads == 0` or if any worker panics.
pub fn run_partitioned<T, F>(threads: usize, total: usize, work: F) -> (Vec<T>, Vec<WorkerTiming>)
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let ranges = partition_ranges(total, threads);
    if threads == 1 {
        // Sequential fast path: no thread machinery at all.
        let start = Instant::now();
        let out = work(0, ranges[0].clone());
        let t = WorkerTiming {
            worker: 0,
            range: ranges[0].clone(),
            seconds: start.elapsed().as_secs_f64(),
        };
        return (vec![out], vec![t]);
    }
    let mut slots: Vec<Option<(T, WorkerTiming)>> = Vec::new();
    for _ in 0..threads {
        slots.push(None);
    }
    crossbeam::thread::scope(|scope| {
        let work = &work;
        for (w, (slot, range)) in slots.iter_mut().zip(ranges.iter().cloned()).enumerate() {
            scope.spawn(move |_| {
                let start = Instant::now();
                let out = work(w, range.clone());
                let timing =
                    WorkerTiming { worker: w, range, seconds: start.elapsed().as_secs_f64() };
                *slot = Some((out, timing));
            });
        }
    })
    .expect("worker thread panicked");
    let mut results = Vec::with_capacity(threads);
    let mut timings = Vec::with_capacity(threads);
    for slot in slots {
        let (r, t) = slot.expect("every worker fills its slot");
        results.push(r);
        timings.push(t);
    }
    (results, timings)
}

/// Maps `f` over the job indices `0..jobs` on `threads` workers and
/// returns the results **in job order**, regardless of the pool size —
/// the scheduling primitive behind `bemcap-core`'s batch extraction.
///
/// Jobs are split into contiguous per-worker ranges (the same static
/// partition as Algorithm 1); each worker runs its range in ascending job
/// order and the per-worker result vectors are concatenated in worker
/// order, which restores the input order exactly. The closure receives
/// `(worker_index, job_index)`.
///
/// # Panics
///
/// Panics if `threads == 0` or if any worker panics.
pub fn map_ordered<T, F>(threads: usize, jobs: usize, f: F) -> (Vec<T>, Vec<WorkerTiming>)
where
    T: Send,
    F: Fn(usize, usize) -> T + Sync,
{
    let (parts, timings) =
        run_partitioned(threads, jobs, |w, range| range.map(|job| f(w, job)).collect::<Vec<T>>());
    let mut out = Vec::with_capacity(jobs);
    for part in parts {
        out.extend(part);
    }
    (out, timings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_partition_correctly() {
        let total = 10_000;
        for threads in [1, 2, 3, 7] {
            let (parts, timings) =
                run_partitioned(threads, total, |_, range| range.map(|k| k as u64).sum::<u64>());
            let sum: u64 = parts.iter().sum();
            assert_eq!(sum, (total as u64 - 1) * total as u64 / 2, "threads={threads}");
            assert_eq!(timings.len(), threads);
            // Ranges tile [0, total).
            assert_eq!(timings[0].range.start, 0);
            assert_eq!(timings.last().unwrap().range.end, total);
        }
    }

    #[test]
    fn workers_have_private_state() {
        // Each worker returns its own vector — no cross-talk.
        let (parts, _) = run_partitioned(4, 100, |w, range| (w, range.len()));
        let ids: Vec<usize> = parts.iter().map(|p| p.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        let total: usize = parts.iter().map(|p| p.1).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn empty_work_is_fine() {
        let (parts, _) = run_partitioned(3, 0, |_, range| range.len());
        assert_eq!(parts, vec![0, 0, 0]);
    }

    #[test]
    #[should_panic]
    fn zero_threads_panics() {
        let _ = run_partitioned(0, 10, |_, _| ());
    }

    #[test]
    fn map_ordered_preserves_job_order_for_every_pool_size() {
        for threads in [1, 2, 3, 5, 8] {
            let (out, timings) = map_ordered(threads, 23, |_, job| job * job);
            assert_eq!(out, (0..23).map(|j| j * j).collect::<Vec<_>>(), "threads={threads}");
            assert_eq!(timings.len(), threads);
        }
    }

    #[test]
    fn map_ordered_reports_worker_indices() {
        let (out, _) = map_ordered(4, 12, |w, job| (w, job));
        // Contiguous partition: jobs 0..3 on worker 0, 3..6 on 1, ...
        for (slot, (w, job)) in out.iter().enumerate() {
            assert_eq!(*job, slot);
            assert_eq!(*w, slot / 3);
        }
    }

    #[test]
    fn map_ordered_empty_and_fewer_jobs_than_workers() {
        let (out, _) = map_ordered(4, 0, |_, job| job);
        assert!(out.is_empty());
        let (out, _) = map_ordered(8, 3, |_, job| job + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }
}

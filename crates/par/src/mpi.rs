//! An in-process message-passing runtime (the MPI analogue, Figs. 5–6).
//!
//! Ranks run as OS threads; every ordered pair of ranks is connected by an
//! unbounded byte channel, and payloads are *serialized to bytes* on send —
//! so communication volume is real and counted, which is what the
//! [`crate::machine`] simulator's communication model is calibrated from.
//! The paper's own distributed-memory results were produced the same way:
//! "the distributed memory behavior is simulated by the operating system
//! through MPI on a 2-processor-12-core machine" (§5.2).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use crossbeam::channel::{unbounded, Receiver, Sender};

use crate::error::ParError;

/// A communicator endpoint owned by one rank.
pub struct Comm {
    rank: usize,
    size: usize,
    senders: Vec<Sender<Vec<u8>>>,
    receivers: Vec<Receiver<Vec<u8>>>,
    barrier: Arc<Barrier>,
    bytes_sent: Arc<AtomicU64>,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm").field("rank", &self.rank).field("size", &self.size).finish()
    }
}

impl Comm {
    /// This rank's index.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the universe.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Total bytes sent by *all* ranks so far (monotone counter shared by
    /// the universe) — the raw input to the communication-cost model.
    pub fn universe_bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Sends a byte payload to `dst`.
    ///
    /// # Errors
    ///
    /// * [`ParError::RankOutOfRange`] for an invalid destination;
    /// * [`ParError::Disconnected`] if the destination already exited.
    pub fn send_bytes(&self, dst: usize, payload: Vec<u8>) -> Result<(), ParError> {
        if dst >= self.size {
            return Err(ParError::RankOutOfRange { rank: dst, size: self.size });
        }
        self.bytes_sent.fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.senders[dst].send(payload).map_err(|_| ParError::Disconnected { peer: dst })
    }

    /// Blocking receive of the next payload sent by `src`.
    ///
    /// # Errors
    ///
    /// * [`ParError::RankOutOfRange`] for an invalid source;
    /// * [`ParError::Disconnected`] if the source exited without sending.
    pub fn recv_bytes(&self, src: usize) -> Result<Vec<u8>, ParError> {
        if src >= self.size {
            return Err(ParError::RankOutOfRange { rank: src, size: self.size });
        }
        self.receivers[src].recv().map_err(|_| ParError::Disconnected { peer: src })
    }

    /// Sends a slice of f64 values (little-endian encoded).
    ///
    /// # Errors
    ///
    /// Same as [`Comm::send_bytes`].
    pub fn send_f64s(&self, dst: usize, values: &[f64]) -> Result<(), ParError> {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.send_bytes(dst, bytes)
    }

    /// Receives a slice of f64 values from `src`.
    ///
    /// # Errors
    ///
    /// * the errors of [`Comm::recv_bytes`];
    /// * [`ParError::MalformedMessage`] if the payload is not a whole
    ///   number of f64 values.
    pub fn recv_f64s(&self, src: usize) -> Result<Vec<f64>, ParError> {
        let bytes = self.recv_bytes(src)?;
        if bytes.len() % 8 != 0 {
            return Err(ParError::MalformedMessage {
                detail: format!("payload of {} bytes is not f64-aligned", bytes.len()),
            });
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }

    /// Synchronizes all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// The set of ranks. [`Universe::run`] spawns one thread per rank and
/// returns each rank's result, ordered by rank.
#[derive(Debug, Clone, Copy)]
pub struct Universe;

impl Universe {
    /// Runs `f` on `size` ranks and collects their results in rank order.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or if any rank panics.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Sync,
    {
        assert!(size > 0, "universe needs at least one rank");
        // Build the size×size channel mesh.
        let mut txs: Vec<Vec<Option<Sender<Vec<u8>>>>> = Vec::new();
        let mut rxs: Vec<Vec<Option<Receiver<Vec<u8>>>>> = Vec::new();
        for _ in 0..size {
            txs.push((0..size).map(|_| None).collect());
            rxs.push((0..size).map(|_| None).collect());
        }
        for s in 0..size {
            for d in 0..size {
                let (tx, rx) = unbounded();
                txs[s][d] = Some(tx);
                rxs[d][s] = Some(rx);
            }
        }
        let barrier = Arc::new(Barrier::new(size));
        let bytes_sent = Arc::new(AtomicU64::new(0));
        let mut comms: Vec<Comm> = Vec::with_capacity(size);
        for (rank, (tx_row, rx_row)) in txs.into_iter().zip(rxs).enumerate() {
            comms.push(Comm {
                rank,
                size,
                senders: tx_row.into_iter().map(|t| t.expect("mesh built")).collect(),
                receivers: rx_row.into_iter().map(|r| r.expect("mesh built")).collect(),
                barrier: Arc::clone(&barrier),
                bytes_sent: Arc::clone(&bytes_sent),
            });
        }
        let mut slots: Vec<Option<R>> = Vec::new();
        for _ in 0..size {
            slots.push(None);
        }
        crossbeam::thread::scope(|scope| {
            let f = &f;
            for (slot, comm) in slots.iter_mut().zip(comms) {
                scope.spawn(move |_| {
                    *slot = Some(f(comm));
                });
            }
        })
        .expect("rank thread panicked");
        slots.into_iter().map(|s| s.expect("every rank returns")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        let results = Universe::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_f64s(next, &[comm.rank() as f64]).unwrap();
            let got = comm.recv_f64s(prev).unwrap();
            got[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn gather_to_root() {
        let results = Universe::run(5, |comm| {
            if comm.rank() == 0 {
                let mut total = 0.0;
                for src in 1..comm.size() {
                    total += comm.recv_f64s(src).unwrap().iter().sum::<f64>();
                }
                total
            } else {
                let data: Vec<f64> = (0..comm.rank()).map(|i| i as f64 + 1.0).collect();
                comm.send_f64s(0, &data).unwrap();
                0.0
            }
        });
        // Σ over ranks 1..5 of Σ 1..=rank = 1 + 3 + 6 + 10 = 20
        assert_eq!(results[0], 20.0);
    }

    #[test]
    fn byte_accounting() {
        let results = Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_f64s(1, &[1.0; 100]).unwrap();
            } else {
                let _ = comm.recv_f64s(0).unwrap();
            }
            comm.barrier();
            comm.universe_bytes_sent()
        });
        assert_eq!(results[0], 800);
        assert_eq!(results[1], 800);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        Universe::run(4, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn rank_errors() {
        Universe::run(2, |comm| {
            assert!(matches!(
                comm.send_bytes(9, vec![]),
                Err(ParError::RankOutOfRange { rank: 9, size: 2 })
            ));
            assert!(comm.recv_bytes(9).is_err());
        });
    }

    #[test]
    fn malformed_f64_payload() {
        Universe::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(1, vec![1, 2, 3]).unwrap();
            } else {
                assert!(matches!(comm.recv_f64s(0), Err(ParError::MalformedMessage { .. })));
            }
        });
    }

    #[test]
    fn self_send_works() {
        Universe::run(1, |comm| {
            comm.send_f64s(0, &[42.0]).unwrap();
            assert_eq!(comm.recv_f64s(0).unwrap(), vec![42.0]);
        });
    }
}

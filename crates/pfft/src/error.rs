//! Error types for the precorrected-FFT solver.

use bemcap_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors from building or running the pFFT operator.
#[derive(Debug, Clone, PartialEq)]
pub enum PfftError {
    /// The mesh has no panels.
    EmptyMesh,
    /// The requested grid would be degenerate or absurdly large.
    BadGrid {
        /// Explanation.
        detail: String,
    },
    /// The Krylov solve failed.
    Solve(LinalgError),
}

impl fmt::Display for PfftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfftError::EmptyMesh => write!(f, "mesh has no panels"),
            PfftError::BadGrid { detail } => write!(f, "bad grid: {detail}"),
            PfftError::Solve(e) => write!(f, "krylov solve failed: {e}"),
        }
    }
}

impl Error for PfftError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PfftError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for PfftError {
    fn from(e: LinalgError) -> Self {
        PfftError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(!format!("{}", PfftError::EmptyMesh).is_empty());
        assert!(format!("{}", PfftError::BadGrid { detail: "x".into() }).contains("x"));
    }
}

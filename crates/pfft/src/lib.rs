//! # bemcap-pfft — precorrected-FFT piecewise-constant BEM baseline
//!
//! The Phillips–White precorrected-FFT method \[6\], the second baseline the
//! paper's Fig. 8 compares against (parallel version: Aluru et al. \[1\]).
//! The approximated matvec:
//!
//! 1. **project** panel charges onto a uniform grid (trilinear stencils);
//! 2. **convolve** with the sampled 1/r kernel via 3-D FFT;
//! 3. **interpolate** grid potentials back to panel centers;
//! 4. **precorrect**: for nearby pairs, subtract the (inaccurate)
//!    grid-mediated term and add the exact closed-form Galerkin integral.
//!
//! The FFT itself ([`fft`]) is written from scratch (iterative radix-2).
//! The parallel cost model ([`parallel`]) expresses the FFT's all-to-all
//! transposes — the structural reason the parallel pFFT efficiency
//! collapses to ~42 % at 8 nodes in Fig. 8.
//!
//! ```
//! use bemcap_pfft::fft::{fft_inplace, ifft_inplace, Complex};
//!
//! let mut data: Vec<Complex> = (0..8).map(|i| Complex::new(i as f64, 0.0)).collect();
//! let orig = data.clone();
//! fft_inplace(&mut data);
//! ifft_inplace(&mut data);
//! for (a, b) in data.iter().zip(&orig) {
//!     assert!((a.re - b.re).abs() < 1e-12);
//! }
//! ```

pub mod error;
pub mod fft;
pub mod grid;
pub mod operator;
pub mod parallel;

pub use error::PfftError;
pub use operator::{solve_capacitance, solve_prepared, PfftConfig, PfftOperator};

//! Parallel cost model of the precorrected FFT (the Fig. 8 "\[1\]" curve).
//!
//! The structural bottleneck: each 3-D FFT on a node-distributed grid
//! needs global transposes (all-to-all of the whole grid) — twice per
//! forward/inverse pair — plus the Krylov residual exchange every
//! iteration. That communication is proportional to the *grid*, not the
//! panel count, so efficiency collapses quickly (42 % at 8 nodes in the
//! original paper \[1\]).

use bemcap_par::{CommModel, MachineSim, Phase};

/// Measured per-unit costs of one pFFT solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfftCostModel {
    /// Seconds of projection+interpolation per panel per matvec.
    pub project_per_panel: f64,
    /// Seconds of FFT butterfly work per grid point per matvec (both
    /// transforms plus the spectral multiply).
    pub fft_per_point: f64,
    /// Seconds of precorrection per near-field entry per matvec.
    pub precorrect_per_entry: f64,
    /// Panels N.
    pub n: usize,
    /// Padded grid points.
    pub grid_points: usize,
    /// Near-field entries.
    pub near_entries: usize,
    /// Krylov iterations.
    pub iterations: usize,
    /// Serial setup seconds (kernel FFT, stencil build).
    pub serial_setup: f64,
}

/// Builds the phase list of one parallel pFFT solve on `d` nodes
/// (slab-decomposed grid).
pub fn pfft_phases(costs: &PfftCostModel, d: usize) -> Vec<Phase> {
    let mut phases = vec![Phase::Serial { seconds: costs.serial_setup }];
    let g = costs.grid_points as f64;
    for _ in 0..costs.iterations {
        // Projection (panel-parallel).
        phases.push(Phase::Parallel {
            costs_per_node: vec![costs.project_per_panel * costs.n as f64 / d as f64; d],
        });
        phases.push(Phase::Barrier);
        // Forward + inverse FFT: local passes plus two global transposes
        // each (slab decomposition: x/y passes local, z pass needs the
        // transposed layout).
        for _ in 0..2 {
            phases.push(Phase::Parallel {
                costs_per_node: vec![costs.fft_per_point * g / (2.0 * d as f64); d],
            });
            // Transpose: every node exchanges its slab with every other.
            phases.push(Phase::AllToAll { bytes: (costs.grid_points / (d * d).max(1)) * 16 });
            phases.push(Phase::Parallel {
                costs_per_node: vec![costs.fft_per_point * g / (2.0 * d as f64); d],
            });
            phases.push(Phase::AllToAll { bytes: (costs.grid_points / (d * d).max(1)) * 16 });
        }
        // Interpolation + precorrection (panel-parallel).
        phases.push(Phase::Parallel {
            costs_per_node: vec![
                (costs.project_per_panel * costs.n as f64
                    + costs.precorrect_per_entry * costs.near_entries as f64)
                    / d as f64;
                d
            ],
        });
        // Krylov residual exchange + reduction.
        phases.push(Phase::AllToAll { bytes: costs.n.div_ceil(d) * 8 });
        phases.push(Phase::Broadcast { bytes: 64 });
    }
    phases
}

/// Efficiency curve on the node counts `ds` relative to one node.
pub fn efficiency_curve(costs: &PfftCostModel, comm: CommModel, ds: &[usize]) -> Vec<(usize, f64)> {
    let t1 = MachineSim::new(1, comm).simulate(&pfft_phases(costs, 1)).makespan;
    ds.iter()
        .map(|&d| {
            let r = MachineSim::new(d, comm).simulate(&pfft_phases(costs, d));
            (d, r.efficiency(t1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> PfftCostModel {
        PfftCostModel {
            project_per_panel: 4e-7,
            fft_per_point: 6e-8,
            precorrect_per_entry: 4e-9,
            n: 3000,
            grid_points: 1 << 17,
            near_entries: 90_000,
            iterations: 40,
            serial_setup: 0.02,
        }
    }

    #[test]
    fn efficiency_collapses_faster_than_fmm_regime() {
        let curve = efficiency_curve(&costs(), CommModel::cluster(), &[1, 2, 4, 8]);
        assert!((curve[0].1 - 1.0).abs() < 1e-9);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
        let at8 = curve.last().unwrap().1;
        assert!(at8 < 0.7, "pFFT efficiency at 8 should collapse, got {at8}");
        assert!(at8 > 0.1);
    }

    #[test]
    fn phase_list_has_transposes() {
        let phases = pfft_phases(&costs(), 4);
        let transposes = phases.iter().filter(|p| matches!(p, Phase::AllToAll { .. })).count();
        // 4 transposes + 1 residual exchange per iteration.
        assert_eq!(transposes, costs().iterations * 5);
    }
}

//! The precorrected-FFT matrix-vector product and capacitance solve.

use std::collections::HashMap;
use std::time::Instant;

use bemcap_geom::{Geometry, Mesh, Point3, EPS0};
use bemcap_linalg::{
    gmres_grouped, kernels, DiagonalPrecond, KrylovConfig, KrylovStats, LinearOperator, Matrix,
    Preconditioner,
};
use bemcap_quad::galerkin::{GalerkinEngine, PanelShape};

use crate::error::PfftError;
use crate::fft::{fft3_inplace, Complex};
use crate::grid::Grid;

/// pFFT tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PfftConfig {
    /// Grid spacing as a multiple of the mean panel edge.
    pub spacing_factor: f64,
    /// Chebyshev cell radius of the precorrected near zone.
    pub near_cells: usize,
    /// Hard cap on padded grid points.
    pub max_grid_points: usize,
}

impl Default for PfftConfig {
    fn default() -> Self {
        PfftConfig { spacing_factor: 1.0, near_cells: 2, max_grid_points: 1 << 24 }
    }
}

/// Cumulative matvec phase timings (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PfftTimings {
    /// Projection + interpolation.
    pub project: f64,
    /// Forward + inverse 3-D FFTs and the spectral multiply.
    pub fft: f64,
    /// Precorrection sparse product.
    pub precorrect: f64,
    /// Matvecs performed.
    pub count: usize,
}

/// The precorrected-FFT Galerkin operator (scaled by 1/(4πε)).
pub struct PfftOperator {
    grid: Grid,
    kernel_hat: Vec<Complex>,
    stencils: Vec<[(usize, f64); 8]>,
    areas: Vec<f64>,
    /// Near rows: (column, exact − grid-mediated), the precorrection.
    near: Vec<Vec<(u32, f64)>>,
    inv_diag: Vec<f64>,
    scale: f64,
    timings: std::cell::Cell<PfftTimings>,
}

impl std::fmt::Debug for PfftOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PfftOperator")
            .field("n", &self.areas.len())
            .field("grid", &self.grid.fft_dims)
            .finish()
    }
}

impl PfftOperator {
    /// Builds the operator.
    ///
    /// # Errors
    ///
    /// * [`PfftError::EmptyMesh`] / [`PfftError::BadGrid`] from grid
    ///   construction.
    pub fn new(mesh: &Mesh, eps_rel: f64, cfg: PfftConfig) -> Result<PfftOperator, PfftError> {
        let grid = Grid::fit(mesh, cfg.spacing_factor, cfg.max_grid_points)?;
        let panels = mesh.panels();
        let n = panels.len();
        let scale = 1.0 / (4.0 * std::f64::consts::PI * eps_rel * EPS0);
        let eng = GalerkinEngine::default();
        // Sampled kernel on the padded (circulant) grid, then its FFT.
        let [px, py, pz] = grid.fft_dims;
        let mut kernel = vec![Complex::ZERO; grid.fft_points()];
        for i in 0..px {
            let dx = signed_offset(i, px) as f64 * grid.h;
            for j in 0..py {
                let dy = signed_offset(j, py) as f64 * grid.h;
                for k in 0..pz {
                    let dz = signed_offset(k, pz) as f64 * grid.h;
                    let r = (dx * dx + dy * dy + dz * dz).sqrt();
                    // G(0) = 0: every pair whose stencils can meet is in
                    // the precorrected near zone, where this choice cancels
                    // exactly.
                    let g = if r > 0.0 { 1.0 / r } else { 0.0 };
                    kernel[grid.flat(i, j, k)] = Complex::new(g, 0.0);
                }
            }
        }
        fft3_inplace(&mut kernel, px, py, pz, false);
        // Stencils.
        let centers: Vec<Point3> = panels.iter().map(|p| p.panel.center()).collect();
        let stencils: Vec<[(usize, f64); 8]> = centers.iter().map(|c| grid.stencil(*c)).collect();
        let areas: Vec<f64> = panels.iter().map(|p| p.panel.area()).collect();
        // Near zone via cell buckets.
        let mut buckets: HashMap<[usize; 3], Vec<usize>> = HashMap::new();
        for (pi, c) in centers.iter().enumerate() {
            buckets.entry(grid.cell_of(*c)).or_default().push(pi);
        }
        let kernel_sample = |a: usize, b: usize, grid: &Grid| -> f64 {
            // Raw (circulant) kernel value between two padded flat indices.
            let (ax, ay, az) = unflat(a, grid);
            let (bx, by, bz) = unflat(b, grid);
            let dx = (ax as isize - bx as isize).unsigned_abs() as f64 * grid.h;
            let dy = (ay as isize - by as isize).unsigned_abs() as f64 * grid.h;
            let dz = (az as isize - bz as isize).unsigned_abs() as f64 * grid.h;
            let r = (dx * dx + dy * dy + dz * dz).sqrt();
            if r > 0.0 {
                1.0 / r
            } else {
                0.0
            }
        };
        let mut near = vec![Vec::new(); n];
        let mut inv_diag = vec![0.0; n];
        let r = cfg.near_cells as isize;
        for (pi, c) in centers.iter().enumerate() {
            let cell = grid.cell_of(*c);
            for ox in -r..=r {
                for oy in -r..=r {
                    for oz in -r..=r {
                        let nc =
                            [cell[0] as isize + ox, cell[1] as isize + oy, cell[2] as isize + oz];
                        if nc.iter().any(|&v| v < 0) {
                            continue;
                        }
                        let key = [nc[0] as usize, nc[1] as usize, nc[2] as usize];
                        let Some(list) = buckets.get(&key) else { continue };
                        for &pj in list {
                            let exact = scale
                                * eng.panel_pair(
                                    &panels[pi].panel,
                                    PanelShape::Flat,
                                    &panels[pj].panel,
                                    PanelShape::Flat,
                                );
                            // Grid-mediated contribution for the same pair.
                            let mut mediated = 0.0;
                            for &(sa, wa) in &stencils[pi] {
                                for &(sb, wb) in &stencils[pj] {
                                    mediated += wa * wb * kernel_sample(sa, sb, &grid);
                                }
                            }
                            mediated *= scale * areas[pi] * areas[pj];
                            near[pi].push((pj as u32, exact - mediated));
                            if pi == pj {
                                inv_diag[pi] = 1.0 / exact;
                            }
                        }
                    }
                }
            }
        }
        Ok(PfftOperator {
            grid,
            kernel_hat: kernel,
            stencils,
            areas,
            near,
            inv_diag,
            scale,
            timings: std::cell::Cell::new(PfftTimings::default()),
        })
    }

    /// Panel areas.
    pub fn areas(&self) -> &[f64] {
        &self.areas
    }

    /// Inverse of the exact system diagonal — the Jacobi preconditioner
    /// the solver builds by default.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }

    /// The grid (shape input for the parallel cost model).
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Cumulative matvec timings.
    pub fn timings(&self) -> PfftTimings {
        self.timings.get()
    }

    /// Approximate memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.kernel_hat.len() * 16
            + self.grid.fft_points() * 16
            + self.near.iter().map(|r| r.len() * 12).sum::<usize>()
            + self.stencils.len() * 8 * 16
    }
}

fn signed_offset(i: usize, n: usize) -> isize {
    if i <= n / 2 {
        i as isize
    } else {
        i as isize - n as isize
    }
}

fn unflat(flat: usize, grid: &Grid) -> (usize, usize, usize) {
    let k = flat % grid.fft_dims[2];
    let j = (flat / grid.fft_dims[2]) % grid.fft_dims[1];
    let i = flat / (grid.fft_dims[1] * grid.fft_dims[2]);
    (i, j, k)
}

impl LinearOperator for PfftOperator {
    fn dim(&self) -> usize {
        self.areas.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        let mut t = self.timings.get();
        let [px, py, pz] = self.grid.fft_dims;
        let t0 = Instant::now();
        // Project charges q_j = x_j A_j onto the grid.
        let mut field = vec![Complex::ZERO; self.grid.fft_points()];
        for (j, st) in self.stencils.iter().enumerate() {
            let q = x[j] * self.areas[j];
            for &(flat, w) in st {
                field[flat].re += q * w;
            }
        }
        let t1 = Instant::now();
        t.project += (t1 - t0).as_secs_f64();
        // Convolve.
        fft3_inplace(&mut field, px, py, pz, false);
        for (f, k) in field.iter_mut().zip(&self.kernel_hat) {
            *f = *f * *k;
        }
        fft3_inplace(&mut field, px, py, pz, true);
        let t2 = Instant::now();
        t.fft += (t2 - t1).as_secs_f64();
        // Interpolate potentials and apply the Galerkin weights. The
        // 8-point gather sums pairwise — four independent products per
        // level, the same shape as the blocked kernels' reductions.
        for (i, st) in self.stencils.iter().enumerate() {
            let g = |s: usize| st[s].1 * field[st[s].0].re;
            let phi = ((g(0) + g(1)) + (g(2) + g(3))) + ((g(4) + g(5)) + (g(6) + g(7)));
            y[i] = self.scale * self.areas[i] * phi;
        }
        let t3 = Instant::now();
        t.project += (t3 - t2).as_secs_f64();
        // Precorrection: each near row is a gathered sparse dot through
        // the chunked pair kernel.
        for (yi, row) in y.iter_mut().zip(&self.near) {
            *yi += kernels::pair_dot(row, x);
        }
        t.precorrect += t3.elapsed().as_secs_f64();
        t.count += 1;
        self.timings.set(t);
    }

    fn precondition(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..x.len() {
            y[i] = x[i] * self.inv_diag[i];
        }
    }
}

/// The solve step on an already-built operator — one conductor RHS per
/// GMRES solve through the shared [`gmres_grouped`] driver
/// (`bemcap_linalg`). The `bemcap-core` backend layer prepares the
/// operator once and solves here, so construction is never duplicated.
///
/// # Errors
///
/// Propagates Krylov errors ([`PfftError::Solve`]).
pub fn solve_prepared(
    op: &PfftOperator,
    mesh: &Mesh,
    n_cond: usize,
    pre: &dyn Preconditioner,
    krylov: &KrylovConfig,
) -> Result<(Matrix, KrylovStats), PfftError> {
    let conductor_of: Vec<usize> = mesh.panels().iter().map(|p| p.conductor).collect();
    let (c, stats) = gmres_grouped(op, pre, op.areas(), &conductor_of, n_cond, krylov)?;
    Ok((c, stats))
}

/// Full capacitance extraction with the pFFT operator and GMRES: builds
/// the operator, then runs [`solve_prepared`] under the operator's Jacobi
/// (diagonal) preconditioner.
///
/// # Errors
///
/// Propagates operator construction and Krylov errors.
pub fn solve_capacitance(
    geo: &Geometry,
    mesh: &Mesh,
    cfg: PfftConfig,
    tol: f64,
    restart: usize,
    max_iters: usize,
) -> Result<Matrix, PfftError> {
    let op = PfftOperator::new(mesh, geo.eps_rel(), cfg)?;
    let pre = DiagonalPrecond::new(op.inv_diag().to_vec());
    let krylov = KrylovConfig { tol, restart, max_iters };
    let (c, _) = solve_prepared(&op, mesh, geo.conductor_count(), &pre, &krylov)?;
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::structures;

    fn dense_reference(mesh: &Mesh) -> Matrix {
        let eng = GalerkinEngine::default();
        let scale = 1.0 / (4.0 * std::f64::consts::PI * EPS0);
        let n = mesh.panel_count();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(
                    i,
                    j,
                    scale
                        * eng.panel_pair(
                            &mesh.panels()[i].panel,
                            PanelShape::Flat,
                            &mesh.panels()[j].panel,
                            PanelShape::Flat,
                        ),
                );
            }
        }
        a
    }

    #[test]
    fn matvec_matches_dense() {
        let geo = structures::parallel_plates(1.0e-6, 1.0e-6, 0.3e-6);
        let mesh = Mesh::uniform(&geo, 5);
        let op = PfftOperator::new(&mesh, 1.0, PfftConfig::default()).unwrap();
        let dense = dense_reference(&mesh);
        let n = mesh.panel_count();
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64 - 3.0) * 1e-7).collect();
        let mut y = vec![0.0; n];
        op.apply(&x, &mut y);
        let y_ref = dense.matvec(&x);
        let norm: f64 = y_ref.iter().map(|v| v * v).sum::<f64>().sqrt();
        let err: f64 = y.iter().zip(&y_ref).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(err / norm < 3e-2, "relative matvec error {}", err / norm);
        assert_eq!(op.timings().count, 1);
    }

    #[test]
    fn capacitance_agrees_with_physics() {
        let w = 1.0e-6;
        let d = 0.25e-6;
        let geo = structures::parallel_plates(w, w, d);
        let mesh = Mesh::uniform(&geo, 8);
        let c = solve_capacitance(&geo, &mesh, PfftConfig::default(), 1e-6, 40, 600).unwrap();
        let ideal = EPS0 * w * w / d;
        let c01 = -c.get(0, 1);
        assert!(c01 > ideal && c01 < 3.0 * ideal, "coupling {c01} vs ideal {ideal}");
        assert!(c.get(0, 0) > 0.0);
    }

    #[test]
    fn memory_reported() {
        let geo = structures::cube(1.0);
        let mesh = Mesh::uniform(&geo, 4);
        let op = PfftOperator::new(&mesh, 1.0, PfftConfig::default()).unwrap();
        assert!(op.memory_bytes() > 0);
    }

    #[test]
    fn signed_offset_wraps() {
        assert_eq!(signed_offset(0, 8), 0);
        assert_eq!(signed_offset(4, 8), 4);
        assert_eq!(signed_offset(5, 8), -3);
        assert_eq!(signed_offset(7, 8), -1);
    }
}

//! From-scratch complex FFT: iterative radix-2 Cooley–Tukey, plus 3-D
//! transforms by applying the 1-D transform along each axis.

use std::f64::consts::PI;
use std::ops::{Add, Mul, Sub};

/// A complex number (we own the whole numeric stack — no external crates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };

    /// Creates a complex number.
    pub const fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// e^{iθ}.
    pub fn cis(theta: f64) -> Complex {
        Complex { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex { re: self.re, im: -self.im }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(self.re * rhs.re - self.im * rhs.im, self.re * rhs.im + self.im * rhs.re)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, s: f64) -> Complex {
        Complex::new(self.re * s, self.im * s)
    }
}

/// In-place forward FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_inplace(data: &mut [Complex]) {
    fft_dir(data, false);
}

/// In-place inverse FFT (normalized by 1/n).
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ifft_inplace(data: &mut [Complex]) {
    fft_dir(data, true);
    let n = data.len() as f64;
    for v in data.iter_mut() {
        *v = *v * (1.0 / n);
    }
}

fn fft_dir(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two, got {n}");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) & (n - 1);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let wlen = Complex::cis(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2] * w;
                data[start + k] = a + b;
                data[start + k + len / 2] = a - b;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// Naive DFT (O(n²)) — the test reference.
pub fn dft_reference(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, x) in data.iter().enumerate() {
                acc = acc + *x * Complex::cis(-2.0 * PI * (k * j) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

/// In-place 3-D FFT on a `nx × ny × nz` row-major (z fastest) array.
///
/// # Panics
///
/// Panics if dimensions are not powers of two or the buffer size mismatches.
pub fn fft3_inplace(data: &mut [Complex], nx: usize, ny: usize, nz: usize, inverse: bool) {
    assert_eq!(data.len(), nx * ny * nz, "buffer size");
    let mut scratch = vec![Complex::ZERO; nx.max(ny).max(nz)];
    // Transform along z (contiguous).
    for x in 0..nx {
        for y in 0..ny {
            let base = (x * ny + y) * nz;
            let line = &mut data[base..base + nz];
            if inverse {
                ifft_inplace(line);
            } else {
                fft_inplace(line);
            }
        }
    }
    // Along y.
    for x in 0..nx {
        for z in 0..nz {
            for y in 0..ny {
                scratch[y] = data[(x * ny + y) * nz + z];
            }
            let line = &mut scratch[..ny];
            if inverse {
                ifft_inplace(line);
            } else {
                fft_inplace(line);
            }
            for y in 0..ny {
                data[(x * ny + y) * nz + z] = scratch[y];
            }
        }
    }
    // Along x.
    for y in 0..ny {
        for z in 0..nz {
            for x in 0..nx {
                scratch[x] = data[(x * ny + y) * nz + z];
            }
            let line = &mut scratch[..nx];
            if inverse {
                ifft_inplace(line);
            } else {
                fft_inplace(line);
            }
            for x in 0..nx {
                data[(x * ny + y) * nz + z] = scratch[x];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<Complex> {
        (0..n).map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos())).collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let mut x = signal(n);
            let reference = dft_reference(&x);
            fft_inplace(&mut x);
            for (a, b) in x.iter().zip(&reference) {
                assert!((*a - *b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn round_trip() {
        let orig = signal(64);
        let mut x = orig.clone();
        fft_inplace(&mut x);
        ifft_inplace(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn parseval() {
        let x = signal(256);
        let mut f = x.clone();
        fft_inplace(&mut f);
        let t: f64 = x.iter().map(|v| v.abs().powi(2)).sum();
        let s: f64 = f.iter().map(|v| v.abs().powi(2)).sum::<f64>() / 256.0;
        assert!((t - s).abs() < 1e-9 * t);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_panics() {
        let mut x = signal(12);
        fft_inplace(&mut x);
    }

    #[test]
    fn three_dimensional_round_trip() {
        let (nx, ny, nz) = (4, 8, 2);
        let orig: Vec<Complex> =
            (0..nx * ny * nz).map(|i| Complex::new(i as f64, (i % 3) as f64)).collect();
        let mut x = orig.clone();
        fft3_inplace(&mut x, nx, ny, nz, false);
        fft3_inplace(&mut x, nx, ny, nz, true);
        for (a, b) in x.iter().zip(&orig) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn convolution_theorem_1d() {
        // Circular convolution via FFT equals direct circular convolution.
        let n = 16;
        let a = signal(n);
        let b: Vec<Complex> = (0..n).map(|i| Complex::new((i * i % 7) as f64, 0.0)).collect();
        let mut fa = a.clone();
        let mut fb = b.clone();
        fft_inplace(&mut fa);
        fft_inplace(&mut fb);
        let mut prod: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x * *y).collect();
        ifft_inplace(&mut prod);
        for k in 0..n {
            let mut direct = Complex::ZERO;
            for j in 0..n {
                direct = direct + a[j] * b[(k + n - j) % n];
            }
            assert!((prod[k] - direct).abs() < 1e-9);
        }
    }
}

//! The uniform projection grid and trilinear stencils.

use bemcap_geom::{Mesh, Point3};

use crate::error::PfftError;

/// A uniform grid covering the mesh bounding box, with power-of-two FFT
/// padding (×2 per axis for aperiodic convolution).
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Grid origin (node \[0,0,0\] position).
    pub origin: Point3,
    /// Grid spacing.
    pub h: f64,
    /// Logical node counts per axis (covering the geometry).
    pub dims: [usize; 3],
    /// Padded FFT dimensions (powers of two, ≥ 2×dims).
    pub fft_dims: [usize; 3],
}

impl Grid {
    /// Builds a grid whose spacing is `spacing_factor ×` the mean panel
    /// edge length.
    ///
    /// # Errors
    ///
    /// * [`PfftError::EmptyMesh`] for empty meshes;
    /// * [`PfftError::BadGrid`] if the padded grid would exceed
    ///   `max_points`.
    pub fn fit(mesh: &Mesh, spacing_factor: f64, max_points: usize) -> Result<Grid, PfftError> {
        let panels = mesh.panels();
        if panels.is_empty() {
            return Err(PfftError::EmptyMesh);
        }
        let mean_edge =
            panels.iter().map(|p| 0.5 * (p.panel.u_len() + p.panel.v_len())).sum::<f64>()
                / panels.len() as f64;
        let h = mean_edge * spacing_factor;
        let mut lo = panels[0].panel.center();
        let mut hi = lo;
        for p in panels {
            let (blo, bhi) = p.panel.bounds();
            lo = lo.min(blo);
            hi = hi.max(bhi);
        }
        // One cell margin all round.
        let origin = lo - Point3::new(h, h, h);
        let span = hi - lo;
        let dims = [
            ((span.x / h).ceil() as usize + 3).max(2),
            ((span.y / h).ceil() as usize + 3).max(2),
            ((span.z / h).ceil() as usize + 3).max(2),
        ];
        let fft_dims = [
            (2 * dims[0]).next_power_of_two(),
            (2 * dims[1]).next_power_of_two(),
            (2 * dims[2]).next_power_of_two(),
        ];
        let total = fft_dims[0] * fft_dims[1] * fft_dims[2];
        if total > max_points {
            return Err(PfftError::BadGrid {
                detail: format!("padded grid {total} points exceeds cap {max_points}"),
            });
        }
        Ok(Grid { origin, h, dims, fft_dims })
    }

    /// Number of logical grid nodes.
    pub fn logical_points(&self) -> usize {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// Number of padded FFT points.
    pub fn fft_points(&self) -> usize {
        self.fft_dims[0] * self.fft_dims[1] * self.fft_dims[2]
    }

    /// Flat index into the padded array.
    pub fn flat(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.fft_dims[1] + j) * self.fft_dims[2] + k
    }

    /// Integer cell coordinates of a point (clamped into the logical box).
    pub fn cell_of(&self, p: Point3) -> [usize; 3] {
        let rel = p - self.origin;
        [
            ((rel.x / self.h).floor().max(0.0) as usize).min(self.dims[0] - 2),
            ((rel.y / self.h).floor().max(0.0) as usize).min(self.dims[1] - 2),
            ((rel.z / self.h).floor().max(0.0) as usize).min(self.dims[2] - 2),
        ]
    }

    /// Trilinear stencil of a point: 8 (flat index, weight) pairs summing
    /// to 1.
    pub fn stencil(&self, p: Point3) -> [(usize, f64); 8] {
        let base = self.cell_of(p);
        let rel = p - self.origin;
        let fx = ((rel.x / self.h) - base[0] as f64).clamp(0.0, 1.0);
        let fy = ((rel.y / self.h) - base[1] as f64).clamp(0.0, 1.0);
        let fz = ((rel.z / self.h) - base[2] as f64).clamp(0.0, 1.0);
        let mut out = [(0usize, 0.0f64); 8];
        for (c, slot) in out.iter_mut().enumerate() {
            let dx = c & 1;
            let dy = (c >> 1) & 1;
            let dz = (c >> 2) & 1;
            let w = (if dx == 1 { fx } else { 1.0 - fx })
                * (if dy == 1 { fy } else { 1.0 - fy })
                * (if dz == 1 { fz } else { 1.0 - fz });
            *slot = (self.flat(base[0] + dx, base[1] + dy, base[2] + dz), w);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::structures;

    fn grid() -> (Mesh, Grid) {
        let geo = structures::parallel_plates(1.0, 1.0, 0.3);
        let mesh = Mesh::uniform(&geo, 4);
        let g = Grid::fit(&mesh, 1.0, 1 << 24).unwrap();
        (mesh, g)
    }

    #[test]
    fn covers_geometry() {
        let (mesh, g) = grid();
        for p in mesh.panels() {
            let c = p.panel.center();
            let cell = g.cell_of(c);
            for d in 0..3 {
                assert!(cell[d] + 1 < g.dims[d], "cell {cell:?} outside dims {:?}", g.dims);
            }
        }
    }

    #[test]
    fn fft_dims_are_padded_powers_of_two() {
        let (_, g) = grid();
        for d in 0..3 {
            assert!(g.fft_dims[d].is_power_of_two());
            assert!(g.fft_dims[d] >= 2 * g.dims[d]);
        }
        assert_eq!(g.fft_points(), g.fft_dims.iter().product::<usize>());
    }

    #[test]
    fn stencil_weights_sum_to_one() {
        let (mesh, g) = grid();
        for p in mesh.panels().iter().take(20) {
            let st = g.stencil(p.panel.center());
            let sum: f64 = st.iter().map(|(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-12);
            for (idx, w) in st {
                assert!(idx < g.fft_points());
                assert!((0.0..=1.0).contains(&w));
            }
        }
    }

    #[test]
    fn stencil_interpolates_linear_fields_exactly() {
        let (_, g) = grid();
        // A linear function sampled on grid nodes is reproduced exactly by
        // trilinear interpolation.
        let f = |p: Point3| 2.0 * p.x - 3.0 * p.y + 0.5 * p.z + 1.0;
        let probe = g.origin + Point3::new(1.37 * g.h, 2.61 * g.h, 0.83 * g.h);
        let st = g.stencil(probe);
        let mut val = 0.0;
        for (flat, w) in st {
            // Invert the flat index to node coordinates.
            let k = flat % g.fft_dims[2];
            let j = (flat / g.fft_dims[2]) % g.fft_dims[1];
            let i = flat / (g.fft_dims[1] * g.fft_dims[2]);
            let node = g.origin + Point3::new(i as f64 * g.h, j as f64 * g.h, k as f64 * g.h);
            val += w * f(node);
        }
        assert!((val - f(probe)).abs() < 1e-10);
    }

    #[test]
    fn grid_cap_enforced() {
        let geo = structures::parallel_plates(1.0, 1.0, 0.3);
        let mesh = Mesh::uniform(&geo, 16);
        assert!(matches!(Grid::fit(&mesh, 0.05, 1 << 10), Err(PfftError::BadGrid { .. })));
    }
}

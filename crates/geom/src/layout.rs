//! Full-chip layouts: spatial indexing, overlapping-window partitioning,
//! and geometry diffs for incremental (ECO) re-extraction.
//!
//! The paper's divide-and-conquer premise pays off at full-chip scale:
//! a layout with many nets is cut into an `nx × ny` grid of **windows**,
//! each window is extracted as a self-contained problem, and the
//! per-window capacitance blocks are stitched into one sparse chip-level
//! matrix. Two geometric facts make that sound:
//!
//! * every conductor is **owned** by exactly one window — the window
//!   whose core tile contains the conductor's bounding-box center — so
//!   stitched matrix rows never collide;
//! * each window also carries the **neighborhood** of its core: every
//!   conductor intersecting the core tile expanded by a `halo` margin.
//!   The halo bounds the electrostatic context a window sees, the same
//!   role the geodesic neighborhood plays for surface operators — and
//!   like those, the neighbor sets are precomputed into one flat index
//!   buffer with per-window ranges.
//!
//! [`GeometryDiff`] compares two revisions of a layout by net name; a
//! partition maps the changed regions to the windows whose halo they
//! intersect, which is exactly the set an incremental re-extraction must
//! redo.
//!
//! ```
//! use bemcap_geom::layout::{Layout, PartitionConfig};
//! use bemcap_geom::structures::{self, BusParams};
//!
//! let geo = structures::bus_crossing(4, 4, BusParams::default());
//! let layout = Layout::new(geo)?;
//! let part = layout.partition(&PartitionConfig { nx: 2, ny: 2, halo: 3.0e-6 })?;
//! assert_eq!(part.window_count(), 4);
//! // Every conductor is owned exactly once.
//! let owned: usize = part.windows().iter().map(|w| w.owned().len()).sum();
//! assert_eq!(owned, layout.conductor_count());
//! # Ok::<(), bemcap_geom::GeomError>(())
//! ```

use crate::conductor::{Conductor, Geometry};
use crate::error::GeomError;
use crate::structures::DEFAULT_SCALE;
use crate::vec3::Point3;

/// A closed axis-aligned rectangle in the layout (xy) plane.
///
/// Windows partition the chip in x and y only — interconnect stacks are
/// thin in z, so the grid follows the routing plane and every window
/// spans the full layer stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower x bound.
    pub x0: f64,
    /// Lower y bound.
    pub y0: f64,
    /// Upper x bound.
    pub x1: f64,
    /// Upper y bound.
    pub y1: f64,
}

impl Rect {
    fn of_bounds(lo: Point3, hi: Point3) -> Rect {
        Rect { x0: lo.x, y0: lo.y, x1: hi.x, y1: hi.y }
    }

    /// Closed-interval intersection test (shared edges count as overlap).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.x0 <= other.x1 && other.x0 <= self.x1 && self.y0 <= other.y1 && other.y0 <= self.y1
    }

    /// This rectangle grown by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            x0: self.x0 - margin,
            y0: self.y0 - margin,
            x1: self.x1 + margin,
            y1: self.y1 + margin,
        }
    }
}

/// Uniform-grid spatial index over conductor bounding rectangles.
///
/// Cells hold the indices of every conductor whose xy bounds overlap the
/// cell; a query gathers candidates from the covered cells and filters
/// them against the exact rectangle. Resolution scales with √n so both
/// build and query stay near-linear for Manhattan layouts.
#[derive(Debug, Clone)]
struct SpatialIndex {
    origin: (f64, f64),
    cell: (f64, f64),
    grid: (usize, usize),
    cells: Vec<Vec<usize>>,
}

impl SpatialIndex {
    fn new(chip: &Rect, rects: &[Rect]) -> SpatialIndex {
        let side = (rects.len() as f64).sqrt().ceil() as usize;
        let grid = (side.max(1), side.max(1));
        let cell = (
            ((chip.x1 - chip.x0) / grid.0 as f64).max(f64::MIN_POSITIVE),
            ((chip.y1 - chip.y0) / grid.1 as f64).max(f64::MIN_POSITIVE),
        );
        let mut index = SpatialIndex {
            origin: (chip.x0, chip.y0),
            cell,
            grid,
            cells: vec![Vec::new(); grid.0 * grid.1],
        };
        for (ci, r) in rects.iter().enumerate() {
            let (ix0, iy0) = index.cell_of(r.x0, r.y0);
            let (ix1, iy1) = index.cell_of(r.x1, r.y1);
            for iy in iy0..=iy1 {
                for ix in ix0..=ix1 {
                    index.cells[iy * grid.0 + ix].push(ci);
                }
            }
        }
        index
    }

    fn cell_of(&self, x: f64, y: f64) -> (usize, usize) {
        let ix = ((x - self.origin.0) / self.cell.0).floor();
        let iy = ((y - self.origin.1) / self.cell.1).floor();
        ((ix.max(0.0) as usize).min(self.grid.0 - 1), (iy.max(0.0) as usize).min(self.grid.1 - 1))
    }

    /// Sorted, deduplicated candidate indices for a query rectangle.
    fn query(&self, r: &Rect) -> Vec<usize> {
        let (ix0, iy0) = self.cell_of(r.x0, r.y0);
        let (ix1, iy1) = self.cell_of(r.x1, r.y1);
        let mut out = Vec::new();
        for iy in iy0..=iy1 {
            for ix in ix0..=ix1 {
                out.extend_from_slice(&self.cells[iy * self.grid.0 + ix]);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A validated full-chip layout: a [`Geometry`] plus precomputed
/// per-conductor bounds and a conductor spatial index.
///
/// Construction rejects geometries the windowing machinery cannot
/// handle: no conductors, a conductor with no boxes, or duplicate net
/// names (diffs and stitching are keyed by name).
#[derive(Debug, Clone)]
pub struct Layout {
    geometry: Geometry,
    bounds: (Point3, Point3),
    conductor_rects: Vec<Rect>,
    index: SpatialIndex,
}

impl Layout {
    /// Wraps and validates a geometry.
    pub fn new(geometry: Geometry) -> Result<Layout, GeomError> {
        if geometry.conductor_count() == 0 {
            return Err(GeomError::Layout { detail: "layout has no conductors".into() });
        }
        let mut names: Vec<&str> = Vec::with_capacity(geometry.conductor_count());
        for c in geometry.conductors() {
            if c.boxes().is_empty() {
                return Err(GeomError::Layout {
                    detail: format!("conductor {} has no boxes", c.name()),
                });
            }
            names.push(c.name());
        }
        names.sort_unstable();
        if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(GeomError::Layout { detail: format!("duplicate net name {}", w[0]) });
        }
        let bounds = geometry.bounds();
        let conductor_rects: Vec<Rect> = geometry
            .conductors()
            .iter()
            .map(|c| {
                let (lo, hi) = conductor_bounds(c);
                Rect::of_bounds(lo, hi)
            })
            .collect();
        let chip = Rect::of_bounds(bounds.0, bounds.1);
        let index = SpatialIndex::new(&chip, &conductor_rects);
        Ok(Layout { geometry, bounds, conductor_rects, index })
    }

    /// The wrapped geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Number of conductors.
    pub fn conductor_count(&self) -> usize {
        self.geometry.conductor_count()
    }

    /// Net names in conductor order.
    pub fn names(&self) -> Vec<&str> {
        self.geometry.conductors().iter().map(Conductor::name).collect()
    }

    /// Chip bounding box as (min, max) corners.
    pub fn bounds(&self) -> (Point3, Point3) {
        self.bounds
    }

    /// The xy bounding rectangle of conductor `ci`.
    pub fn conductor_rect(&self, ci: usize) -> Rect {
        self.conductor_rects[ci]
    }

    /// Sorted indices of conductors whose xy bounds intersect `region`.
    pub fn conductors_in(&self, region: &Rect) -> Vec<usize> {
        self.index
            .query(region)
            .into_iter()
            .filter(|&ci| self.conductor_rects[ci].intersects(region))
            .collect()
    }

    /// Cuts the layout into overlapping windows.
    pub fn partition(&self, cfg: &PartitionConfig) -> Result<Partition, GeomError> {
        cfg.validate()?;
        let chip = Rect::of_bounds(self.bounds.0, self.bounds.1);
        let step = (
            ((chip.x1 - chip.x0) / cfg.nx as f64).max(0.0),
            ((chip.y1 - chip.y0) / cfg.ny as f64).max(0.0),
        );
        // Assign each conductor to the core tile holding its center.
        let mut owned: Vec<Vec<usize>> = vec![Vec::new(); cfg.nx * cfg.ny];
        for (ci, r) in self.conductor_rects.iter().enumerate() {
            let cx = 0.5 * (r.x0 + r.x1);
            let cy = 0.5 * (r.y0 + r.y1);
            let ix = tile_of(cx, chip.x0, step.0, cfg.nx);
            let iy = tile_of(cy, chip.y0, step.1, cfg.ny);
            owned[iy * cfg.nx + ix].push(ci);
        }
        let mut windows = Vec::with_capacity(cfg.nx * cfg.ny);
        let mut neighbor_buf = Vec::new();
        let mut neighbor_ranges = Vec::with_capacity(cfg.nx * cfg.ny);
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                let w = iy * cfg.nx + ix;
                let core = Rect {
                    x0: chip.x0 + ix as f64 * step.0,
                    y0: chip.y0 + iy as f64 * step.1,
                    x1: if ix + 1 == cfg.nx { chip.x1 } else { chip.x0 + (ix + 1) as f64 * step.0 },
                    y1: if iy + 1 == cfg.ny { chip.y1 } else { chip.y0 + (iy + 1) as f64 * step.1 },
                };
                let halo = core.expanded(cfg.halo);
                let members = self.conductors_in(&halo);
                let start = neighbor_buf.len();
                neighbor_buf.extend(members.iter().copied().filter(|ci| !owned[w].contains(ci)));
                neighbor_ranges.push((start, neighbor_buf.len()));
                windows.push(Window {
                    index: w,
                    ix,
                    iy,
                    core,
                    halo,
                    owned: owned[w].clone(),
                    members,
                });
            }
        }
        Ok(Partition { config: *cfg, windows, neighbor_buf, neighbor_ranges })
    }
}

/// Bounding box of a conductor's boxes as (min, max) corners.
fn conductor_bounds(c: &Conductor) -> (Point3, Point3) {
    let mut it = c.boxes().iter();
    let first = it.next().expect("validated conductors have boxes");
    let mut lo = first.min();
    let mut hi = first.max();
    for b in it {
        lo = lo.min(b.min());
        hi = hi.max(b.max());
    }
    (lo, hi)
}

/// Tile index of coordinate `v` along one axis (ties and degenerate
/// extents land in the lower tile — ownership must be unambiguous).
fn tile_of(v: f64, origin: f64, step: f64, tiles: usize) -> usize {
    if step <= 0.0 {
        return 0;
    }
    (((v - origin) / step).floor().max(0.0) as usize).min(tiles - 1)
}

/// How to cut a layout into windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionConfig {
    /// Window grid columns (x direction).
    pub nx: usize,
    /// Window grid rows (y direction).
    pub ny: usize,
    /// Neighborhood margin added around each core tile, in layout units.
    pub halo: f64,
}

impl Default for PartitionConfig {
    /// 2×2 windows with a 2 µm halo — two default wire pitches of the
    /// paper's bus structures on either side of every window.
    fn default() -> PartitionConfig {
        PartitionConfig { nx: 2, ny: 2, halo: 2.0 * DEFAULT_SCALE }
    }
}

impl PartitionConfig {
    fn validate(&self) -> Result<(), GeomError> {
        if self.nx == 0 || self.ny == 0 {
            return Err(GeomError::Layout {
                detail: format!("partition grid {}x{} must be at least 1x1", self.nx, self.ny),
            });
        }
        if !self.halo.is_finite() || self.halo < 0.0 {
            return Err(GeomError::Layout {
                detail: format!("halo {} must be finite and non-negative", self.halo),
            });
        }
        Ok(())
    }
}

/// One window of a [`Partition`]: a core tile, its halo, and the
/// conductors it owns and sees.
#[derive(Debug, Clone)]
pub struct Window {
    index: usize,
    ix: usize,
    iy: usize,
    core: Rect,
    halo: Rect,
    owned: Vec<usize>,
    members: Vec<usize>,
}

impl Window {
    /// Position of this window in the partition's window list.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Grid coordinates `(ix, iy)` of the core tile.
    pub fn grid_pos(&self) -> (usize, usize) {
        (self.ix, self.iy)
    }

    /// The core tile rectangle.
    pub fn core(&self) -> Rect {
        self.core
    }

    /// The halo-expanded rectangle the window actually extracts.
    pub fn halo(&self) -> Rect {
        self.halo
    }

    /// Conductors owned by this window (their matrix rows come from
    /// here), as sorted global conductor indices.
    pub fn owned(&self) -> &[usize] {
        &self.owned
    }

    /// All conductors the window extracts — owned plus neighborhood —
    /// as sorted global conductor indices. This ordering defines the
    /// conductor order of [`Window::geometry`].
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The self-contained extraction geometry of this window: member
    /// conductors in [`Window::members`] order, same dielectric.
    pub fn geometry(&self, layout: &Layout) -> Geometry {
        let conductors =
            self.members.iter().map(|&ci| layout.geometry().conductors()[ci].clone()).collect();
        Geometry::new(conductors).with_eps_rel(layout.geometry().eps_rel())
    }
}

/// An overlapping-window partition of a [`Layout`].
///
/// Holds the window list plus the precomputed neighborhood buffer: all
/// windows' neighbor conductor indices live in one flat `Vec` addressed
/// by per-window ranges (the geodesic-neighborhood layout, applied to
/// chip windows).
#[derive(Debug, Clone)]
pub struct Partition {
    config: PartitionConfig,
    windows: Vec<Window>,
    neighbor_buf: Vec<usize>,
    neighbor_ranges: Vec<(usize, usize)>,
}

impl Partition {
    /// The configuration that produced this partition.
    pub fn config(&self) -> &PartitionConfig {
        &self.config
    }

    /// Number of windows (`nx × ny`).
    pub fn window_count(&self) -> usize {
        self.windows.len()
    }

    /// The windows in row-major grid order.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Neighborhood of window `w`: member conductors it does *not* own,
    /// as sorted global indices from the flat precomputed buffer.
    pub fn neighbors(&self, w: usize) -> &[usize] {
        let (lo, hi) = self.neighbor_ranges[w];
        &self.neighbor_buf[lo..hi]
    }

    /// Sorted indices of windows whose halo intersects the diff — the
    /// exact re-extraction set of an incremental (ECO) run. A dielectric
    /// change touches every window.
    pub fn windows_touched(&self, diff: &GeometryDiff) -> Vec<usize> {
        if diff.eps_changed() {
            return (0..self.windows.len()).collect();
        }
        self.windows
            .iter()
            .filter(|w| diff.regions().iter().any(|r| w.halo.intersects(r)))
            .map(|w| w.index)
            .collect()
    }
}

/// The difference between two revisions of a layout, keyed by net name.
///
/// A conductor counts as changed when it was added, removed, or any box
/// coordinate differs **bitwise** — the same exactness standard the
/// window cache uses, so a diff is empty exactly when re-extraction
/// would reuse every window.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryDiff {
    changed: Vec<String>,
    regions: Vec<Rect>,
    eps_changed: bool,
}

impl GeometryDiff {
    /// Diffs two geometries.
    pub fn between(old: &Geometry, new: &Geometry) -> GeometryDiff {
        let mut changed: Vec<String> = Vec::new();
        let mut regions = Vec::new();
        for c in old.conductors() {
            match new.conductors().iter().find(|n| n.name() == c.name()) {
                None => {
                    changed.push(c.name().to_string());
                    regions.extend(footprint(c));
                }
                Some(n) if !same_boxes(c, n) => {
                    // Both revisions' footprints are affected regions.
                    changed.push(c.name().to_string());
                    regions.extend(footprint(c));
                    regions.extend(footprint(n));
                }
                Some(_) => {}
            }
        }
        for n in new.conductors() {
            if !old.conductors().iter().any(|c| c.name() == n.name()) {
                changed.push(n.name().to_string());
                regions.extend(footprint(n));
            }
        }
        changed.sort_unstable();
        changed.dedup();
        let eps_changed = old.eps_rel().to_bits() != new.eps_rel().to_bits();
        GeometryDiff { changed, regions, eps_changed }
    }

    /// Whether the two revisions are identical (to the bit).
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty() && !self.eps_changed
    }

    /// Sorted names of added, removed, or modified nets.
    pub fn changed_names(&self) -> &[String] {
        &self.changed
    }

    /// The xy bounding rectangles of every changed footprint (old and
    /// new positions of moved nets both appear).
    pub fn regions(&self) -> &[Rect] {
        &self.regions
    }

    /// Whether the dielectric constant changed.
    pub fn eps_changed(&self) -> bool {
        self.eps_changed
    }
}

/// The xy bounding rectangle of a conductor's footprint, if it has one.
fn footprint(c: &Conductor) -> Option<Rect> {
    if c.boxes().is_empty() {
        return None;
    }
    let (lo, hi) = conductor_bounds(c);
    Some(Rect::of_bounds(lo, hi))
}

/// Bitwise box-list equality.
fn same_boxes(a: &Conductor, b: &Conductor) -> bool {
    a.boxes().len() == b.boxes().len()
        && a.boxes().iter().zip(b.boxes()).all(|(x, y)| {
            let (xl, xh, yl, yh) = (x.min(), x.max(), y.min(), y.max());
            [xl.x, xl.y, xl.z, xh.x, xh.y, xh.z]
                .iter()
                .zip([yl.x, yl.y, yl.z, yh.x, yh.y, yh.z].iter())
                .all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::Box3;
    use crate::structures::{self, BusParams};

    fn bus() -> Geometry {
        structures::bus_crossing(4, 4, BusParams::default())
    }

    #[test]
    fn layout_validation() {
        assert!(matches!(Layout::new(Geometry::new(vec![])), Err(GeomError::Layout { .. })));
        assert!(matches!(
            Layout::new(Geometry::new(vec![Conductor::new("a")])),
            Err(GeomError::Layout { .. })
        ));
        let b = Box3::from_bounds((0.0, 1.0), (0.0, 1.0), (0.0, 1.0)).unwrap();
        let dup =
            Geometry::new(vec![Conductor::new("a").with_box(b), Conductor::new("a").with_box(b)]);
        assert!(matches!(Layout::new(dup), Err(GeomError::Layout { .. })));
        assert!(Layout::new(bus()).is_ok());
    }

    #[test]
    fn partition_owns_each_conductor_once() {
        let layout = Layout::new(bus()).unwrap();
        for cfg in [
            PartitionConfig::default(),
            PartitionConfig { nx: 3, ny: 2, halo: 1.0e-6 },
            PartitionConfig { nx: 1, ny: 1, halo: 0.0 },
        ] {
            let part = layout.partition(&cfg).unwrap();
            assert_eq!(part.window_count(), cfg.nx * cfg.ny);
            let mut seen = vec![0usize; layout.conductor_count()];
            for w in part.windows() {
                for &ci in w.owned() {
                    seen[ci] += 1;
                }
                // Owned ⊆ members, both sorted.
                assert!(w.owned().iter().all(|ci| w.members().contains(ci)));
                assert!(w.members().windows(2).all(|p| p[0] < p[1]));
                // The flat neighbor buffer is members minus owned.
                let expect: Vec<usize> =
                    w.members().iter().copied().filter(|ci| !w.owned().contains(ci)).collect();
                assert_eq!(part.neighbors(w.index()), &expect[..]);
            }
            assert!(seen.iter().all(|&n| n == 1), "ownership not a partition: {seen:?}");
        }
    }

    #[test]
    fn single_window_sees_whole_layout() {
        let layout = Layout::new(bus()).unwrap();
        let part = layout.partition(&PartitionConfig { nx: 1, ny: 1, halo: 0.0 }).unwrap();
        let w = &part.windows()[0];
        let all: Vec<usize> = (0..layout.conductor_count()).collect();
        assert_eq!(w.members(), &all[..]);
        assert_eq!(w.owned(), &all[..]);
        assert_eq!(w.geometry(&layout), *layout.geometry());
    }

    #[test]
    fn halo_grows_membership() {
        let layout = Layout::new(bus()).unwrap();
        let tight = layout.partition(&PartitionConfig { nx: 2, ny: 2, halo: 0.0 }).unwrap();
        let wide = layout.partition(&PartitionConfig { nx: 2, ny: 2, halo: 50.0e-6 }).unwrap();
        for (t, w) in tight.windows().iter().zip(wide.windows()) {
            assert!(t.members().len() <= w.members().len());
            // A halo larger than the chip sees everything.
            assert_eq!(w.members().len(), layout.conductor_count());
        }
    }

    #[test]
    fn spatial_index_matches_brute_force() {
        let layout = Layout::new(bus()).unwrap();
        let (lo, hi) = layout.bounds();
        let probe = Rect { x0: lo.x, y0: lo.y, x1: 0.5 * (lo.x + hi.x), y1: 0.5 * (lo.y + hi.y) };
        let got = layout.conductors_in(&probe);
        let want: Vec<usize> = (0..layout.conductor_count())
            .filter(|&ci| layout.conductor_rect(ci).intersects(&probe))
            .collect();
        assert_eq!(got, want);
        assert!(!got.is_empty());
    }

    #[test]
    fn diff_empty_on_identical_geometries() {
        let g = bus();
        let d = GeometryDiff::between(&g, &g.clone());
        assert!(d.is_empty());
        assert!(d.changed_names().is_empty() && d.regions().is_empty());
        let layout = Layout::new(g).unwrap();
        let part = layout.partition(&PartitionConfig::default()).unwrap();
        assert!(part.windows_touched(&d).is_empty());
    }

    #[test]
    fn diff_finds_moved_added_removed_nets() {
        let b0 = Box3::from_bounds((0.0, 1.0), (0.0, 1.0), (0.0, 1.0)).unwrap();
        let b1 = Box3::from_bounds((5.0, 6.0), (0.0, 1.0), (0.0, 1.0)).unwrap();
        let old = Geometry::new(vec![
            Conductor::new("keep").with_box(b0),
            Conductor::new("move").with_box(b0),
            Conductor::new("gone").with_box(b1),
        ]);
        let new = Geometry::new(vec![
            Conductor::new("keep").with_box(b0),
            Conductor::new("move").with_box(b1),
            Conductor::new("fresh").with_box(b0),
        ]);
        let d = GeometryDiff::between(&old, &new);
        assert_eq!(d.changed_names(), ["fresh", "gone", "move"]);
        // move contributes both footprints, gone and fresh one each.
        assert_eq!(d.regions().len(), 4);
        assert!(!d.eps_changed());
    }

    #[test]
    fn eps_change_touches_every_window() {
        let g = bus();
        let d = GeometryDiff::between(&g, &g.clone().with_eps_rel(3.9));
        assert!(d.eps_changed() && !d.is_empty());
        let layout = Layout::new(g).unwrap();
        let part = layout.partition(&PartitionConfig::default()).unwrap();
        assert_eq!(part.windows_touched(&d), vec![0, 1, 2, 3]);
    }

    #[test]
    fn local_change_touches_local_windows() {
        let g = bus();
        let layout = Layout::new(g.clone()).unwrap();
        let part = layout.partition(&PartitionConfig { nx: 2, ny: 2, halo: 0.5e-6 }).unwrap();
        // Nudge the conductor owned by the first window whose footprint
        // is farthest from the chip center: some window must stay clean.
        let (lo, hi) = layout.bounds();
        let corner = Rect { x0: lo.x, y0: lo.y, x1: lo.x, y1: lo.y };
        let near_corner = (0..layout.conductor_count())
            .min_by(|&a, &b| {
                let da = layout.conductor_rect(a).x0 - corner.x0
                    + (layout.conductor_rect(a).y0 - corner.y0);
                let db = layout.conductor_rect(b).x0 - corner.x0
                    + (layout.conductor_rect(b).y0 - corner.y0);
                da.partial_cmp(&db).unwrap()
            })
            .unwrap();
        let mut conductors = g.conductors().to_vec();
        let name = conductors[near_corner].name().to_string();
        let shifted: Vec<Box3> = conductors[near_corner]
            .boxes()
            .iter()
            .map(|b| b.translated(Point3::new(0.0, 0.0, 0.05e-6)))
            .collect();
        let mut c = Conductor::new(name);
        for b in shifted {
            c.push_box(b);
        }
        conductors[near_corner] = c;
        let new = Geometry::new(conductors).with_eps_rel(g.eps_rel());
        let d = GeometryDiff::between(&g, &new);
        assert_eq!(d.changed_names().len(), 1);
        let touched = part.windows_touched(&d);
        assert!(!touched.is_empty());
        assert!(
            touched.len() < part.window_count(),
            "a corner nudge must leave some window untouched: {touched:?} \
             (chip {lo:?}..{hi:?})"
        );
    }

    #[test]
    fn partition_config_validation() {
        let layout = Layout::new(bus()).unwrap();
        assert!(layout.partition(&PartitionConfig { nx: 0, ny: 1, halo: 0.0 }).is_err());
        assert!(layout.partition(&PartitionConfig { nx: 1, ny: 1, halo: -1.0 }).is_err());
        assert!(layout.partition(&PartitionConfig { nx: 1, ny: 1, halo: f64::NAN }).is_err());
    }
}

//! Surface meshing: turning conductor faces into boundary-element panels.

use serde::{Deserialize, Serialize};

use crate::conductor::Geometry;
use crate::panel::Panel;

/// A mesh panel: a [`Panel`] tagged with the conductor that owns it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeshPanel {
    /// The geometric panel.
    pub panel: Panel,
    /// Index of the owning conductor within the source [`Geometry`].
    pub conductor: usize,
}

/// A boundary-element surface mesh: the discretization used by the
/// piecewise-constant baseline solvers (dense Galerkin, FMM, pFFT).
///
/// The instantiable-basis solver does *not* need a fine mesh — that is the
/// whole point of the paper — but the reference solutions (FASTCAP-style)
/// and the template-calibration machinery do.
///
/// ```
/// use bemcap_geom::{structures, Mesh};
/// let geo = structures::parallel_plates(1.0, 1.0, 0.2);
/// let mesh = Mesh::uniform(&geo, 4);
/// // two plates, 6 faces each, 4x4 panels per square face (thin faces get fewer)
/// assert!(mesh.panel_count() >= 2 * 16);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    panels: Vec<MeshPanel>,
    conductor_count: usize,
    target_edge: f64,
}

impl Mesh {
    /// Meshes `geo` so that the *longest* face edge in the geometry is split
    /// into `n` divisions; every face edge is split proportionally so all
    /// panels have roughly the same edge length.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(geo: &Geometry, n: usize) -> Mesh {
        assert!(n > 0, "division count must be positive");
        let longest = geo
            .faces_with_conductor()
            .iter()
            .map(|(_, f)| f.u_len().max(f.v_len()))
            .fold(0.0_f64, f64::max);
        Mesh::with_target_edge(geo, longest / n as f64)
    }

    /// Meshes `geo` so every panel edge is at most `target_edge` long.
    ///
    /// # Panics
    ///
    /// Panics if `target_edge` is not a positive finite number.
    pub fn with_target_edge(geo: &Geometry, target_edge: f64) -> Mesh {
        assert!(
            target_edge.is_finite() && target_edge > 0.0,
            "target edge must be positive and finite"
        );
        let mut panels = Vec::new();
        for (ci, face) in geo.faces_with_conductor() {
            let nu = (face.u_len() / target_edge).ceil().max(1.0) as usize;
            let nv = (face.v_len() / target_edge).ceil().max(1.0) as usize;
            for sub in face.subdivide(nu, nv) {
                panels.push(MeshPanel { panel: sub, conductor: ci });
            }
        }
        Mesh { panels, conductor_count: geo.conductor_count(), target_edge }
    }

    /// Returns a finer mesh of the same geometry with the target edge shrunk
    /// by `factor` (> 1). This is the refinement step of the FASTCAP
    /// reference loop in §6 ("refining the discretization by 10% for each
    /// iteration").
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 1.0`.
    pub fn refined(&self, geo: &Geometry, factor: f64) -> Mesh {
        assert!(factor > 1.0, "refinement factor must exceed 1");
        Mesh::with_target_edge(geo, self.target_edge / factor)
    }

    /// The panels.
    pub fn panels(&self) -> &[MeshPanel] {
        &self.panels
    }

    /// Number of panels (the BEM system size N for piecewise-constant bases).
    pub fn panel_count(&self) -> usize {
        self.panels.len()
    }

    /// Number of conductors in the source geometry.
    pub fn conductor_count(&self) -> usize {
        self.conductor_count
    }

    /// The target edge length this mesh was built with.
    pub fn target_edge(&self) -> f64 {
        self.target_edge
    }

    /// Total meshed surface area.
    pub fn total_area(&self) -> f64 {
        self.panels.iter().map(|p| p.panel.area()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures;

    #[test]
    fn uniform_mesh_preserves_area() {
        let geo = structures::parallel_plates(1.0, 2.0, 0.5);
        let coarse = Mesh::uniform(&geo, 2);
        let fine = Mesh::uniform(&geo, 8);
        let area: f64 = geo.conductors().iter().map(|c| c.surface_area()).sum();
        assert!((coarse.total_area() - area).abs() < 1e-12 * area);
        assert!((fine.total_area() - area).abs() < 1e-12 * area);
        assert!(fine.panel_count() > coarse.panel_count());
    }

    #[test]
    fn refinement_increases_panel_count() {
        let geo = structures::parallel_plates(1.0, 1.0, 0.2);
        let m = Mesh::uniform(&geo, 3);
        let r = m.refined(&geo, 1.1);
        assert!(r.panel_count() >= m.panel_count());
        assert!(r.target_edge() < m.target_edge());
    }

    #[test]
    fn conductor_tags_are_valid() {
        let geo = structures::bus_crossing(3, 3, structures::BusParams::default());
        let m = Mesh::uniform(&geo, 4);
        assert_eq!(m.conductor_count(), 6);
        for p in m.panels() {
            assert!(p.conductor < 6);
        }
        // every conductor owns at least one panel
        for c in 0..6 {
            assert!(m.panels().iter().any(|p| p.conductor == c));
        }
    }

    #[test]
    #[should_panic]
    fn zero_divisions_panic() {
        let geo = structures::parallel_plates(1.0, 1.0, 0.2);
        let _ = Mesh::uniform(&geo, 0);
    }
}

//! # bemcap-geom — Manhattan 3-D geometry substrate
//!
//! Geometry layer for the `bemcap` capacitance-extraction workspace: points,
//! axis-aligned panels, conductors made of rectangular boxes, surface meshing,
//! and generators for the structures used in the paper's evaluation
//! (crossing wires of Fig. 1, the 24×24 bus and transistor interconnect of
//! Fig. 7).
//!
//! All geometry is *Manhattan*: every conductor is a union of axis-aligned
//! boxes and every surface panel is an axis-aligned rectangle. This is the
//! same assumption the paper makes for instantiable basis functions (§2.2).
//!
//! ```
//! use bemcap_geom::{structures, Mesh};
//!
//! let geo = structures::parallel_plates(1e-6, 1e-6, 0.2e-6);
//! let mesh = Mesh::uniform(&geo, 8);
//! assert_eq!(geo.conductor_count(), 2);
//! assert!(mesh.panel_count() > 0);
//! ```

pub mod axis;
pub mod boxes;
pub mod conductor;
pub mod error;
pub mod io;
pub mod layout;
pub mod mesh;
pub mod panel;
pub mod structures;
pub mod vec3;

pub use axis::Axis;
pub use boxes::Box3;
pub use conductor::{Conductor, Geometry};
pub use error::GeomError;
pub use layout::{GeometryDiff, Layout, Partition, PartitionConfig, Rect, Window};
pub use mesh::{Mesh, MeshPanel};
pub use panel::{Panel, PanelRelation};
pub use vec3::Point3;

/// Vacuum permittivity in SI units (F/m).
pub const EPS0: f64 = 8.854_187_817e-12;

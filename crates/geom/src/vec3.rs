//! 3-D points/vectors with the small set of operations the solver needs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, Mul, Neg, Sub, SubAssign};

use crate::axis::Axis;

/// A point (or free vector) in 3-D space, in meters.
///
/// `Point3` is deliberately a plain `f64` triple: the solver kernels are
/// dominated by scalar arithmetic on coordinates and benefit from `Copy`
/// semantics everywhere.
///
/// ```
/// use bemcap_geom::Point3;
/// let p = Point3::new(1.0, 2.0, 2.0);
/// assert_eq!(p.norm(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// x coordinate (m).
    pub x: f64,
    /// y coordinate (m).
    pub y: f64,
    /// z coordinate (m).
    pub z: f64,
}

impl Point3 {
    /// Origin.
    pub const ZERO: Point3 = Point3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Squared Euclidean norm (no square root).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y + self.z * self.z
    }

    /// Distance to another point.
    pub fn distance(self, other: Point3) -> f64 {
        (self - other).norm()
    }

    /// Dot product.
    pub fn dot(self, other: Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Component along `axis`.
    pub fn component(self, axis: Axis) -> f64 {
        match axis {
            Axis::X => self.x,
            Axis::Y => self.y,
            Axis::Z => self.z,
        }
    }

    /// Returns a copy with the component along `axis` replaced by `value`.
    pub fn with_component(mut self, axis: Axis, value: f64) -> Point3 {
        match axis {
            Axis::X => self.x = value,
            Axis::Y => self.y = value,
            Axis::Z => self.z = value,
        }
        self
    }

    /// Component-wise minimum.
    pub fn min(self, other: Point3) -> Point3 {
        Point3::new(self.x.min(other.x), self.y.min(other.y), self.z.min(other.z))
    }

    /// Component-wise maximum.
    pub fn max(self, other: Point3) -> Point3 {
        Point3::new(self.x.max(other.x), self.y.max(other.y), self.z.max(other.z))
    }

    /// `true` when every coordinate is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl fmt::Display for Point3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4e}, {:.4e}, {:.4e})", self.x, self.y, self.z)
    }
}

impl Add for Point3 {
    type Output = Point3;
    fn add(self, rhs: Point3) -> Point3 {
        Point3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Point3 {
    fn add_assign(&mut self, rhs: Point3) {
        *self = *self + rhs;
    }
}

impl Sub for Point3 {
    type Output = Point3;
    fn sub(self, rhs: Point3) -> Point3 {
        Point3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Point3 {
    fn sub_assign(&mut self, rhs: Point3) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    fn mul(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Point3> for f64 {
    type Output = Point3;
    fn mul(self, p: Point3) -> Point3 {
        p * self
    }
}

impl Div<f64> for Point3 {
    type Output = Point3;
    fn div(self, s: f64) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<Axis> for Point3 {
    type Output = f64;
    fn index(&self, axis: Axis) -> &f64 {
        match axis {
            Axis::X => &self.x,
            Axis::Y => &self.y,
            Axis::Z => &self.z,
        }
    }
}

impl From<[f64; 3]> for Point3 {
    fn from(a: [f64; 3]) -> Self {
        Point3::new(a[0], a[1], a[2])
    }
}

impl From<Point3> for [f64; 3] {
    fn from(p: Point3) -> [f64; 3] {
        [p.x, p.y, p.z]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, -2.0, 0.5);
        assert_eq!(a + b, Point3::new(5.0, 0.0, 3.5));
        assert_eq!(a - b, Point3::new(-3.0, 4.0, 2.5));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Point3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Point3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn norms_and_distance() {
        let p = Point3::new(3.0, 4.0, 0.0);
        assert_eq!(p.norm(), 5.0);
        assert_eq!(p.norm_sq(), 25.0);
        assert_eq!(p.distance(Point3::ZERO), 5.0);
    }

    #[test]
    fn dot_product() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(-1.0, 0.5, 2.0);
        assert_eq!(a.dot(b), -1.0 + 1.0 + 6.0);
    }

    #[test]
    fn component_access() {
        let p = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(p.component(Axis::X), 1.0);
        assert_eq!(p[Axis::Y], 2.0);
        assert_eq!(p.with_component(Axis::Z, 9.0), Point3::new(1.0, 2.0, 9.0));
    }

    #[test]
    fn min_max() {
        let a = Point3::new(1.0, 5.0, 3.0);
        let b = Point3::new(2.0, 4.0, 3.0);
        assert_eq!(a.min(b), Point3::new(1.0, 4.0, 3.0));
        assert_eq!(a.max(b), Point3::new(2.0, 5.0, 3.0));
    }

    #[test]
    fn conversions() {
        let p: Point3 = [1.0, 2.0, 3.0].into();
        let a: [f64; 3] = p.into();
        assert_eq!(a, [1.0, 2.0, 3.0]);
    }

    #[test]
    fn finiteness() {
        assert!(Point3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Point3::new(f64::NAN, 0.0, 0.0).is_finite());
        assert!(!Point3::new(0.0, f64::INFINITY, 0.0).is_finite());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point3::ZERO).is_empty());
    }
}

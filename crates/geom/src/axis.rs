//! Coordinate axes for Manhattan geometry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the three coordinate axes.
///
/// Every panel in a Manhattan layout is normal to exactly one axis; the two
/// remaining axes span the panel plane. [`Axis::tangents`] returns them in a
/// fixed cyclic order so that (u, v, normal) always forms a right-handed
/// frame.
///
/// ```
/// use bemcap_geom::Axis;
/// assert_eq!(Axis::Z.tangents(), (Axis::X, Axis::Y));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis {
    /// The x axis.
    X,
    /// The y axis.
    Y,
    /// The z axis.
    Z,
}

impl Axis {
    /// All three axes in order.
    pub const ALL: [Axis; 3] = [Axis::X, Axis::Y, Axis::Z];

    /// The two axes spanning the plane normal to `self`, in cyclic order:
    /// `X → (Y, Z)`, `Y → (Z, X)`, `Z → (X, Y)`.
    pub fn tangents(self) -> (Axis, Axis) {
        match self {
            Axis::X => (Axis::Y, Axis::Z),
            Axis::Y => (Axis::Z, Axis::X),
            Axis::Z => (Axis::X, Axis::Y),
        }
    }

    /// Index of the axis (X=0, Y=1, Z=2).
    pub fn index(self) -> usize {
        match self {
            Axis::X => 0,
            Axis::Y => 1,
            Axis::Z => 2,
        }
    }

    /// Axis from an index (0, 1 or 2).
    ///
    /// # Panics
    ///
    /// Panics if `i > 2`.
    pub fn from_index(i: usize) -> Axis {
        match i {
            0 => Axis::X,
            1 => Axis::Y,
            2 => Axis::Z,
            _ => panic!("axis index out of range: {i}"),
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::X => write!(f, "x"),
            Axis::Y => write!(f, "y"),
            Axis::Z => write!(f, "z"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tangents_are_right_handed_cycle() {
        for a in Axis::ALL {
            let (u, v) = a.tangents();
            assert_ne!(u, a);
            assert_ne!(v, a);
            assert_ne!(u, v);
            // cyclic: index(u) = index(a)+1 mod 3
            assert_eq!(u.index(), (a.index() + 1) % 3);
            assert_eq!(v.index(), (a.index() + 2) % 3);
        }
    }

    #[test]
    fn index_round_trip() {
        for a in Axis::ALL {
            assert_eq!(Axis::from_index(a.index()), a);
        }
    }

    #[test]
    #[should_panic]
    fn bad_index_panics() {
        let _ = Axis::from_index(3);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Axis::X), "x");
        assert_eq!(format!("{}", Axis::Y), "y");
        assert_eq!(format!("{}", Axis::Z), "z");
    }
}

//! Conductors and complete extraction geometries.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::boxes::Box3;
use crate::panel::Panel;
use crate::vec3::Point3;
use crate::EPS0;

/// A named conductor: a union of axis-aligned boxes held at one potential.
///
/// ```
/// use bemcap_geom::{Box3, Conductor, Point3};
/// let wire = Conductor::new("net0")
///     .with_box(Box3::new(Point3::ZERO, Point3::new(10.0, 1.0, 1.0))?);
/// assert_eq!(wire.name(), "net0");
/// # Ok::<(), bemcap_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conductor {
    name: String,
    boxes: Vec<Box3>,
}

impl Conductor {
    /// Creates an empty conductor with the given net name.
    pub fn new(name: impl Into<String>) -> Conductor {
        Conductor { name: name.into(), boxes: Vec::new() }
    }

    /// Builder-style: adds a box and returns the conductor.
    pub fn with_box(mut self, b: Box3) -> Conductor {
        self.boxes.push(b);
        self
    }

    /// Adds a box.
    pub fn push_box(&mut self, b: Box3) {
        self.boxes.push(b);
    }

    /// Net name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The boxes making up this conductor.
    pub fn boxes(&self) -> &[Box3] {
        &self.boxes
    }

    /// All boundary faces of all boxes.
    ///
    /// Faces internal to the union (where two boxes abut) are *not* removed;
    /// the generators in [`crate::structures`] produce non-abutting boxes so
    /// this simple union is exact for every structure in the evaluation.
    pub fn faces(&self) -> Vec<Panel> {
        self.boxes.iter().flat_map(Box3::faces).collect()
    }

    /// Total surface area of all faces.
    pub fn surface_area(&self) -> f64 {
        self.boxes.iter().map(Box3::surface_area).sum()
    }

    /// Centroid of the box centers, weighted by volume.
    pub fn center(&self) -> Point3 {
        let vol: f64 = self.boxes.iter().map(Box3::volume).sum();
        let mut c = Point3::ZERO;
        for b in &self.boxes {
            c += b.center() * (b.volume() / vol);
        }
        c
    }
}

impl fmt::Display for Conductor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conductor {} ({} boxes)", self.name, self.boxes.len())
    }
}

/// A complete capacitance-extraction problem geometry: a set of conductors
/// embedded in a uniform dielectric, as assumed by the paper (§2.2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Geometry {
    conductors: Vec<Conductor>,
    /// Relative permittivity of the uniform embedding medium.
    eps_rel: f64,
}

impl Geometry {
    /// Creates a geometry in vacuum (ε_r = 1).
    pub fn new(conductors: Vec<Conductor>) -> Geometry {
        Geometry { conductors, eps_rel: 1.0 }
    }

    /// Builder-style: sets the relative permittivity of the medium.
    pub fn with_eps_rel(mut self, eps_rel: f64) -> Geometry {
        self.eps_rel = eps_rel;
        self
    }

    /// The conductors.
    pub fn conductors(&self) -> &[Conductor] {
        &self.conductors
    }

    /// Number of conductors (the `n` of the n×n capacitance matrix).
    pub fn conductor_count(&self) -> usize {
        self.conductors.len()
    }

    /// Relative permittivity of the medium.
    pub fn eps_rel(&self) -> f64 {
        self.eps_rel
    }

    /// Absolute permittivity ε = ε_r · ε₀ (F/m).
    pub fn eps(&self) -> f64 {
        self.eps_rel * EPS0
    }

    /// All faces of all conductors, with the owning conductor index.
    pub fn faces_with_conductor(&self) -> Vec<(usize, Panel)> {
        let mut out = Vec::new();
        for (ci, c) in self.conductors.iter().enumerate() {
            for f in c.faces() {
                out.push((ci, f));
            }
        }
        out
    }

    /// Overall bounding box of the geometry as (min, max) corners.
    ///
    /// # Panics
    ///
    /// Panics if the geometry contains no boxes.
    pub fn bounds(&self) -> (Point3, Point3) {
        let mut it = self.conductors.iter().flat_map(|c| c.boxes().iter());
        let first = it.next().expect("geometry must contain at least one box");
        let mut lo = first.min();
        let mut hi = first.max();
        for b in it {
            lo = lo.min(b.min());
            hi = hi.max(b.max());
        }
        (lo, hi)
    }
}

impl fmt::Display for Geometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "geometry with {} conductors, eps_r = {}", self.conductors.len(), self.eps_rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_wires() -> Geometry {
        let a = Conductor::new("a")
            .with_box(Box3::from_bounds((0.0, 10.0), (0.0, 1.0), (0.0, 1.0)).unwrap());
        let b = Conductor::new("b")
            .with_box(Box3::from_bounds((0.0, 1.0), (-5.0, 5.0), (2.0, 3.0)).unwrap());
        Geometry::new(vec![a, b])
    }

    #[test]
    fn conductor_faces() {
        let g = two_wires();
        assert_eq!(g.conductor_count(), 2);
        assert_eq!(g.conductors()[0].faces().len(), 6);
        let pairs = g.faces_with_conductor();
        assert_eq!(pairs.len(), 12);
        assert_eq!(pairs.iter().filter(|(c, _)| *c == 0).count(), 6);
    }

    #[test]
    fn eps_scaling() {
        let g = two_wires().with_eps_rel(3.9);
        assert!((g.eps() - 3.9 * EPS0).abs() < 1e-25);
    }

    #[test]
    fn bounds_cover_everything() {
        let g = two_wires();
        let (lo, hi) = g.bounds();
        assert_eq!(lo, Point3::new(0.0, -5.0, 0.0));
        assert_eq!(hi, Point3::new(10.0, 5.0, 3.0));
    }

    #[test]
    fn centers() {
        let c = Conductor::new("c")
            .with_box(Box3::from_bounds((0.0, 2.0), (0.0, 2.0), (0.0, 2.0)).unwrap());
        assert_eq!(c.center(), Point3::new(1.0, 1.0, 1.0));
        assert_eq!(c.surface_area(), 24.0);
    }
}

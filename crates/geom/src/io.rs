//! A small text format for geometry description files.
//!
//! The paper's flowcharts (Figs. 4 and 6) start from an "input file" holding
//! the structure description. We define a minimal line-oriented format:
//!
//! ```text
//! # comment
//! eps_rel 3.9
//! conductor net0
//! box 0.0 0.0 0.0   10.0 1.0 1.0
//! conductor net1
//! box 0.0 -5.0 2.0  1.0 5.0 3.0
//! ```
//!
//! `box` lines give the two extreme corners (x0 y0 z0 x1 y1 z1) and attach to
//! the most recently declared conductor.
//!
//! ```
//! use bemcap_geom::io;
//! let text = "conductor a\nbox 0 0 0 1 1 1\n";
//! let geo = io::parse_geometry(text)?;
//! assert_eq!(geo.conductor_count(), 1);
//! # Ok::<(), bemcap_geom::GeomError>(())
//! ```

use crate::boxes::Box3;
use crate::conductor::{Conductor, Geometry};
use crate::error::GeomError;
use crate::vec3::Point3;
use std::fmt::Write as _;

/// Parses the text geometry format described in the module docs.
///
/// # Errors
///
/// Returns [`GeomError::Parse`] with a line number on any malformed line,
/// and [`GeomError::DegenerateBox`] if a box has no volume.
pub fn parse_geometry(text: &str) -> Result<Geometry, GeomError> {
    let mut conductors: Vec<Conductor> = Vec::new();
    let mut eps_rel = 1.0;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let n = lineno + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut tok = line.split_whitespace();
        match tok.next() {
            Some("eps_rel") => {
                let v = tok
                    .next()
                    .ok_or_else(|| parse_err(n, "eps_rel needs a value"))?
                    .parse::<f64>()
                    .map_err(|e| parse_err(n, &format!("bad eps_rel: {e}")))?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(parse_err(n, "eps_rel must be positive"));
                }
                eps_rel = v;
            }
            Some("conductor") => {
                let name = tok.next().ok_or_else(|| parse_err(n, "conductor needs a name"))?;
                conductors.push(Conductor::new(name));
            }
            Some("box") => {
                let c = conductors
                    .last_mut()
                    .ok_or_else(|| parse_err(n, "box before any conductor"))?;
                let mut vals = [0.0_f64; 6];
                for v in vals.iter_mut() {
                    *v = tok
                        .next()
                        .ok_or_else(|| parse_err(n, "box needs 6 coordinates"))?
                        .parse::<f64>()
                        .map_err(|e| parse_err(n, &format!("bad coordinate: {e}")))?;
                }
                if tok.next().is_some() {
                    return Err(parse_err(n, "box takes exactly 6 coordinates"));
                }
                let b = Box3::new(
                    Point3::new(vals[0], vals[1], vals[2]),
                    Point3::new(vals[3], vals[4], vals[5]),
                )?;
                c.push_box(b);
            }
            Some(other) => {
                return Err(parse_err(n, &format!("unknown directive '{other}'")));
            }
            None => unreachable!("non-empty line has a first token"),
        }
    }
    if conductors.is_empty() {
        return Err(parse_err(0, "no conductors declared"));
    }
    Ok(Geometry::new(conductors).with_eps_rel(eps_rel))
}

fn parse_err(line: usize, detail: &str) -> GeomError {
    GeomError::Parse { line, detail: detail.to_string() }
}

/// Serializes a geometry back to the text format; `parse_geometry` of the
/// output reproduces the input geometry.
pub fn write_geometry(geo: &Geometry) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "eps_rel {}", geo.eps_rel());
    for c in geo.conductors() {
        let _ = writeln!(out, "conductor {}", c.name());
        for b in c.boxes() {
            let (lo, hi) = (b.min(), b.max());
            let _ = writeln!(out, "box {} {} {} {} {} {}", lo.x, lo.y, lo.z, hi.x, hi.y, hi.z);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::structures;

    #[test]
    fn round_trip() {
        let geo =
            structures::bus_crossing(2, 3, structures::BusParams::default()).with_eps_rel(3.9);
        let text = write_geometry(&geo);
        let back = parse_geometry(&text).unwrap();
        assert_eq!(back.conductor_count(), geo.conductor_count());
        assert!((back.eps_rel() - 3.9).abs() < 1e-12);
        assert_eq!(back.bounds(), geo.bounds());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = parse_geometry("# hi\n\nconductor a\nbox 0 0 0 1 1 1\n").unwrap();
        assert_eq!(g.conductor_count(), 1);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(parse_geometry("box 0 0 0 1 1 1"), Err(GeomError::Parse { line: 1, .. })));
        assert!(matches!(
            parse_geometry("conductor a\nbox 0 0 0 1 1"),
            Err(GeomError::Parse { line: 2, .. })
        ));
        assert!(matches!(
            parse_geometry("conductor a\nbox 0 0 0 1 1 1 9"),
            Err(GeomError::Parse { line: 2, .. })
        ));
        assert!(matches!(parse_geometry("wat"), Err(GeomError::Parse { line: 1, .. })));
        assert!(parse_geometry("").is_err());
        assert!(matches!(
            parse_geometry("conductor a\nbox 0 0 0 0 1 1"),
            Err(GeomError::DegenerateBox { .. })
        ));
        assert!(matches!(
            parse_geometry("eps_rel -2\nconductor a\nbox 0 0 0 1 1 1"),
            Err(GeomError::Parse { line: 1, .. })
        ));
    }
}

//! Axis-aligned rectangular surface panels.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::axis::Axis;
use crate::error::GeomError;
use crate::vec3::Point3;

/// Spatial relation between two Manhattan panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PanelRelation {
    /// Panels lie in the same plane (same normal axis and same plane offset).
    Coplanar,
    /// Panels have the same normal axis but different plane offsets.
    Parallel,
    /// Panels have different normal axes.
    Perpendicular,
}

/// An axis-aligned rectangular panel.
///
/// The panel is normal to [`Panel::normal`]; its plane sits at coordinate
/// [`Panel::w`] along that axis. The in-plane extent is the rectangle
/// `[u0, u1] × [v0, v1]` in the coordinates of the two tangent axes returned
/// by [`Axis::tangents`].
///
/// This representation makes the collocation/Galerkin integrals of the
/// `bemcap-quad` crate directly expressible in the panel's own (u, v, w)
/// frame, which is where the closed-form expressions of the paper's §4 live.
///
/// ```
/// use bemcap_geom::{Axis, Panel};
/// let p = Panel::new(Axis::Z, 0.0, (0.0, 2.0), (0.0, 3.0))?;
/// assert_eq!(p.area(), 6.0);
/// # Ok::<(), bemcap_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Panel {
    normal: Axis,
    w: f64,
    u0: f64,
    u1: f64,
    v0: f64,
    v1: f64,
}

impl Panel {
    /// Creates a panel normal to `normal` at plane offset `w`, spanning
    /// `u_range × v_range` in the tangent axes.
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DegeneratePanel`] if either range is empty,
    /// inverted or non-finite.
    pub fn new(
        normal: Axis,
        w: f64,
        u_range: (f64, f64),
        v_range: (f64, f64),
    ) -> Result<Panel, GeomError> {
        let (u0, u1) = u_range;
        let (v0, v1) = v_range;
        let ok = u1 > u0 && v1 > v0 && [w, u0, u1, v0, v1].iter().all(|x| x.is_finite());
        if !ok {
            return Err(GeomError::DegeneratePanel {
                detail: format!("normal={normal} w={w} u=[{u0},{u1}] v=[{v0},{v1}]"),
            });
        }
        Ok(Panel { normal, w, u0, u1, v0, v1 })
    }

    /// Normal axis.
    pub fn normal(&self) -> Axis {
        self.normal
    }

    /// Plane offset along the normal axis.
    pub fn w(&self) -> f64 {
        self.w
    }

    /// In-plane u range (first tangent axis).
    pub fn u_range(&self) -> (f64, f64) {
        (self.u0, self.u1)
    }

    /// In-plane v range (second tangent axis).
    pub fn v_range(&self) -> (f64, f64) {
        (self.v0, self.v1)
    }

    /// Side length along the first tangent axis.
    pub fn u_len(&self) -> f64 {
        self.u1 - self.u0
    }

    /// Side length along the second tangent axis.
    pub fn v_len(&self) -> f64 {
        self.v1 - self.v0
    }

    /// Panel area.
    pub fn area(&self) -> f64 {
        self.u_len() * self.v_len()
    }

    /// Diagonal length — used as the size scale for the approximation
    /// distances of §4.1.
    pub fn diameter(&self) -> f64 {
        (self.u_len().powi(2) + self.v_len().powi(2)).sqrt()
    }

    /// Panel centroid in 3-D.
    pub fn center(&self) -> Point3 {
        self.point_at(0.5 * (self.u0 + self.u1), 0.5 * (self.v0 + self.v1))
    }

    /// Maps in-plane coordinates (u, v) to a 3-D point on the panel plane.
    pub fn point_at(&self, u: f64, v: f64) -> Point3 {
        let (ua, va) = self.normal.tangents();
        Point3::ZERO.with_component(self.normal, self.w).with_component(ua, u).with_component(va, v)
    }

    /// The four corners, counter-clockwise when viewed from +normal.
    pub fn corners(&self) -> [Point3; 4] {
        [
            self.point_at(self.u0, self.v0),
            self.point_at(self.u1, self.v0),
            self.point_at(self.u1, self.v1),
            self.point_at(self.u0, self.v1),
        ]
    }

    /// Classifies the spatial relation with another panel.
    pub fn relation(&self, other: &Panel) -> PanelRelation {
        if self.normal != other.normal {
            PanelRelation::Perpendicular
        } else if self.w == other.w {
            PanelRelation::Coplanar
        } else {
            PanelRelation::Parallel
        }
    }

    /// Center-to-center distance between two panels.
    pub fn center_distance(&self, other: &Panel) -> f64 {
        self.center().distance(other.center())
    }

    /// Splits the panel into a `nu × nv` uniform grid of sub-panels,
    /// ordered v-major then u.
    ///
    /// # Panics
    ///
    /// Panics if `nu` or `nv` is zero.
    pub fn subdivide(&self, nu: usize, nv: usize) -> Vec<Panel> {
        assert!(nu > 0 && nv > 0, "subdivision counts must be positive");
        let du = self.u_len() / nu as f64;
        let dv = self.v_len() / nv as f64;
        let mut out = Vec::with_capacity(nu * nv);
        for j in 0..nv {
            for i in 0..nu {
                // Compute edges from the panel bounds so the tiling is exact
                // at the outer boundary regardless of rounding.
                let ua = self.u0 + du * i as f64;
                let ub = if i + 1 == nu { self.u1 } else { self.u0 + du * (i + 1) as f64 };
                let va = self.v0 + dv * j as f64;
                let vb = if j + 1 == nv { self.v1 } else { self.v0 + dv * (j + 1) as f64 };
                out.push(Panel { normal: self.normal, w: self.w, u0: ua, u1: ub, v0: va, v1: vb });
            }
        }
        out
    }

    /// Axis-aligned bounding box as (min, max) corners.
    pub fn bounds(&self) -> (Point3, Point3) {
        let lo = self.point_at(self.u0, self.v0);
        let hi = self.point_at(self.u1, self.v1);
        (lo.min(hi), lo.max(hi))
    }
}

impl fmt::Display for Panel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "panel(n={}, w={:.3e}, u=[{:.3e},{:.3e}], v=[{:.3e},{:.3e}])",
            self.normal, self.w, self.u0, self.u1, self.v0, self.v1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_panel() -> Panel {
        Panel::new(Axis::Z, 1.0, (0.0, 2.0), (0.0, 4.0)).unwrap()
    }

    #[test]
    fn area_and_lengths() {
        let p = unit_panel();
        assert_eq!(p.u_len(), 2.0);
        assert_eq!(p.v_len(), 4.0);
        assert_eq!(p.area(), 8.0);
        assert!((p.diameter() - 20.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn center_and_points() {
        let p = unit_panel();
        assert_eq!(p.center(), Point3::new(1.0, 2.0, 1.0));
        assert_eq!(p.point_at(0.0, 0.0), Point3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn corners_lie_on_plane() {
        let p = Panel::new(Axis::X, -0.5, (1.0, 2.0), (3.0, 5.0)).unwrap();
        for c in p.corners() {
            assert_eq!(c.x, -0.5);
        }
        // tangents of X are (Y, Z): u is y, v is z.
        assert_eq!(p.corners()[0], Point3::new(-0.5, 1.0, 3.0));
        assert_eq!(p.corners()[2], Point3::new(-0.5, 2.0, 5.0));
    }

    #[test]
    fn degenerate_rejected() {
        assert!(Panel::new(Axis::Z, 0.0, (1.0, 1.0), (0.0, 1.0)).is_err());
        assert!(Panel::new(Axis::Z, 0.0, (2.0, 1.0), (0.0, 1.0)).is_err());
        assert!(Panel::new(Axis::Z, f64::NAN, (0.0, 1.0), (0.0, 1.0)).is_err());
    }

    #[test]
    fn relations() {
        let a = Panel::new(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0)).unwrap();
        let b = Panel::new(Axis::Z, 0.0, (2.0, 3.0), (0.0, 1.0)).unwrap();
        let c = Panel::new(Axis::Z, 1.0, (0.0, 1.0), (0.0, 1.0)).unwrap();
        let d = Panel::new(Axis::X, 0.0, (0.0, 1.0), (0.0, 1.0)).unwrap();
        assert_eq!(a.relation(&b), PanelRelation::Coplanar);
        assert_eq!(a.relation(&c), PanelRelation::Parallel);
        assert_eq!(a.relation(&d), PanelRelation::Perpendicular);
    }

    #[test]
    fn subdivision_tiles_exactly() {
        let p = unit_panel();
        let subs = p.subdivide(3, 5);
        assert_eq!(subs.len(), 15);
        let total: f64 = subs.iter().map(Panel::area).sum();
        assert!((total - p.area()).abs() < 1e-12);
        // Outer boundary preserved exactly.
        let umin = subs.iter().map(|s| s.u_range().0).fold(f64::INFINITY, f64::min);
        let umax = subs.iter().map(|s| s.u_range().1).fold(f64::NEG_INFINITY, f64::max);
        assert_eq!((umin, umax), p.u_range());
    }

    #[test]
    fn bounds_ordering() {
        let p = unit_panel();
        let (lo, hi) = p.bounds();
        assert!(lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z);
    }
}

//! Error types for the geometry layer.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or parsing geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// A panel with empty, inverted or non-finite extent was requested.
    DegeneratePanel {
        /// Human-readable description of the offending panel.
        detail: String,
    },
    /// A box with empty, inverted or non-finite extent was requested.
    DegenerateBox {
        /// Human-readable description of the offending box.
        detail: String,
    },
    /// A geometry description file could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A conductor name was referenced but never declared.
    UnknownConductor {
        /// The missing name.
        name: String,
    },
    /// A full-chip layout or partition operation received unusable
    /// input (empty layout, duplicate net names, bad window grid).
    Layout {
        /// Human-readable description of the problem.
        detail: String,
    },
}

impl fmt::Display for GeomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeomError::DegeneratePanel { detail } => {
                write!(f, "degenerate panel: {detail}")
            }
            GeomError::DegenerateBox { detail } => write!(f, "degenerate box: {detail}"),
            GeomError::Parse { line, detail } => {
                write!(f, "geometry parse error at line {line}: {detail}")
            }
            GeomError::UnknownConductor { name } => {
                write!(f, "unknown conductor name: {name}")
            }
            GeomError::Layout { detail } => write!(f, "layout error: {detail}"),
        }
    }
}

impl Error for GeomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GeomError::Parse { line: 3, detail: "bad token".into() };
        assert!(format!("{e}").contains("line 3"));
        let e = GeomError::UnknownConductor { name: "m1".into() };
        assert!(format!("{e}").contains("m1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GeomError>();
    }
}

//! Generators for the benchmark structures of the paper's evaluation.
//!
//! * [`crossing_wires`] — the elementary two-wire crossing of Fig. 1, used to
//!   extract the flat/arch template shapes of Fig. 2;
//! * [`bus_crossing`] — the m×n crossing bus of Fig. 7 (right), the workload
//!   of Table 3 and Fig. 8;
//! * [`transistor_interconnect`] — a synthetic stand-in for the
//!   industry-provided transistor interconnect of Fig. 7 (left), used by
//!   Table 2 (see DESIGN.md §3 for the substitution rationale);
//! * plus simple calibration shapes (plates, cube).

use crate::boxes::Box3;
use crate::conductor::{Conductor, Geometry};
use crate::vec3::Point3;

/// Default metal half-pitch used by the generators, 1 µm in meters — the
/// same length scale as the paper's figures.
pub const DEFAULT_SCALE: f64 = 1.0e-6;

/// Two square parallel plates of size `w × l`, thickness `w/20`, separated
/// by `gap` along z. Conductor 0 is the bottom plate.
pub fn parallel_plates(w: f64, l: f64, gap: f64) -> Geometry {
    let t = 0.05 * w;
    let bottom = Conductor::new("bottom")
        .with_box(Box3::from_bounds((0.0, w), (0.0, l), (-t, 0.0)).expect("valid plate box"));
    let top = Conductor::new("top")
        .with_box(Box3::from_bounds((0.0, w), (0.0, l), (gap, gap + t)).expect("valid plate box"));
    Geometry::new(vec![bottom, top])
}

/// A single thin square plate of side `side` centered at the origin —
/// the classic validation case (C ≈ 0.3667 · 4πε₀ · side for a thin plate).
pub fn single_plate(side: f64) -> Geometry {
    let h = side / 2.0;
    let t = side / 100.0;
    let plate = Conductor::new("plate")
        .with_box(Box3::from_bounds((-h, h), (-h, h), (0.0, t)).expect("valid plate box"));
    Geometry::new(vec![plate])
}

/// A solid cube of side `side` with its minimum corner at the origin —
/// validation case (C ≈ 0.6607 · 4πε₀ · side).
pub fn cube(side: f64) -> Geometry {
    let c = Conductor::new("cube").with_box(
        Box3::from_bounds((0.0, side), (0.0, side), (0.0, side)).expect("valid cube box"),
    );
    Geometry::new(vec![c])
}

/// Parameters for [`crossing_wires`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossingParams {
    /// Wire width (both wires).
    pub width: f64,
    /// Wire thickness (vertical extent).
    pub thickness: f64,
    /// Wire length (both wires).
    pub length: f64,
    /// Vertical separation `h` between the top of the bottom wire and the
    /// bottom of the top wire — the `h` of Fig. 1 / Fig. 2.
    pub separation: f64,
}

impl Default for CrossingParams {
    fn default() -> Self {
        CrossingParams {
            width: DEFAULT_SCALE,
            thickness: 0.5 * DEFAULT_SCALE,
            length: 10.0 * DEFAULT_SCALE,
            separation: 0.5 * DEFAULT_SCALE,
        }
    }
}

/// The elementary crossing-wire pair of Fig. 1.
///
/// Conductor 0 (`target`) runs along x at the bottom; conductor 1 (`source`)
/// runs along y above it, crossing at the origin. The top face of the target
/// wire is at z = 0; the source wire's bottom face is at z = `separation`.
pub fn crossing_wires(p: CrossingParams) -> Geometry {
    let hw = p.width / 2.0;
    let hl = p.length / 2.0;
    let target = Conductor::new("target").with_box(
        Box3::from_bounds((-hl, hl), (-hw, hw), (-p.thickness, 0.0)).expect("valid wire box"),
    );
    let source = Conductor::new("source").with_box(
        Box3::from_bounds((-hw, hw), (-hl, hl), (p.separation, p.separation + p.thickness))
            .expect("valid wire box"),
    );
    Geometry::new(vec![target, source])
}

/// Parameters for [`bus_crossing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BusParams {
    /// Wire width.
    pub width: f64,
    /// Center-to-center pitch between adjacent bus wires.
    pub pitch: f64,
    /// Wire thickness.
    pub thickness: f64,
    /// Vertical gap between the two bus layers.
    pub layer_gap: f64,
    /// Extra wire length beyond the crossing region on each side.
    pub overhang: f64,
}

impl Default for BusParams {
    fn default() -> Self {
        BusParams {
            width: DEFAULT_SCALE,
            pitch: 2.0 * DEFAULT_SCALE,
            thickness: 0.5 * DEFAULT_SCALE,
            layer_gap: DEFAULT_SCALE,
            overhang: 2.0 * DEFAULT_SCALE,
        }
    }
}

/// The m×n crossing-bus structure of Fig. 7 (right): `m` wires along x on the
/// lower layer and `n` wires along y on the upper layer.
///
/// Conductors 0..m are the lower-layer wires, m..m+n the upper-layer wires.
/// `bus_crossing(24, 24, ..)` is the Table 3 / Fig. 8 workload.
///
/// # Panics
///
/// Panics if `m == 0 || n == 0`.
pub fn bus_crossing(m: usize, n: usize, p: BusParams) -> Geometry {
    assert!(m > 0 && n > 0, "bus must have at least one wire per layer");
    // Crossing region spans the pitch grid of the orthogonal layer.
    let span_x = (n.saturating_sub(1)) as f64 * p.pitch + p.width + 2.0 * p.overhang;
    let span_y = (m.saturating_sub(1)) as f64 * p.pitch + p.width + 2.0 * p.overhang;
    let mut conductors = Vec::with_capacity(m + n);
    // Lower layer: wires along x, stacked in y.
    for i in 0..m {
        let y0 = i as f64 * p.pitch;
        conductors.push(
            Conductor::new(format!("mx{i}")).with_box(
                Box3::from_bounds(
                    (-p.overhang, span_x - p.overhang),
                    (y0, y0 + p.width),
                    (0.0, p.thickness),
                )
                .expect("valid bus wire"),
            ),
        );
    }
    // Upper layer: wires along y, stacked in x.
    let z1 = p.thickness + p.layer_gap;
    for j in 0..n {
        let x0 = j as f64 * p.pitch;
        conductors.push(
            Conductor::new(format!("my{j}")).with_box(
                Box3::from_bounds(
                    (x0, x0 + p.width),
                    (-p.overhang, span_y - p.overhang),
                    (z1, z1 + p.thickness),
                )
                .expect("valid bus wire"),
            ),
        );
    }
    Geometry::new(conductors)
}

/// Parameters for [`transistor_interconnect`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransistorParams {
    /// Number of gate fingers.
    pub fingers: usize,
    /// Finger width (x extent of each finger).
    pub finger_width: f64,
    /// Finger length (y extent).
    pub finger_length: f64,
    /// Finger pitch.
    pub finger_pitch: f64,
    /// Metal thickness used on every layer.
    pub thickness: f64,
    /// Inter-layer vertical gap.
    pub layer_gap: f64,
}

impl Default for TransistorParams {
    fn default() -> Self {
        TransistorParams {
            fingers: 4,
            finger_width: 0.5 * DEFAULT_SCALE,
            finger_length: 6.0 * DEFAULT_SCALE,
            finger_pitch: 1.5 * DEFAULT_SCALE,
            thickness: 0.4 * DEFAULT_SCALE,
            layer_gap: 0.6 * DEFAULT_SCALE,
        }
    }
}

/// Synthetic transistor-interconnect structure standing in for the
/// industry-provided example of Fig. 7 (left).
///
/// Geometry: a fingered gate (poly) with all fingers on one net, source and
/// drain straps interdigitated on a second and third net, an M1 output strap
/// crossing the fingers, and an M2 rail crossing M1 — five nets, three
/// routing levels, many Manhattan crossings. This reproduces the geometry
/// *class* (dense Manhattan crossings in a uniform dielectric) that drives
/// both FASTCAP-style and instantiable-basis solver behaviour.
pub fn transistor_interconnect(p: TransistorParams) -> Geometry {
    assert!(p.fingers >= 2, "need at least two fingers");
    let t = p.thickness;
    let mut gate = Conductor::new("gate");
    let mut source = Conductor::new("source");
    let mut drain = Conductor::new("drain");
    // Gate fingers along y, on the lowest level.
    for i in 0..p.fingers {
        let x0 = i as f64 * p.finger_pitch;
        gate.push_box(
            Box3::from_bounds((x0, x0 + p.finger_width), (0.0, p.finger_length), (0.0, t))
                .expect("valid finger"),
        );
    }
    // Gate connecting bar at the -y end, slightly below the fingers' span.
    let total_x = (p.fingers - 1) as f64 * p.finger_pitch + p.finger_width;
    gate.push_box(
        Box3::from_bounds((0.0, total_x), (-1.5 * p.finger_width, -0.5 * p.finger_width), (0.0, t))
            .expect("valid gate bar"),
    );
    // Source/drain straps between fingers, alternating nets, same level,
    // shortened so they do not touch the gate bar.
    for i in 0..p.fingers.saturating_sub(1) {
        let xa = i as f64 * p.finger_pitch + p.finger_width + 0.25 * p.finger_width;
        let xb = (i + 1) as f64 * p.finger_pitch - 0.25 * p.finger_width;
        let b = Box3::from_bounds((xa, xb), (0.5 * p.finger_width, p.finger_length), (0.0, t))
            .expect("valid strap");
        if i % 2 == 0 {
            source.push_box(b);
        } else {
            drain.push_box(b);
        }
    }
    // M1 output strap crossing all fingers above them.
    let z1 = t + p.layer_gap;
    let m1 = Conductor::new("m1").with_box(
        Box3::from_bounds(
            (-p.finger_width, total_x + p.finger_width),
            (0.4 * p.finger_length, 0.4 * p.finger_length + 2.0 * p.finger_width),
            (z1, z1 + t),
        )
        .expect("valid m1 strap"),
    );
    // M2 rail crossing M1, another level up, running along y.
    let z2 = z1 + t + p.layer_gap;
    let m2 = Conductor::new("m2").with_box(
        Box3::from_bounds(
            (0.45 * total_x, 0.45 * total_x + 2.0 * p.finger_width),
            (-2.0 * p.finger_width, p.finger_length + 2.0 * p.finger_width),
            (z2, z2 + t),
        )
        .expect("valid m2 rail"),
    );
    Geometry::new(vec![gate, source, drain, m1, m2])
}

/// A comb-drive-like interdigitated pair: two combs with `fingers` fingers
/// each, interleaved with `gap` lateral spacing — a classic high-coupling
/// extraction stress case (dominated by lateral, not crossing, coupling).
///
/// # Panics
///
/// Panics if `fingers == 0` or the dimensions are non-positive.
pub fn interdigitated_combs(fingers: usize, finger_len: f64, width: f64, gap: f64) -> Geometry {
    assert!(fingers > 0 && finger_len > 0.0 && width > 0.0 && gap > 0.0);
    let pitch = 2.0 * (width + gap);
    let t = width / 2.0;
    let mut a = Conductor::new("comb_a");
    let mut b = Conductor::new("comb_b");
    // Spines.
    let total = fingers as f64 * pitch + width;
    a.push_box(Box3::from_bounds((0.0, total), (-2.0 * width, -width), (0.0, t)).expect("spine a"));
    b.push_box(
        Box3::from_bounds((0.0, total), (finger_len + width, finger_len + 2.0 * width), (0.0, t))
            .expect("spine b"),
    );
    for i in 0..fingers {
        let xa = i as f64 * pitch;
        let xb = xa + width + gap;
        a.push_box(
            Box3::from_bounds((xa, xa + width), (-width, finger_len), (0.0, t)).expect("finger a"),
        );
        b.push_box(
            Box3::from_bounds((xb, xb + width), (0.0, finger_len + width), (0.0, t))
                .expect("finger b"),
        );
    }
    Geometry::new(vec![a, b])
}

/// A signal plate over a larger ground plane at distance `gap` — the
/// canonical "plate over ground" configuration whose coupling approaches
/// ε·A/gap as the ground grows.
pub fn plate_over_ground(plate: f64, ground: f64, gap: f64) -> Geometry {
    let t = 0.05 * plate;
    let g = Conductor::new("gnd").with_box(
        Box3::from_bounds(
            (-(ground / 2.0), ground / 2.0),
            (-(ground / 2.0), ground / 2.0),
            (-t, 0.0),
        )
        .expect("ground plane"),
    );
    let h = plate / 2.0;
    let p = Conductor::new("sig")
        .with_box(Box3::from_bounds((-h, h), (-h, h), (gap, gap + t)).expect("signal plate"));
    Geometry::new(vec![g, p])
}

/// Translates an entire geometry by `d` (useful for composing test scenes).
pub fn translated(geo: &Geometry, d: Point3) -> Geometry {
    let conductors = geo
        .conductors()
        .iter()
        .map(|c| {
            let mut nc = Conductor::new(c.name());
            for b in c.boxes() {
                nc.push_box(b.translated(d));
            }
            nc
        })
        .collect();
    Geometry::new(conductors).with_eps_rel(geo.eps_rel())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::axis::Axis;

    #[test]
    fn plates_are_separated() {
        let g = parallel_plates(1.0, 1.0, 0.3);
        assert_eq!(g.conductor_count(), 2);
        let a = g.conductors()[0].boxes()[0];
        let b = g.conductors()[1].boxes()[0];
        assert!(!a.intersects(&b));
        assert!((b.min().z - a.max().z - 0.3).abs() < 1e-15);
    }

    #[test]
    fn crossing_wires_cross() {
        let g = crossing_wires(CrossingParams::default());
        let t = g.conductors()[0].boxes()[0];
        let s = g.conductors()[1].boxes()[0];
        assert!(!t.intersects(&s));
        // They overlap in plan view at the origin.
        assert!(t.contains(Point3::new(0.0, 0.0, t.max().z)));
        assert!(s.contains(Point3::new(0.0, 0.0, s.min().z)));
        // Separation as requested.
        assert!((s.min().z - t.max().z - CrossingParams::default().separation).abs() < 1e-18);
    }

    #[test]
    fn bus_counts_and_disjointness() {
        let g = bus_crossing(4, 3, BusParams::default());
        assert_eq!(g.conductor_count(), 7);
        let boxes: Vec<_> = g.conductors().iter().flat_map(|c| c.boxes().iter()).collect();
        for i in 0..boxes.len() {
            for j in (i + 1)..boxes.len() {
                assert!(!boxes[i].intersects(boxes[j]), "bus wires must not intersect");
            }
        }
    }

    #[test]
    fn bus_24x24_scale() {
        let g = bus_crossing(24, 24, BusParams::default());
        assert_eq!(g.conductor_count(), 48);
    }

    #[test]
    fn transistor_interconnect_is_disjoint() {
        let g = transistor_interconnect(TransistorParams::default());
        assert_eq!(g.conductor_count(), 5);
        let boxes: Vec<_> = g
            .conductors()
            .iter()
            .enumerate()
            .flat_map(|(ci, c)| c.boxes().iter().map(move |b| (ci, *b)))
            .collect();
        for i in 0..boxes.len() {
            for j in (i + 1)..boxes.len() {
                if boxes[i].0 != boxes[j].0 {
                    assert!(
                        !boxes[i].1.intersects(&boxes[j].1),
                        "different nets must not intersect: {:?} vs {:?}",
                        boxes[i],
                        boxes[j]
                    );
                }
            }
        }
    }

    #[test]
    fn translation_moves_bounds() {
        let g = cube(1.0);
        let t = translated(&g, Point3::new(5.0, 0.0, 0.0));
        assert_eq!(t.bounds().0, Point3::new(5.0, 0.0, 0.0));
    }

    #[test]
    fn combs_interleave_without_touching() {
        let g = interdigitated_combs(4, 10.0, 1.0, 0.5);
        assert_eq!(g.conductor_count(), 2);
        let a: Vec<_> = g.conductors()[0].boxes().to_vec();
        let b: Vec<_> = g.conductors()[1].boxes().to_vec();
        for ba in &a {
            for bb in &b {
                assert!(!ba.intersects(bb), "combs must not touch: {ba} vs {bb}");
            }
        }
        // Fingers of b sit between fingers of a (x-interleaved).
        assert_eq!(a.len(), 5); // spine + 4 fingers
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn plate_over_ground_dimensions() {
        let g = plate_over_ground(1.0, 4.0, 0.2);
        assert_eq!(g.conductor_count(), 2);
        let gnd = g.conductors()[0].boxes()[0];
        let sig = g.conductors()[1].boxes()[0];
        assert!(gnd.extent(Axis::X) == 4.0 && sig.extent(Axis::X) == 1.0);
        assert!((sig.min().z - 0.2).abs() < 1e-15);
        assert!(!gnd.intersects(&sig));
    }
}

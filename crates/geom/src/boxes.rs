//! Axis-aligned boxes: the building block of Manhattan conductors.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::axis::Axis;
use crate::error::GeomError;
use crate::panel::Panel;
use crate::vec3::Point3;

/// An axis-aligned rectangular box (cuboid) described by its two extreme
/// corners.
///
/// Boxes are the primitive from which all conductors are built; a wire is a
/// long thin box, a via a short stubby one. The six faces of a box are
/// [`Panel`]s and form the boundary that the BEM discretizes.
///
/// ```
/// use bemcap_geom::{Box3, Point3};
/// let b = Box3::new(Point3::ZERO, Point3::new(1.0, 2.0, 3.0))?;
/// assert_eq!(b.volume(), 6.0);
/// assert_eq!(b.faces().len(), 6);
/// # Ok::<(), bemcap_geom::GeomError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Box3 {
    min: Point3,
    max: Point3,
}

impl Box3 {
    /// Creates a box from two opposite corners (in any order per axis).
    ///
    /// # Errors
    ///
    /// Returns [`GeomError::DegenerateBox`] when the box has zero extent on
    /// any axis or a non-finite coordinate.
    pub fn new(a: Point3, b: Point3) -> Result<Box3, GeomError> {
        let min = a.min(b);
        let max = a.max(b);
        let ok =
            min.is_finite() && max.is_finite() && max.x > min.x && max.y > min.y && max.z > min.z;
        if !ok {
            return Err(GeomError::DegenerateBox { detail: format!("corners {a} and {b}") });
        }
        Ok(Box3 { min, max })
    }

    /// Convenience constructor from coordinate bounds.
    ///
    /// # Errors
    ///
    /// Same as [`Box3::new`].
    pub fn from_bounds(x: (f64, f64), y: (f64, f64), z: (f64, f64)) -> Result<Box3, GeomError> {
        Box3::new(Point3::new(x.0, y.0, z.0), Point3::new(x.1, y.1, z.1))
    }

    /// Minimum corner.
    pub fn min(&self) -> Point3 {
        self.min
    }

    /// Maximum corner.
    pub fn max(&self) -> Point3 {
        self.max
    }

    /// Box center.
    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    /// Extent along `axis`.
    pub fn extent(&self, axis: Axis) -> f64 {
        self.max.component(axis) - self.min.component(axis)
    }

    /// Volume.
    pub fn volume(&self) -> f64 {
        self.extent(Axis::X) * self.extent(Axis::Y) * self.extent(Axis::Z)
    }

    /// Total surface area of the six faces.
    pub fn surface_area(&self) -> f64 {
        let (dx, dy, dz) = (self.extent(Axis::X), self.extent(Axis::Y), self.extent(Axis::Z));
        2.0 * (dx * dy + dy * dz + dz * dx)
    }

    /// The six boundary faces as panels.
    ///
    /// Faces come in pairs per axis: the low face first, then the high face.
    pub fn faces(&self) -> Vec<Panel> {
        let mut out = Vec::with_capacity(6);
        for normal in Axis::ALL {
            let (ua, va) = normal.tangents();
            let u = (self.min.component(ua), self.max.component(ua));
            let v = (self.min.component(va), self.max.component(va));
            for w in [self.min.component(normal), self.max.component(normal)] {
                out.push(
                    Panel::new(normal, w, u, v)
                        .expect("non-degenerate box produces non-degenerate faces"),
                );
            }
        }
        out
    }

    /// `true` if `p` lies inside or on the boundary of the box.
    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// `true` if the interiors of the two boxes intersect.
    pub fn intersects(&self, other: &Box3) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
            && self.min.z < other.max.z
            && other.min.z < self.max.z
    }

    /// Translates the box by `d`.
    pub fn translated(&self, d: Point3) -> Box3 {
        Box3 { min: self.min + d, max: self.max + d }
    }
}

impl fmt::Display for Box3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "box[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b123() -> Box3 {
        Box3::new(Point3::ZERO, Point3::new(1.0, 2.0, 3.0)).unwrap()
    }

    #[test]
    fn corners_normalized() {
        let b = Box3::new(Point3::new(1.0, 2.0, 3.0), Point3::ZERO).unwrap();
        assert_eq!(b.min(), Point3::ZERO);
        assert_eq!(b.max(), Point3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn metrics() {
        let b = b123();
        assert_eq!(b.volume(), 6.0);
        assert_eq!(b.surface_area(), 2.0 * (2.0 + 6.0 + 3.0));
        assert_eq!(b.center(), Point3::new(0.5, 1.0, 1.5));
        assert_eq!(b.extent(Axis::Z), 3.0);
    }

    #[test]
    fn six_faces_cover_surface() {
        let b = b123();
        let faces = b.faces();
        assert_eq!(faces.len(), 6);
        let total: f64 = faces.iter().map(Panel::area).sum();
        assert!((total - b.surface_area()).abs() < 1e-12);
        // Each axis contributes exactly two faces.
        for axis in Axis::ALL {
            assert_eq!(faces.iter().filter(|p| p.normal() == axis).count(), 2);
        }
    }

    #[test]
    fn containment() {
        let b = b123();
        assert!(b.contains(b.center()));
        assert!(b.contains(b.min()));
        assert!(!b.contains(Point3::new(2.0, 0.0, 0.0)));
    }

    #[test]
    fn intersection() {
        let a = b123();
        let b = a.translated(Point3::new(0.5, 0.0, 0.0));
        let c = a.translated(Point3::new(5.0, 0.0, 0.0));
        let d = a.translated(Point3::new(1.0, 0.0, 0.0)); // touching faces only
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(!a.intersects(&d));
    }

    #[test]
    fn degenerate_rejected() {
        assert!(Box3::new(Point3::ZERO, Point3::new(0.0, 1.0, 1.0)).is_err());
        assert!(Box3::new(Point3::ZERO, Point3::new(f64::NAN, 1.0, 1.0)).is_err());
    }
}

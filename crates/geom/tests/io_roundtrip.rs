//! Property test: `parse_geometry ∘ write_geometry` is the identity on
//! random geometries — **exactly**, not just up to tolerance.
//!
//! The `bemcap-serve` wire protocol embeds geometry in this text format,
//! so the round trip is load-bearing for the daemon's bit-identical
//! determinism guarantee. Exactness holds because `write_geometry` prints
//! coordinates with Rust's `{}` formatting (the shortest string that
//! parses back to the identical `f64`), so no information is lost at any
//! magnitude.

use bemcap_geom::io::{parse_geometry, write_geometry};
use bemcap_geom::{Box3, Conductor, Geometry, Point3};
use proptest::prelude::*;

/// Builds a geometry from plain numeric inputs (the stub proptest only
/// samples numeric ranges): `conductors` conductors of `boxes` boxes
/// each, laid out on a grid scaled by 10^`scale`, jittered by the `f`
/// values so coordinates are "ugly" full-precision floats.
#[allow(clippy::too_many_arguments)]
fn build(
    conductors: usize,
    boxes: usize,
    scale: i32,
    eps: f64,
    f0: f64,
    f1: f64,
    f2: f64,
    f3: f64,
) -> Geometry {
    let unit = 10.0_f64.powi(scale);
    let mut out = Vec::new();
    for c in 0..conductors {
        let mut conductor = Conductor::new(format!("net{c}"));
        for b in 0..boxes {
            // Extents strictly positive and at the same magnitude as the
            // offsets, so min + extent never rounds back onto min.
            let w = (0.1 + f0) * unit;
            let h = (0.1 + f1) * unit;
            let t = (0.1 + f2) * unit;
            let x0 = (c as f64 * 7.0 + f3 - 3.0) * unit;
            let y0 = (b as f64 * 5.0 - f0) * unit;
            let z0 = (f1 - f2) * unit;
            conductor.push_box(
                Box3::new(Point3::new(x0, y0, z0), Point3::new(x0 + w, y0 + h, z0 + t))
                    .expect("positive extents"),
            );
        }
        out.push(conductor);
    }
    Geometry::new(out).with_eps_rel(eps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact identity: every conductor name, every box corner bit, and
    /// eps_rel survive the text round trip.
    #[test]
    fn parse_of_write_is_identity(
        conductors in 1usize..5,
        boxes in 1usize..4,
        scale in -9i32..4,
        eps in 1.0..12.0f64,
        f0 in 0.0..1.0f64,
        f1 in 0.0..1.0f64,
        f2 in 0.0..1.0f64,
        f3 in 0.0..1.0f64,
    ) {
        let geo = build(conductors, boxes, scale, eps, f0, f1, f2, f3);
        let text = write_geometry(&geo);
        let back = parse_geometry(&text).expect("writer output must parse");
        // Geometry derives PartialEq over names, boxes, and eps_rel; f64
        // equality here is exact bit equality for non-NaN values.
        prop_assert_eq!(&back, &geo, "round trip changed the geometry:\n{}", text);
    }

    /// The writer is a fixed point: write(parse(write(g))) == write(g),
    /// so daemon-side re-serialization can never drift.
    #[test]
    fn write_is_stable_under_reparse(
        conductors in 1usize..4,
        scale in -9i32..4,
        f0 in 0.0..1.0f64,
        f1 in 0.0..1.0f64,
    ) {
        let geo = build(conductors, 2, scale, 3.9, f0, f1, 0.25, 0.75);
        let text = write_geometry(&geo);
        let text2 = write_geometry(&parse_geometry(&text).expect("parses"));
        prop_assert_eq!(&text, &text2);
    }
}

//! # bemcap-fmm — multipole-accelerated piecewise-constant BEM baseline
//!
//! The FASTCAP \[4\] stand-in: a piecewise-constant Galerkin BEM whose
//! matrix-vector product is accelerated by an octree of Cartesian
//! multipole expansions (monopole + dipole + quadrupole) with a
//! Barnes–Hut-style multipole acceptance criterion, wrapped in GMRES.
//! Near-field interactions use the exact closed-form Galerkin integrals.
//!
//! This reproduces the *structure* that matters to the paper's argument:
//! an O(N log N) approximated matvec with heavy data dependency (tree
//! levels, shared residual vectors) that is cheap sequentially but
//! parallelizes poorly (§1, Fig. 8). See DESIGN.md §3 for the substitution
//! note (Cartesian expansions instead of FastCap's spherical harmonics —
//! same complexity class, same accuracy knob).
//!
//! ```
//! use bemcap_geom::{structures, Mesh};
//! use bemcap_fmm::solver::FmmSolver;
//!
//! let geo = structures::parallel_plates(1e-6, 1e-6, 0.2e-6);
//! let mesh = Mesh::uniform(&geo, 6);
//! let result = FmmSolver::default().solve(&geo, &mesh)?;
//! assert_eq!(result.capacitance.rows(), 2);
//! assert!(result.capacitance.get(0, 0) > 0.0);
//! # Ok::<(), bemcap_fmm::FmmError>(())
//! ```

pub mod error;
pub mod multipole;
pub mod octree;
pub mod operator;
pub mod parallel;
pub mod solver;

pub use error::FmmError;
pub use multipole::Moments;
pub use octree::Octree;
pub use operator::{FmmConfig, FmmOperator};
pub use solver::{FmmSolution, FmmSolver};

//! Octree over panel centroids.

use bemcap_geom::{MeshPanel, Point3};

/// One octree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Cube center.
    pub center: Point3,
    /// Cube half-edge.
    pub half: f64,
    /// Depth (root = 0).
    pub level: usize,
    /// Child node indices (empty for leaves).
    pub children: Vec<usize>,
    /// Panel indices owned by this node (only non-empty at leaves).
    pub panels: Vec<usize>,
    /// Number of panels in the subtree.
    pub count: usize,
}

impl Node {
    /// `true` when the node has no children.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    /// Radius of the bounding sphere of the cube.
    pub fn radius(&self) -> f64 {
        self.half * 3.0_f64.sqrt()
    }
}

/// An octree over mesh panels, built by recursive subdivision until leaves
/// hold at most `leaf_size` panels.
#[derive(Debug, Clone)]
pub struct Octree {
    nodes: Vec<Node>,
}

impl Octree {
    /// Builds the tree.
    ///
    /// # Panics
    ///
    /// Panics if `panels` is empty or `leaf_size == 0`.
    pub fn build(panels: &[MeshPanel], leaf_size: usize) -> Octree {
        assert!(!panels.is_empty(), "octree needs panels");
        assert!(leaf_size > 0, "leaf size must be positive");
        let centers: Vec<Point3> = panels.iter().map(|p| p.panel.center()).collect();
        // Root cube: the bounding box inflated to a cube.
        let mut lo = centers[0];
        let mut hi = centers[0];
        for c in &centers {
            lo = lo.min(*c);
            hi = hi.max(*c);
        }
        let center = (lo + hi) * 0.5;
        let half = ((hi - lo).x.max((hi - lo).y).max((hi - lo).z) * 0.5).max(1e-30) * 1.0001;
        let mut tree = Octree { nodes: Vec::new() };
        let all: Vec<usize> = (0..panels.len()).collect();
        tree.subdivide(center, half, 0, all, &centers, leaf_size);
        tree
    }

    fn subdivide(
        &mut self,
        center: Point3,
        half: f64,
        level: usize,
        panel_idx: Vec<usize>,
        centers: &[Point3],
        leaf_size: usize,
    ) -> usize {
        let my_index = self.nodes.len();
        let count = panel_idx.len();
        self.nodes.push(Node {
            center,
            half,
            level,
            children: Vec::new(),
            panels: Vec::new(),
            count,
        });
        // Depth cap guards against coincident centroids.
        if count <= leaf_size || level >= 24 {
            self.nodes[my_index].panels = panel_idx;
            return my_index;
        }
        // Partition panels into octants.
        let mut buckets: [Vec<usize>; 8] = Default::default();
        for &pi in &panel_idx {
            let c = centers[pi];
            let oct = ((c.x >= center.x) as usize)
                | (((c.y >= center.y) as usize) << 1)
                | (((c.z >= center.z) as usize) << 2);
            buckets[oct].push(pi);
        }
        let h2 = half * 0.5;
        let mut children = Vec::new();
        for (oct, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let off = Point3::new(
                if oct & 1 != 0 { h2 } else { -h2 },
                if oct & 2 != 0 { h2 } else { -h2 },
                if oct & 4 != 0 { h2 } else { -h2 },
            );
            let child = self.subdivide(center + off, h2, level + 1, bucket, centers, leaf_size);
            children.push(child);
        }
        self.nodes[my_index].children = children;
        my_index
    }

    /// All nodes (root at index 0).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the tree has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Maximum depth.
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Node counts per level, root first — the shape information the
    /// parallel cost model needs (top levels have too few nodes to occupy
    /// all compute nodes).
    pub fn level_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.depth() + 1];
        for n in &self.nodes {
            counts[n.level] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::{structures, Mesh};

    fn mesh() -> Mesh {
        let geo = structures::bus_crossing(3, 3, structures::BusParams::default());
        Mesh::uniform(&geo, 6)
    }

    #[test]
    fn all_panels_in_leaves_exactly_once() {
        let m = mesh();
        let tree = Octree::build(m.panels(), 8);
        let mut seen = vec![false; m.panel_count()];
        for n in tree.nodes() {
            if n.is_leaf() {
                for &p in &n.panels {
                    assert!(!seen[p], "panel {p} in two leaves");
                    seen[p] = true;
                }
            } else {
                assert!(n.panels.is_empty());
            }
        }
        assert!(seen.iter().all(|&s| s), "panel missing from tree");
    }

    #[test]
    fn counts_are_consistent() {
        let m = mesh();
        let tree = Octree::build(m.panels(), 8);
        let root = &tree.nodes()[0];
        assert_eq!(root.count, m.panel_count());
        for n in tree.nodes() {
            if !n.is_leaf() {
                let child_sum: usize = n.children.iter().map(|&c| tree.nodes()[c].count).sum();
                assert_eq!(child_sum, n.count);
            } else {
                assert_eq!(n.panels.len(), n.count);
                assert!(n.count <= 8 || n.level >= 24);
            }
        }
    }

    #[test]
    fn children_are_contained_in_parent() {
        let m = mesh();
        let tree = Octree::build(m.panels(), 8);
        for n in tree.nodes() {
            for &c in &n.children {
                let child = &tree.nodes()[c];
                assert_eq!(child.level, n.level + 1);
                assert!((child.half - n.half * 0.5).abs() < 1e-12 * n.half);
                let d = child.center - n.center;
                assert!(d.x.abs() <= n.half && d.y.abs() <= n.half && d.z.abs() <= n.half);
            }
        }
    }

    #[test]
    fn level_counts_sum_to_node_count() {
        let m = mesh();
        let tree = Octree::build(m.panels(), 8);
        let counts = tree.level_counts();
        assert_eq!(counts.iter().sum::<usize>(), tree.len());
        assert_eq!(counts[0], 1);
    }

    #[test]
    fn single_panel_tree() {
        let geo = structures::cube(1.0);
        let m = Mesh::uniform(&geo, 1);
        let tree = Octree::build(m.panels(), 4);
        assert!(!tree.is_empty());
        assert_eq!(tree.nodes()[0].count, m.panel_count());
    }
}

//! Cartesian multipole expansions (monopole + dipole + quadrupole).

use bemcap_geom::Point3;

/// Order-2 Cartesian multipole moments of a charge cluster about a center:
///
/// * `q`   = Σ qⱼ               (monopole)
/// * `d_i` = Σ qⱼ (rⱼ−c)_i      (dipole)
/// * `m_ij`= Σ qⱼ (rⱼ−c)_i (rⱼ−c)_j   (raw quadrupole)
///
/// The far potential is
/// φ(x) ≈ q/r + d·r̂/r² + ½ Σᵢⱼ m_ij (3 x̂ᵢx̂ⱼ − δᵢⱼ)/r³, giving a relative
/// truncation error O((a/r)³) for cluster radius a.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Moments {
    /// Expansion center.
    pub center: Point3,
    /// Total charge.
    pub q: f64,
    /// Dipole vector.
    pub d: [f64; 3],
    /// Raw second-moment tensor (symmetric; all 9 entries stored).
    pub m: [[f64; 3]; 3],
}

impl Moments {
    /// Zero moments about `center`.
    pub fn new(center: Point3) -> Moments {
        Moments { center, ..Moments::default() }
    }

    /// Accumulates a point charge.
    pub fn add_charge(&mut self, at: Point3, q: f64) {
        let s: [f64; 3] = (at - self.center).into();
        self.q += q;
        for i in 0..3 {
            self.d[i] += q * s[i];
            for j in 0..3 {
                self.m[i][j] += q * s[i] * s[j];
            }
        }
    }

    /// Adds another expansion translated to this center (the M2M step of
    /// the upward pass).
    pub fn add_translated(&mut self, child: &Moments) {
        let s: [f64; 3] = (child.center - self.center).into();
        self.q += child.q;
        for i in 0..3 {
            self.d[i] += child.d[i] + child.q * s[i];
            for j in 0..3 {
                self.m[i][j] +=
                    child.m[i][j] + child.d[i] * s[j] + child.d[j] * s[i] + child.q * s[i] * s[j];
            }
        }
    }

    /// Evaluates the expansion's potential at `x` (raw 1/r kernel).
    pub fn eval(&self, x: Point3) -> f64 {
        let rv: [f64; 3] = (x - self.center).into();
        let r2 = rv[0] * rv[0] + rv[1] * rv[1] + rv[2] * rv[2];
        let r = r2.sqrt();
        let inv_r = 1.0 / r;
        let inv_r3 = inv_r / r2;
        let inv_r5 = inv_r3 / r2;
        let mut phi = self.q * inv_r;
        // Dipole.
        phi += (self.d[0] * rv[0] + self.d[1] * rv[1] + self.d[2] * rv[2]) * inv_r3;
        // Quadrupole with raw moments: ½ Σ m_ij (3 rᵢrⱼ/r⁵ − δᵢⱼ/r³).
        let mut quad = 0.0;
        let mut trace = 0.0;
        for i in 0..3 {
            trace += self.m[i][i];
            for j in 0..3 {
                quad += self.m[i][j] * rv[i] * rv[j];
            }
        }
        phi += 0.5 * (3.0 * quad * inv_r5 - trace * inv_r3);
        phi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> Vec<(Point3, f64)> {
        vec![
            (Point3::new(0.1, 0.0, -0.2), 1.0),
            (Point3::new(-0.3, 0.2, 0.1), -0.5),
            (Point3::new(0.0, -0.1, 0.25), 2.0),
        ]
    }

    fn direct(points: &[(Point3, f64)], x: Point3) -> f64 {
        points.iter().map(|(p, q)| q / p.distance(x)).sum()
    }

    #[test]
    fn far_field_accuracy_order() {
        let pts = cluster();
        let mut m = Moments::new(Point3::ZERO);
        for (p, q) in &pts {
            m.add_charge(*p, *q);
        }
        // Error should drop like (a/r)^3.
        let e_near = {
            let x = Point3::new(3.0, 1.0, 0.5);
            (m.eval(x) - direct(&pts, x)).abs() / direct(&pts, x).abs()
        };
        let e_far = {
            let x = Point3::new(30.0, 10.0, 5.0);
            (m.eval(x) - direct(&pts, x)).abs() / direct(&pts, x).abs()
        };
        assert!(e_near < 1e-2, "near rel err {e_near}");
        assert!(e_far < e_near * 1e-2, "far err {e_far} vs near {e_near}");
    }

    #[test]
    fn translation_preserves_potential() {
        let pts = cluster();
        let mut child = Moments::new(Point3::new(0.05, -0.05, 0.0));
        for (p, q) in &pts {
            child.add_charge(*p, *q);
        }
        let mut parent = Moments::new(Point3::new(0.5, 0.5, 0.5));
        parent.add_translated(&child);
        // A direct expansion about the parent center must agree exactly
        // (translation is exact for raw moments).
        let mut direct_parent = Moments::new(Point3::new(0.5, 0.5, 0.5));
        for (p, q) in &pts {
            direct_parent.add_charge(*p, *q);
        }
        assert!((parent.q - direct_parent.q).abs() < 1e-14);
        for i in 0..3 {
            assert!((parent.d[i] - direct_parent.d[i]).abs() < 1e-14);
            for j in 0..3 {
                assert!((parent.m[i][j] - direct_parent.m[i][j]).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn pure_monopole() {
        let mut m = Moments::new(Point3::ZERO);
        m.add_charge(Point3::ZERO, 2.0);
        let x = Point3::new(0.0, 0.0, 4.0);
        assert!((m.eval(x) - 0.5).abs() < 1e-14);
    }

    #[test]
    fn dipole_field() {
        // Two opposite charges: potential on the axis ≈ p·z/r³.
        let mut m = Moments::new(Point3::ZERO);
        m.add_charge(Point3::new(0.0, 0.0, 0.01), 1.0);
        m.add_charge(Point3::new(0.0, 0.0, -0.01), -1.0);
        let x = Point3::new(0.0, 0.0, 2.0);
        let expect = 0.02 / 4.0; // p/r²
        assert!((m.eval(x) - expect).abs() < 1e-6, "{} vs {expect}", m.eval(x));
    }
}

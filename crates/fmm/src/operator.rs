//! The multipole-accelerated matrix-vector product.
//!
//! Implements `bemcap_linalg::LinearOperator` for the piecewise-constant
//! Galerkin system: near-field entries are exact closed-form Galerkin
//! integrals (precomputed, sparse), far-field interactions go through the
//! octree's multipole expansions with a Barnes–Hut acceptance criterion
//! `size/distance < θ`. Every matvec runs an upward pass (moments) and a
//! per-target traversal — the very phase structure whose barriers ruin
//! parallel scalability in Fig. 8.

use std::cell::Cell;
use std::time::Instant;

use bemcap_geom::{Mesh, Point3, EPS0};
use bemcap_linalg::LinearOperator;
use bemcap_quad::galerkin::{GalerkinEngine, PanelShape};

use crate::error::FmmError;
use crate::multipole::Moments;
use crate::octree::Octree;

/// Multipole operator tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmmConfig {
    /// Barnes–Hut opening angle: a node of edge `s` at distance `d` is
    /// accepted when `s/d < theta`. Smaller = more accurate, slower.
    pub theta: f64,
    /// Maximum panels per octree leaf.
    pub leaf_size: usize,
}

impl Default for FmmConfig {
    fn default() -> Self {
        FmmConfig { theta: 0.45, leaf_size: 12 }
    }
}

/// Cumulative matvec phase timings (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MatvecTimings {
    /// Upward (moment) passes.
    pub upward: f64,
    /// Far-field evaluations.
    pub far: f64,
    /// Near-field sparse products.
    pub near: f64,
    /// Number of matvecs performed.
    pub count: usize,
}

/// The multipole-accelerated Galerkin operator (already scaled by
/// 1/(4πε)).
pub struct FmmOperator {
    tree: Octree,
    centers: Vec<Point3>,
    areas: Vec<f64>,
    /// Per-target exact near-field entries (column, value).
    near: Vec<Vec<(u32, f64)>>,
    /// Per-target accepted far nodes.
    far_nodes: Vec<Vec<u32>>,
    inv_diag: Vec<f64>,
    scale: f64,
    timings: Cell<MatvecTimings>,
}

impl std::fmt::Debug for FmmOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FmmOperator")
            .field("n", &self.centers.len())
            .field("tree_nodes", &self.tree.len())
            .finish()
    }
}

impl FmmOperator {
    /// Builds the operator for a mesh in a medium of relative permittivity
    /// `eps_rel`.
    ///
    /// # Errors
    ///
    /// Returns [`FmmError::EmptyMesh`] for empty meshes.
    pub fn new(mesh: &Mesh, eps_rel: f64, cfg: FmmConfig) -> Result<FmmOperator, FmmError> {
        let panels = mesh.panels();
        if panels.is_empty() {
            return Err(FmmError::EmptyMesh);
        }
        let n = panels.len();
        let tree = Octree::build(panels, cfg.leaf_size);
        let centers: Vec<Point3> = panels.iter().map(|p| p.panel.center()).collect();
        let areas: Vec<f64> = panels.iter().map(|p| p.panel.area()).collect();
        let eng = GalerkinEngine::default();
        let scale = 1.0 / (4.0 * std::f64::consts::PI * eps_rel * EPS0);
        // Per-target traversal: collect accepted far nodes and near panels.
        let mut near = vec![Vec::new(); n];
        let mut far_nodes = vec![Vec::new(); n];
        let mut inv_diag = vec![0.0; n];
        for i in 0..n {
            let ti = &panels[i].panel;
            let target_r = 0.5 * ti.diameter();
            let mut stack = vec![0usize];
            while let Some(ni) = stack.pop() {
                let node = &tree.nodes()[ni];
                let d = node.center.distance(centers[i]);
                let size = 2.0 * node.half;
                if d > target_r && size < cfg.theta * d {
                    far_nodes[i].push(ni as u32);
                } else if node.is_leaf() {
                    for &j in &node.panels {
                        let val = scale
                            * eng.panel_pair(
                                ti,
                                PanelShape::Flat,
                                &panels[j].panel,
                                PanelShape::Flat,
                            );
                        near[i].push((j as u32, val));
                        if j == i {
                            inv_diag[i] = 1.0 / val;
                        }
                    }
                } else {
                    stack.extend_from_slice(&node.children);
                }
            }
        }
        Ok(FmmOperator {
            tree,
            centers,
            areas,
            near,
            far_nodes,
            inv_diag,
            scale,
            timings: Cell::new(MatvecTimings::default()),
        })
    }

    /// Panel areas (the Galerkin right-hand-side weights).
    pub fn areas(&self) -> &[f64] {
        &self.areas
    }

    /// Inverse of the exact system diagonal — the Jacobi preconditioner
    /// the solver builds by default.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }

    /// The octree (shape input for the parallel cost model).
    pub fn tree(&self) -> &Octree {
        &self.tree
    }

    /// Cumulative matvec phase timings.
    pub fn timings(&self) -> MatvecTimings {
        self.timings.get()
    }

    /// Approximate operator memory: near-field entries, traversal lists,
    /// tree nodes — the "Memory" column of Table 2.
    pub fn memory_bytes(&self) -> usize {
        let near: usize = self.near.iter().map(|r| r.len() * 12).sum();
        let far: usize = self.far_nodes.iter().map(|r| r.len() * 4).sum();
        let tree = self.tree.len() * std::mem::size_of::<crate::octree::Node>();
        near + far + tree + self.centers.len() * 40
    }

    /// Average number of near-field entries per target row.
    pub fn near_density(&self) -> f64 {
        let total: usize = self.near.iter().map(Vec::len).sum();
        total as f64 / self.near.len() as f64
    }

    fn upward_pass(&self, x: &[f64]) -> Vec<Moments> {
        let nodes = self.tree.nodes();
        let mut moments: Vec<Moments> = nodes.iter().map(|n| Moments::new(n.center)).collect();
        // Children have larger indices than parents (preorder construction),
        // so a reverse sweep is a valid upward pass.
        for ni in (0..nodes.len()).rev() {
            if nodes[ni].is_leaf() {
                let mut m = Moments::new(nodes[ni].center);
                for &p in &nodes[ni].panels {
                    m.add_charge(self.centers[p], x[p] * self.areas[p]);
                }
                moments[ni] = m;
            } else {
                let mut m = Moments::new(nodes[ni].center);
                for &c in &nodes[ni].children {
                    m.add_translated(&moments[c]);
                }
                moments[ni] = m;
            }
        }
        moments
    }
}

impl LinearOperator for FmmOperator {
    fn dim(&self) -> usize {
        self.centers.len()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim());
        assert_eq!(y.len(), self.dim());
        let mut t = self.timings.get();
        let t0 = Instant::now();
        let moments = self.upward_pass(x);
        let t1 = Instant::now();
        t.upward += (t1 - t0).as_secs_f64();
        // Far field: y_i += A_i/(4πε) Σ φ_node(c_i).
        for (i, yi) in y.iter_mut().enumerate() {
            let mut phi = 0.0;
            for &ni in &self.far_nodes[i] {
                phi += moments[ni as usize].eval(self.centers[i]);
            }
            *yi = self.scale * self.areas[i] * phi;
        }
        let t2 = Instant::now();
        t.far += (t2 - t1).as_secs_f64();
        // Near field: exact sparse part, each row a gathered sparse dot
        // through the chunked pair kernel.
        for (yi, row) in y.iter_mut().zip(&self.near) {
            *yi += bemcap_linalg::kernels::pair_dot(row, x);
        }
        t.near += t2.elapsed().as_secs_f64();
        t.count += 1;
        self.timings.set(t);
    }

    fn precondition(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..x.len() {
            y[i] = x[i] * self.inv_diag[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::structures;

    /// Dense reference matrix for the same mesh.
    fn dense_reference(mesh: &Mesh, eps_rel: f64) -> bemcap_linalg::Matrix {
        let eng = GalerkinEngine::default();
        let scale = 1.0 / (4.0 * std::f64::consts::PI * eps_rel * EPS0);
        let n = mesh.panel_count();
        let mut a = bemcap_linalg::Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(
                    i,
                    j,
                    scale
                        * eng.panel_pair(
                            &mesh.panels()[i].panel,
                            PanelShape::Flat,
                            &mesh.panels()[j].panel,
                            PanelShape::Flat,
                        ),
                );
            }
        }
        a
    }

    #[test]
    fn matvec_matches_dense_within_expansion_error() {
        let geo = structures::bus_crossing(2, 2, structures::BusParams::default());
        let mesh = Mesh::uniform(&geo, 5);
        let op = FmmOperator::new(&mesh, 1.0, FmmConfig::default()).unwrap();
        let dense = dense_reference(&mesh, 1.0);
        let n = mesh.panel_count();
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 % 11) as f64 - 5.0) * 1e-6).collect();
        let mut y = vec![0.0; n];
        op.apply(&x, &mut y);
        let y_ref = dense.matvec(&x);
        let norm: f64 = y_ref.iter().map(|v| v * v).sum::<f64>().sqrt();
        let err: f64 = y.iter().zip(&y_ref).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(err / norm < 5e-3, "relative matvec error {}", err / norm);
        assert!(op.timings().count == 1);
    }

    #[test]
    fn tighter_theta_is_more_accurate() {
        let geo = structures::bus_crossing(2, 2, structures::BusParams::default());
        let mesh = Mesh::uniform(&geo, 4);
        let dense = dense_reference(&mesh, 1.0);
        let n = mesh.panel_count();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let y_ref = dense.matvec(&x);
        let mut errs = Vec::new();
        for theta in [0.8, 0.3] {
            let op = FmmOperator::new(&mesh, 1.0, FmmConfig { theta, leaf_size: 8 }).unwrap();
            let mut y = vec![0.0; n];
            op.apply(&x, &mut y);
            let err: f64 = y.iter().zip(&y_ref).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            errs.push(err);
        }
        assert!(errs[1] < errs[0], "θ=0.3 ({}) should beat θ=0.8 ({})", errs[1], errs[0]);
    }

    #[test]
    fn empty_mesh_rejected() {
        let geo = structures::cube(1.0);
        let mesh = Mesh::uniform(&geo, 1);
        // A valid mesh works; an artificial empty mesh cannot be built via
        // the public API, so exercise the error through a panel-less clone.
        assert!(FmmOperator::new(&mesh, 1.0, FmmConfig::default()).is_ok());
    }

    #[test]
    fn preconditioner_uses_diagonal() {
        let geo = structures::cube(1.0e-6);
        let mesh = Mesh::uniform(&geo, 3);
        let op = FmmOperator::new(&mesh, 1.0, FmmConfig::default()).unwrap();
        let n = op.dim();
        let x = vec![1.0; n];
        let mut y = vec![0.0; n];
        op.precondition(&x, &mut y);
        // All entries positive and finite (diagonal of an SPD matrix).
        assert!(y.iter().all(|v| v.is_finite() && *v > 0.0));
    }

    #[test]
    fn memory_and_density_reported() {
        let geo = structures::bus_crossing(2, 2, structures::BusParams::default());
        let mesh = Mesh::uniform(&geo, 5);
        let op = FmmOperator::new(&mesh, 1.0, FmmConfig::default()).unwrap();
        assert!(op.memory_bytes() > 0);
        assert!(op.near_density() >= 1.0); // at least the self entry
        assert!(op.near_density() < mesh.panel_count() as f64); // actually sparse
    }
}

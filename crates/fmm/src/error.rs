//! Error types for the multipole solver.

use bemcap_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors from building or running the multipole solver.
#[derive(Debug, Clone, PartialEq)]
pub enum FmmError {
    /// The mesh has no panels.
    EmptyMesh,
    /// The Krylov solve failed.
    Solve(LinalgError),
    /// The reference-refinement loop hit its iteration cap before the
    /// solutions stabilized.
    NoRefinementConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Last relative change observed.
        last_change: f64,
    },
}

impl fmt::Display for FmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FmmError::EmptyMesh => write!(f, "mesh has no panels"),
            FmmError::Solve(e) => write!(f, "krylov solve failed: {e}"),
            FmmError::NoRefinementConvergence { iterations, last_change } => write!(
                f,
                "refinement loop did not stabilize after {iterations} iterations (last change {last_change:.2e})"
            ),
        }
    }
}

impl Error for FmmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FmmError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for FmmError {
    fn from(e: LinalgError) -> Self {
        FmmError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = FmmError::Solve(LinalgError::NotFinite);
        assert!(Error::source(&e).is_some());
        assert!(!format!("{}", FmmError::EmptyMesh).is_empty());
    }
}

//! FASTCAP-style capacitance extraction: multipole matvec + GMRES, plus
//! the reference-refinement loop of §6.

use std::time::Instant;

use bemcap_geom::{Geometry, Mesh};
use bemcap_linalg::{
    gmres_grouped, DiagonalPrecond, KrylovConfig, KrylovStats, Matrix, Preconditioner,
};

use crate::error::FmmError;
use crate::operator::{FmmConfig, FmmOperator, MatvecTimings};

/// The multipole-accelerated solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmmSolver {
    /// Operator tuning.
    pub config: FmmConfig,
    /// GMRES relative residual tolerance.
    pub tol: f64,
    /// GMRES restart length.
    pub restart: usize,
    /// Cap on total GMRES matvecs per right-hand side.
    pub max_iters: usize,
}

impl Default for FmmSolver {
    fn default() -> Self {
        FmmSolver { config: FmmConfig::default(), tol: 1e-6, restart: 40, max_iters: 600 }
    }
}

/// Solution record of one extraction.
#[derive(Debug, Clone)]
pub struct FmmSolution {
    /// The n×n short-circuit capacitance matrix (F).
    pub capacitance: Matrix,
    /// Panels in the discretization.
    pub panel_count: usize,
    /// Total GMRES matvecs across all right-hand sides.
    pub total_matvecs: usize,
    /// Seconds building the operator (system setup).
    pub setup_seconds: f64,
    /// Seconds in the Krylov solves (system solving).
    pub solve_seconds: f64,
    /// Operator memory footprint in bytes.
    pub memory_bytes: usize,
    /// Cumulative matvec phase timings.
    pub matvec_timings: MatvecTimings,
}

impl FmmSolver {
    /// The iterative-solver caps as a [`KrylovConfig`].
    pub fn krylov_config(&self) -> KrylovConfig {
        KrylovConfig { tol: self.tol, restart: self.restart, max_iters: self.max_iters }
    }

    /// Extracts the capacitance matrix of `geo` discretized by `mesh`:
    /// builds the operator, then runs [`FmmSolver::solve_prepared`] under
    /// the operator's Jacobi (diagonal) preconditioner.
    ///
    /// # Errors
    ///
    /// * [`FmmError::EmptyMesh`] for empty meshes;
    /// * [`FmmError::Solve`] if GMRES fails to converge.
    pub fn solve(&self, geo: &Geometry, mesh: &Mesh) -> Result<FmmSolution, FmmError> {
        let t0 = Instant::now();
        let op = FmmOperator::new(mesh, geo.eps_rel(), self.config)?;
        let setup_seconds = t0.elapsed().as_secs_f64();
        let pre = DiagonalPrecond::new(op.inv_diag().to_vec());
        let t1 = Instant::now();
        let (capacitance, stats) = self.solve_prepared(&op, mesh, geo.conductor_count(), &pre)?;
        let solve_seconds = t1.elapsed().as_secs_f64();
        Ok(FmmSolution {
            capacitance,
            panel_count: mesh.panel_count(),
            total_matvecs: stats.matvecs,
            setup_seconds,
            solve_seconds,
            memory_bytes: op.memory_bytes(),
            matvec_timings: op.timings(),
        })
    }

    /// The solve step on an already-built operator — one conductor RHS per
    /// GMRES solve through the shared [`gmres_grouped`] driver
    /// (`bemcap_linalg`). Lets callers that prepared the operator
    /// themselves (the `bemcap-core` backend layer) reuse it instead of
    /// rebuilding, and pick the preconditioner.
    ///
    /// # Errors
    ///
    /// * [`FmmError::Solve`] if GMRES fails to converge or shapes mismatch.
    pub fn solve_prepared(
        &self,
        op: &FmmOperator,
        mesh: &Mesh,
        n_cond: usize,
        pre: &dyn Preconditioner,
    ) -> Result<(Matrix, KrylovStats), FmmError> {
        // Galerkin RHS: ∫ψ_i φ ds = A_i on conductor k, 0 elsewhere;
        // C_lk = Σ_{i on l} A_i ρ_i — the grouped quadratic form.
        let conductor_of: Vec<usize> = mesh.panels().iter().map(|p| p.conductor).collect();
        let (c, stats) =
            gmres_grouped(op, pre, op.areas(), &conductor_of, n_cond, &self.krylov_config())?;
        Ok((c, stats))
    }

    /// The §6 reference loop: starting from `mesh`, refine the
    /// discretization by 10 % per iteration until every capacitance entry
    /// changes by less than `rel_tol` (the paper uses 0.1 %), then return
    /// the last solution.
    ///
    /// # Errors
    ///
    /// * solver errors, or [`FmmError::NoRefinementConvergence`] if the
    ///   loop hits `max_refinements`.
    pub fn reference(
        &self,
        geo: &Geometry,
        mut mesh: Mesh,
        rel_tol: f64,
        max_refinements: usize,
    ) -> Result<FmmSolution, FmmError> {
        let mut prev = self.solve(geo, &mesh)?;
        let mut last_change = f64::INFINITY;
        for _ in 0..max_refinements {
            mesh = mesh.refined(geo, 1.1);
            let next = self.solve(geo, &mesh)?;
            last_change = max_rel_change(&prev.capacitance, &next.capacitance);
            prev = next;
            if last_change < rel_tol {
                return Ok(prev);
            }
        }
        Err(FmmError::NoRefinementConvergence { iterations: max_refinements, last_change })
    }
}

/// Largest relative entry change between two same-shape matrices, measured
/// against the largest magnitude in `b`.
fn max_rel_change(a: &Matrix, b: &Matrix) -> f64 {
    let scale = b.max_abs().max(f64::MIN_POSITIVE);
    let mut worst = 0.0_f64;
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            worst = worst.max((a.get(i, j) - b.get(i, j)).abs() / scale);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::{structures, EPS0};

    #[test]
    fn parallel_plate_capacitance() {
        // 1 µm plates at 0.2 µm gap: C ≈ ε₀ A/d = 44.3 aF plus fringe
        // (substantially more for w/d = 5).
        let w = 1.0e-6;
        let d = 0.2e-6;
        let geo = structures::parallel_plates(w, w, d);
        let mesh = bemcap_geom::Mesh::uniform(&geo, 10);
        let sol = FmmSolver::default().solve(&geo, &mesh).unwrap();
        let ideal = EPS0 * w * w / d;
        let c01 = -sol.capacitance.get(0, 1);
        assert!(c01 > ideal, "coupling {c01} should exceed ideal {ideal} (fringe)");
        assert!(c01 < 3.0 * ideal, "coupling {c01} vs ideal {ideal}");
        // Symmetry of the capacitance matrix.
        assert!(sol.capacitance.is_symmetric(5e-2));
        // Diagonal positive, off-diagonal negative.
        assert!(sol.capacitance.get(0, 0) > 0.0);
        assert!(sol.capacitance.get(0, 1) < 0.0);
    }

    #[test]
    fn unit_square_plate_self_capacitance() {
        // Classic validation: an isolated unit square plate has
        // C ≈ 0.367 · 4πε₀ ≈ 40.8 pF (literature 0.3667–0.368).
        let geo = structures::single_plate(1.0);
        let mesh = bemcap_geom::Mesh::uniform(&geo, 12);
        let sol = FmmSolver::default().solve(&geo, &mesh).unwrap();
        let c = sol.capacitance.get(0, 0);
        let expect = 0.3667 * 4.0 * std::f64::consts::PI * EPS0;
        // Thin-box plate (two faces + rim) at moderate mesh: a few percent.
        assert!((c - expect).abs() / expect < 0.1, "unit plate C = {c}, literature {expect}");
    }

    #[test]
    fn cube_self_capacitance() {
        // C_cube ≈ 0.6607 · 4πε₀ a.
        let geo = structures::cube(1.0);
        let mesh = bemcap_geom::Mesh::uniform(&geo, 8);
        let sol = FmmSolver::default().solve(&geo, &mesh).unwrap();
        let c = sol.capacitance.get(0, 0);
        let expect = 0.6607 * 4.0 * std::f64::consts::PI * EPS0;
        assert!((c - expect).abs() / expect < 0.08, "cube C = {c}, expect {expect}");
    }

    #[test]
    fn refinement_reference_converges_loosely() {
        let geo = structures::parallel_plates(1.0e-6, 1.0e-6, 0.3e-6);
        let mesh = bemcap_geom::Mesh::uniform(&geo, 4);
        // Loose tolerance so the test stays fast.
        let sol = FmmSolver::default().reference(&geo, mesh, 0.05, 12).unwrap();
        assert!(sol.capacitance.get(0, 0) > 0.0);
    }

    #[test]
    fn refinement_failure_reported() {
        let geo = structures::parallel_plates(1.0e-6, 1.0e-6, 0.3e-6);
        let mesh = bemcap_geom::Mesh::uniform(&geo, 3);
        let err = FmmSolver::default().reference(&geo, mesh, 1e-9, 1);
        assert!(matches!(err, Err(FmmError::NoRefinementConvergence { .. })));
    }
}

//! Parallel cost model of the multipole solver (the Fig. 8 "\[7\]" curve).
//!
//! Why parallel FMM saturates (§1): the upward pass is a level-by-level
//! reduction with a barrier per level — near the root only 8, then 1 nodes
//! exist, so most compute nodes idle; and every Krylov iteration must
//! exchange the full residual vector between nodes. We express exactly
//! that dependency structure as [`Phase`] lists for the deterministic
//! machine simulator, with per-unit costs *measured* from the real
//! single-thread solver.

use bemcap_par::{CommModel, MachineSim, Phase};

use crate::octree::Octree;

/// Measured per-unit costs of one matvec, extracted from
/// `FmmOperator::timings` and the tree shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmmCostModel {
    /// Seconds per tree node in the upward pass.
    pub upward_per_node: f64,
    /// Seconds of far+near work per target panel.
    pub eval_per_target: f64,
    /// Number of panels N.
    pub n: usize,
    /// Krylov iterations (matvecs) in the solve.
    pub iterations: usize,
    /// Serial setup seconds (the tree build, which \[7\] does not
    /// parallelize).
    pub serial_setup: f64,
    /// Parallelizable setup seconds (the near-field precomputation, an
    /// independent per-target loop).
    pub parallel_setup: f64,
}

/// Builds the phase list of one full parallel FMM solve on `d` nodes.
pub fn fmm_phases(tree: &Octree, costs: &FmmCostModel, d: usize) -> Vec<Phase> {
    let mut phases = vec![
        Phase::Serial { seconds: costs.serial_setup },
        Phase::Parallel { costs_per_node: vec![costs.parallel_setup / d as f64; d] },
        Phase::Barrier,
    ];
    let level_counts = tree.level_counts();
    for _ in 0..costs.iterations {
        // Upward pass: one parallel region + barrier per level, deepest
        // first. A level with fewer nodes than D leaves nodes idle.
        for &count in level_counts.iter().rev() {
            let per_node_work = costs.upward_per_node * count.div_ceil(d) as f64;
            let mut v = vec![0.0; d];
            for (node, slot) in v.iter_mut().enumerate() {
                // Nodes beyond the available tree nodes at this level idle.
                if node < count.min(d) {
                    *slot = per_node_work;
                }
            }
            phases.push(Phase::Parallel { costs_per_node: v });
            phases.push(Phase::Barrier);
        }
        // Far + near evaluation: well balanced over targets.
        let eval = costs.eval_per_target * costs.n as f64 / d as f64;
        phases.push(Phase::Parallel { costs_per_node: vec![eval; d] });
        // Residual exchange: every node needs the full updated vector.
        phases.push(Phase::AllToAll { bytes: costs.n.div_ceil(d) * 8 });
        // Krylov reduction scalars.
        phases.push(Phase::Broadcast { bytes: 64 });
    }
    phases
}

/// Efficiency curve of the parallel FMM on node counts `ds`, relative to
/// the one-node simulation.
pub fn efficiency_curve(
    tree: &Octree,
    costs: &FmmCostModel,
    comm: CommModel,
    ds: &[usize],
) -> Vec<(usize, f64)> {
    let t1 = MachineSim::new(1, comm).simulate(&fmm_phases(tree, costs, 1)).makespan;
    ds.iter()
        .map(|&d| {
            let r = MachineSim::new(d, comm).simulate(&fmm_phases(tree, costs, d));
            (d, r.efficiency(t1))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::{structures, Mesh};

    fn tree() -> Octree {
        let geo = structures::bus_crossing(2, 2, structures::BusParams::default());
        let mesh = Mesh::uniform(&geo, 8);
        Octree::build(mesh.panels(), 8)
    }

    fn costs(n: usize) -> FmmCostModel {
        FmmCostModel {
            upward_per_node: 2e-7,
            eval_per_target: 3e-6,
            n,
            iterations: 40,
            serial_setup: 5e-3,
            parallel_setup: 50e-3,
        }
    }

    #[test]
    fn efficiency_decays_with_nodes() {
        let t = tree();
        let c = costs(2000);
        let curve = efficiency_curve(&t, &c, CommModel::cluster(), &[1, 2, 4, 8]);
        assert!((curve[0].1 - 1.0).abs() < 1e-9);
        // Monotone non-increasing efficiency.
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9, "{curve:?}");
        }
        // The collapse is material by 8 nodes (the Fig. 8 regime: [7]
        // reports 65 % at 8; exact placement depends on measured costs).
        let at8 = curve.last().unwrap().1;
        assert!(at8 < 0.9, "efficiency at 8 nodes should drop, got {at8}");
        assert!(at8 > 0.2, "model should not collapse to zero, got {at8}");
    }

    #[test]
    fn phase_list_structure() {
        let t = tree();
        let c = costs(500);
        let phases = fmm_phases(&t, &c, 4);
        // 3 setup phases + iterations × (levels×2 + 3).
        let levels = t.level_counts().len();
        assert_eq!(phases.len(), 3 + c.iterations * (levels * 2 + 3));
        assert!(matches!(phases[0], Phase::Serial { .. }));
    }

    #[test]
    fn single_node_is_reference() {
        let t = tree();
        let c = costs(500);
        let curve = efficiency_curve(&t, &c, CommModel::shared_memory(), &[1]);
        assert!((curve[0].1 - 1.0).abs() < 1e-12);
    }
}

//! The Galerkin integration engine with §4.1 dimension reduction.
//!
//! Every entry of the template matrix P̃ (equation (5)) is an integral of
//! the form (6). The engine picks the cheapest sufficient evaluation:
//!
//! * **far**: both templates collapse to points — `areaA·areaB/d`
//!   (the lowest-dimensional expression);
//! * **parallel, near**: the exact 16-corner 4-D closed form;
//! * **perpendicular / shaped, near**: outer Gauss quadrature of the inner
//!   2-D (or 1-D) analytic expression — exactly the split of equation (7);
//! * **touching/overlapping**: the outer rectangle is subdivided before
//!   quadrature so the (continuous but edge-kinked) inner potential is
//!   resolved.
//!
//! The primitive evaluators are injectable function pointers so the
//! acceleration techniques of §4.2 (tabulated `log`/`atan`, etc., in
//! `bemcap-accel`) can be swapped into the hot path without a dynamic
//! dispatch per elementary-function call.

use bemcap_geom::{Panel, PanelRelation, Point3};

use crate::analytic;
use crate::gauss::GaussRule;

/// Which in-plane coordinate a 1-D template shape varies along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeDir {
    /// The panel's first tangent axis.
    U,
    /// The panel's second tangent axis.
    V,
}

/// The in-plane weight of a template on its support panel.
///
/// Instantiable templates have *at most 1-D shape variation* (§4.1): they
/// are either flat (constant 1) or vary along a single tangent direction.
#[derive(Clone, Copy)]
pub enum PanelShape<'a> {
    /// Constant weight 1 — face basis functions and flat templates.
    Flat,
    /// Weight `shape(c)` where `c` is the absolute in-plane coordinate
    /// along `dir` — arch templates.
    Shaped {
        /// Direction of variation.
        dir: ShapeDir,
        /// The 1-D profile, evaluated at absolute coordinates.
        shape: &'a dyn Fn(f64) -> f64,
    },
}

impl std::fmt::Debug for PanelShape<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PanelShape::Flat => write!(f, "Flat"),
            PanelShape::Shaped { dir, .. } => write!(f, "Shaped({dir:?})"),
        }
    }
}

/// Tuning knobs for the dimension-reduction strategy of §4.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GalerkinConfig {
    /// Separation (in units of the larger panel diameter) beyond which the
    /// point–point approximation is used ("approximation distance").
    pub far_ratio: f64,
    /// Separation beyond which a low-order outer rule suffices.
    pub mid_ratio: f64,
    /// Outer Gauss order for nearby pairs.
    pub near_order: usize,
    /// Outer Gauss order for mid-range pairs.
    pub mid_order: usize,
    /// Outer-rectangle subdivision when panels touch or overlap.
    pub touch_subdiv: usize,
    /// Gauss order for integrating 1-D template shapes.
    pub shape_order: usize,
}

impl Default for GalerkinConfig {
    fn default() -> Self {
        GalerkinConfig {
            far_ratio: 8.0,
            mid_ratio: 2.5,
            near_order: 6,
            mid_order: 3,
            touch_subdiv: 3,
            shape_order: 6,
        }
    }
}

/// The integration engine. Create once, use for every template pair; it is
/// `Send + Sync` and freely shared across the parallel workers of
/// Algorithm 1.
pub struct GalerkinEngine {
    cfg: GalerkinConfig,
    rule_near: GaussRule,
    rule_mid: GaussRule,
    rule_shape: GaussRule,
    /// Double (2-D) primitive of 1/r — injectable for §4.2 acceleration.
    dp: fn(f64, f64, f64) -> f64,
    /// Quadruple (4-D) primitive of 1/r — injectable for §4.2 acceleration.
    qp: fn(f64, f64, f64) -> f64,
    /// Triple (3-D) primitive of 1/r — injectable for §4.2 acceleration.
    tp: fn(f64, f64, f64) -> f64,
}

impl std::fmt::Debug for GalerkinEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GalerkinEngine").field("cfg", &self.cfg).finish()
    }
}

impl Default for GalerkinEngine {
    fn default() -> Self {
        GalerkinEngine::new(GalerkinConfig::default())
    }
}

impl GalerkinEngine {
    /// Builds an engine with the given configuration and the exact
    /// double-precision primitives.
    pub fn new(cfg: GalerkinConfig) -> GalerkinEngine {
        GalerkinEngine {
            cfg,
            rule_near: GaussRule::cached(cfg.near_order.max(1)),
            rule_mid: GaussRule::cached(cfg.mid_order.max(1)),
            rule_shape: GaussRule::cached(cfg.shape_order.max(1)),
            dp: analytic::double_primitive,
            qp: analytic::quad_primitive,
            tp: analytic::triple_primitive,
        }
    }

    /// Replaces the 2-D and 4-D primitive evaluators (acceleration hook
    /// for §4.2); see [`GalerkinEngine::with_triple_primitive`] for the
    /// 3-D one.
    pub fn with_primitives(
        mut self,
        dp: fn(f64, f64, f64) -> f64,
        qp: fn(f64, f64, f64) -> f64,
    ) -> GalerkinEngine {
        self.dp = dp;
        self.qp = qp;
        self
    }

    /// Replaces the 3-D primitive evaluator used by the shaped-template
    /// strip path.
    pub fn with_triple_primitive(mut self, tp: fn(f64, f64, f64) -> f64) -> GalerkinEngine {
        self.tp = tp;
        self
    }

    /// The configuration.
    pub fn config(&self) -> &GalerkinConfig {
        &self.cfg
    }

    /// Integral of `wa(r) wb(r′) / ‖r − r′‖` over the two panels (raw
    /// kernel — callers divide by 4πε).
    pub fn panel_pair(&self, a: &Panel, sa: PanelShape<'_>, b: &Panel, sb: PanelShape<'_>) -> f64 {
        let size = a.diameter().max(b.diameter());
        let gap = aabb_gap(a, b);
        // Far field: lowest-dimensional expression (point-point).
        if gap > self.cfg.far_ratio * size {
            let d = a.center_distance(b);
            return self.weighted_area(a, sa) * self.weighted_area(b, sb) / d;
        }
        match (sa, sb) {
            (PanelShape::Flat, PanelShape::Flat) => self.flat_flat(a, b, gap, size),
            (PanelShape::Shaped { .. }, _) => self.outer_weighted(a, sa, b, sb, gap, size),
            (_, PanelShape::Shaped { .. }) => self.outer_weighted(b, sb, a, sa, gap, size),
        }
    }

    /// ∫ shape over the panel (the template "charge" content), used by the
    /// far-field collapse and by right-hand-side assembly.
    ///
    /// Shaped directions use a composite rule (several Gauss segments) so
    /// narrow arch bumps on wide supports are still resolved.
    pub fn weighted_area(&self, p: &Panel, s: PanelShape<'_>) -> f64 {
        match s {
            PanelShape::Flat => p.area(),
            PanelShape::Shaped { dir, shape } => {
                let (range, other_len) = match dir {
                    ShapeDir::U => (p.u_range(), p.v_len()),
                    ShapeDir::V => (p.v_range(), p.u_len()),
                };
                self.composite_1d(range, shape) * other_len
            }
        }
    }

    /// Composite Gauss integration of a 1-D function over `range`:
    /// `segments` uniform segments of the shape rule.
    fn composite_1d_seg(&self, range: (f64, f64), segments: usize, f: &dyn Fn(f64) -> f64) -> f64 {
        let dx = (range.1 - range.0) / segments as f64;
        let mut acc = 0.0;
        for s in 0..segments {
            let a = range.0 + dx * s as f64;
            acc += self.rule_shape.integrate(a, a + dx, f);
        }
        acc
    }

    /// Default composite rule (near-field resolution).
    fn composite_1d(&self, range: (f64, f64), f: &dyn Fn(f64) -> f64) -> f64 {
        self.composite_1d_seg(range, 2, f)
    }

    /// §4.1 approximation level for shaped quadrature: nearby template
    /// pairs get the full composite rule, mid-range pairs a single
    /// segment (the shapes are smooth Gaussians, and the kernel flattens
    /// with distance).
    fn shape_segments(&self, gap: f64, size: f64) -> usize {
        if gap < self.cfg.mid_ratio * size {
            2
        } else {
            1
        }
    }

    /// Exact potential of a flat unit-density panel at a 3-D point,
    /// using the injectable 2-D primitive.
    pub fn potential_at(&self, b: &Panel, p: Point3) -> f64 {
        let (ua, va) = b.normal().tangents();
        let dz = p.component(b.normal()) - b.w();
        let (px, py) = (p.component(ua), p.component(va));
        let (x0, x1) = b.u_range();
        let (y0, y1) = b.v_range();
        let dp = self.dp;
        let uhi = px - x0;
        let ulo = px - x1;
        let vhi = py - y0;
        let vlo = py - y1;
        dp(uhi, vhi, dz) - dp(uhi, vlo, dz) - dp(ulo, vhi, dz) + dp(ulo, vlo, dz)
    }

    fn flat_flat(&self, a: &Panel, b: &Panel, gap: f64, size: f64) -> f64 {
        if a.relation(b) != PanelRelation::Perpendicular {
            // Parallel or coplanar: exact 4-D closed form via the
            // injectable quadruple primitive.
            let z = a.w() - b.w();
            return self.galerkin_parallel_injected(
                a.u_range(),
                a.v_range(),
                b.u_range(),
                b.v_range(),
                z,
            );
        }
        // Perpendicular: outer quadrature of the inner 2-D analytic form.
        self.outer_quadrature(a, |_u, _v| 1.0, gap, size, |p| self.potential_at(b, p))
    }

    fn galerkin_parallel_injected(
        &self,
        ax: (f64, f64),
        ay: (f64, f64),
        bx: (f64, f64),
        by: (f64, f64),
        z: f64,
    ) -> f64 {
        let qp = self.qp;
        let xs = [ax.0, ax.1];
        let xt = [bx.0, bx.1];
        let ys = [ay.0, ay.1];
        let yt = [by.0, by.1];
        let mut acc = 0.0;
        for (i, &xi) in xs.iter().enumerate() {
            for (j, &xj) in xt.iter().enumerate() {
                let u = xi - xj;
                for (k, &yk) in ys.iter().enumerate() {
                    for (l, &yl) in yt.iter().enumerate() {
                        let v = yk - yl;
                        let sign = if (i + j + k + l) % 2 == 0 { 1.0 } else { -1.0 };
                        acc += sign * qp(u, v, z);
                    }
                }
            }
        }
        acc
    }

    /// Outer panel carries a shaped weight. For *parallel* panels the
    /// equation-(7) split applies: shaped coordinates are integrated
    /// numerically and the unshaped dimensions collapse through the 3-D
    /// ([`analytic::strip_potential`]) or 2-D analytic expressions.
    /// Perpendicular panels fall back to outer 2-D quadrature of the inner
    /// closed form.
    fn outer_weighted(
        &self,
        outer: &Panel,
        souter: PanelShape<'_>,
        inner: &Panel,
        sinner: PanelShape<'_>,
        gap: f64,
        size: f64,
    ) -> f64 {
        let segments = self.shape_segments(gap, size);
        if outer.relation(inner) != PanelRelation::Perpendicular {
            if let PanelShape::Shaped { dir: da, shape: sa } = souter {
                let z = outer.w() - inner.w();
                match sinner {
                    PanelShape::Flat => {
                        return self.shaped_flat_parallel(outer, da, sa, inner, z, segments)
                    }
                    PanelShape::Shaped { dir: db, shape: sb } => {
                        // Same-axis shaped pairs in the same plane hit the
                        // genuinely divergent coplanar log sub-integral at
                        // aligned quadrature nodes — those (rare, arch×arch
                        // on one face) go through the robust fallback.
                        if !(da == db && z == 0.0) {
                            return self
                                .shaped_shaped_parallel(outer, da, sa, inner, db, sb, z, segments);
                        }
                    }
                }
            }
        }
        // Fallback: outer 2-D quadrature × inner analytic.
        let weight = |u: f64, v: f64| match souter {
            PanelShape::Flat => 1.0,
            PanelShape::Shaped { dir, shape } => match dir {
                ShapeDir::U => shape(u),
                ShapeDir::V => shape(v),
            },
        };
        self.outer_quadrature(outer, weight, gap, size, |p| match sinner {
            PanelShape::Flat => self.potential_at(inner, p),
            PanelShape::Shaped { dir, shape } => self.shaped_potential_at(inner, dir, shape, p),
        })
    }

    /// Shaped × flat, parallel panels: 1-D composite quadrature over the
    /// shaped coordinate × the 3-D analytic strip potential.
    fn shaped_flat_parallel(
        &self,
        a: &Panel,
        dir: ShapeDir,
        shape: &dyn Fn(f64) -> f64,
        b: &Panel,
        z: f64,
        segments: usize,
    ) -> f64 {
        // Ranges along the shaped axis (s) and the unshaped axis (t).
        let (a_s, a_t, b_s, b_t) = match dir {
            ShapeDir::U => (a.u_range(), a.v_range(), b.u_range(), b.v_range()),
            ShapeDir::V => (a.v_range(), a.u_range(), b.v_range(), b.u_range()),
        };
        let tp = self.tp;
        let strip = move |x: f64| {
            // Single u-difference over b_s, double v-difference over
            // (a_t, b_t) of the (injectable) triple primitive.
            let mut acc = 0.0;
            for (j, &bxj) in [b_s.0, b_s.1].iter().enumerate() {
                let u = x - bxj;
                let su = if j == 0 { 1.0 } else { -1.0 };
                for (k, &avk) in [a_t.0, a_t.1].iter().enumerate() {
                    for (l, &bvl) in [b_t.0, b_t.1].iter().enumerate() {
                        let v = avk - bvl;
                        let sv = if (k + l) % 2 == 0 { -1.0 } else { 1.0 };
                        acc += su * sv * tp(u, v, z);
                    }
                }
            }
            acc
        };
        let f = |x: f64| shape(x) * strip(x);
        self.composite_1d_seg(a_s, segments, &f)
    }

    /// Shaped × shaped, parallel panels: tensor quadrature over the two
    /// shaped coordinates × the 2-D analytic expression over the rest.
    #[allow(clippy::too_many_arguments)]
    fn shaped_shaped_parallel(
        &self,
        a: &Panel,
        da: ShapeDir,
        sa: &dyn Fn(f64) -> f64,
        b: &Panel,
        db: ShapeDir,
        sb: &dyn Fn(f64) -> f64,
        z: f64,
        segments: usize,
    ) -> f64 {
        let (a_s, a_t) = match da {
            ShapeDir::U => (a.u_range(), a.v_range()),
            ShapeDir::V => (a.v_range(), a.u_range()),
        };
        let (b_s, b_t) = match db {
            ShapeDir::U => (b.u_range(), b.v_range()),
            ShapeDir::V => (b.v_range(), b.u_range()),
        };
        if da == db {
            // Same shaped axis: offsets along it are fixed per node pair;
            // both unshaped ranges corner-difference through the twice-in-v
            // primitive (with log-kernel fallback when nodes align).
            let outer = |x: f64| {
                let inner = |xp: f64| sb(xp) * analytic::line_pair_potential(x - xp, a_t, b_t, z);
                sa(x) * self.composite_1d_seg(b_s, segments, &inner)
            };
            self.composite_1d_seg(a_s, segments, &outer)
        } else {
            // Crossed shaped axes (A along u, B along v or vice versa):
            // one unshaped range from each panel, single-differenced
            // through the mixed double primitive F(u, v, z).
            // Let x be A's shaped coordinate and y′ B's. The remaining
            // integrations are over x′ ∈ b_t (same axis as x) and
            // y ∈ a_t (same axis as y′).
            let dp = self.dp;
            let outer = |x: f64| {
                let inner = |yp: f64| {
                    // Single u-difference over x′ and single v-difference
                    // over y of F(x−x′, y−y′, z).
                    let mut acc = 0.0;
                    for (j, &xpj) in [b_t.0, b_t.1].iter().enumerate() {
                        let su = if j == 0 { 1.0 } else { -1.0 };
                        for (k, &yk) in [a_t.0, a_t.1].iter().enumerate() {
                            let sv = if k == 0 { -1.0 } else { 1.0 };
                            acc += su * sv * dp(x - xpj, yk - yp, z);
                        }
                    }
                    sb(yp) * acc
                };
                sa(x) * self.composite_1d_seg(b_s, segments, &inner)
            };
            self.composite_1d_seg(a_s, segments, &outer)
        }
    }

    /// Potential at `p` of a panel whose density varies along `dir`:
    /// 1-D Gauss over the shaped coordinate × 1-D line closed form over the
    /// other (the inner bracket of equation (7)).
    fn shaped_potential_at(
        &self,
        b: &Panel,
        dir: ShapeDir,
        shape: &dyn Fn(f64) -> f64,
        p: Point3,
    ) -> f64 {
        let (ua, va) = b.normal().tangents();
        let dz = p.component(b.normal()) - b.w();
        let (pu, pv) = (p.component(ua), p.component(va));
        let (srange, trange, ps, pt) = match dir {
            ShapeDir::U => (b.u_range(), b.v_range(), pu, pv),
            ShapeDir::V => (b.v_range(), b.u_range(), pv, pu),
        };
        let inner = |s: f64| {
            let p2 = (ps - s).powi(2) + dz * dz;
            if p2 == 0.0 {
                // Target exactly on the source line: the (measure-zero,
                // integrable) singular node contributes nothing.
                return 0.0;
            }
            shape(s) * analytic::line_potential(trange.0, trange.1, pt, p2)
        };
        self.composite_1d(srange, &inner)
    }

    /// Subdivided tensor-product outer quadrature of `g` over `outer` with
    /// in-plane weight `w(u, v)`.
    fn outer_quadrature(
        &self,
        outer: &Panel,
        w: impl Fn(f64, f64) -> f64,
        gap: f64,
        size: f64,
        g: impl Fn(Point3) -> f64,
    ) -> f64 {
        let (rule, subdiv) = if gap <= 0.05 * size {
            (&self.rule_near, self.cfg.touch_subdiv.max(1))
        } else if gap < self.cfg.mid_ratio * size {
            (&self.rule_near, 1)
        } else {
            (&self.rule_mid, 1)
        };
        let (u0, u1) = outer.u_range();
        let (v0, v1) = outer.v_range();
        let du = (u1 - u0) / subdiv as f64;
        let dv = (v1 - v0) / subdiv as f64;
        let mut acc = 0.0;
        for i in 0..subdiv {
            for j in 0..subdiv {
                let ua = u0 + du * i as f64;
                let va = v0 + dv * j as f64;
                for (u, wu) in rule.mapped(ua, ua + du) {
                    for (v, wv) in rule.mapped(va, va + dv) {
                        acc += wu * wv * w(u, v) * g(outer.point_at(u, v));
                    }
                }
            }
        }
        acc
    }
}

/// Distance between the axis-aligned bounding boxes of two panels
/// (0 when they touch or overlap).
pub fn aabb_gap(a: &Panel, b: &Panel) -> f64 {
    let (alo, ahi) = a.bounds();
    let (blo, bhi) = b.bounds();
    let dx = (blo.x - ahi.x).max(alo.x - bhi.x).max(0.0);
    let dy = (blo.y - ahi.y).max(alo.y - bhi.y).max(0.0);
    let dz = (blo.z - ahi.z).max(alo.z - bhi.z).max(0.0);
    (dx * dx + dy * dy + dz * dz).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::numint;
    use bemcap_geom::Axis;

    fn panel(n: Axis, w: f64, u: (f64, f64), v: (f64, f64)) -> Panel {
        Panel::new(n, w, u, v).unwrap()
    }

    #[test]
    fn gap_between_panels() {
        let a = panel(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0));
        let b = panel(Axis::Z, 2.0, (0.0, 1.0), (0.0, 1.0));
        assert!((aabb_gap(&a, &b) - 2.0).abs() < 1e-15);
        let c = panel(Axis::Z, 0.0, (3.0, 4.0), (4.0, 5.0)); // diagonal offset 2,3
        assert!((aabb_gap(&a, &c) - (4.0 + 9.0_f64).sqrt()).abs() < 1e-15);
        assert_eq!(aabb_gap(&a, &a), 0.0);
    }

    #[test]
    fn parallel_pair_is_exact() {
        let eng = GalerkinEngine::default();
        let a = panel(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0));
        let b = panel(Axis::Z, 0.9, (0.3, 1.3), (-0.5, 0.5));
        let got = eng.panel_pair(&a, PanelShape::Flat, &b, PanelShape::Flat);
        let expect =
            analytic::galerkin_parallel((0.0, 1.0), (0.0, 1.0), (0.3, 1.3), (-0.5, 0.5), 0.9);
        assert!((got - expect).abs() < 1e-14 * expect.abs());
    }

    #[test]
    fn x_normal_parallel_pair_matches_bruteforce() {
        // Same physical configuration expressed with X-normal panels:
        // tangents of X are (y, z).
        let eng = GalerkinEngine::default();
        let a = panel(Axis::X, 0.0, (0.0, 1.0), (0.0, 2.0));
        let b = panel(Axis::X, 1.5, (0.5, 1.5), (0.0, 2.0));
        let got = eng.panel_pair(&a, PanelShape::Flat, &b, PanelShape::Flat);
        let reference =
            numint::galerkin_bruteforce((0.0, 1.0), (0.0, 2.0), (0.5, 1.5), (0.0, 2.0), 1.5, 2, 16);
        assert!((got - reference).abs() < 1e-8 * reference, "{got} vs {reference}");
    }

    #[test]
    fn perpendicular_pair_matches_bruteforce() {
        let eng = GalerkinEngine::default();
        // A in z=0 plane, B in x=2 plane, separated.
        let a = panel(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0));
        let b = panel(Axis::X, 2.0, (0.0, 1.0), (1.0, 2.0)); // u=y in [0,1], v=z in [1,2]
        let got = eng.panel_pair(&a, PanelShape::Flat, &b, PanelShape::Flat);
        // Brute force in global coordinates.
        let rule = GaussRule::new(24);
        let mut reference = 0.0;
        for (x, wx) in rule.mapped(0.0, 1.0) {
            for (y, wy) in rule.mapped(0.0, 1.0) {
                // point on A: (x, y, 0); integrate over B: (2, y', z')
                for (yp, wyp) in rule.mapped(0.0, 1.0) {
                    for (zp, wzp) in rule.mapped(1.0, 2.0) {
                        let r = ((x - 2.0_f64).powi(2) + (y - yp).powi(2) + zp * zp).sqrt();
                        reference += wx * wy * wyp * wzp / r;
                    }
                }
            }
        }
        assert!((got - reference).abs() < 1e-6 * reference, "{got} vs {reference}");
    }

    #[test]
    fn perpendicular_touching_pair_is_sane() {
        // Two faces of the same box share an edge; the integral must be
        // finite, positive, and close to a heavily subdivided reference.
        let eng = GalerkinEngine::default();
        let a = panel(Axis::Z, 1.0, (0.0, 1.0), (0.0, 1.0)); // top face
        let b = panel(Axis::X, 0.0, (0.0, 1.0), (0.0, 1.0)); // side face (u=y, v=z)
        let got = eng.panel_pair(&a, PanelShape::Flat, &b, PanelShape::Flat);
        assert!(got.is_finite() && got > 0.0);
        // Reference: fine outer subdivision of the exact inner potential.
        let rule = GaussRule::new(6);
        let mut reference = 0.0;
        let k = 12;
        let d = 1.0 / k as f64;
        for i in 0..k {
            for j in 0..k {
                let x0 = i as f64 * d;
                let y0 = j as f64 * d;
                reference += rule.integrate_2d(x0, x0 + d, y0, y0 + d, |x, y| {
                    analytic::rect_potential(0.0, 1.0, 0.0, 1.0, x, y, 1.0)
                });
            }
        }
        assert!((got - reference).abs() < 5e-3 * reference, "{got} vs {reference}");
    }

    #[test]
    fn far_field_point_approximation_kicks_in() {
        let eng = GalerkinEngine::default();
        let a = panel(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0));
        let b = panel(Axis::Z, 100.0, (0.0, 1.0), (0.0, 1.0));
        let got = eng.panel_pair(&a, PanelShape::Flat, &b, PanelShape::Flat);
        assert!((got - 1.0 / 100.0).abs() < 1e-6 / 100.0);
    }

    #[test]
    fn shaped_outer_flat_inner_matches_bruteforce() {
        let eng = GalerkinEngine::default();
        let a = panel(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0));
        let b = panel(Axis::Z, 1.0, (0.2, 1.2), (0.0, 1.0));
        let shape = |u: f64| 1.0 + u * u; // smooth polynomial profile
        let got = eng.panel_pair(
            &a,
            PanelShape::Shaped { dir: ShapeDir::U, shape: &shape },
            &b,
            PanelShape::Flat,
        );
        let reference = numint::weighted_bruteforce(
            (0.0, 1.0),
            (0.0, 1.0),
            (0.2, 1.2),
            (0.0, 1.0),
            1.0,
            |x, _| 1.0 + x * x,
            |_, _| 1.0,
            2,
            10,
        );
        assert!((got - reference).abs() < 1e-4 * reference, "{got} vs {reference}");
    }

    #[test]
    fn both_shaped_matches_bruteforce() {
        let eng = GalerkinEngine::default();
        let a = panel(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0));
        let b = panel(Axis::Z, 0.8, (0.0, 1.0), (0.3, 1.3));
        let sa = |u: f64| 1.0 + 0.5 * u;
        let sb = |v: f64| 2.0 - v;
        let got = eng.panel_pair(
            &a,
            PanelShape::Shaped { dir: ShapeDir::U, shape: &sa },
            &b,
            PanelShape::Shaped { dir: ShapeDir::V, shape: &sb },
        );
        let reference = numint::weighted_bruteforce(
            (0.0, 1.0),
            (0.0, 1.0),
            (0.0, 1.0),
            (0.3, 1.3),
            0.8,
            |x, _| 1.0 + 0.5 * x,
            |_, y| 2.0 - y,
            2,
            10,
        );
        assert!((got - reference).abs() < 1e-4 * reference.abs(), "{got} vs {reference}");
    }

    #[test]
    fn weighted_area() {
        let eng = GalerkinEngine::default();
        let p = panel(Axis::Z, 0.0, (0.0, 2.0), (0.0, 3.0));
        assert!((eng.weighted_area(&p, PanelShape::Flat) - 6.0).abs() < 1e-14);
        let s = |u: f64| u; // ∫₀² u du = 2, × v_len 3 = 6
        let wa = eng.weighted_area(&p, PanelShape::Shaped { dir: ShapeDir::U, shape: &s });
        assert!((wa - 6.0).abs() < 1e-12);
        let sv = |v: f64| v * v; // ∫₀³ v² dv = 9, × u_len 2 = 18
        let wv = eng.weighted_area(&p, PanelShape::Shaped { dir: ShapeDir::V, shape: &sv });
        assert!((wv - 18.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_of_mixed_shapes() {
        // panel_pair(a, sa, b, sb) == panel_pair(b, sb, a, sa) (P̃ symmetric).
        let eng = GalerkinEngine::default();
        let a = panel(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0));
        let b = panel(Axis::Z, 1.2, (0.5, 1.5), (0.0, 1.0));
        let s = |u: f64| 1.0 + u;
        let ab = eng.panel_pair(
            &a,
            PanelShape::Shaped { dir: ShapeDir::U, shape: &s },
            &b,
            PanelShape::Flat,
        );
        let ba = eng.panel_pair(
            &b,
            PanelShape::Flat,
            &a,
            PanelShape::Shaped { dir: ShapeDir::U, shape: &s },
        );
        assert!((ab - ba).abs() < 1e-9 * ab.abs(), "{ab} vs {ba}");
    }

    #[test]
    fn potential_at_matches_analytic() {
        let eng = GalerkinEngine::default();
        let b = panel(Axis::Y, 2.0, (0.0, 1.0), (0.0, 1.0)); // tangents (z, x)
        let p = Point3::new(0.3, 4.0, 0.6);
        let got = eng.potential_at(&b, p);
        // In B's frame: dz = 4-2 = 2, pu = p.z = 0.6, pv = p.x = 0.3.
        let expect = analytic::rect_potential(0.0, 1.0, 0.0, 1.0, 2.0, 0.6, 0.3);
        assert!((got - expect).abs() < 1e-13);
    }
}

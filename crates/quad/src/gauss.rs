//! Gauss–Legendre quadrature rules.

use std::f64::consts::PI;

/// An n-point Gauss–Legendre rule on the canonical interval [-1, 1].
///
/// Nodes are computed by Newton iteration on the Legendre polynomial with
/// Chebyshev-based initial guesses — accurate to machine precision for any
/// practical order.
///
/// ```
/// use bemcap_quad::GaussRule;
/// let rule = GaussRule::new(8);
/// // ∫₀^π sin = 2
/// let v = rule.integrate(0.0, std::f64::consts::PI, f64::sin);
/// assert!((v - 2.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GaussRule {
    nodes: Vec<f64>,
    weights: Vec<f64>,
}

impl GaussRule {
    /// Builds the n-point rule.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> GaussRule {
        assert!(n > 0, "quadrature order must be positive");
        let mut nodes = vec![0.0; n];
        let mut weights = vec![0.0; n];
        let m = n.div_ceil(2);
        for i in 0..m {
            // Chebyshev initial guess for the i-th root (descending).
            let mut x = (PI * (i as f64 + 0.75) / (n as f64 + 0.5)).cos();
            // Newton iteration on P_n(x).
            for _ in 0..100 {
                let (p, dp) = legendre_with_derivative(n, x);
                let dx = p / dp;
                x -= dx;
                if dx.abs() < 1e-15 {
                    break;
                }
            }
            let (_, dp) = legendre_with_derivative(n, x);
            let w = 2.0 / ((1.0 - x * x) * dp * dp);
            nodes[i] = -x;
            nodes[n - 1 - i] = x;
            weights[i] = w;
            weights[n - 1 - i] = w;
        }
        if n % 2 == 1 {
            // Exact midpoint for odd orders.
            nodes[n / 2] = 0.0;
            let (_, dp) = legendre_with_derivative(n, 0.0);
            weights[n / 2] = 2.0 / (dp * dp);
        }
        GaussRule { nodes, weights }
    }

    /// Like [`GaussRule::new`] but served from a process-wide cache of
    /// previously built rules, so engines instantiated per batch job (or
    /// per sweep point) don't redo the Newton iterations for the same
    /// handful of orders.
    ///
    /// The returned rule is a clone of the cached one — bit-identical to a
    /// fresh `new(n)` (the construction is deterministic), so callers can
    /// switch freely between the two constructors.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn cached(n: usize) -> GaussRule {
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};
        static RULES: OnceLock<Mutex<HashMap<usize, GaussRule>>> = OnceLock::new();
        let rules = RULES.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = rules.lock().expect("gauss rule cache poisoned");
        map.entry(n).or_insert_with(|| GaussRule::new(n)).clone()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` iff the rule has no points (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Canonical nodes on [-1, 1].
    pub fn nodes(&self) -> &[f64] {
        &self.nodes
    }

    /// Canonical weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Nodes and weights mapped to the interval [a, b].
    pub fn mapped(&self, a: f64, b: f64) -> impl Iterator<Item = (f64, f64)> + '_ {
        let c = 0.5 * (a + b);
        let h = 0.5 * (b - a);
        self.nodes.iter().zip(&self.weights).map(move |(&x, &w)| (c + h * x, h * w))
    }

    /// Integrates `f` over [a, b].
    pub fn integrate(&self, a: f64, b: f64, f: impl Fn(f64) -> f64) -> f64 {
        self.mapped(a, b).map(|(x, w)| w * f(x)).sum()
    }

    /// Integrates `f(x, y)` over the rectangle [a, b] × [c, d] with the
    /// tensor-product rule.
    pub fn integrate_2d(&self, a: f64, b: f64, c: f64, d: f64, f: impl Fn(f64, f64) -> f64) -> f64 {
        let mut acc = 0.0;
        for (x, wx) in self.mapped(a, b) {
            for (y, wy) in self.mapped(c, d) {
                acc += wx * wy * f(x, y);
            }
        }
        acc
    }
}

/// Evaluates the Legendre polynomial `P_n` and its derivative at `x` via the
/// three-term recurrence.
fn legendre_with_derivative(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0;
    let mut p1 = x;
    if n == 0 {
        return (1.0, 0.0);
    }
    for k in 2..=n {
        let kf = k as f64;
        let p2 = ((2.0 * kf - 1.0) * x * p1 - (kf - 1.0) * p0) / kf;
        p0 = p1;
        p1 = p2;
    }
    let dp = n as f64 * (x * p1 - p0) / (x * x - 1.0);
    (p1, dp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_rule_is_bit_identical_to_fresh() {
        for n in [1, 3, 6, 16] {
            let fresh = GaussRule::new(n);
            let cached = GaussRule::cached(n);
            assert_eq!(fresh, cached, "order {n}");
            // Second hit serves the same values.
            assert_eq!(GaussRule::cached(n), fresh);
        }
    }

    #[test]
    fn weights_sum_to_interval_length() {
        for n in [1, 2, 3, 5, 8, 16, 32] {
            let r = GaussRule::new(n);
            let sum: f64 = r.weights().iter().sum();
            assert!((sum - 2.0).abs() < 1e-13, "order {n}: weight sum {sum}");
        }
    }

    #[test]
    fn exact_for_polynomials() {
        // n-point Gauss is exact for degree 2n-1.
        for n in 1..=10_usize {
            let r = GaussRule::new(n);
            let deg = 2 * n - 1;
            let val = r.integrate(-1.0, 1.0, |x| x.powi(deg as i32) + x.powi((deg - 1) as i32));
            // odd power integrates to 0; even power deg-1: 2/(deg)
            let expect =
                if (deg - 1) % 2 == 0 { 2.0 / deg as f64 } else { 2.0 / (deg as f64 + 1.0) };
            assert!((val - expect).abs() < 1e-12, "order {n}");
        }
    }

    #[test]
    fn nodes_symmetric_and_sorted() {
        let r = GaussRule::new(9);
        for (a, b) in r.nodes().iter().zip(r.nodes().iter().rev()) {
            assert!((a + b).abs() < 1e-14);
        }
        for w in r.nodes().windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(r.nodes()[4], 0.0);
    }

    #[test]
    fn mapped_interval() {
        let r = GaussRule::new(12);
        let v = r.integrate(2.0, 5.0, |x| x * x);
        assert!((v - (125.0 - 8.0) / 3.0).abs() < 1e-11);
    }

    #[test]
    fn two_dimensional() {
        let r = GaussRule::new(10);
        let v = r.integrate_2d(0.0, 1.0, 0.0, 2.0, |x, y| x * y);
        assert!((v - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transcendental_accuracy() {
        let r = GaussRule::new(20);
        let v = r.integrate(0.0, 1.0, f64::exp);
        assert!((v - (std::f64::consts::E - 1.0)).abs() < 1e-14);
    }

    #[test]
    #[should_panic]
    fn zero_order_panics() {
        let _ = GaussRule::new(0);
    }
}

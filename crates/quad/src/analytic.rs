//! Closed-form primitives of the 1/r kernel over axis-aligned rectangles.
//!
//! Everything in this module works on the *raw* kernel 1/‖r−r′‖; the
//! physical 1/(4πε) prefactor is applied by the callers.
//!
//! Three levels of closed form, matching the dimension hierarchy of §4.1:
//!
//! * [`line_potential`] — 1-D: ∫ dt′ / r along a segment;
//! * [`rect_potential`] — 2-D: the classic collocation integral of a
//!   uniformly charged rectangle ("8 terms");
//! * [`galerkin_parallel`] — 4-D: the Galerkin double-surface integral for
//!   two parallel rectangles ("more than 100 terms" once the 16-corner
//!   evaluation is expanded).
//!
//! The 4-D quadruple primitive [`quad_primitive`] is derived by repeated
//! symbolic integration (see the inline derivation) and verified against
//! nested Gauss quadrature in the tests, including the singular coplanar
//! self-term.

/// Numerically stable ln(u + √(u² + p²)) for p² = v² + z² ≥ 0.
///
/// For u < 0 the naive form suffers catastrophic cancellation; we use the
/// identity u + r = p² / (r − u).
///
/// # Panics
///
/// Debug-asserts that the argument of the logarithm is positive; callers
/// must ensure `p2 > 0` or `u > 0` (the integral guards guarantee this by
/// zeroing the coefficient otherwise).
#[inline]
pub fn ln_u_plus_r(u: f64, p2: f64) -> f64 {
    let r = (u * u + p2).sqrt();
    if u >= 0.0 {
        (u + r).ln()
    } else {
        debug_assert!(p2 > 0.0, "log singularity: u<0 with zero transverse offset");
        (p2 / (r - u)).ln()
    }
}

/// Double primitive of 1/r with respect to u and v, where
/// r = √(u² + v² + z²):
///
/// F(u, v) = u·ln(v + r) + v·ln(u + r) − z·atan(u·v / (z·r)).
///
/// Corner-differencing F gives the collocation integral
/// ∬ dx′dy′/‖r − r′‖ — the "8 terms" closed form of §4.1.
#[inline]
pub fn double_primitive(u: f64, v: f64, z: f64) -> f64 {
    let r = (u * u + v * v + z * z).sqrt();
    let mut acc = 0.0;
    if u != 0.0 {
        acc += u * ln_u_plus_r(v, u * u + z * z);
    }
    if v != 0.0 {
        acc += v * ln_u_plus_r(u, v * v + z * z);
    }
    if z != 0.0 && u != 0.0 && v != 0.0 {
        acc -= z * (u * v / (z * r)).atan();
    }
    acc
}

/// Collocation potential integral: ∬ over the rectangle
/// `[x0,x1] × [y0,y1]` (lying in a plane at perpendicular offset `z` from
/// the target) of 1/‖r − r′‖, evaluated at in-plane target point
/// `(px, py)`.
///
/// Exact for any target position, including on the rectangle itself
/// (z = 0, interior point) where the singularity is integrable.
pub fn rect_potential(x0: f64, x1: f64, y0: f64, y1: f64, z: f64, px: f64, py: f64) -> f64 {
    let uhi = px - x0;
    let ulo = px - x1;
    let vhi = py - y0;
    let vlo = py - y1;
    double_primitive(uhi, vhi, z) - double_primitive(uhi, vlo, z) - double_primitive(ulo, vhi, z)
        + double_primitive(ulo, vlo, z)
}

/// Line potential: ∫ over t′ ∈ [t0, t1] of 1/√((s − t′)² + p²), the 1-D
/// analytic expression used when one panel dimension is integrated
/// numerically (equation (7) inner/outer split).
///
/// `p2` is the squared transverse offset (must be positive unless the
/// target point lies strictly outside [t0, t1]).
pub fn line_potential(t0: f64, t1: f64, s: f64, p2: f64) -> f64 {
    ln_u_plus_r(s - t0, p2) - ln_u_plus_r(s - t1, p2)
}

/// Double primitive of 1/r in v alone (twice in v, none in u):
/// ∫∫ 1/r dv dv = v·ln(v + r) − r.
///
/// Used by the equation-(7) split when *both* templates are shaped along
/// the same in-plane axis: the two shaped coordinates are quadrature
/// points and the two unshaped ones are corner-differenced through this
/// primitive.
#[inline]
pub fn double_primitive_vv(u: f64, v: f64, z: f64) -> f64 {
    let r = (u * u + v * v + z * z).sqrt();
    let mut acc = -r;
    if v != 0.0 {
        acc += v * ln_u_plus_r(v, u * u + z * z);
    }
    acc
}

/// Triple primitive of 1/r — once in u, twice in v:
///
/// G₃(u,v,z) = u·v·ln(v+r) + (v²−z²)/2·ln(u+r) − u·r/2 − r²/4
///           − z·v·atan(u·v/(z·r))
///
/// (an additive u-independent term (z²/2)·ln(v²+z²) is dropped: the
/// single u-difference annihilates it). This is the paper's "3-D
/// analytical expression": with one template shaped, the shaped
/// coordinate is integrated numerically and the remaining three
/// dimensions collapse through G₃.
#[inline]
pub fn triple_primitive(u: f64, v: f64, z: f64) -> f64 {
    let v2 = v * v;
    let z2 = z * z;
    let r2 = u * u + v2 + z2;
    let r = r2.sqrt();
    let mut acc = -u * r / 2.0 - r2 / 4.0;
    if u != 0.0 && v != 0.0 {
        acc += u * v * ln_u_plus_r(v, u * u + z2);
    }
    let cu = (v2 - z2) / 2.0;
    if cu != 0.0 {
        acc += cu * ln_u_plus_r(u, v2 + z2);
    }
    if z != 0.0 && u != 0.0 && v != 0.0 {
        acc -= z * v * (u * v / (z * r)).atan();
    }
    acc
}

/// Quadruple primitive of 1/r — twice in u, twice in v, with
/// r = √(u² + v² + z²).
///
/// Derivation (each step verified by differentiation):
///
/// ```text
/// ∫ 1/r du                  = ln(u + r)
/// ∫ ln(u+r) du              = u·ln(u+r) − r
/// ∫ (u·ln(u+r) − r) dv      = u[v·ln(u+r) + u·ln(v+r) − v − z·atan(uv/zr)
///                              + z·atan(v/z)] − (v·r + (u²+z²)·ln(v+r))/2
/// ∫ … dv  (collecting)      = G4 below
/// ```
///
/// G4(u,v,z) = u(v²−z²)/2 · ln(u+r) + v(u²−z²)/2 · ln(v+r)
///           − u·r²/4 − u·v²/2 + z²·r/2 − r³/6
///           − u·v·z·[atan(uv/(z·r)) − atan(v/z)]
///
/// Terms that the 16-corner cross-difference annihilates (pure functions of
/// u or of v alone) are retained for clarity; they cost a few flops and
/// cancel exactly.
#[inline]
pub fn quad_primitive(u: f64, v: f64, z: f64) -> f64 {
    let u2 = u * u;
    let v2 = v * v;
    let z2 = z * z;
    let r2 = u2 + v2 + z2;
    let r = r2.sqrt();
    let mut acc = -u * r2 / 4.0 - u * v2 / 2.0 + z2 * r / 2.0 - r2 * r / 6.0;
    let cu = u * (v2 - z2) / 2.0;
    if cu != 0.0 {
        acc += cu * ln_u_plus_r(u, v2 + z2);
    }
    let cv = v * (u2 - z2) / 2.0;
    if cv != 0.0 {
        acc += cv * ln_u_plus_r(v, u2 + z2);
    }
    if u != 0.0 && v != 0.0 && z != 0.0 {
        acc -= u * v * z * ((u * v / (z * r)).atan() - (v / z).atan());
    }
    acc
}

/// Exact Galerkin integral for two parallel rectangles:
///
/// ∬_A ∬_B 1/‖r − r′‖ over A = `ax × ay` (in its plane) and B = `bx × by`
/// at perpendicular separation `z` (may be 0 for coplanar rectangles,
/// including the singular self-term A = B).
///
/// Evaluated as the 16-corner alternating-sign sum of [`quad_primitive`]:
/// the sign of corner (i, j, k, l) is (−1)^(i+j+k+l).
pub fn galerkin_parallel(
    ax: (f64, f64),
    ay: (f64, f64),
    bx: (f64, f64),
    by: (f64, f64),
    z: f64,
) -> f64 {
    let xs = [ax.0, ax.1];
    let xt = [bx.0, bx.1];
    let ys = [ay.0, ay.1];
    let yt = [by.0, by.1];
    let mut acc = 0.0;
    for (i, &xi) in xs.iter().enumerate() {
        for (j, &xj) in xt.iter().enumerate() {
            let u = xi - xj;
            for (k, &yk) in ys.iter().enumerate() {
                for (l, &yl) in yt.iter().enumerate() {
                    let v = yk - yl;
                    let sign = if (i + j + k + l) % 2 == 0 { 1.0 } else { -1.0 };
                    acc += sign * quad_primitive(u, v, z);
                }
            }
        }
    }
    acc
}

/// The 3-D analytic expression of §4.1: at a fixed shaped coordinate `x`
/// (measured along the common u-axis of two parallel rectangles), the
/// integral over B's u-range `bx`, A's v-range `av` and B's v-range `bv`
/// of 1/r at perpendicular separation `z`:
///
/// I₃(x) = ∫_{av} ∬_B 1/‖r−r′‖ — one numerical dimension left out of four.
pub fn strip_potential(x: f64, bx: (f64, f64), av: (f64, f64), bv: (f64, f64), z: f64) -> f64 {
    let mut acc = 0.0;
    for (j, &bxj) in [bx.0, bx.1].iter().enumerate() {
        let u = x - bxj;
        let su = if j == 0 { 1.0 } else { -1.0 };
        for (k, &avk) in [av.0, av.1].iter().enumerate() {
            for (l, &bvl) in [bv.0, bv.1].iter().enumerate() {
                let v = avk - bvl;
                let sv = if (k + l) % 2 == 0 { -1.0 } else { 1.0 };
                acc += su * sv * triple_primitive(u, v, z);
            }
        }
    }
    acc
}

/// Double v-difference of the twice-in-v primitive: the 2-D analytic
/// expression used when both templates are shaped along the *same* axis —
/// the transverse offset `u` (shaped-coordinate difference) and plane
/// separation `z` are fixed; A's and B's unshaped ranges `av`, `bv` are
/// corner-differenced.
///
/// Falls back to the 1-D log-kernel closed form |s|(ln|s| − 1) when
/// u = z = 0 (coplanar, aligned quadrature nodes), where the generic
/// primitive's corner values diverge individually.
pub fn line_pair_potential(u: f64, av: (f64, f64), bv: (f64, f64), z: f64) -> f64 {
    let p2 = u * u + z * z;
    let prim = |v: f64| -> f64 {
        if p2 == 0.0 {
            let a = v.abs();
            if a == 0.0 {
                0.0
            } else {
                a * (a.ln() - 1.0)
            }
        } else {
            double_primitive_vv(u, v, z)
        }
    };
    -(prim(av.0 - bv.0) - prim(av.0 - bv.1) - prim(av.1 - bv.0) + prim(av.1 - bv.1))
}

/// The Galerkin self-term of a rectangle with side lengths `a × b`
/// (coplanar, identical supports) — the diagonal entry of the
/// piecewise-constant system matrix before the 1/(4πε) factor.
pub fn self_term(a: f64, b: f64) -> f64 {
    galerkin_parallel((0.0, a), (0.0, b), (0.0, a), (0.0, b), 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gauss::GaussRule;

    /// Brute-force collocation reference by 2-D quadrature.
    fn colloc_ref(x0: f64, x1: f64, y0: f64, y1: f64, z: f64, px: f64, py: f64) -> f64 {
        let r = GaussRule::new(48);
        r.integrate_2d(x0, x1, y0, y1, |x, y| {
            1.0 / ((px - x).powi(2) + (py - y).powi(2) + z * z).sqrt()
        })
    }

    #[test]
    fn stable_log_matches_naive_where_safe() {
        for &(u, p2) in &[(1.0_f64, 4.0_f64), (-1.0, 4.0), (-100.0, 1e-4), (0.0, 9.0)] {
            let r = (u * u + p2).sqrt();
            let naive = (u + r).ln();
            let stable = ln_u_plus_r(u, p2);
            assert!(
                (stable - naive).abs() < 1e-9 * (1.0 + naive.abs()),
                "u={u} p2={p2}: {stable} vs {naive}"
            );
        }
    }

    #[test]
    fn collocation_matches_quadrature_far() {
        let v = rect_potential(0.0, 1.0, 0.0, 2.0, 3.0, 0.5, 0.7);
        let r = colloc_ref(0.0, 1.0, 0.0, 2.0, 3.0, 0.5, 0.7);
        assert!((v - r).abs() < 1e-10, "{v} vs {r}");
    }

    #[test]
    fn collocation_off_axis_target() {
        let v = rect_potential(-1.0, 2.0, 0.5, 1.5, 0.8, 4.0, -3.0);
        let r = colloc_ref(-1.0, 2.0, 0.5, 1.5, 0.8, 4.0, -3.0);
        assert!((v - r).abs() < 1e-10);
    }

    #[test]
    fn collocation_center_of_unit_square_in_plane() {
        // Known closed value: ∬ over [-.5,.5]² of 1/ρ at center
        // = 4·ln(1+√2) ≈ 3.5255.
        let v = rect_potential(-0.5, 0.5, -0.5, 0.5, 0.0, 0.0, 0.0);
        let expect = 4.0 * (1.0 + 2.0_f64.sqrt()).ln();
        assert!((v - expect).abs() < 1e-12, "{v} vs {expect}");
    }

    #[test]
    fn collocation_far_field_limit() {
        // Far away the potential tends to area / distance; the leading
        // correction is O((a/d)²) ≈ 1e-4 relative at d = 100.
        let d = 100.0;
        let v = rect_potential(0.0, 1.0, 0.0, 1.0, d, 0.5, 0.5);
        assert!((v - 1.0 / d).abs() < 1e-3 / d);
    }

    #[test]
    fn line_potential_matches_quadrature() {
        let r = GaussRule::new(40);
        let reference = r.integrate(0.0, 2.0, |t| 1.0 / ((0.7 - t).powi(2) + 0.09).sqrt());
        let v = line_potential(0.0, 2.0, 0.7, 0.09);
        assert!((v - reference).abs() < 1e-10);
    }

    /// 4-D brute force by nested quadrature (only usable when panels are
    /// separated; near-singular cases use subdivision in `numint`).
    fn galerkin_ref(
        ax: (f64, f64),
        ay: (f64, f64),
        bx: (f64, f64),
        by: (f64, f64),
        z: f64,
        order: usize,
    ) -> f64 {
        let r = GaussRule::new(order);
        r.integrate_2d(ax.0, ax.1, ay.0, ay.1, |x, y| {
            rect_potential(bx.0, bx.1, by.0, by.1, z, x, y)
        })
    }

    #[test]
    fn galerkin_parallel_separated() {
        let v = galerkin_parallel((0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0), 2.0);
        let reference = galerkin_ref((0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0), 2.0, 24);
        assert!((v - reference).abs() < 1e-10, "{v} vs {reference}");
    }

    #[test]
    fn galerkin_parallel_offset_rectangles() {
        let v = galerkin_parallel((0.0, 2.0), (-1.0, 0.5), (3.0, 4.0), (0.0, 2.0), 1.3);
        let reference = galerkin_ref((0.0, 2.0), (-1.0, 0.5), (3.0, 4.0), (0.0, 2.0), 1.3, 24);
        assert!((v - reference).abs() < 1e-9, "{v} vs {reference}");
    }

    #[test]
    fn galerkin_coplanar_disjoint() {
        let v = galerkin_parallel((0.0, 1.0), (0.0, 1.0), (2.0, 3.0), (0.0, 1.0), 0.0);
        let reference = galerkin_ref((0.0, 1.0), (0.0, 1.0), (2.0, 3.0), (0.0, 1.0), 0.0, 32);
        assert!((v - reference).abs() < 1e-9, "{v} vs {reference}");
    }

    #[test]
    fn galerkin_self_term_unit_square() {
        // Known value: ∬∬_{[0,1]²×[0,1]²} 1/|r−r'| = (2/3)·[3·ln(1+√2)+2−√2]
        //            ≈ 2.97349...  (classic result for the unit square).
        let v = self_term(1.0, 1.0);
        let expect =
            2.0 * (3.0 * (1.0 + 2.0_f64.sqrt()).ln() + 2.0 - 2.0_f64.sqrt()) / 3.0 * 2.0 / 2.0;
        // Literature value ~ 3.525494... wait — cross-check numerically
        // against adaptive quadrature instead of a literature constant:
        let reference = crate::numint::galerkin_bruteforce(
            (0.0, 1.0),
            (0.0, 1.0),
            (0.0, 1.0),
            (0.0, 1.0),
            0.0,
            6,
            16,
        );
        assert!(
            (v - reference).abs() < 2e-3 * reference.abs(),
            "analytic {v} vs subdivided quadrature {reference} (lit-guess {expect})"
        );
        assert!(v > 0.0);
    }

    #[test]
    fn galerkin_symmetry_under_swap() {
        // P̃ is symmetric: swapping the panels must give the same value.
        let a = galerkin_parallel((0.0, 1.0), (0.0, 2.0), (1.5, 3.0), (0.5, 1.0), 0.7);
        let b = galerkin_parallel((1.5, 3.0), (0.5, 1.0), (0.0, 1.0), (0.0, 2.0), -0.7);
        assert!((a - b).abs() < 1e-11 * a.abs().max(1.0));
    }

    #[test]
    fn galerkin_far_field_limit() {
        let d = 50.0;
        let v = galerkin_parallel((0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0), d);
        assert!((v - 1.0 / d).abs() < 1e-4 / d, "{} vs {}", v, 1.0 / d);
    }

    #[test]
    fn triple_primitive_strip_matches_quadrature() {
        // I3(x) vs nested quadrature for several x, including inside B's
        // u-range and the coplanar case.
        let rule = GaussRule::new(32);
        for &(x, z) in &[(2.5_f64, 0.8_f64), (0.3, 0.8), (-1.0, 0.0), (0.5, 0.0)] {
            let reference =
                rule.integrate(0.0, 1.5, |y| rect_potential(0.0, 1.0, -0.5, 0.5, z, x, y));
            let got = strip_potential(x, (0.0, 1.0), (0.0, 1.5), (-0.5, 0.5), z);
            // Coplanar x inside B's range makes the reference rule itself
            // slightly inaccurate; keep a modest tolerance there.
            let tol = if z == 0.0 { 2e-4 } else { 1e-9 };
            assert!(
                (got - reference).abs() < tol * reference.abs().max(1.0),
                "x={x} z={z}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn line_pair_matches_quadrature() {
        let rule = GaussRule::new(48);
        // Separated case.
        let reference = rule.integrate(0.0, 1.0, |y| {
            rule.integrate(2.0, 3.5, |yp| 1.0 / ((0.4_f64).hypot(y - yp)))
        });
        let got = line_pair_potential(0.4, (0.0, 1.0), (2.0, 3.5), 0.0);
        assert!((got - reference).abs() < 1e-10 * reference, "{got} vs {reference}");
        // With plane separation.
        let reference = rule.integrate(0.0, 1.0, |y| {
            rule.integrate(0.5, 2.0, |yp| {
                1.0 / (0.3_f64 * 0.3 + 0.2 * 0.2 + (y - yp).powi(2)).sqrt()
            })
        });
        let got = line_pair_potential(0.3, (0.0, 1.0), (0.5, 2.0), 0.2);
        assert!((got - reference).abs() < 1e-10 * reference, "{got} vs {reference}");
    }

    #[test]
    fn line_pair_coplanar_disjoint_ranges() {
        // u = z = 0 with *disjoint* ranges: the log-kernel special case is
        // finite and matches quadrature. (Overlapping ranges at u = z = 0
        // genuinely diverge — ∫∫ 1/|v−v′| across the diagonal — which is
        // why the engine routes coplanar same-axis shaped pairs away from
        // this expression.)
        let got = line_pair_potential(0.0, (0.0, 1.0), (2.0, 3.0), 0.0);
        let rule = GaussRule::new(48);
        let reference = rule.integrate(0.0, 1.0, |y| rule.integrate(2.0, 3.0, |yp| 1.0 / (yp - y)));
        assert!((got - reference).abs() < 1e-10 * reference, "{got} vs {reference}");
    }

    #[test]
    fn quad_primitive_finite_everywhere_relevant() {
        for &(u, v, z) in &[
            (0.0, 0.0, 0.0),
            (1.0, 0.0, 0.0),
            (0.0, 1.0, 0.0),
            (-1.0, 0.0, 0.0),
            (0.0, -1.0, 0.0),
            (-2.0, -3.0, 0.5),
            (1e-12, 1e-12, 0.0),
        ] {
            let g = quad_primitive(u, v, z);
            assert!(g.is_finite(), "non-finite at ({u},{v},{z})");
        }
    }
}

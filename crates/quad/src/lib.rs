//! # bemcap-quad — quadrature and analytic 1/r integrals
//!
//! The integration engine behind the system-setup step. With instantiable
//! basis functions the setup step is >95 % of total runtime (paper §3), and
//! every matrix entry is a Galerkin integral of the electrostatic kernel
//! 1/(4πε‖r−r′‖) over a pair of axis-aligned rectangles, optionally weighted
//! by 1-D template shapes (paper §4, equations (6)–(7)).
//!
//! This crate provides:
//!
//! * [`gauss`] — Gauss–Legendre rules of arbitrary order;
//! * [`analytic`] — closed forms: the 8-term 2-D collocation primitive, the
//!   1-D line primitive, and the 16-corner 4-D Galerkin primitive for
//!   parallel rectangles (the "more than 100 terms" expression of §4.1,
//!   derived and property-tested against nested quadrature);
//! * [`galerkin`] — the dispatching engine implementing the
//!   dimension-reduction strategy of §4.1 (use the cheapest expression the
//!   separation distance allows);
//! * [`numint`] — brute-force nested quadrature used as the test reference.
//!
//! ```
//! use bemcap_geom::{Axis, Panel};
//! use bemcap_quad::galerkin::{GalerkinEngine, PanelShape};
//!
//! let a = Panel::new(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0))?;
//! let b = Panel::new(Axis::Z, 2.0, (0.0, 1.0), (0.0, 1.0))?;
//! let eng = GalerkinEngine::default();
//! let val = eng.panel_pair(&a, PanelShape::Flat, &b, PanelShape::Flat);
//! // Two unit plates 2 apart: integral ≈ area²/distance = 0.5, reduced a
//! // few percent by the finite plate extent.
//! assert!((val - 0.5).abs() / 0.5 < 0.1);
//! assert!(val < 0.5);
//! # Ok::<(), bemcap_geom::GeomError>(())
//! ```

pub mod analytic;
pub mod galerkin;
pub mod gauss;
pub mod numint;

pub use galerkin::{GalerkinConfig, GalerkinEngine, PanelShape};
pub use gauss::GaussRule;

/// 1/(4π): the kernel prefactor before dividing by the permittivity.
pub const INV_4PI: f64 = 1.0 / (4.0 * std::f64::consts::PI);

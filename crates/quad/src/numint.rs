//! Brute-force numerical integration references.
//!
//! These are deliberately slow, high-accuracy evaluators used to validate
//! the closed forms and the dimension-reduction engine. They never run in
//! the production assembly path.

use crate::analytic::rect_potential;
use crate::gauss::GaussRule;

/// Galerkin integral of 1/r over two parallel rectangles by outer
/// subdivided Gauss quadrature of the (exact) inner collocation potential.
///
/// Subdividing the outer rectangle into `subdiv × subdiv` cells makes the
/// rule converge even for the coplanar self-term, where the inner potential
/// is continuous but has kinked derivatives along the panel edges.
pub fn galerkin_bruteforce(
    ax: (f64, f64),
    ay: (f64, f64),
    bx: (f64, f64),
    by: (f64, f64),
    z: f64,
    subdiv: usize,
    order: usize,
) -> f64 {
    let rule = GaussRule::new(order);
    let dx = (ax.1 - ax.0) / subdiv as f64;
    let dy = (ay.1 - ay.0) / subdiv as f64;
    let mut acc = 0.0;
    for i in 0..subdiv {
        for j in 0..subdiv {
            let x0 = ax.0 + dx * i as f64;
            let y0 = ay.0 + dy * j as f64;
            acc += rule.integrate_2d(x0, x0 + dx, y0, y0 + dy, |x, y| {
                rect_potential(bx.0, bx.1, by.0, by.1, z, x, y)
            });
        }
    }
    acc
}

/// Fully numerical 4-D Galerkin integral of 1/r over two parallel
/// rectangles (tensor Gauss in all four dimensions). Valid only for
/// separated rectangles (z ≠ 0 or disjoint supports).
pub fn galerkin_4d_quadrature(
    ax: (f64, f64),
    ay: (f64, f64),
    bx: (f64, f64),
    by: (f64, f64),
    z: f64,
    order: usize,
) -> f64 {
    let rule = GaussRule::new(order);
    let mut acc = 0.0;
    for (x, wx) in rule.mapped(ax.0, ax.1) {
        for (y, wy) in rule.mapped(ay.0, ay.1) {
            for (xp, wxp) in rule.mapped(bx.0, bx.1) {
                for (yp, wyp) in rule.mapped(by.0, by.1) {
                    let r = ((x - xp).powi(2) + (y - yp).powi(2) + z * z).sqrt();
                    acc += wx * wy * wxp * wyp / r;
                }
            }
        }
    }
    acc
}

/// Weighted Galerkin reference: like [`galerkin_bruteforce`] but with
/// arbitrary in-plane weights on both rectangles, evaluated fully
/// numerically (outer subdivided × inner plain quadrature). Used to test
/// the template-weighted paths of the engine.
#[allow(clippy::too_many_arguments)]
pub fn weighted_bruteforce(
    ax: (f64, f64),
    ay: (f64, f64),
    bx: (f64, f64),
    by: (f64, f64),
    z: f64,
    wa: impl Fn(f64, f64) -> f64,
    wb: impl Fn(f64, f64) -> f64,
    subdiv: usize,
    order: usize,
) -> f64 {
    let rule = GaussRule::new(order);
    let dax = (ax.1 - ax.0) / subdiv as f64;
    let day = (ay.1 - ay.0) / subdiv as f64;
    let dbx = (bx.1 - bx.0) / subdiv as f64;
    let dby = (by.1 - by.0) / subdiv as f64;
    let mut acc = 0.0;
    for ia in 0..subdiv {
        for ja in 0..subdiv {
            let xa0 = ax.0 + dax * ia as f64;
            let ya0 = ay.0 + day * ja as f64;
            for ib in 0..subdiv {
                for jb in 0..subdiv {
                    let xb0 = bx.0 + dbx * ib as f64;
                    let yb0 = by.0 + dby * jb as f64;
                    for (x, wx) in rule.mapped(xa0, xa0 + dax) {
                        for (y, wy) in rule.mapped(ya0, ya0 + day) {
                            for (xp, wxp) in rule.mapped(xb0, xb0 + dbx) {
                                for (yp, wyp) in rule.mapped(yb0, yb0 + dby) {
                                    let r2 = (x - xp).powi(2) + (y - yp).powi(2) + z * z;
                                    if r2 == 0.0 {
                                        continue;
                                    }
                                    acc += wx * wy * wxp * wyp * wa(x, y) * wb(xp, yp) / r2.sqrt();
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::galerkin_parallel;

    #[test]
    fn bruteforce_agrees_with_4d_quadrature_when_separated() {
        let a = galerkin_bruteforce((0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0), 2.0, 2, 12);
        let b = galerkin_4d_quadrature((0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0), 2.0, 12);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn bruteforce_matches_closed_form() {
        let v = galerkin_parallel((0.0, 1.0), (0.0, 2.0), (0.5, 1.5), (0.0, 1.0), 0.8);
        let r = galerkin_bruteforce((0.0, 1.0), (0.0, 2.0), (0.5, 1.5), (0.0, 1.0), 0.8, 3, 16);
        assert!((v - r).abs() < 1e-8 * v.abs(), "{v} vs {r}");
    }

    #[test]
    fn weighted_reduces_to_unweighted() {
        let w = weighted_bruteforce(
            (0.0, 1.0),
            (0.0, 1.0),
            (0.0, 1.0),
            (0.0, 1.0),
            1.5,
            |_, _| 1.0,
            |_, _| 1.0,
            2,
            8,
        );
        let v = galerkin_parallel((0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0), 1.5);
        assert!((w - v).abs() < 1e-7 * v.abs(), "{w} vs {v}");
    }
}

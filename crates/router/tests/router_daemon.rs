//! End-to-end front-tier tests: a real router over real daemons, with
//! the stock [`bemcap_serve::Client`] talking to both tiers.
//!
//! The load-bearing property is **bit-identity**: a result that came
//! through the router must match the direct-to-daemon result to the
//! last bit, for every op. The router relays frames verbatim, so any
//! divergence here means the proxy path re-encoded something.

use std::time::Duration;

use bemcap_geom::io::write_geometry;
use bemcap_geom::structures::{self, BusParams, CrossingParams};
use bemcap_geom::Geometry;
use bemcap_router::{routing_key, Balancer, Router, RouterConfig, RouterHandle};
use bemcap_serve::protocol::Request;
use bemcap_serve::{
    ChipOptions, Client, ExtractOptions, ServeError, Server, ServerConfig, ServerHandle,
};

/// N daemons plus a router sharding across them.
struct Tier {
    daemons: Vec<ServerHandle>,
    replicas: Vec<String>,
    router: RouterHandle,
}

impl Tier {
    fn start(n: usize) -> Tier {
        let daemons: Vec<ServerHandle> = (0..n)
            .map(|_| {
                Server::bind(ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
                    .expect("bind daemon")
                    .spawn()
                    .expect("spawn daemon")
            })
            .collect();
        let replicas: Vec<String> = daemons.iter().map(|d| d.addr().to_string()).collect();
        let router = Router::bind(RouterConfig {
            replicas: replicas.clone(),
            connect_timeout: Duration::from_millis(500),
            health_interval: Duration::from_millis(100),
            ..RouterConfig::default()
        })
        .expect("bind router")
        .spawn()
        .expect("spawn router");
        Tier { daemons, replicas, router }
    }

    fn router_client(&self) -> Client {
        Client::connect(self.router.addr()).expect("connect to router")
    }

    fn daemon_client(&self, i: usize) -> Client {
        Client::connect(self.daemons[i].addr()).expect("connect to daemon")
    }

    /// The replica index the router's affinity picks for this geometry
    /// under these options (same key computation, same balancer).
    fn affinity_of(&self, geo: &Geometry, options: &ExtractOptions) -> usize {
        let request =
            Request::Extract { id: None, geometry: write_geometry(geo), options: *options };
        Balancer::new(&self.replicas).pick(routing_key(&request).expect("payload key")).unwrap()
    }

    /// Shuts down the router and every daemon, in that order.
    fn stop(self) {
        self.router_client().shutdown().expect("router shutdown");
        self.router.join().expect("router exit");
        for (i, daemon) in self.daemons.into_iter().enumerate() {
            let mut c = Client::connect(daemon.addr()).expect("connect for shutdown");
            c.shutdown().unwrap_or_else(|e| panic!("daemon {i} shutdown: {e}"));
            daemon.join().expect("daemon exit");
        }
    }
}

fn bits(matrix: &[Vec<f64>]) -> Vec<Vec<u64>> {
    matrix.iter().map(|row| row.iter().map(|v| v.to_bits()).collect()).collect()
}

#[test]
fn routed_extract_and_batch_are_bit_identical_to_direct() {
    let tier = Tier::start(2);
    let mut direct = tier.daemon_client(0);
    let mut routed = tier.router_client();
    let geo = structures::crossing_wires(CrossingParams::default());
    let options = ExtractOptions::default();

    let want = direct.extract(&geo, &options).expect("direct extract");
    let got = routed.extract(&geo, &options).expect("routed extract");
    assert_eq!(got.names, want.names);
    assert_eq!(bits(&got.matrix), bits(&want.matrix), "routed extract diverged bitwise");
    assert_eq!(got.method, want.method);

    // A batch frame routes (and relays) as one unit.
    let geos: Vec<Geometry> = [0.9, 1.0, 1.1]
        .iter()
        .map(|&s| {
            structures::crossing_wires(CrossingParams {
                length: s * CrossingParams::default().length,
                ..CrossingParams::default()
            })
        })
        .collect();
    let want = direct.extract_batch(&geos, &options).expect("direct batch");
    let got = routed.extract_batch(&geos, &options).expect("routed batch");
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(bits(&g.matrix), bits(&w.matrix), "batch job {i} diverged bitwise");
    }
    tier.stop();
}

#[test]
fn routed_chip_is_bit_identical_to_direct() {
    let tier = Tier::start(2);
    let mut direct = tier.daemon_client(1);
    let mut routed = tier.router_client();
    let geo = structures::bus_crossing(2, 2, BusParams::default());
    let options = ChipOptions::default();

    let want = direct.chip(&geo, &options).expect("direct chip");
    let got = routed.chip(&geo, &options).expect("routed chip");
    assert_eq!(got.names, want.names);
    assert_eq!(got.dim, want.dim);
    assert_eq!(got.nnz(), want.nnz());
    for (&(i, j, g), &(wi, wj, w)) in got.entries.iter().zip(&want.entries) {
        assert_eq!((i, j), (wi, wj));
        assert_eq!(g.to_bits(), w.to_bits(), "chip entry ({i},{j}) diverged bitwise");
    }
    tier.stop();
}

#[test]
fn structured_errors_relay_verbatim_and_control_ops_answer_locally() {
    let tier = Tier::start(2);
    let mut routed = tier.router_client();

    // A geometry error is the *replica's* verdict, relayed untouched —
    // never converted into a router-level upstream failure.
    let err = routed.extract_text("conductor a\nbogus 1 2\n", &ExtractOptions::default());
    match err {
        Err(ServeError::Remote { code, .. }) => assert_eq!(code, "geometry"),
        other => panic!("expected relayed geometry error, got {other:?}"),
    }
    // The connection survives the structured error.
    routed.ping().expect("ping after structured error");

    // Per-daemon ops are refused by the router with an explanation.
    match routed.stats() {
        Err(ServeError::Remote { code, message }) => {
            assert_eq!(code, "bad-request");
            assert!(message.contains("route_stats"), "{message}");
        }
        other => panic!("expected bad-request for stats via router, got {other:?}"),
    }

    // ping answers from the router itself and flags the tier.
    let v = routed.send_raw(r#"{"op":"ping","id":7}"#).expect("raw ping");
    let router_flag = v.get("result").and_then(|r| r.get("router"));
    assert_eq!(router_flag.and_then(serde_json::Value::as_bool), Some(true), "{v:?}");
    tier.stop();
}

#[test]
fn repeats_keep_their_shard_and_hit_its_warm_cache() {
    let tier = Tier::start(2);
    let mut routed = tier.router_client();
    let options = ExtractOptions::default();

    // A spread of distinct structures; affinity is predicted with the
    // router's own key + balancer, so the assertions are exact, not
    // statistical.
    let geos: Vec<Geometry> = (0..8)
        .map(|i| {
            structures::crossing_wires(CrossingParams {
                length: (1.0 + 0.05 * i as f64) * CrossingParams::default().length,
                ..CrossingParams::default()
            })
        })
        .collect();
    let mut expected = vec![0u64; 2];
    for geo in &geos {
        expected[tier.affinity_of(geo, &options)] += 1;
    }
    assert!(
        expected.iter().all(|&n| n > 0),
        "test spread degenerated onto one shard: {expected:?} — vary the geometries"
    );

    // Pass 1 (cold) and pass 2 (repeats): every repeat must land on the
    // replica that served it first.
    for pass in 0..2 {
        for geo in &geos {
            let reply = routed.extract(geo, &options).expect("routed extract");
            if pass == 1 {
                assert!(
                    reply.cache.hits > 0,
                    "repeat request missed its shard's warm template cache"
                );
            }
        }
    }
    let stats = routed.route_stats().expect("route stats");
    assert_eq!(stats.healthy, 2);
    assert_eq!(stats.proxied, 2 * geos.len() as u64);
    assert_eq!(stats.failovers, 0);
    for (i, replica) in stats.replicas.iter().enumerate() {
        assert_eq!(
            replica.requests,
            2 * expected[i],
            "replica {i} ({}) request count off: {stats:?}",
            replica.addr
        );
    }
    tier.stop();
}

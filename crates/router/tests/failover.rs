//! Failure-path tests of the front tier: a replica dying under load, a
//! replica that was never there, and a replica coming back.
//!
//! The contract under fire: every in-flight request either succeeds on
//! another replica — bit-identical to the direct result — or returns a
//! structured error. No hangs, no torn responses, no silent drops.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::time::{Duration, Instant};

use bemcap_geom::io::write_geometry;
use bemcap_geom::structures::{self, CrossingParams};
use bemcap_geom::Geometry;
use bemcap_router::{routing_key, Balancer, Router, RouterConfig, RouterHandle};
use bemcap_serve::protocol::Request;
use bemcap_serve::{Client, ExtractOptions, Server, ServerConfig};

fn scaled(factor: f64) -> Geometry {
    structures::crossing_wires(CrossingParams {
        length: factor * CrossingParams::default().length,
        ..CrossingParams::default()
    })
}

/// A geometry whose affinity replica (under default options) is
/// `target` in the given replica set.
fn geometry_pinned_to(replicas: &[String], target: usize) -> Geometry {
    let balancer = Balancer::new(replicas);
    for i in 0..64 {
        let geo = scaled(1.0 + 0.01 * f64::from(i));
        let request = Request::Extract {
            id: None,
            geometry: write_geometry(&geo),
            options: ExtractOptions::default(),
        };
        if balancer.pick(routing_key(&request).unwrap()) == Some(target) {
            return geo;
        }
    }
    unreachable!("64 distinct geometries all missed one of {} shards", replicas.len());
}

fn spawn_router(replicas: Vec<String>) -> RouterHandle {
    Router::bind(RouterConfig {
        replicas,
        connect_timeout: Duration::from_millis(300),
        health_interval: Duration::from_millis(100),
        eject_after: 2,
        ..RouterConfig::default()
    })
    .expect("bind router")
    .spawn()
    .expect("spawn router")
}

/// Polls `route_stats` until `pred` holds or the deadline passes.
fn wait_for(
    client: &mut Client,
    what: &str,
    pred: impl Fn(&bemcap_serve::RouteStatsReply) -> bool,
) -> bemcap_serve::RouteStatsReply {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = client.route_stats().expect("route_stats");
        if pred(&stats) {
            return stats;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {stats:?}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn killing_a_replica_mid_storm_loses_no_request() {
    let mut daemons: Vec<_> = (0..2)
        .map(|_| {
            Server::bind(ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
                .expect("bind daemon")
                .spawn()
                .expect("spawn daemon")
        })
        .collect();
    let replicas: Vec<String> = daemons.iter().map(|d| d.addr().to_string()).collect();
    let router = spawn_router(replicas.clone());

    // Storm traffic pinned to the replica we will kill: its failovers
    // are forced, not left to scheduling luck. The reference bits come
    // from the *surviving* daemon, so post-kill results are checked
    // against a computation the victim never touched.
    let victim = 0;
    let geo = geometry_pinned_to(&replicas, victim);
    let reference = Client::connect(daemons[1].addr())
        .expect("connect survivor")
        .extract(&geo, &ExtractOptions::default())
        .expect("reference extract");
    let reference_bits: Vec<u64> = reference.matrix.iter().flatten().map(|v| v.to_bits()).collect();

    // Stormers gate on the kill between their early and late halves, so
    // requests demonstrably flow both before and after the victim dies.
    let progress = AtomicU32::new(0);
    let killed = AtomicBool::new(false);
    let router_addr = router.addr();
    std::thread::scope(|scope| {
        let progress = &progress;
        let killed = &killed;
        let reference_bits = &reference_bits;
        let geo = &geo;
        let stormers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(router_addr).expect("connect router");
                    let mut served = 0u32;
                    for shot in 0..12 {
                        if shot == 4 {
                            // Hold until the victim is down, then resume.
                            progress.fetch_add(1, Ordering::SeqCst);
                            while !killed.load(Ordering::SeqCst) {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                        // Every request must come back whole and bit-right,
                        // before, during, and after the kill.
                        let reply =
                            client.extract(geo, &ExtractOptions::default()).expect("extract");
                        let bits: Vec<u64> =
                            reply.matrix.iter().flatten().map(|v| v.to_bits()).collect();
                        assert_eq!(&bits, reference_bits, "routed result diverged bitwise");
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        // Wait for every stormer's early half, then kill the victim —
        // and *join* it, so the gate only opens once its sockets are
        // truly gone and the late half cannot sneak back onto it.
        while progress.load(Ordering::SeqCst) < 3 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let victim_daemon = daemons.remove(0);
        let mut killer = Client::connect(victim_daemon.addr()).expect("connect victim");
        killer.shutdown().expect("victim shutdown");
        drop(killer);
        victim_daemon.join().expect("victim exit");
        killed.store(true, Ordering::SeqCst);
        for s in stormers {
            assert_eq!(s.join().expect("storm thread"), 12, "a storm request was lost");
        }
    });

    let mut probe = Client::connect(router.addr()).expect("probe");
    let stats = wait_for(&mut probe, "victim ejection", |s| s.healthy == 1 && s.ejections >= 1);
    assert_eq!(stats.proxied, 3 * 12, "every storm request was served by some replica");
    assert_eq!(stats.upstream_errors, 0);
    assert!(stats.failovers >= 1, "the kill forced no failover: {stats:?}");
    assert_eq!(
        stats.replicas[1].requests,
        3 * 8,
        "the survivor must have served the entire post-kill half: {stats:?}"
    );

    probe.shutdown().expect("router shutdown");
    router.join().expect("router exit");
    let survivor = daemons.remove(0);
    let mut c = Client::connect(survivor.addr()).expect("connect survivor");
    c.shutdown().expect("survivor shutdown");
    survivor.join().expect("survivor exit");
}

#[test]
fn an_ejected_replica_is_readmitted_when_it_returns() {
    // Reserve a port with nothing behind it, then hand it to the router
    // as a replica: the health checker must eject it, and service must
    // continue on the live replica alone.
    let parked = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let live = Server::bind(ServerConfig { addr: "127.0.0.1:0".into(), ..Default::default() })
        .expect("bind daemon")
        .spawn()
        .expect("spawn daemon");
    let replicas = vec![parked.clone(), live.addr().to_string()];
    let router = spawn_router(replicas.clone());
    let mut probe = Client::connect(router.addr()).expect("probe");

    wait_for(&mut probe, "ejection of the parked address", |s| {
        s.healthy == 1 && s.ejections >= 1 && !s.replicas[0].healthy
    });

    // Requests pinned to the ejected shard fail over and still succeed.
    let geo = geometry_pinned_to(&replicas, 0);
    let reply = probe.extract(&geo, &ExtractOptions::default()).expect("failover extract");
    assert_eq!(reply.dim(), 2);
    let stats = probe.route_stats().expect("route_stats");
    assert!(stats.failovers >= 1 || stats.replicas[1].requests >= 1, "{stats:?}");
    assert_eq!(stats.upstream_errors, 0);

    // The replica comes back on the same address: the next passing
    // health check must re-admit it, and affinity traffic must return.
    let revived = Server::bind(ServerConfig { addr: parked.clone(), ..Default::default() })
        .expect("rebind parked address")
        .spawn()
        .expect("spawn revived daemon");
    wait_for(&mut probe, "re-admission of the revived replica", |s| {
        s.healthy == 2 && s.readmissions >= 1 && s.replicas[0].healthy
    });
    let before = probe.route_stats().expect("route_stats").replicas[0].requests;
    probe.extract(&geo, &ExtractOptions::default()).expect("extract after re-admission");
    let after = probe.route_stats().expect("route_stats").replicas[0].requests;
    assert_eq!(after, before + 1, "affinity traffic did not return to the revived replica");

    probe.shutdown().expect("router shutdown");
    router.join().expect("router exit");
    for d in [live, revived] {
        let mut c = Client::connect(d.addr()).expect("connect for shutdown");
        c.shutdown().expect("daemon shutdown");
        d.join().expect("daemon exit");
    }
}

//! `bemcaprd` — the bemcap sharding front tier.
//!
//! Binds a TCP port, shards `extract`/`batch`/`chip` frames across
//! `bemcapd` replicas by digest affinity (rendezvous hashing), health-
//! checks the replicas, and fails connection-level errors over to the
//! next replica in preference order (`docs/WIRE_PROTOCOL.md`, v6).
//!
//! ```text
//! bemcaprd --replica HOST:PORT [--replica HOST:PORT ...]
//!          [--addr HOST:PORT] [--max-frame-mb N]
//!          [--connect-timeout-ms N] [--io-timeout-s N]
//!          [--health-interval-ms N] [--eject-after N] [--pool N]
//! ```
//!
//! Defaults: `--addr 127.0.0.1:0` (a free port, printed at startup),
//! 8 MiB frames, 1000 ms connect timeout, 300 s forward IO timeout,
//! 1000 ms health interval, ejection after 3 failed checks, 4 pooled
//! connections per replica. At least one `--replica` is required.
//! Exits 0 after a `shutdown` request (the replicas keep running —
//! and keep their warm caches).

use std::process::ExitCode;
use std::time::Duration;

use bemcap_router::{Router, RouterConfig};

const USAGE: &str = "usage: bemcaprd --replica HOST:PORT [--replica HOST:PORT ...] \
                     [--addr HOST:PORT] [--max-frame-mb N] [--connect-timeout-ms N] \
                     [--io-timeout-s N] [--health-interval-ms N] [--eject-after N] [--pool N]";

fn parse_args(args: &[String]) -> Result<RouterConfig, String> {
    let mut cfg = RouterConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value\n{USAGE}"));
        let positive = |name: &str, raw: String| {
            raw.parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("{name} needs a positive integer\n{USAGE}"))
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--replica" => cfg.replicas.push(value("--replica")?),
            "--max-frame-mb" => {
                cfg.max_frame_bytes = positive("--max-frame-mb", value("--max-frame-mb")?)? << 20;
            }
            "--connect-timeout-ms" => {
                let ms = positive("--connect-timeout-ms", value("--connect-timeout-ms")?)?;
                cfg.connect_timeout = Duration::from_millis(ms as u64);
            }
            "--io-timeout-s" => {
                let s = positive("--io-timeout-s", value("--io-timeout-s")?)?;
                cfg.io_timeout = Some(Duration::from_secs(s as u64));
            }
            "--health-interval-ms" => {
                let ms = positive("--health-interval-ms", value("--health-interval-ms")?)?;
                cfg.health_interval = Duration::from_millis(ms as u64);
            }
            "--eject-after" => {
                cfg.eject_after = positive("--eject-after", value("--eject-after")?)? as u32;
            }
            "--pool" => cfg.pool_per_replica = positive("--pool", value("--pool")?)?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    if cfg.replicas.is_empty() {
        return Err(format!("at least one --replica is required\n{USAGE}"));
    }
    Ok(cfg)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cfg = match parse_args(&args) {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let replicas = cfg.replicas.len();
    let eject_after = cfg.eject_after;
    let pool = cfg.pool_per_replica;
    let router = match Router::bind(cfg) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("bemcaprd: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    match router.local_addr() {
        Ok(addr) => {
            // The startup line is part of the interface: scripts (and
            // the CI smoke job) scrape the bound address from it.
            println!(
                "bemcaprd listening on {addr} \
                 (replicas={replicas}, eject-after={eject_after}, pool={pool})"
            );
        }
        Err(e) => {
            eprintln!("bemcaprd: cannot read bound address: {e}");
            return ExitCode::FAILURE;
        }
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match router.run() {
        Ok(()) => {
            println!("bemcaprd: shutdown complete");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("bemcaprd: fatal: {e}");
            ExitCode::FAILURE
        }
    }
}

//! # bemcap-router — the sharding front tier (`bemcaprd`)
//!
//! One `bemcapd` daemon turns the paper's instantiable-basis reuse
//! (conf_dac_HsiaoD11) into a warm, process-lifetime cache. This crate
//! scales that out: a front-tier proxy that speaks the *same*
//! newline-delimited JSON protocol and shards payload requests across N
//! daemon replicas so every replica's cache stays warm for *its* slice
//! of the workload instead of all replicas cooling each other's.
//!
//! * [`balance`] — routing keys (solver config digest folded with a
//!   geometry content hash) and rendezvous hashing onto the replica
//!   set: repeats hit the same warm replica; losing a replica remaps
//!   only its own share.
//! * [`replica`] — per-replica health state, lifetime counters, and a
//!   bounded pool of reusable backend connections; frames are relayed
//!   **verbatim** so routed results stay bit-identical to
//!   direct-to-daemon results by construction.
//! * [`server`] — the [`Router`] listener: thread-per-connection
//!   dispatch, a background health checker with consecutive-failure
//!   ejection and first-success re-admission, connection-level failover
//!   down the rendezvous order, and the v6 `route_stats` surface.
//!
//! ## Quickstart
//!
//! ```text
//! $ bemcapd --addr 127.0.0.1:4545 &
//! $ bemcapd --addr 127.0.0.1:4546 &
//! $ bemcaprd --addr 127.0.0.1:4500 \
//!       --replica 127.0.0.1:4545 --replica 127.0.0.1:4546
//! bemcaprd listening on 127.0.0.1:4500 (replicas=2, eject-after=3, pool=4)
//! ```
//!
//! Clients connect to the router exactly as they would to a daemon —
//! [`bemcap_serve::Client`] works unchanged; `route_stats` (and `ping`'s
//! `"router": true`) are the only tells.

pub mod balance;
pub mod replica;
pub mod server;

pub use balance::{routing_key, Balancer};
pub use replica::Replica;
pub use server::{Router, RouterConfig, RouterHandle};

//! One backend `bemcapd` replica as the router sees it: an address,
//! health state, lifetime counters, and a small pool of reusable
//! connections.
//!
//! Forwarding is a **verbatim line relay**: the router writes the
//! client's original frame bytes and hands back the replica's response
//! line untouched. Nothing re-encodes on the proxy path, so the bit-
//! identity contract of the wire protocol (shortest-round-trip `f64`
//! text) survives the extra hop by construction.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One pooled connection to a replica daemon.
pub struct BackendConn {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl BackendConn {
    /// Dials `addr` with a connect timeout, then bounds every read and
    /// write with `io_timeout` (`None` = unbounded reads — extraction
    /// frames legitimately take a while).
    ///
    /// # Errors
    ///
    /// The last resolved address's connect error, or
    /// [`io::ErrorKind::InvalidInput`] when `addr` resolves to nothing.
    pub fn connect(
        addr: &str,
        connect_timeout: Duration,
        io_timeout: Option<Duration>,
    ) -> io::Result<BackendConn> {
        let mut last: Option<io::Error> = None;
        let resolved: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        for a in resolved {
            match TcpStream::connect_timeout(&a, connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(io_timeout)?;
                    stream.set_write_timeout(io_timeout)?;
                    let reader = BufReader::new(stream.try_clone()?);
                    return Ok(BackendConn { reader, stream });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to no socket addresses")
        }))
    }

    /// Sends one frame line (no newline) and reads the response line,
    /// returned without its terminator and byte-for-byte as the replica
    /// wrote it.
    ///
    /// # Errors
    ///
    /// Transport failures, including [`io::ErrorKind::UnexpectedEof`]
    /// when the replica closed before answering (a truncated response
    /// counts — half an answer is not an answer).
    pub fn roundtrip_line(&mut self, line: &[u8]) -> io::Result<Vec<u8>> {
        self.stream.write_all(line)?;
        self.stream.write_all(b"\n")?;
        self.stream.flush()?;
        let mut response = Vec::new();
        let n = self.reader.read_until(b'\n', &mut response)?;
        if n == 0 || response.last() != Some(&b'\n') {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "replica closed the connection mid-response",
            ));
        }
        response.pop();
        if response.last() == Some(&b'\r') {
            response.pop();
        }
        Ok(response)
    }
}

/// A replica's routing state: health, counters, connection pool.
pub struct Replica {
    addr: String,
    healthy: AtomicBool,
    consecutive_failures: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    pool: Mutex<Vec<BackendConn>>,
    pool_cap: usize,
}

impl Replica {
    /// A new, presumed-healthy replica (the health checker corrects the
    /// presumption within one interval if it is wrong).
    pub fn new(addr: String, pool_cap: usize) -> Replica {
        Replica {
            addr,
            healthy: AtomicBool::new(true),
            consecutive_failures: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
            pool_cap,
        }
    }

    /// The replica's daemon address as configured.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Whether the router currently routes to this replica.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Consecutive health-check failures.
    pub fn failure_streak(&self) -> u64 {
        self.consecutive_failures.load(Ordering::SeqCst)
    }

    /// Requests forwarded to this replica since start.
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Connection-level failures talking to this replica since start.
    pub fn error_count(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Records a failed health check. Returns `true` when this failure
    /// crossed `eject_after` and flipped the replica unhealthy (the
    /// caller counts the ejection exactly once).
    pub fn record_check_failure(&self, eject_after: u64) -> bool {
        let streak = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if streak >= eject_after && self.healthy.swap(false, Ordering::SeqCst) {
            // Pooled connections to an ejected replica are dead weight —
            // drop them so re-admission starts from fresh dials.
            self.pool.lock().unwrap_or_else(|e| e.into_inner()).clear();
            return true;
        }
        false
    }

    /// Records a successful health check. Returns `true` when this
    /// success re-admitted a previously ejected replica.
    pub fn record_check_success(&self) -> bool {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        !self.healthy.swap(true, Ordering::SeqCst)
    }

    /// Forwards one frame line, reusing a pooled connection when one is
    /// available and dialing otherwise. A pooled connection that fails
    /// is discarded and the frame retried once on a fresh dial — the
    /// daemon may simply have been restarted since the pool filled.
    ///
    /// # Errors
    ///
    /// The fresh dial's error; the caller decides whether to fail over
    /// to another replica.
    pub fn forward(
        &self,
        line: &[u8],
        connect_timeout: Duration,
        io_timeout: Option<Duration>,
    ) -> io::Result<Vec<u8>> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        // A pooled connection that errors is simply stale (the daemon
        // may have restarted since the pool filled); fall through to a
        // fresh dial rather than reporting it.
        if let Some(mut conn) = self.checkout() {
            if let Ok(response) = conn.roundtrip_line(line) {
                self.checkin(conn);
                return Ok(response);
            }
        }
        let fresh = || -> io::Result<Vec<u8>> {
            let mut conn = BackendConn::connect(&self.addr, connect_timeout, io_timeout)?;
            let response = conn.roundtrip_line(line)?;
            self.checkin(conn);
            Ok(response)
        };
        fresh().inspect_err(|_| {
            self.errors.fetch_add(1, Ordering::Relaxed);
        })
    }

    fn checkout(&self) -> Option<BackendConn> {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).pop()
    }

    fn checkin(&self, conn: BackendConn) {
        let mut pool = self.pool.lock().unwrap_or_else(|e| e.into_inner());
        if pool.len() < self.pool_cap {
            pool.push(conn);
        }
    }

    /// Pooled idle connections right now.
    pub fn pooled(&self) -> usize {
        self.pool.lock().unwrap_or_else(|e| e.into_inner()).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejection_and_readmission_fire_exactly_once() {
        let r = Replica::new("127.0.0.1:1".into(), 2);
        assert!(r.is_healthy());
        assert!(!r.record_check_failure(3));
        assert!(!r.record_check_failure(3));
        assert!(r.record_check_failure(3), "third strike ejects");
        assert!(!r.is_healthy());
        assert!(!r.record_check_failure(3), "already ejected: no second ejection event");
        assert!(r.record_check_success(), "first success re-admits");
        assert!(r.is_healthy());
        assert_eq!(r.failure_streak(), 0);
        assert!(!r.record_check_success(), "already healthy: no re-admission event");
    }

    #[test]
    fn forward_to_a_dead_address_counts_an_error() {
        // Reserve a port and close it so nothing listens there.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let r = Replica::new(dead, 2);
        let err = r.forward(b"{\"op\":\"ping\"}", Duration::from_millis(200), None).unwrap_err();
        assert_ne!(err.kind(), io::ErrorKind::InvalidInput);
        assert_eq!(r.request_count(), 1);
        assert_eq!(r.error_count(), 1);
    }
}

//! The `bemcaprd` front tier: a TCP listener that speaks the daemon
//! wire protocol and proxies payload ops to backend replicas.
//!
//! Connection handling mirrors `bemcapd` (thread per connection, shared
//! size-capped framing, 50 ms shutdown polling) so a client cannot tell
//! the tiers apart by transport behavior. What differs is dispatch:
//!
//! * `extract` / `batch` / `chip` — compute the routing key
//!   ([`crate::balance::routing_key`]), walk replicas in rendezvous
//!   preference order, and relay the client's frame **verbatim**. A
//!   complete response line — success *or* structured error like
//!   `busy` — is final and relayed untouched; only connection-level
//!   failures (dial, timeout, mid-response EOF) fail over to the next
//!   replica. When every replica fails at the transport level the
//!   client gets the v6 `upstream` error.
//! * `ping`, `metrics`, `route_stats`, `shutdown` — answered by the
//!   router itself (`ping` carries `"router": true` so tooling can tell
//!   the tiers apart).
//! * `stats`, `snapshot` — refused with `bad-request`: both describe
//!   one daemon's private state, so they must be addressed to a replica
//!   directly.
//!
//! A background health checker pings every replica each interval;
//! [`RouterConfig::eject_after`] consecutive failures eject a replica
//! from routing (its shard fails over with minimal remap), and the
//! first succeeding check re-admits it.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use bemcap_core::metrics::{Metric, Registry};
use bemcap_serve::framing::{next_frame, Frame};
use bemcap_serve::protocol::{self, codes, error_response, ok_response, Request, PROTOCOL_VERSION};
use bemcap_serve::Client;
use serde_json::{json, Value};

use crate::balance::{routing_key, Balancer};
use crate::replica::Replica;

/// How often blocked reads and the accept loop wake to check the
/// shutdown flag (mirrors the daemon's tick).
const POLL_TICK: Duration = Duration::from_millis(50);

/// Configuration of a [`Router`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks a free port (see [`Router::local_addr`]).
    pub addr: String,
    /// Backend `bemcapd` addresses. At least one is required; the order
    /// is the identity order `route_stats` reports.
    pub replicas: Vec<String>,
    /// Largest accepted request frame in bytes. Default 8 MiB,
    /// matching the daemon.
    pub max_frame_bytes: usize,
    /// Bound on dialing a replica (also the health checker's IO
    /// timeout). Default 1 s.
    pub connect_timeout: Duration,
    /// Bound on waiting for a replica's response to a forwarded frame
    /// (`None` = unbounded). Default 5 min — extraction frames
    /// legitimately run long, but a wedged replica must not pin a
    /// client forever.
    pub io_timeout: Option<Duration>,
    /// Health-check period. Default 1 s.
    pub health_interval: Duration,
    /// Consecutive failed health checks that eject a replica. Default 3.
    pub eject_after: u32,
    /// Idle connections pooled per replica. Default 4.
    pub pool_per_replica: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            replicas: Vec::new(),
            max_frame_bytes: 8 << 20,
            connect_timeout: Duration::from_secs(1),
            io_timeout: Some(Duration::from_secs(300)),
            health_interval: Duration::from_secs(1),
            eject_after: 3,
            pool_per_replica: 4,
        }
    }
}

struct RouterState {
    cfg: RouterConfig,
    replicas: Vec<Replica>,
    balancer: Balancer,
    shutdown: AtomicBool,
    requests: AtomicU64,
    proxied: AtomicU64,
    failovers: AtomicU64,
    upstream_errors: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
    started: Instant,
}

impl RouterState {
    fn stopping(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    fn healthy_count(&self) -> usize {
        self.replicas.iter().filter(|r| r.is_healthy()).count()
    }
}

/// Router-level counters in the global metrics registry. The registry
/// is process-wide, so these aggregate across router instances in one
/// process (tests, `bemcap-load --router`); the per-instance numbers
/// live in `route_stats`.
struct RouterMetrics {
    requests: &'static Metric,
    proxied: &'static Metric,
    failovers: &'static Metric,
    upstream_errors: &'static Metric,
    ejections: &'static Metric,
    readmissions: &'static Metric,
    replicas: &'static Metric,
    healthy_replicas: &'static Metric,
}

fn router_metrics() -> &'static RouterMetrics {
    static METRICS: OnceLock<RouterMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        RouterMetrics {
            requests: r
                .counter("bemcap_router_requests_total", "Requests the front tier accepted."),
            proxied: r.counter(
                "bemcap_router_proxied_total",
                "Payload requests answered by a replica through the front tier.",
            ),
            failovers: r.counter(
                "bemcap_router_failovers_total",
                "Replica attempts abandoned for connection-level failures.",
            ),
            upstream_errors: r.counter(
                "bemcap_router_upstream_errors_total",
                "Requests that exhausted every replica (answered with the upstream code).",
            ),
            ejections: r.counter(
                "bemcap_router_ejections_total",
                "Replicas ejected after consecutive health-check failures.",
            ),
            readmissions: r.counter(
                "bemcap_router_readmissions_total",
                "Ejected replicas re-admitted after a passing health check.",
            ),
            replicas: r.gauge("bemcap_router_replicas", "Configured backend replicas."),
            healthy_replicas: r
                .gauge("bemcap_router_healthy_replicas", "Replicas currently routable."),
        }
    })
}

/// A bound, not-yet-running front tier. [`Router::bind`] →
/// [`Router::run`] (blocking) or [`Router::spawn`] (background thread).
pub struct Router {
    listener: TcpListener,
    state: Arc<RouterState>,
}

impl Router {
    /// Binds the listener and builds the replica table. Replicas are
    /// presumed healthy until the first health-check interval says
    /// otherwise, so traffic flows immediately after bind.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] for an empty replica set or a
    /// zero ejection threshold; any socket error from bind.
    pub fn bind(cfg: RouterConfig) -> io::Result<Router> {
        if cfg.replicas.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one replica address",
            ));
        }
        if cfg.eject_after == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "ejection threshold must be at least one failed check",
            ));
        }
        let listener = TcpListener::bind(cfg.addr.as_str())?;
        listener.set_nonblocking(true)?;
        let balancer = Balancer::new(&cfg.replicas);
        let replicas: Vec<Replica> =
            cfg.replicas.iter().map(|a| Replica::new(a.clone(), cfg.pool_per_replica)).collect();
        let state = Arc::new(RouterState {
            cfg,
            replicas,
            balancer,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            proxied: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            upstream_errors: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            started: Instant::now(),
        });
        Ok(Router { listener, state })
    }

    /// The address actually bound (resolves port 0).
    ///
    /// # Errors
    ///
    /// Any socket error from `local_addr`.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves until a `shutdown` request arrives, then joins the health
    /// checker and every connection thread. Shutting down the router
    /// never shuts down the replicas — they keep their warm caches.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop socket errors.
    pub fn run(self) -> io::Result<()> {
        let health = {
            let state = Arc::clone(&self.state);
            std::thread::spawn(move || health_loop(&state))
        };
        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.state.stopping() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    handlers.push(std::thread::spawn(move || {
                        let _ = serve_connection(&state, stream);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_TICK);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            handlers.retain(|h| !h.is_finished());
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = health.join();
        Ok(())
    }

    /// Runs the router on a background thread.
    ///
    /// # Errors
    ///
    /// Any socket error from `local_addr`.
    pub fn spawn(self) -> io::Result<RouterHandle> {
        let addr = self.local_addr()?;
        let thread = std::thread::spawn(move || self.run());
        Ok(RouterHandle { addr, thread })
    }
}

/// A router running on a background thread (see [`Router::spawn`]).
pub struct RouterHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<io::Result<()>>,
}

impl RouterHandle {
    /// The bound address to connect clients to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the router to shut down (send the `shutdown` op first).
    ///
    /// # Errors
    ///
    /// The router's exit status; panics if the router thread panicked.
    pub fn join(self) -> io::Result<()> {
        self.thread.join().expect("router thread panicked")
    }
}

/// Pings every replica once per interval, ejecting after
/// [`RouterConfig::eject_after`] consecutive failures and re-admitting
/// on the first success. Sleeps in [`POLL_TICK`] slices so shutdown
/// latency stays bounded by the tick, not the interval.
fn health_loop(state: &RouterState) {
    let eject_after = u64::from(state.cfg.eject_after);
    while !state.stopping() {
        for replica in &state.replicas {
            if state.stopping() {
                return;
            }
            if check_replica(replica, &state.cfg) {
                if replica.record_check_success() {
                    state.readmissions.fetch_add(1, Ordering::Relaxed);
                    router_metrics().readmissions.inc();
                }
            } else if replica.record_check_failure(eject_after) {
                state.ejections.fetch_add(1, Ordering::Relaxed);
                router_metrics().ejections.inc();
            }
        }
        let deadline = Instant::now() + state.cfg.health_interval;
        loop {
            let now = Instant::now();
            if now >= deadline || state.stopping() {
                break;
            }
            std::thread::sleep(POLL_TICK.min(deadline - now));
        }
    }
}

/// One health probe: dial with the connect timeout, bound the exchange
/// with the same timeout, and require a protocol-compatible `ping`.
fn check_replica(replica: &Replica, cfg: &RouterConfig) -> bool {
    let probe = || -> Result<(), bemcap_serve::ServeError> {
        let mut client = Client::connect_with_timeout(replica.addr(), cfg.connect_timeout)?;
        client.set_io_timeout(Some(cfg.connect_timeout))?;
        client.ping()
    };
    probe().is_ok()
}

fn serve_connection(state: &RouterState, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(POLL_TICK))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let stop = || state.stopping();
    loop {
        let frame = match next_frame(&mut reader, state.cfg.max_frame_bytes, &stop)? {
            None => return Ok(()),
            Some(frame) => frame,
        };
        let response = match frame {
            Frame::Oversized => error_response(
                None,
                codes::OVERSIZED,
                &format!("request frame exceeds {} bytes", state.cfg.max_frame_bytes),
            )
            .into_bytes(),
            Frame::Line(bytes) => match std::str::from_utf8(&bytes) {
                Err(e) => error_response(None, codes::UTF8, &format!("request is not UTF-8: {e}"))
                    .into_bytes(),
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => dispatch(state, line),
            },
        };
        writer.write_all(&response)?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
}

/// Handles one request line. Payload ops forward the *original* line so
/// the replica sees the client's exact frame; control ops are answered
/// locally. Always returns a complete response line (no newline).
fn dispatch(state: &RouterState, line: &str) -> Vec<u8> {
    state.requests.fetch_add(1, Ordering::Relaxed);
    router_metrics().requests.inc();
    let request = match protocol::decode_request(line) {
        Ok(request) => request,
        Err(e) => return error_response(e.id, e.code, &e.message).into_bytes(),
    };
    if let Some(key) = routing_key(&request) {
        let id = match &request {
            Request::Extract { id, .. } | Request::Batch { id, .. } | Request::Chip { id, .. } => {
                *id
            }
            _ => None,
        };
        return forward_payload(state, key, line.as_bytes(), id);
    }
    match request {
        Request::Ping { id } => ok_response(
            id,
            json!({
                "pong": true,
                "proto": PROTOCOL_VERSION,
                "version": env!("CARGO_PKG_VERSION"),
                "router": true,
            }),
        )
        .into_bytes(),
        Request::Metrics { id } => ok_response(id, metrics_scrape(state)).into_bytes(),
        Request::RouteStats { id } => ok_response(id, route_stats_value(state)).into_bytes(),
        Request::Shutdown { id } => {
            state.shutdown.store(true, Ordering::SeqCst);
            ok_response(id, json!({ "stopping": true })).into_bytes()
        }
        Request::Stats { id } => error_response(
            id,
            codes::BAD_REQUEST,
            "stats describes one daemon's private state; \
             ask a replica directly or use route_stats here",
        )
        .into_bytes(),
        Request::Snapshot { id, .. } => error_response(
            id,
            codes::BAD_REQUEST,
            "snapshot writes one daemon's cache to its filesystem; \
             address the replica directly",
        )
        .into_bytes(),
        Request::Extract { .. } | Request::Batch { .. } | Request::Chip { .. } => {
            unreachable!("payload ops always have a routing key")
        }
    }
}

/// Relays a payload frame along the rendezvous preference order:
/// healthy replicas first (affinity shard leading), ejected ones as a
/// last resort — a just-died replica may not be ejected yet, and a
/// just-revived one may not be re-admitted yet, so neither state is
/// trusted absolutely. Any complete response line is final; only
/// connection-level failures move on.
fn forward_payload(state: &RouterState, key: u64, line: &[u8], id: Option<u64>) -> Vec<u8> {
    let order = state.balancer.ranked(key);
    let (healthy, ejected): (Vec<usize>, Vec<usize>) =
        order.into_iter().partition(|&i| state.replicas[i].is_healthy());
    let mut attempts = 0u64;
    let mut last: Option<(String, io::Error)> = None;
    for index in healthy.into_iter().chain(ejected) {
        let replica = &state.replicas[index];
        attempts += 1;
        match replica.forward(line, state.cfg.connect_timeout, state.cfg.io_timeout) {
            Ok(response) => {
                state.proxied.fetch_add(1, Ordering::Relaxed);
                router_metrics().proxied.inc();
                if attempts > 1 {
                    state.failovers.fetch_add(attempts - 1, Ordering::Relaxed);
                    router_metrics().failovers.add(attempts - 1);
                }
                return response;
            }
            Err(e) => last = Some((replica.addr().to_string(), e)),
        }
    }
    if attempts > 1 {
        state.failovers.fetch_add(attempts - 1, Ordering::Relaxed);
        router_metrics().failovers.add(attempts - 1);
    }
    state.upstream_errors.fetch_add(1, Ordering::Relaxed);
    router_metrics().upstream_errors.inc();
    let detail = last
        .map(|(addr, e)| format!("last attempt ({addr}): {e}"))
        .unwrap_or_else(|| "no replicas configured".to_string());
    error_response(
        id,
        codes::UPSTREAM,
        &format!("no replica reachable after {attempts} attempts; {detail}"),
    )
    .into_bytes()
}

/// Builds the v6 `route_stats` result from the live state.
fn route_stats_value(state: &RouterState) -> Value {
    let replicas: Vec<Value> = state
        .replicas
        .iter()
        .map(|r| {
            json!({
                "addr": r.addr(),
                "healthy": r.is_healthy(),
                "consecutive_failures": r.failure_streak() as f64,
                "requests": r.request_count() as f64,
                "errors": r.error_count() as f64,
                "pooled": r.pooled(),
            })
        })
        .collect();
    json!({
        "replicas": Value::Array(replicas),
        "healthy": state.healthy_count(),
        "proxied": state.proxied.load(Ordering::Relaxed) as f64,
        "failovers": state.failovers.load(Ordering::Relaxed) as f64,
        "upstream_errors": state.upstream_errors.load(Ordering::Relaxed) as f64,
        "ejections": state.ejections.load(Ordering::Relaxed) as f64,
        "readmissions": state.readmissions.load(Ordering::Relaxed) as f64,
        "uptime_seconds": state.started.elapsed().as_secs_f64(),
        "requests": state.requests.load(Ordering::Relaxed) as f64,
    })
}

/// Builds the `metrics` result: refreshes the router gauges, then
/// snapshots the global registry (shared with any in-process daemons —
/// the registry is process-wide by design).
fn metrics_scrape(state: &RouterState) -> Value {
    let m = router_metrics();
    m.replicas.set(state.replicas.len() as u64);
    m.healthy_replicas.set(state.healthy_count() as u64);
    let registry = Registry::global();
    let mut counters: Vec<(String, Value)> = Vec::new();
    let mut gauges: Vec<(String, Value)> = Vec::new();
    for s in registry.snapshot() {
        let pair = (s.name.to_string(), Value::Number(s.value as f64));
        match s.kind {
            bemcap_core::metrics::MetricKind::Counter => counters.push(pair),
            bemcap_core::metrics::MetricKind::Gauge => gauges.push(pair),
        }
    }
    json!({
        "text": registry.render_prometheus(),
        "counters": Value::Object(counters),
        "gauges": Value::Object(gauges),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state(replicas: Vec<String>) -> RouterState {
        let cfg = RouterConfig {
            replicas: replicas.clone(),
            connect_timeout: Duration::from_millis(200),
            ..RouterConfig::default()
        };
        RouterState {
            balancer: Balancer::new(&replicas),
            replicas: replicas.into_iter().map(|a| Replica::new(a, cfg.pool_per_replica)).collect(),
            cfg,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            proxied: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            upstream_errors: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    /// A port with nothing listening on it (bound once, then released).
    fn dead_addr() -> String {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    }

    fn parse(bytes: &[u8]) -> Value {
        serde_json::from_str(std::str::from_utf8(bytes).unwrap()).unwrap()
    }

    #[test]
    fn router_answers_control_ops_itself() {
        let state = test_state(vec![dead_addr()]);
        let v: Value = parse(&dispatch(&state, r#"{"op":"ping","id":1}"#));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["result"]["proto"].as_u64(), Some(PROTOCOL_VERSION));
        assert_eq!(v["result"]["router"].as_bool(), Some(true));

        let v: Value = parse(&dispatch(&state, r#"{"op":"route_stats","id":2}"#));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["result"]["replicas"].as_array().unwrap().len(), 1);
        assert_eq!(v["result"]["healthy"].as_u64(), Some(1));

        // Per-daemon ops are refused with an explanation, not proxied.
        for line in [r#"{"op":"stats","id":3}"#, r#"{"op":"snapshot","id":4,"path":"x"}"#] {
            let v: Value = parse(&dispatch(&state, line));
            assert_eq!(v["error"]["code"].as_str(), Some(codes::BAD_REQUEST), "{line}");
        }

        let v: Value = parse(&dispatch(&state, "not json"));
        assert_eq!(v["error"]["code"].as_str(), Some(codes::PARSE));
    }

    #[test]
    fn unreachable_replicas_yield_the_upstream_code() {
        let state = test_state(vec![dead_addr(), dead_addr()]);
        let line = r#"{"op":"extract","id":9,"geometry":"conductor a\nbox 0 0 0 1 1 1\n"}"#;
        let v: Value = parse(&dispatch(&state, line));
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"]["code"].as_str(), Some(codes::UPSTREAM), "{v:?}");
        assert_eq!(v["id"].as_u64(), Some(9), "upstream errors echo the id");
        assert!(v["error"]["message"].as_str().unwrap().contains("2 attempts"), "{v:?}");
        assert_eq!(state.upstream_errors.load(Ordering::Relaxed), 1);
        assert_eq!(state.proxied.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn bind_rejects_an_empty_replica_set() {
        let err = Router::bind(RouterConfig::default()).map(|_| ()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = Router::bind(RouterConfig {
            replicas: vec!["127.0.0.1:1".into()],
            eject_after: 0,
            ..RouterConfig::default()
        })
        .map(|_| ())
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn shutdown_flips_the_flag_without_touching_replicas() {
        let state = test_state(vec![dead_addr()]);
        let v: Value = parse(&dispatch(&state, r#"{"op":"shutdown"}"#));
        assert_eq!(v["result"]["stopping"].as_bool(), Some(true));
        assert!(state.stopping());
        // No replica traffic was generated by the shutdown.
        assert_eq!(state.replicas[0].request_count(), 0);
    }
}

//! Digest-affinity shard selection: rendezvous (highest-random-weight)
//! hashing from a request's routing key onto the replica set.
//!
//! The routing key folds the request's solver **config digest** (the
//! same `Extractor::config_digest` the daemon's executor coalesces on)
//! with a content hash of the geometry payload. Two consequences:
//!
//! * a repeated request — same options, same geometry — always lands on
//!   the same replica, so that replica's `TemplateCache`/`WindowCache`
//!   answers it warm;
//! * distinct structures spread across replicas even under one solver
//!   configuration, because the geometry content participates in the
//!   key (config digest alone would pin a whole default-options
//!   workload to a single shard).
//!
//! Rendezvous hashing gives the minimal-remap property the front tier
//! wants during failover: removing a replica remaps only the keys that
//! ranked it first — every other key keeps its shard, and its warm
//! caches.

use bemcap_serve::protocol::{build_extractor, ExtractOptions, Request};

/// SplitMix64 finalizer — a cheap, well-mixed 64-bit permutation. Used
/// both to fold key material and to draw the per-(key, replica)
/// rendezvous weights.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Folds one word into an accumulator (order-sensitive).
fn fold(acc: u64, word: u64) -> u64 {
    splitmix64(acc ^ word)
}

/// FNV-1a content hash of a byte payload, passed through the mixer.
fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// Folds the solver config digest of `options` — bit-exact identity, so
/// the shard choice agrees with the backend's coalescing identity.
fn fold_options(mut acc: u64, options: &ExtractOptions) -> u64 {
    for word in build_extractor(options).config_digest() {
        acc = fold(acc, word);
    }
    acc
}

/// The shard-affinity routing key of a request, or `None` for control
/// ops the router answers itself (`ping`, `metrics`, `route_stats`,
/// `shutdown`) or refuses (`stats`, `snapshot` — per-daemon state).
///
/// `batch` folds every geometry: the daemon runs the frame as one
/// micro-batch, so the frame routes as one unit. `chip` additionally
/// folds the window grid and halo — different partitions populate
/// different window-cache entries.
pub fn routing_key(request: &Request) -> Option<u64> {
    match request {
        Request::Extract { geometry, options, .. } => {
            Some(fold(fold_options(1, options), content_hash(geometry.as_bytes())))
        }
        Request::Batch { geometries, options, .. } => {
            let mut acc = fold_options(2, options);
            for g in geometries {
                acc = fold(acc, content_hash(g.as_bytes()));
            }
            Some(acc)
        }
        Request::Chip { geometry, options, nx, ny, halo, .. } => {
            let mut acc = fold_options(3, options);
            acc = fold(acc, content_hash(geometry.as_bytes()));
            acc = fold(acc, *nx as u64);
            acc = fold(acc, *ny as u64);
            acc = fold(acc, halo.map_or(u64::MAX, f64::to_bits));
            Some(acc)
        }
        Request::Ping { .. }
        | Request::Stats { .. }
        | Request::Metrics { .. }
        | Request::RouteStats { .. }
        | Request::Snapshot { .. }
        | Request::Shutdown { .. } => None,
    }
}

/// Rendezvous ranking of a fixed replica set. Replica identity is the
/// *address string*, not the position: dropping a replica from the
/// configuration leaves every other replica's weights — and therefore
/// every surviving key assignment — unchanged.
#[derive(Debug, Clone)]
pub struct Balancer {
    seeds: Vec<u64>,
}

impl Balancer {
    /// Builds a balancer over the replica addresses, in configuration
    /// order (the indices [`Balancer::ranked`] returns index into it).
    pub fn new<S: AsRef<str>>(addrs: &[S]) -> Balancer {
        Balancer { seeds: addrs.iter().map(|a| content_hash(a.as_ref().as_bytes())).collect() }
    }

    /// Number of replicas.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the replica set is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// All replica indices ordered by descending rendezvous weight for
    /// `key` — the affinity shard first, then the failover preference
    /// order. Ties (only possible with duplicate addresses) break by
    /// index, keeping the order deterministic.
    pub fn ranked(&self, key: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.seeds.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(splitmix64(key ^ self.seeds[i])), i));
        order
    }

    /// The affinity shard for `key` (`None` on an empty set).
    pub fn pick(&self, key: u64) -> Option<usize> {
        self.ranked(key).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 4500 + i)).collect()
    }

    #[test]
    fn ranking_is_deterministic_and_total() {
        let b = Balancer::new(&addrs(5));
        for key in [0u64, 1, 42, u64::MAX] {
            let r1 = b.ranked(key);
            let r2 = b.ranked(key);
            assert_eq!(r1, r2);
            let mut sorted = r1.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "every replica ranked once: {r1:?}");
        }
    }

    #[test]
    fn keys_spread_across_replicas() {
        let b = Balancer::new(&addrs(4));
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[b.pick(splitmix64(key)).unwrap()] += 1;
        }
        // A uniform split is 1000 each; accept a generous band — the
        // point is that no replica is starved or dominant.
        for (i, &c) in counts.iter().enumerate() {
            assert!((600..=1400).contains(&c), "replica {i} got {c} of 4000: {counts:?}");
        }
    }

    #[test]
    fn removal_remaps_only_the_lost_replicas_share() {
        let all = addrs(5);
        let b_all = Balancer::new(&all);
        let survivors: Vec<String> =
            all.iter().enumerate().filter(|(i, _)| *i != 2).map(|(_, a)| a.clone()).collect();
        let b_less = Balancer::new(&survivors);
        for key in 0..2000u64 {
            let key = splitmix64(key ^ 0xabcdef);
            let before = b_all.pick(key).unwrap();
            let after = b_less.pick(key).unwrap();
            if before != 2 {
                // Index shift: survivors drop slot 2, so 3→2, 4→3.
                let expect = if before > 2 { before - 1 } else { before };
                assert_eq!(after, expect, "key {key:#x} moved without losing its replica");
            }
        }
    }

    #[test]
    fn routing_keys_track_payload_and_config() {
        let geo = "conductor a\nbox 0 0 0 1 1 1\n".to_string();
        let other = "conductor b\nbox 0 0 0 2 2 2\n".to_string();
        let req = |geometry: &String, options: ExtractOptions| Request::Extract {
            id: Some(1),
            geometry: geometry.clone(),
            options,
        };
        let base = routing_key(&req(&geo, ExtractOptions::default())).unwrap();
        // The id plays no part: repeats with fresh ids keep their shard.
        let repeat = Request::Extract {
            id: Some(999),
            geometry: geo.clone(),
            options: ExtractOptions::default(),
        };
        assert_eq!(base, routing_key(&repeat).unwrap());
        // Geometry content and solver config both move the key.
        assert_ne!(base, routing_key(&req(&other, ExtractOptions::default())).unwrap());
        let accel = ExtractOptions { accelerated: true, ..Default::default() };
        assert_ne!(base, routing_key(&req(&geo, accel)).unwrap());
        // The same payload under a different op routes independently.
        let as_batch = Request::Batch {
            id: Some(1),
            geometries: vec![geo.clone()],
            options: ExtractOptions::default(),
        };
        assert_ne!(base, routing_key(&as_batch).unwrap());
    }

    #[test]
    fn chip_keys_fold_the_window_grid() {
        let geo = "conductor a\nbox 0 0 0 1 1 1\n".to_string();
        let chip = |nx: usize, ny: usize, halo: Option<f64>| Request::Chip {
            id: None,
            geometry: geo.clone(),
            options: ExtractOptions::default(),
            nx,
            ny,
            halo,
        };
        let base = routing_key(&chip(2, 2, None)).unwrap();
        assert_eq!(base, routing_key(&chip(2, 2, None)).unwrap());
        assert_ne!(base, routing_key(&chip(3, 2, None)).unwrap());
        assert_ne!(base, routing_key(&chip(2, 2, Some(1e-6))).unwrap());
    }

    #[test]
    fn control_ops_have_no_routing_key() {
        for req in [
            Request::Ping { id: None },
            Request::Stats { id: None },
            Request::Metrics { id: None },
            Request::RouteStats { id: None },
            Request::Snapshot { id: None, path: "p".into() },
            Request::Shutdown { id: None },
        ] {
            assert_eq!(routing_key(&req), None, "{req:?}");
        }
    }
}

//! Basis functions and basis sets.

use crate::template::Template;

/// One instantiable basis function ψ: a set of templates on a single
/// conductor (a face basis function has one flat template; induced basis
/// functions may carry several, like ψ₃ in Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct BasisFunction {
    /// The conductor this basis function lives on.
    pub conductor: usize,
    /// The member templates ψ_{i′, ī}.
    pub templates: Vec<Template>,
}

impl BasisFunction {
    /// Creates a basis function from its templates.
    ///
    /// # Panics
    ///
    /// Panics if `templates` is empty.
    pub fn new(conductor: usize, templates: Vec<Template>) -> BasisFunction {
        assert!(!templates.is_empty(), "basis function needs at least one template");
        BasisFunction { conductor, templates }
    }
}

/// The full basis: the N basis functions of equation (3), with their
/// flattened M-template view for Algorithm 1.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BasisSet {
    functions: Vec<BasisFunction>,
}

impl BasisSet {
    /// Creates a basis set.
    pub fn new(functions: Vec<BasisFunction>) -> BasisSet {
        BasisSet { functions }
    }

    /// The basis functions.
    pub fn functions(&self) -> &[BasisFunction] {
        &self.functions
    }

    /// N — the system dimension.
    pub fn basis_count(&self) -> usize {
        self.functions.len()
    }

    /// M — the number of templates across all basis functions
    /// (1.2–3 × N in practice, per §3).
    pub fn template_count(&self) -> usize {
        self.functions.iter().map(|f| f.templates.len()).sum()
    }

    /// The conductor of basis function `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn conductor_of(&self, i: usize) -> usize {
        self.functions[i].conductor
    }

    /// Flattens to the template list T₁…T_M with the label array l
    /// (template index → owning basis index), in the order-set convention
    /// of §3.
    pub fn flatten(&self) -> (Vec<Template>, Vec<usize>) {
        let mut templates = Vec::with_capacity(self.template_count());
        let mut labels = Vec::with_capacity(self.template_count());
        for (bi, f) in self.functions.iter().enumerate() {
            for t in &f.templates {
                templates.push(*t);
                labels.push(bi);
            }
        }
        (templates, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::{Axis, Panel};

    fn tpl(w: f64) -> Template {
        Template::flat(Panel::new(Axis::Z, w, (0.0, 1.0), (0.0, 1.0)).unwrap())
    }

    #[test]
    fn counts() {
        let set = BasisSet::new(vec![
            BasisFunction::new(0, vec![tpl(0.0)]),
            BasisFunction::new(0, vec![tpl(1.0)]),
            BasisFunction::new(1, vec![tpl(2.0), tpl(3.0)]),
            BasisFunction::new(1, vec![tpl(4.0)]),
        ]);
        assert_eq!(set.basis_count(), 4);
        assert_eq!(set.template_count(), 5);
        assert_eq!(set.conductor_of(2), 1);
    }

    #[test]
    fn flatten_order_and_labels() {
        // The Fig. 3 example: ψ3 has two templates; mapping
        // {ψ1,1 ψ2,1 ψ3,1 ψ3,2 ψ4,1} = {T1..T5}.
        let set = BasisSet::new(vec![
            BasisFunction::new(0, vec![tpl(0.0)]),
            BasisFunction::new(0, vec![tpl(1.0)]),
            BasisFunction::new(1, vec![tpl(2.0), tpl(3.0)]),
            BasisFunction::new(1, vec![tpl(4.0)]),
        ]);
        let (templates, labels) = set.flatten();
        assert_eq!(templates.len(), 5);
        assert_eq!(labels, vec![0, 1, 2, 2, 3]);
    }

    #[test]
    #[should_panic]
    fn empty_basis_function_panics() {
        let _ = BasisFunction::new(0, vec![]);
    }
}

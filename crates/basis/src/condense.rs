//! P̃ → P condensation (Fig. 3 and Algorithm 1's update rule).
//!
//! The template matrix P̃ ∈ R^{M×M} is never materialized: each computed
//! upper-triangle entry P̃_{ij} is immediately folded into the basis matrix
//! P ∈ R^{N×N} through the label array l (template → basis index).
//!
//! Because P̃ is symmetric and only its upper triangle is iterated, an
//! *off-diagonal* P̃ entry whose two templates belong to the *same* basis
//! function contributes twice to the diagonal of P. The paper's Algorithm 1
//! pseudocode tests `i = j ∧ l_i = l_j` for the doubling — a typo: the
//! figure's color coding and the sentence "only those off-diagonal entries
//! of P̃ which are combined to the diagonal of P contribute their values
//! twice" identify the intended condition as **i ≠ j ∧ l_i = l_j**, which
//! is what [`accumulate_entry`] implements (and what the dense reference
//! test confirms).

use bemcap_linalg::Matrix;
use bemcap_quad::galerkin::GalerkinEngine;

use crate::basisfn::BasisSet;
use crate::template::{pair_integral, Template};

/// The flattened template view of a basis set: templates T₁…T_M plus the
/// label array l mapping each template to its basis function.
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateIndex {
    templates: Vec<Template>,
    labels: Vec<usize>,
    basis_count: usize,
}

impl TemplateIndex {
    /// Builds the flattened index from a basis set.
    pub fn new(set: &BasisSet) -> TemplateIndex {
        let (templates, labels) = set.flatten();
        TemplateIndex { templates, labels, basis_count: set.basis_count() }
    }

    /// M — number of templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// N — number of basis functions.
    pub fn basis_count(&self) -> usize {
        self.basis_count
    }

    /// Template `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= template_count()`.
    pub fn template(&self, t: usize) -> &Template {
        &self.templates[t]
    }

    /// Label l_t: the basis function owning template `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= template_count()`.
    pub fn label(&self, t: usize) -> usize {
        self.labels[t]
    }

    /// All templates.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// The label array.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }
}

/// Folds one computed upper-triangle entry P̃_{ij} (i ≤ j) into the full
/// symmetric basis matrix `p`, per (corrected) Algorithm 1.
///
/// # Panics
///
/// Panics if `i > j` or labels are out of range for `p`.
#[inline]
pub fn accumulate_entry(p: &mut Matrix, i: usize, j: usize, li: usize, lj: usize, value: f64) {
    assert!(i <= j, "upper-triangle entries require i <= j");
    if i == j {
        // Diagonal of P̃ contributes once (necessarily li == lj).
        p.add_to(li, lj, value);
    } else if li == lj {
        // Off-diagonal P̃ entry folding onto the diagonal of P: counted
        // twice (P̃_{ij} and P̃_{ji}).
        p.add_to(li, li, 2.0 * value);
    } else {
        // Generic entry: write both symmetric positions of P.
        p.add_to(li, lj, value);
        p.add_to(lj, li, value);
    }
}

/// Reference (slow) assembly of P directly at the basis level: the
/// double sum of equation (4) over every ordered template pair. Used to
/// validate the condensed Algorithm 1 path.
pub fn assemble_dense_reference(eng: &GalerkinEngine, set: &BasisSet) -> Matrix {
    let n = set.basis_count();
    let mut p = Matrix::zeros(n, n);
    for (bi, fi) in set.functions().iter().enumerate() {
        for (bj, fj) in set.functions().iter().enumerate() {
            let mut acc = 0.0;
            for ti in &fi.templates {
                for tj in &fj.templates {
                    acc += pair_integral(eng, ti, tj);
                }
            }
            p.set(bi, bj, acc);
        }
    }
    p
}

/// Condensed assembly over the upper triangle of P̃ (sequential
/// Algorithm 1; the parallel drivers in `bemcap-core` split the same k
/// loop across workers).
pub fn assemble_condensed(eng: &GalerkinEngine, index: &TemplateIndex) -> Matrix {
    let n = index.basis_count();
    let m = index.template_count();
    let mut p = Matrix::zeros(n, n);
    for k in 0..bemcap_par::triangle_size(m) {
        let (i, j) = bemcap_par::k_to_ij(k);
        let value = pair_integral(eng, index.template(i), index.template(j));
        accumulate_entry(&mut p, i, j, index.label(i), index.label(j), value);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::ArchShape;
    use crate::basisfn::BasisFunction;
    use bemcap_geom::{Axis, Panel};
    use bemcap_quad::galerkin::ShapeDir;

    fn example_set() -> BasisSet {
        // Mirrors Fig. 3: four basis functions, ψ3 with two templates.
        let p = |w: f64, u0: f64| Panel::new(Axis::Z, w, (u0, u0 + 1.0), (0.0, 1.0)).unwrap();
        BasisSet::new(vec![
            BasisFunction::new(0, vec![Template::flat(p(0.0, 0.0))]),
            BasisFunction::new(0, vec![Template::flat(p(0.0, 1.5))]),
            BasisFunction::new(
                1,
                vec![
                    Template::flat(p(1.0, 0.5)),
                    Template::arch(p(1.0, 0.2), ShapeDir::U, ArchShape { center: 0.7, width: 0.3 }),
                ],
            ),
            BasisFunction::new(1, vec![Template::flat(p(1.0, 2.0))]),
        ])
    }

    #[test]
    fn template_index_mirrors_fig3() {
        let set = example_set();
        let idx = TemplateIndex::new(&set);
        assert_eq!(idx.template_count(), 5);
        assert_eq!(idx.basis_count(), 4);
        assert_eq!(idx.labels(), &[0, 1, 2, 2, 3]);
    }

    #[test]
    fn condensed_equals_dense_reference() {
        let eng = GalerkinEngine::default();
        let set = example_set();
        let idx = TemplateIndex::new(&set);
        let dense = assemble_dense_reference(&eng, &set);
        let condensed = assemble_condensed(&eng, &idx);
        let scale = dense.max_abs();
        for i in 0..4 {
            for j in 0..4 {
                let d = (dense.get(i, j) - condensed.get(i, j)).abs();
                assert!(
                    d < 1e-9 * scale,
                    "entry ({i},{j}): dense {} vs condensed {}",
                    dense.get(i, j),
                    condensed.get(i, j)
                );
            }
        }
        assert!(condensed.is_symmetric(1e-9));
    }

    #[test]
    fn accumulate_rules() {
        let mut p = Matrix::zeros(2, 2);
        // Diagonal P̃ entry: counted once.
        accumulate_entry(&mut p, 0, 0, 0, 0, 3.0);
        assert_eq!(p.get(0, 0), 3.0);
        // Off-diagonal entry, same basis: doubled onto the diagonal.
        accumulate_entry(&mut p, 0, 1, 1, 1, 2.0);
        assert_eq!(p.get(1, 1), 4.0);
        // Off-diagonal entry, different bases: symmetric pair.
        accumulate_entry(&mut p, 1, 2, 0, 1, 5.0);
        assert_eq!(p.get(0, 1), 5.0);
        assert_eq!(p.get(1, 0), 5.0);
    }

    #[test]
    #[should_panic]
    fn lower_triangle_rejected() {
        let mut p = Matrix::zeros(2, 2);
        accumulate_entry(&mut p, 2, 1, 0, 0, 1.0);
    }
}

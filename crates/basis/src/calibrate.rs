//! Extraction of arch-template parameters from elementary problems.
//!
//! This is the Fig. 2 machinery: solve the elementary crossing-wire
//! problem (Fig. 1) with a *fine piecewise-constant* discretization,
//! look at the induced charge density along the target wire's top face,
//! subtract the flat footprint plateau, and measure the width and
//! extension of the remaining arch-shaped tail. Repeating at several
//! separations h and fitting the (scale-invariance-mandated) linear laws
//! produces the [`ArchLaws`] used by instantiation.
//!
//! The piecewise-constant solve here is a deliberately small, self-
//! contained collocation solver — the production-grade Galerkin/FMM/pFFT
//! solvers live in their own crates.

use bemcap_geom::structures::{crossing_wires, CrossingParams};
use bemcap_geom::{Axis, Mesh};
use bemcap_linalg::{LuFactor, Matrix};
use bemcap_quad::galerkin::GalerkinEngine;

use crate::arch::ArchLaws;
use crate::error::BasisError;

/// Measured arch metrics at one separation h.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationSample {
    /// Wire separation.
    pub h: f64,
    /// Gaussian-equivalent width (second moment) of the arch tail.
    pub width: f64,
    /// Extension length: distance from the footprint edge where the tail
    /// falls below 5 % of its peak.
    pub extension: f64,
    /// Peak of the tail relative to the flat plateau level.
    pub peak_ratio: f64,
}

/// Solves the elementary crossing problem with a fine piecewise-constant
/// collocation discretization and extracts the arch metrics.
///
/// `divisions` controls the mesh: the longest wire edge is split into that
/// many panels.
///
/// # Errors
///
/// * [`BasisError::Calibration`] if the mesh is too coarse to resolve the
///   footprint or the dense solve fails.
pub fn calibrate_crossing(
    params: CrossingParams,
    divisions: usize,
) -> Result<CalibrationSample, BasisError> {
    let geo = crossing_wires(params);
    let mesh = Mesh::uniform(&geo, divisions);
    let n = mesh.panel_count();
    let eng = GalerkinEngine::default();
    // Collocation system: potential at panel centers from unit densities.
    let mut a = Matrix::zeros(n, n);
    for (i, pi) in mesh.panels().iter().enumerate() {
        let target = pi.panel.center();
        for (j, pj) in mesh.panels().iter().enumerate() {
            a.set(i, j, eng.potential_at(&pj.panel, target));
        }
    }
    // Target (conductor 0) grounded, source (conductor 1) at 1.
    let rhs: Vec<f64> =
        mesh.panels().iter().map(|p| if p.conductor == 1 { 1.0 } else { 0.0 }).collect();
    let lu = LuFactor::new(a)
        .map_err(|e| BasisError::Calibration { detail: format!("dense solve: {e}") })?;
    let q = lu
        .solve_vec(&rhs)
        .map_err(|e| BasisError::Calibration { detail: format!("dense solve: {e}") })?;
    // Charge density profile along the target top face (z = 0 plane),
    // averaged across the wire width.
    let mut profile: Vec<(f64, f64)> = Vec::new();
    for (p, &density) in mesh.panels().iter().zip(&q) {
        if p.conductor == 0 && p.panel.normal() == Axis::Z && p.panel.w().abs() < 1e-12 {
            let c = p.panel.center();
            profile.push((c.x, density.abs()));
        }
    }
    if profile.is_empty() {
        return Err(BasisError::Calibration { detail: "no top-face panels found".into() });
    }
    // Average duplicates at the same x (different y rows).
    profile.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut xs: Vec<f64> = Vec::new();
    let mut vals: Vec<f64> = Vec::new();
    for (x, v) in profile {
        if let Some(last) = xs.last() {
            if (x - last).abs() < 1e-12 {
                let n = vals.len();
                vals[n - 1] = 0.5 * (vals[n - 1] + v);
                continue;
            }
        }
        xs.push(x);
        vals.push(v);
    }
    analyze_profile(&xs, &vals, params.width, params.separation)
}

/// Extracts the arch metrics from a density profile `vals(xs)`:
/// flat plateau at the footprint center, Gaussian-equivalent width and
/// 5 %-decay extension of the tail beyond the footprint edge.
pub fn analyze_profile(
    xs: &[f64],
    vals: &[f64],
    footprint_width: f64,
    h: f64,
) -> Result<CalibrationSample, BasisError> {
    let edge = footprint_width / 2.0;
    let interior: Vec<f64> = xs
        .iter()
        .zip(vals)
        .filter(|(x, _)| x.abs() < 0.35 * footprint_width)
        .map(|(_, v)| *v)
        .collect();
    if interior.is_empty() {
        return Err(BasisError::Calibration {
            detail: "mesh too coarse: no panels inside the footprint".into(),
        });
    }
    let flat = interior.iter().sum::<f64>() / interior.len() as f64;
    // The source wire's far arms induce a slowly varying background charge
    // along the whole target; the arch is the *excess* above it. Estimate
    // the background from the outermost 15 % of samples on each side.
    let span = xs.last().expect("non-empty profile") - xs[0];
    let far: Vec<f64> = xs
        .iter()
        .zip(vals)
        .filter(|(x, _)| (**x - xs[0]).min(xs.last().unwrap() - **x) < 0.15 * span)
        .map(|(_, v)| *v)
        .collect();
    let baseline = if far.is_empty() { 0.0 } else { far.iter().sum::<f64>() / far.len() as f64 };
    // Tail beyond the +x footprint edge, background-subtracted.
    let tail: Vec<(f64, f64)> = xs
        .iter()
        .zip(vals)
        .filter(|(x, _)| **x > edge)
        .map(|(x, v)| (*x - edge, (*v - baseline).max(0.0)))
        .collect();
    if tail.len() < 4 {
        return Err(BasisError::Calibration {
            detail: "mesh too coarse: no tail panels beyond the footprint".into(),
        });
    }
    let peak = tail.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    if peak <= 0.0 || flat <= 0.0 {
        return Err(BasisError::Calibration { detail: "degenerate charge profile".into() });
    }
    // Extension: where the tail first drops below 5 % of its peak.
    let extension = tail
        .iter()
        .find(|(_, v)| *v < 0.05 * peak)
        .map(|(d, _)| *d)
        .unwrap_or_else(|| tail.last().expect("tail non-empty").0);
    // Gaussian-equivalent width from the tail's second moment about the
    // edge, truncated at the extension cut: the physical profile decays
    // with a slow power-law far tail that must not inflate the bump-scale
    // estimate.
    let near: Vec<&(f64, f64)> = tail.iter().filter(|(d, _)| *d <= extension).collect();
    let m0: f64 = near.iter().map(|(_, v)| v).sum();
    let m2: f64 = near.iter().map(|(d, v)| d * d * v).sum();
    let width = (m2 / m0).sqrt();
    Ok(CalibrationSample { h, width, extension, peak_ratio: peak / flat })
}

/// Fits the linear laws `b(h) = c_w·h`, `e(h) = c_e·h` through the origin
/// from several calibration samples (least squares).
///
/// # Errors
///
/// * [`BasisError::Calibration`] if `samples` is empty.
pub fn fit_laws(samples: &[CalibrationSample]) -> Result<ArchLaws, BasisError> {
    if samples.is_empty() {
        return Err(BasisError::Calibration { detail: "no samples to fit".into() });
    }
    let shh: f64 = samples.iter().map(|s| s.h * s.h).sum();
    let swh: f64 = samples.iter().map(|s| s.width * s.h).sum();
    let seh: f64 = samples.iter().map(|s| s.extension * s.h).sum();
    Ok(ArchLaws { width_coeff: swh / shh, ext_coeff: seh / shh })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_synthetic_gaussian_tail() {
        // Synthetic profile: plateau 1.0 inside |x|<0.5, Gaussian tail with
        // width 0.2 beyond the edges.
        let mut xs = Vec::new();
        let mut vals = Vec::new();
        for i in 0..400 {
            let x = -4.0 + i as f64 * 0.02;
            xs.push(x);
            let v = if x.abs() < 0.5 {
                1.0
            } else {
                0.8 * (-0.5 * ((x.abs() - 0.5) / 0.2).powi(2)).exp()
            };
            vals.push(v);
        }
        let s = analyze_profile(&xs, &vals, 1.0, 0.3).unwrap();
        assert!((s.width - 0.2).abs() < 0.05, "width {}", s.width);
        assert!(s.extension > 2.0 * 0.2 && s.extension < 4.0 * 0.2, "ext {}", s.extension);
        assert!((s.peak_ratio - 0.8).abs() < 0.1);
    }

    #[test]
    fn fit_laws_linear() {
        let samples = vec![
            CalibrationSample { h: 1.0, width: 0.5, extension: 2.0, peak_ratio: 1.0 },
            CalibrationSample { h: 2.0, width: 1.0, extension: 4.0, peak_ratio: 1.0 },
        ];
        let laws = fit_laws(&samples).unwrap();
        assert!((laws.width_coeff - 0.5).abs() < 1e-12);
        assert!((laws.ext_coeff - 2.0).abs() < 1e-12);
        assert!(fit_laws(&[]).is_err());
    }

    #[test]
    fn calibration_on_default_crossing() {
        // Moderate mesh: enough to resolve the footprint, cheap enough for
        // a unit test.
        let params = CrossingParams::default();
        let s = calibrate_crossing(params, 24).unwrap();
        assert!(s.width > 0.0 && s.width.is_finite());
        assert!(s.extension > 0.0 && s.extension.is_finite());
        assert!(s.peak_ratio > 0.0);
        // Lengths are on the scale of the separation (h = 0.5 µm here):
        // the default ArchLaws coefficients were fitted this way.
        let wc = s.width / s.h;
        let ec = s.extension / s.h;
        assert!((0.3..=3.0).contains(&wc), "width coeff {wc}");
        assert!((1.0..=7.0).contains(&ec), "ext coeff {ec}");
    }

    #[test]
    fn errors_on_garbage_profiles() {
        assert!(analyze_profile(&[], &[], 1.0, 0.1).is_err());
        // All mass inside the footprint: no tail.
        let xs = vec![-0.1, 0.0, 0.1];
        let vals = vec![1.0, 1.0, 1.0];
        assert!(analyze_profile(&xs, &vals, 1.0, 0.1).is_err());
    }
}

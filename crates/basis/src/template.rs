//! Templates: the atomic shapes of instantiable basis functions.

use bemcap_geom::Panel;
use bemcap_quad::galerkin::{GalerkinEngine, PanelShape, ShapeDir};

use crate::arch::ArchShape;

/// The shape carried by a template on its support panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TemplateKind {
    /// Constant 1 (face basis functions and flat templates).
    Flat,
    /// An arch profile varying along `dir`.
    Arch {
        /// The in-plane direction of variation.
        dir: ShapeDir,
        /// The bump profile.
        shape: ArchShape,
    },
}

/// A template: a support rectangle plus a shape — the `T_i` of
/// equation (5). Templates from different basis functions may overlap;
/// that is a deliberate feature of instantiable bases (§4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Template {
    /// The support rectangle.
    pub panel: Panel,
    /// The shape on the support.
    pub kind: TemplateKind,
}

impl Template {
    /// A flat template on `panel`.
    pub fn flat(panel: Panel) -> Template {
        Template { panel, kind: TemplateKind::Flat }
    }

    /// An arch template on `panel` varying along `dir`.
    pub fn arch(panel: Panel, dir: ShapeDir, shape: ArchShape) -> Template {
        Template { panel, kind: TemplateKind::Arch { dir, shape } }
    }

    /// The exact identity key of this template: two templates share a key
    /// iff their support panels and shapes are **bit-identical**.
    ///
    /// Bit-exactness is the load-bearing property: the instantiation pass
    /// uses keys to drop duplicate induced functions, and the batch
    /// extraction cache (`bemcap-core::batch`) uses them to share pair
    /// integrals across jobs — a hit returns the very f64 the engine would
    /// have recomputed, so cached and uncached runs produce identical
    /// capacitance matrices.
    pub fn key(&self) -> TemplateKey {
        let p = &self.panel;
        let mut k = [0u64; 9];
        k[0] = p.normal().index() as u64;
        k[1] = p.w().to_bits();
        k[2] = p.u_range().0.to_bits();
        k[3] = p.u_range().1.to_bits();
        k[4] = p.v_range().0.to_bits();
        k[5] = p.v_range().1.to_bits();
        match &self.kind {
            TemplateKind::Flat => {}
            TemplateKind::Arch { dir, shape } => {
                k[6] = 1 + matches!(dir, ShapeDir::V) as u64;
                k[7] = shape.center.to_bits();
                k[8] = shape.width.to_bits();
            }
        }
        TemplateKey(k)
    }

    /// Runs `f` with this template's weight expressed as a
    /// [`PanelShape`] borrowing a stack-local closure.
    pub fn with_shape<R>(&self, f: impl FnOnce(PanelShape<'_>) -> R) -> R {
        match &self.kind {
            TemplateKind::Flat => f(PanelShape::Flat),
            TemplateKind::Arch { dir, shape } => {
                let arch = *shape;
                let closure = move |u: f64| arch.eval(u);
                f(PanelShape::Shaped { dir: *dir, shape: &closure })
            }
        }
    }
}

/// The bit-level identity of a [`Template`] — hashable and cheap to copy.
/// See [`Template::key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemplateKey([u64; 9]);

impl From<[u64; 9]> for TemplateKey {
    /// Builds a key from raw words — synthetic identities for cache tests
    /// and tooling. Keys made this way are distinct from every
    /// [`Template::key`] only if the caller keeps them distinct; the type
    /// is an identity token, so no invariant is at risk.
    fn from(raw: [u64; 9]) -> TemplateKey {
        TemplateKey(raw)
    }
}

impl TemplateKey {
    /// The raw identity words, in the order [`From<[u64; 9]>`] consumes
    /// them — the serialization seam for cache snapshots: a key written
    /// as its words and rebuilt with `From` is the identical key, so a
    /// restored cache entry answers the very lookups the original did.
    pub fn words(&self) -> [u64; 9] {
        self.0
    }
}

/// The Galerkin integral of a template pair (equation (5) entry, raw
/// kernel — the caller divides by 4πε).
pub fn pair_integral(eng: &GalerkinEngine, a: &Template, b: &Template) -> f64 {
    a.with_shape(|sa| b.with_shape(|sb| eng.panel_pair(&a.panel, sa, &b.panel, sb)))
}

/// ∫ template over its support — the template's contribution to the
/// right-hand side Φ (equation (2) with φ ≡ 1 on the conductor).
pub fn template_moment(eng: &GalerkinEngine, t: &Template) -> f64 {
    t.with_shape(|s| eng.weighted_area(&t.panel, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::Axis;
    use bemcap_quad::analytic;

    fn panel(w: f64) -> Panel {
        Panel::new(Axis::Z, w, (0.0, 1.0), (0.0, 1.0)).unwrap()
    }

    #[test]
    fn flat_pair_matches_closed_form() {
        let eng = GalerkinEngine::default();
        let a = Template::flat(panel(0.0));
        let b = Template::flat(panel(1.5));
        let got = pair_integral(&eng, &a, &b);
        let expect =
            analytic::galerkin_parallel((0.0, 1.0), (0.0, 1.0), (0.0, 1.0), (0.0, 1.0), 1.5);
        assert!((got - expect).abs() < 1e-13 * expect);
    }

    #[test]
    fn flat_moment_is_area() {
        let eng = GalerkinEngine::default();
        let t = Template::flat(panel(0.0));
        assert!((template_moment(&eng, &t) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn arch_moment_matches_gaussian_integral() {
        let eng = GalerkinEngine::default();
        // Wide support so the full Gaussian mass is captured.
        let p = Panel::new(Axis::Z, 0.0, (-5.0, 5.0), (0.0, 2.0)).unwrap();
        let shape = ArchShape { center: 0.0, width: 0.5 };
        let t = Template::arch(p, ShapeDir::U, shape);
        let m = template_moment(&eng, &t);
        // The default shape_order quadrature is coarse for a narrow bump on
        // a wide panel; expect agreement to a few percent.
        let expect = shape.full_integral() * 2.0;
        assert!((m - expect).abs() < 0.1 * expect, "{m} vs {expect}");
    }

    #[test]
    fn pair_integral_symmetric() {
        let eng = GalerkinEngine::default();
        let a = Template::flat(panel(0.0));
        let shape = ArchShape { center: 0.5, width: 0.3 };
        let b = Template::arch(panel(0.7), ShapeDir::U, shape);
        let ab = pair_integral(&eng, &a, &b);
        let ba = pair_integral(&eng, &b, &a);
        assert!((ab - ba).abs() < 1e-9 * ab.abs(), "{ab} vs {ba}");
        assert!(ab > 0.0);
    }

    #[test]
    fn keys_separate_distinct_templates() {
        let shape = ArchShape { center: 0.5, width: 0.3 };
        let flat = Template::flat(panel(0.0));
        let same = Template::flat(panel(0.0));
        let moved = Template::flat(panel(1.0));
        let arch_u = Template::arch(panel(0.0), ShapeDir::U, shape);
        let arch_v = Template::arch(panel(0.0), ShapeDir::V, shape);
        let arch_wide =
            Template::arch(panel(0.0), ShapeDir::U, ArchShape { center: 0.5, width: 0.4 });
        assert_eq!(flat.key(), same.key());
        assert_ne!(flat.key(), moved.key());
        assert_ne!(flat.key(), arch_u.key());
        assert_ne!(arch_u.key(), arch_v.key());
        assert_ne!(arch_u.key(), arch_wide.key());
    }

    #[test]
    fn keys_distinguish_normal_axis() {
        // Same (w, u, v) ranges on different normals are different panels.
        let a = Template::flat(Panel::new(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0)).unwrap());
        let b = Template::flat(Panel::new(Axis::X, 0.0, (0.0, 1.0), (0.0, 1.0)).unwrap());
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn arch_self_term_positive_finite() {
        let eng = GalerkinEngine::default();
        let shape = ArchShape { center: 0.5, width: 0.2 };
        let t = Template::arch(panel(0.0), ShapeDir::U, shape);
        let v = pair_integral(&eng, &t, &t);
        assert!(v.is_finite() && v > 0.0, "self term {v}");
    }
}

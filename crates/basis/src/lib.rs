//! # bemcap-basis — instantiable basis functions (§2.2)
//!
//! The paper's compact solution representation. Instead of thousands of
//! piecewise-constant panels, the charge distribution is expanded in a
//! small set of basis functions built from two template shapes extracted
//! from elementary problems (Fig. 2):
//!
//! * **flat templates** — constant 1 over a rectangle;
//! * **arch templates** — a 1-D bump profile A_p(u) whose parameters
//!   (width, extension length) depend on the wire separation h.
//!
//! The full set is *face basis functions* (one flat template per conductor
//! face segment) plus *induced basis functions* placed automatically in the
//! neighborhood of wire crossings ([`instantiate`]). A basis function may
//! own several templates; the assembly works on the template-level matrix
//! P̃ ∈ R^{M×M} and condenses it into the basis-level P ∈ R^{N×N}
//! ([`condense`], Fig. 3).
//!
//! [`calibrate`] extracts the arch parameters from fine piecewise-constant
//! solutions of the elementary crossing problem — the Fig. 2 machinery.
//!
//! ```
//! use bemcap_geom::structures::{self, CrossingParams};
//! use bemcap_basis::instantiate::{instantiate, InstantiateConfig};
//!
//! let geo = structures::crossing_wires(CrossingParams::default());
//! let set = instantiate(&geo, &InstantiateConfig::default())?;
//! // Face basis functions plus induced ones around the single crossing.
//! assert!(set.basis_count() > 12);
//! assert!(set.template_count() >= set.basis_count());
//! # Ok::<(), bemcap_basis::BasisError>(())
//! ```

pub mod arch;
pub mod basisfn;
pub mod calibrate;
pub mod condense;
pub mod error;
pub mod instantiate;
pub mod template;

pub use arch::{ArchLaws, ArchShape};
pub use basisfn::{BasisFunction, BasisSet};
pub use condense::{accumulate_entry, TemplateIndex};
pub use error::BasisError;
pub use template::{pair_integral, template_moment, Template, TemplateKey, TemplateKind};

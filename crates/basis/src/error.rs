//! Error types for basis construction.

use std::error::Error;
use std::fmt;

/// Errors while instantiating basis functions from a geometry.
#[derive(Debug, Clone, PartialEq)]
pub enum BasisError {
    /// The geometry has no conductors.
    EmptyGeometry,
    /// A generated template support degenerated (zero area after clipping).
    DegenerateTemplate {
        /// Description of the offending template.
        detail: String,
    },
    /// The calibration solve failed (singular system or too-coarse mesh).
    Calibration {
        /// What went wrong.
        detail: String,
    },
}

impl fmt::Display for BasisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasisError::EmptyGeometry => write!(f, "geometry has no conductors"),
            BasisError::DegenerateTemplate { detail } => {
                write!(f, "degenerate template support: {detail}")
            }
            BasisError::Calibration { detail } => write!(f, "calibration failed: {detail}"),
        }
    }
}

impl Error for BasisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", BasisError::EmptyGeometry).is_empty());
        let e = BasisError::DegenerateTemplate { detail: "zero width".into() };
        assert!(format!("{e}").contains("zero width"));
    }
}

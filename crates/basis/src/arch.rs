//! The arch template profile and its h-dependent parameter laws.
//!
//! Fig. 2 decomposes the charge induced on a wire by a crossing wire into a
//! constant *flat* shape plus two *arch* shapes located at the edges of the
//! crossing footprint. We model the arch profile as a normalized Gaussian
//! bump
//!
//! ```text
//! A(u) = exp(−(u − c)² / (2 b²))
//! ```
//!
//! whose width `b(h)` and support extension `e(h)` scale with the wire
//! separation h. The scaling coefficients are extracted from fine
//! piecewise-constant solutions of the elementary crossing problem by
//! [`crate::calibrate`]; [`ArchLaws::default`] carries the values fitted by
//! that machinery on the Fig. 1 configuration.

use serde_like_display::display_f64;

mod serde_like_display {
    pub fn display_f64(x: f64) -> String {
        format!("{x:.4e}")
    }
}

/// A concrete arch profile on a template support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchShape {
    /// Center of the bump, in absolute in-plane coordinates.
    pub center: f64,
    /// Gaussian width b.
    pub width: f64,
}

impl ArchShape {
    /// Evaluates the (unit-peak) profile at coordinate `u`.
    #[inline]
    pub fn eval(&self, u: f64) -> f64 {
        let t = (u - self.center) / self.width;
        (-0.5 * t * t).exp()
    }

    /// ∫ A(u) du over (−∞, ∞) — a useful normalization reference
    /// (= b·√(2π)).
    pub fn full_integral(&self) -> f64 {
        self.width * (2.0 * std::f64::consts::PI).sqrt()
    }
}

impl std::fmt::Display for ArchShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "arch(c={}, b={})", display_f64(self.center), display_f64(self.width))
    }
}

/// The h-dependent parameter laws of the arch templates:
/// `b(h) = width_coeff · h`, `e(h) = ext_coeff · h`.
///
/// The linear-in-h scaling follows from the scale invariance of the
/// Laplace problem: the elementary crossing configuration at separation
/// `λh` is the `λ`-dilation of the one at `h`, so every extracted length
/// scales linearly. Calibration only needs to determine the two
/// dimensionless coefficients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchLaws {
    /// b(h) = `width_coeff` · h.
    pub width_coeff: f64,
    /// Support half-length e(h) = `ext_coeff` · h (the "extension length" +
    /// "ingrowing length" of Fig. 2, symmetric in our model).
    pub ext_coeff: f64,
}

impl ArchLaws {
    /// Gaussian width at separation `h`.
    pub fn width(&self, h: f64) -> f64 {
        self.width_coeff * h
    }

    /// Support half-length at separation `h`.
    pub fn extension(&self, h: f64) -> f64 {
        self.ext_coeff * h
    }
}

impl Default for ArchLaws {
    /// Coefficients fitted by `calibrate::calibrate_crossing` on the
    /// Fig. 1 crossing at h ≈ w (the typical interconnect regime; the
    /// calibrate module's tests re-derive and cross-check these numbers).
    /// At fixed wire width the measured ratios drift mildly with h
    /// (width/h from ~1.5 at h = 0.6 w down to ~0.7 at h = 1.6 w) because
    /// only h, not the footprint, is dilated; the h ≈ w fit is the
    /// operating point of the bus and interconnect workloads.
    fn default() -> Self {
        ArchLaws { width_coeff: 1.0, ext_coeff: 3.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_peak_and_symmetry() {
        let a = ArchShape { center: 2.0, width: 0.5 };
        assert_eq!(a.eval(2.0), 1.0);
        assert!((a.eval(1.5) - a.eval(2.5)).abs() < 1e-15);
        assert!(a.eval(2.0) > a.eval(2.4));
    }

    #[test]
    fn decays_to_zero() {
        let a = ArchShape { center: 0.0, width: 1.0 };
        assert!(a.eval(6.0) < 1e-7);
    }

    #[test]
    fn full_integral_matches_gaussian() {
        let a = ArchShape { center: 0.0, width: 2.0 };
        assert!((a.full_integral() - 2.0 * (2.0 * std::f64::consts::PI).sqrt()).abs() < 1e-14);
    }

    #[test]
    fn laws_scale_linearly() {
        let laws = ArchLaws { width_coeff: 0.5, ext_coeff: 2.0 };
        assert_eq!(laws.width(2.0), 1.0);
        assert_eq!(laws.extension(3.0), 6.0);
        // Scale invariance: doubling h doubles every length.
        assert_eq!(laws.width(2.0) * 2.0, laws.width(4.0));
    }

    #[test]
    fn display() {
        let a = ArchShape { center: 1.0, width: 0.5 };
        assert!(format!("{a}").contains("arch"));
    }
}

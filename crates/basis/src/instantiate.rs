//! Automatic instantiation of basis functions from a Manhattan geometry.
//!
//! Per §2.2: *face basis functions* are placed by default on every
//! rectangular conductor surface (long faces are segmented for accuracy),
//! and *induced basis functions* are instantiated in the neighborhood of
//! wire crossings — a flat template over the crossing footprint plus a
//! pair of arch templates at the footprint edges, with parameters taken
//! from the h-dependent laws of [`crate::arch`].

use bemcap_geom::{Axis, Geometry, Panel};
use bemcap_quad::galerkin::ShapeDir;

use crate::arch::{ArchLaws, ArchShape};
use crate::basisfn::{BasisFunction, BasisSet};
use crate::error::BasisError;
use crate::template::Template;

/// Controls for the instantiation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstantiateConfig {
    /// Arch parameter laws (calibrated from the elementary problem).
    pub laws: ArchLaws,
    /// Faces longer than `max_segment_aspect ×` the owning box's
    /// cross-section scale are split into segments, each its own face
    /// basis function. The paper places one face function per rectangular
    /// surface; a large default keeps that behavior except on extremely
    /// long wires, where conditioning benefits from a few segments.
    pub max_segment_aspect: f64,
    /// Crossings with separation h larger than this multiple of the
    /// footprint size get no induced basis functions (their interaction is
    /// smooth enough for the face functions alone).
    pub max_gap_ratio: f64,
}

impl Default for InstantiateConfig {
    fn default() -> Self {
        InstantiateConfig {
            laws: ArchLaws::default(),
            max_segment_aspect: 25.0,
            max_gap_ratio: 3.0,
        }
    }
}

/// A detected crossing between two conductor boxes.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Crossing {
    /// Axis along which the boxes face each other.
    axis: Axis,
    /// Separation h between the facing faces.
    gap: f64,
    /// Footprint overlap in the tangent (u, v) coordinates of `axis`.
    overlap_u: (f64, f64),
    overlap_v: (f64, f64),
    /// Facing face of the lower box (w, owning conductor, face panel).
    lower_face: (usize, Panel),
    /// Facing face of the upper box.
    upper_face: (usize, Panel),
}

/// Builds the full basis set for a geometry.
///
/// # Errors
///
/// * [`BasisError::EmptyGeometry`] when the geometry has no conductors.
pub fn instantiate(geo: &Geometry, cfg: &InstantiateConfig) -> Result<BasisSet, BasisError> {
    if geo.conductor_count() == 0 {
        return Err(BasisError::EmptyGeometry);
    }
    let mut functions = Vec::new();
    // --- Face basis functions (flat, segmented). ---
    // Segment length keys on the owning box's cross-section scale (its
    // middle extent), not the face's own short side: a thin side face of a
    // wide wire should be segmented like its top face, not 10× finer.
    for (ci, c) in geo.conductors().iter().enumerate() {
        for b in c.boxes() {
            let mut ext = [
                b.extent(bemcap_geom::Axis::X),
                b.extent(bemcap_geom::Axis::Y),
                b.extent(bemcap_geom::Axis::Z),
            ];
            ext.sort_by(f64::total_cmp);
            let char_len = ext[1]; // middle extent = cross-section scale
            for face in b.faces() {
                for seg in segment_face(&face, cfg.max_segment_aspect * char_len) {
                    functions.push(BasisFunction::new(ci, vec![Template::flat(seg)]));
                }
            }
        }
    }
    // --- Induced basis functions at crossings. ---
    for crossing in detect_crossings(geo) {
        // Proximity is judged against the *smaller* footprint extent: two
        // long parallel wires have a huge shared span but only couple
        // strongly when the gap is small relative to their cross-section.
        let size = (crossing.overlap_u.1 - crossing.overlap_u.0)
            .min(crossing.overlap_v.1 - crossing.overlap_v.0);
        if crossing.gap > cfg.max_gap_ratio * size {
            continue;
        }
        for &(cond, face) in [&crossing.lower_face, &crossing.upper_face] {
            add_induced(&mut functions, cond, &face, &crossing, cfg);
        }
    }
    // Different crossings can instantiate bit-identical induced functions
    // (e.g. several parallel neighbors inducing on the same side face);
    // duplicates make P exactly singular, so keep the first of each.
    dedup_functions(&mut functions);
    // Load balance for Algorithm 1's contiguous k-partition: entry costs
    // depend on template type (arch ≫ flat) and on spatial proximity
    // (near ≫ far). Geometric emission order puts spatially-adjacent
    // functions at adjacent indices, which concentrates the expensive
    // near-field entries in the low-j columns of the P̃ triangle and ruins
    // the static partition's balance. A deterministic shuffle makes every
    // column a uniform sample of the cost mix — the homogeneity the
    // paper's "sufficiently balanced" claim presumes.
    Ok(BasisSet::new(shuffle_functions(functions)))
}

/// Deterministic (seeded) Fisher–Yates shuffle of the basis function
/// order. The result is reproducible across runs and platforms.
fn shuffle_functions(mut functions: Vec<BasisFunction>) -> Vec<BasisFunction> {
    let mut state: u64 = 0x853c_49e6_748f_ea9b;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let n = functions.len();
    for i in (1..n).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        functions.swap(i, j);
    }
    functions
}

/// Removes exactly-duplicate basis functions (same conductor, same
/// templates bit for bit), keeping first occurrences and order.
fn dedup_functions(functions: &mut Vec<BasisFunction>) {
    use crate::template::TemplateKey;
    use std::collections::HashSet;
    let mut seen: HashSet<(usize, Vec<TemplateKey>)> = HashSet::new();
    functions.retain(|f| {
        let keys: Vec<TemplateKey> = f.templates.iter().map(Template::key).collect();
        seen.insert((f.conductor, keys))
    });
}

/// Splits a face into segments no longer than `max_len` along its long
/// direction.
fn segment_face(face: &Panel, max_len: f64) -> Vec<Panel> {
    let (lu, lv) = (face.u_len(), face.v_len());
    let (nu, nv) = if lu >= lv {
        (((lu / max_len).ceil() as usize).max(1), 1)
    } else {
        (1, ((lv / max_len).ceil() as usize).max(1))
    };
    face.subdivide(nu, nv)
}

/// Finds all facing-with-overlap box pairs across different conductors.
fn detect_crossings(geo: &Geometry) -> Vec<Crossing> {
    let mut boxes = Vec::new();
    for (ci, c) in geo.conductors().iter().enumerate() {
        for b in c.boxes() {
            boxes.push((ci, *b));
        }
    }
    let mut out = Vec::new();
    for a in 0..boxes.len() {
        for b in (a + 1)..boxes.len() {
            let (ca, ba) = boxes[a];
            let (cb, bb) = boxes[b];
            if ca == cb {
                continue;
            }
            for axis in Axis::ALL {
                let (ua, va) = axis.tangents();
                let ou = overlap_1d(
                    (ba.min().component(ua), ba.max().component(ua)),
                    (bb.min().component(ua), bb.max().component(ua)),
                );
                let ov = overlap_1d(
                    (ba.min().component(va), ba.max().component(va)),
                    (bb.min().component(va), bb.max().component(va)),
                );
                let (Some(ou), Some(ov)) = (ou, ov) else { continue };
                // Facing: disjoint along `axis` with a positive gap.
                let (lo, hi) = if ba.max().component(axis) <= bb.min().component(axis) {
                    ((ca, ba), (cb, bb))
                } else if bb.max().component(axis) <= ba.min().component(axis) {
                    ((cb, bb), (ca, ba))
                } else {
                    continue;
                };
                let gap = hi.1.min().component(axis) - lo.1.max().component(axis);
                if gap <= 0.0 {
                    continue;
                }
                // The facing faces: high face of the lower box, low face of
                // the upper box.
                let lower_panel = face_of(&lo.1, axis, true);
                let upper_panel = face_of(&hi.1, axis, false);
                out.push(Crossing {
                    axis,
                    gap,
                    overlap_u: ou,
                    overlap_v: ov,
                    lower_face: (lo.0, lower_panel),
                    upper_face: (hi.0, upper_panel),
                });
            }
        }
    }
    out
}

fn overlap_1d(a: (f64, f64), b: (f64, f64)) -> Option<(f64, f64)> {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    (hi > lo).then_some((lo, hi))
}

fn face_of(b: &bemcap_geom::Box3, axis: Axis, high: bool) -> Panel {
    let (ua, va) = axis.tangents();
    let w = if high { b.max().component(axis) } else { b.min().component(axis) };
    Panel::new(
        axis,
        w,
        (b.min().component(ua), b.max().component(ua)),
        (b.min().component(va), b.max().component(va)),
    )
    .expect("box faces are non-degenerate")
}

/// Adds the induced basis functions for one facing face of a crossing:
/// one flat-footprint function and one two-arch function.
fn add_induced(
    functions: &mut Vec<BasisFunction>,
    cond: usize,
    face: &Panel,
    crossing: &Crossing,
    cfg: &InstantiateConfig,
) {
    let h = crossing.gap;
    // Variation runs along the face's long direction (the wire axis).
    let along_u = face.u_len() >= face.v_len();
    let (wire_range, cross_range, footprint_wire, footprint_cross) = if along_u {
        (face.u_range(), face.v_range(), crossing.overlap_u, crossing.overlap_v)
    } else {
        (face.v_range(), face.u_range(), crossing.overlap_v, crossing.overlap_u)
    };
    // Clip the footprint to the face (it may extend past segmented faces).
    let Some(fw) = overlap_1d(wire_range, footprint_wire) else { return };
    let Some(fc) = overlap_1d(cross_range, footprint_cross) else { return };
    // Induced basis functions belong to wire *intersections* (§2.2): the
    // footprint must be compact along the wire. Long skinny footprints are
    // lateral parallel runs, whose smooth coupling the face functions
    // already represent.
    if fw.1 - fw.0 > 3.0 * (fc.1 - fc.0) {
        return;
    }
    let dir = if along_u { ShapeDir::U } else { ShapeDir::V };
    let mk_panel = |wire: (f64, f64), cross: (f64, f64)| {
        let (u, v) = if along_u { (wire, cross) } else { (cross, wire) };
        Panel::new(face.normal(), face.w(), u, v).ok()
    };
    // Flat footprint template.
    if let Some(p) = mk_panel(fw, fc) {
        functions.push(BasisFunction::new(cond, vec![Template::flat(p)]));
    }
    // Two arch templates at the footprint edges along the wire.
    let b = cfg.laws.width(h);
    let e = cfg.laws.extension(h);
    let mut arch_templates = Vec::new();
    for center in [fw.0, fw.1] {
        let support = overlap_1d(wire_range, (center - e, center + e));
        let Some(support) = support else { continue };
        if support.1 - support.0 < 1e-6 * e {
            continue;
        }
        if let Some(p) = mk_panel(support, fc) {
            arch_templates.push(Template::arch(p, dir, ArchShape { center, width: b }));
        }
    }
    if !arch_templates.is_empty() {
        functions.push(BasisFunction::new(cond, arch_templates));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TemplateKind;
    use bemcap_geom::structures::{self, BusParams, CrossingParams};

    #[test]
    fn empty_geometry_rejected() {
        let geo = Geometry::new(vec![]);
        assert!(matches!(
            instantiate(&geo, &InstantiateConfig::default()),
            Err(BasisError::EmptyGeometry)
        ));
    }

    #[test]
    fn crossing_pair_gets_induced_functions() {
        let geo = structures::crossing_wires(CrossingParams::default());
        let set = instantiate(&geo, &InstantiateConfig::default()).unwrap();
        // 2 boxes × 6 faces (some segmented) + induced.
        let arch_count = set
            .functions()
            .iter()
            .flat_map(|f| &f.templates)
            .filter(|t| matches!(t.kind, TemplateKind::Arch { .. }))
            .count();
        assert!(arch_count >= 4, "expected arches on both facing faces, got {arch_count}");
        // M/N ratio in the paper's 1.2–3 range... at least > 1.
        assert!(set.template_count() > set.basis_count());
        // Every basis function belongs to a valid conductor.
        for f in set.functions() {
            assert!(f.conductor < 2);
        }
    }

    #[test]
    fn parallel_plates_have_no_arches() {
        // Plates fully overlap: a "crossing" is detected but the footprint
        // edges coincide with the face edges; arch supports still exist.
        // What must hold: no panics, flat face functions present.
        let geo = structures::parallel_plates(1.0, 1.0, 0.2);
        let set = instantiate(&geo, &InstantiateConfig::default()).unwrap();
        assert!(set.basis_count() >= 12);
    }

    #[test]
    fn bus_crossing_counts_scale() {
        let p = BusParams::default();
        let small =
            instantiate(&structures::bus_crossing(2, 2, p), &InstantiateConfig::default()).unwrap();
        let big =
            instantiate(&structures::bus_crossing(4, 4, p), &InstantiateConfig::default()).unwrap();
        // 4 wires → 4 crossings; 8 wires → 16 crossings: superlinear growth
        // of induced functions, linear growth of face functions.
        assert!(big.basis_count() > 2 * small.basis_count());
        let ratio = big.template_count() as f64 / big.basis_count() as f64;
        assert!((1.0..=3.0).contains(&ratio), "M/N = {ratio}");
    }

    #[test]
    fn far_separated_wires_get_no_induced() {
        let mut p = CrossingParams::default();
        p.separation = 100.0 * p.width; // far beyond max_gap_ratio
        let geo = structures::crossing_wires(p);
        let set = instantiate(&geo, &InstantiateConfig::default()).unwrap();
        let arch_count = set
            .functions()
            .iter()
            .flat_map(|f| &f.templates)
            .filter(|t| matches!(t.kind, TemplateKind::Arch { .. }))
            .count();
        assert_eq!(arch_count, 0);
    }

    #[test]
    fn segmentation_respects_aspect() {
        let face = Panel::new(Axis::Z, 0.0, (0.0, 20.0), (0.0, 1.0)).unwrap();
        let segs = segment_face(&face, 6.0);
        assert_eq!(segs.len(), 4); // ceil(20 / 6)
        let total: f64 = segs.iter().map(Panel::area).sum();
        assert!((total - face.area()).abs() < 1e-12);
        // Square face: one segment.
        let sq = Panel::new(Axis::Z, 0.0, (0.0, 1.0), (0.0, 1.0)).unwrap();
        assert_eq!(segment_face(&sq, 6.0).len(), 1);
    }

    #[test]
    fn overlap_helper() {
        assert_eq!(overlap_1d((0.0, 2.0), (1.0, 3.0)), Some((1.0, 2.0)));
        assert_eq!(overlap_1d((0.0, 1.0), (1.0, 2.0)), None);
        assert_eq!(overlap_1d((0.0, 1.0), (2.0, 3.0)), None);
    }

    #[test]
    fn detect_crossings_finds_the_z_facing_pair() {
        let geo = structures::crossing_wires(CrossingParams::default());
        let crossings = detect_crossings(&geo);
        assert_eq!(crossings.len(), 1);
        let c = crossings[0];
        assert_eq!(c.axis, Axis::Z);
        assert!((c.gap - CrossingParams::default().separation).abs() < 1e-18);
        // Footprint is the width×width square at the origin.
        let w = CrossingParams::default().width;
        assert!((c.overlap_u.1 - c.overlap_u.0 - w).abs() < 1e-15);
        assert!((c.overlap_v.1 - c.overlap_v.0 - w).abs() < 1e-15);
    }
}

//! Direct tabulation of the definite integral (§4.2.1).
//!
//! The definite 2-D expression is tabulated on a grid over its canonical
//! parameters `(u_lo, u_hi, v_lo, v_hi, z)` and evaluated by multilinear
//! interpolation. (The paper counts six parameters; translation invariance
//! reduces the axes to five — see `RectQuery::canonical`.) Error control is
//! simple — grid resolution and, because the integrand's curvature
//! concentrates near zero offsets and small z, *warped* axes that place
//! nodes where the curvature is (the paper's "very manageable error
//! control"). Every lookup pays a 2⁵-corner interpolation, which is what
//! limits the speedup in Table 1.

use crate::error::AccelError;
use crate::technique::{Integrator2d, RectQuery};
use bemcap_quad::analytic;

/// Number of table axes.
pub const DIMS: usize = 5;

/// How grid nodes are distributed along one axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisWarp {
    /// Uniform spacing.
    Linear,
    /// Symmetric sinh warp about 0 with strength γ: nodes concentrate
    /// near the center of the (symmetric) range.
    SymSinh(f64),
    /// One-sided sinh warp: nodes concentrate near the lower bound.
    LoSinh(f64),
}

impl AxisWarp {
    /// Maps a coordinate in `[lo, hi]` to the normalized grid parameter
    /// in `[0, 1]`.
    pub fn to_param(self, x: f64, lo: f64, hi: f64) -> f64 {
        match self {
            AxisWarp::Linear => (x - lo) / (hi - lo),
            AxisWarp::SymSinh(g) => {
                // Symmetric about the range midpoint.
                let half = 0.5 * (hi - lo);
                let mid = 0.5 * (hi + lo);
                let t = ((x - mid) / half).clamp(-1.0, 1.0);
                0.5 + 0.5 * (t * g.sinh()).asinh() / g
            }
            AxisWarp::LoSinh(g) => {
                let t = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
                (t * g.sinh()).asinh() / g
            }
        }
    }

    /// Inverse map: grid parameter in `[0, 1]` to the coordinate.
    pub fn from_param(self, s: f64, lo: f64, hi: f64) -> f64 {
        match self {
            AxisWarp::Linear => lo + s * (hi - lo),
            AxisWarp::SymSinh(g) => {
                let half = 0.5 * (hi - lo);
                let mid = 0.5 * (hi + lo);
                mid + half * ((2.0 * s - 1.0) * g).sinh() / g.sinh()
            }
            AxisWarp::LoSinh(g) => lo + (hi - lo) * (s * g).sinh() / g.sinh(),
        }
    }
}

/// Precomputed per-axis warp constants for the lookup hot path.
#[derive(Debug, Clone, Copy)]
struct WarpPrepared {
    warp: AxisWarp,
    /// sinh(γ) (1.0 for linear).
    sinh_g: f64,
    /// 1/γ (unused for linear).
    inv_g: f64,
}

impl WarpPrepared {
    fn new(warp: AxisWarp) -> WarpPrepared {
        match warp {
            AxisWarp::Linear => WarpPrepared { warp, sinh_g: 1.0, inv_g: 1.0 },
            AxisWarp::SymSinh(g) | AxisWarp::LoSinh(g) => {
                WarpPrepared { warp, sinh_g: g.sinh(), inv_g: 1.0 / g }
            }
        }
    }

    /// Fast `to_param` with cached constants.
    #[inline]
    fn to_param(self, x: f64, lo: f64, hi: f64) -> f64 {
        match self.warp {
            AxisWarp::Linear => (x - lo) / (hi - lo),
            AxisWarp::SymSinh(_) => {
                let half = 0.5 * (hi - lo);
                let mid = 0.5 * (hi + lo);
                let t = ((x - mid) / half).clamp(-1.0, 1.0);
                0.5 + 0.5 * (t * self.sinh_g).asinh() * self.inv_g
            }
            AxisWarp::LoSinh(_) => {
                let t = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
                (t * self.sinh_g).asinh() * self.inv_g
            }
        }
    }
}

/// A multilinear-interpolated table of the definite integral.
#[derive(Debug, Clone)]
pub struct DirectTable {
    lo: [f64; DIMS],
    hi: [f64; DIMS],
    n: [usize; DIMS],
    warp: [WarpPrepared; DIMS],
    strides: [usize; DIMS],
    values: Vec<f32>,
}

impl DirectTable {
    /// Builds the table over the given parameter box with `n[i]` grid
    /// points and warp `warp[i]` per axis.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadConfig`] if any axis has fewer than two
    /// points or an empty range.
    pub fn build(
        lo: [f64; DIMS],
        hi: [f64; DIMS],
        n: [usize; DIMS],
        warp: [AxisWarp; DIMS],
    ) -> Result<DirectTable, AccelError> {
        for d in 0..DIMS {
            // `partial_cmp` (not `<=`) so NaN bounds are rejected too.
            let increasing = hi[d].partial_cmp(&lo[d]) == Some(std::cmp::Ordering::Greater);
            if n[d] < 2 || !increasing {
                return Err(AccelError::BadConfig {
                    detail: format!("axis {d}: n={} range=[{},{}]", n[d], lo[d], hi[d]),
                });
            }
        }
        let mut strides = [0usize; DIMS];
        let mut total = 1usize;
        for d in (0..DIMS).rev() {
            strides[d] = total;
            total *= n[d];
        }
        let mut values = vec![0.0f32; total];
        let mut idx = [0usize; DIMS];
        for (flat, slot) in values.iter_mut().enumerate() {
            let mut rem = flat;
            for d in 0..DIMS {
                idx[d] = rem / strides[d];
                rem %= strides[d];
            }
            let p: Vec<f64> = (0..DIMS)
                .map(|d| warp[d].from_param(idx[d] as f64 / (n[d] as f64 - 1.0), lo[d], hi[d]))
                .collect();
            // Definite integral from canonical params: the corner-difference
            // of the double primitive.
            let (ulo, uhi, vlo, vhi, z) = (p[0], p[1], p[2], p[3], p[4]);
            let val = analytic::double_primitive(uhi, vhi, z)
                - analytic::double_primitive(uhi, vlo, z)
                - analytic::double_primitive(ulo, vhi, z)
                + analytic::double_primitive(ulo, vlo, z);
            *slot = val as f32;
        }
        Ok(DirectTable {
            lo,
            hi,
            n,
            warp: [
                WarpPrepared::new(warp[0]),
                WarpPrepared::new(warp[1]),
                WarpPrepared::new(warp[2]),
                WarpPrepared::new(warp[3]),
                WarpPrepared::new(warp[4]),
            ],
            strides,
            values,
        })
    }

    /// Builds the default Table 1 configuration: the domain covered by
    /// `technique::sample_queries`, ~1.4 MB of f32 storage, sinh-warped
    /// offset axes and a lo-warped z axis.
    pub fn table1_default() -> Result<DirectTable, AccelError> {
        let sym = AxisWarp::SymSinh(2.2);
        DirectTable::build(
            [-2.5, -2.5, -2.5, -2.5, 0.1],
            [2.5, 2.5, 2.5, 2.5, 1.05],
            [13, 13, 13, 13, 12],
            [sym, sym, sym, sym, AxisWarp::LoSinh(1.5)],
        )
    }

    /// Multilinear interpolation at the canonical parameter vector,
    /// clamping to the table domain.
    pub fn interpolate(&self, p: [f64; DIMS]) -> f64 {
        let mut base = [0usize; DIMS];
        let mut frac = [0.0f64; DIMS];
        for d in 0..DIMS {
            let s =
                self.warp[d].to_param(p[d].clamp(self.lo[d], self.hi[d]), self.lo[d], self.hi[d]);
            let t = (s * (self.n[d] - 1) as f64).clamp(0.0, (self.n[d] - 1) as f64);
            let i = (t as usize).min(self.n[d] - 2);
            base[d] = i;
            frac[d] = t - i as f64;
        }
        // 2^5 corner sum.
        let mut acc = 0.0;
        for corner in 0..(1usize << DIMS) {
            let mut flat = 0;
            let mut weight = 1.0;
            for d in 0..DIMS {
                let bit = (corner >> d) & 1;
                flat += (base[d] + bit) * self.strides[d];
                weight *= if bit == 1 { frac[d] } else { 1.0 - frac[d] };
            }
            if weight != 0.0 {
                acc += weight * self.values[flat] as f64;
            }
        }
        acc
    }
}

impl Integrator2d for DirectTable {
    fn eval(&self, q: &RectQuery) -> f64 {
        self.interpolate(q.canonical())
    }

    fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }

    fn name(&self) -> &'static str {
        "Direct tabulation"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::{sample_queries, AnalyticIntegrator};

    const LINEAR: [AxisWarp; DIMS] = [AxisWarp::Linear; DIMS];

    #[test]
    fn rejects_bad_configs() {
        assert!(DirectTable::build([0.0; 5], [1.0; 5], [1, 2, 2, 2, 2], LINEAR).is_err());
        assert!(DirectTable::build([0.0; 5], [0.0; 5], [2; 5], LINEAR).is_err());
    }

    #[test]
    fn warp_round_trips() {
        for warp in [AxisWarp::Linear, AxisWarp::SymSinh(2.0), AxisWarp::LoSinh(1.5)] {
            for i in 0..=10 {
                let s = i as f64 / 10.0;
                let x = warp.from_param(s, -2.0, 3.0);
                let back = warp.to_param(x, -2.0, 3.0);
                assert!((back - s).abs() < 1e-12, "{warp:?} s={s}: {back}");
                assert!((-2.0..=3.0).contains(&x));
            }
            // Endpoints map exactly.
            assert!((warp.to_param(-2.0, -2.0, 3.0)).abs() < 1e-12);
            assert!((warp.to_param(3.0, -2.0, 3.0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sym_warp_concentrates_near_center() {
        let w = AxisWarp::SymSinh(2.5);
        let near = w.from_param(0.55, -1.0, 1.0) - w.from_param(0.5, -1.0, 1.0);
        let far = w.from_param(1.0, -1.0, 1.0) - w.from_param(0.95, -1.0, 1.0);
        assert!(near < far, "center spacing {near} should be tighter than edge {far}");
    }

    #[test]
    fn exact_at_grid_nodes() {
        let t = DirectTable::build([-1.0; 5], [1.0; 5], [3; 5], LINEAR).unwrap();
        // Node p = (0,0,0,0,0) is a grid point; interpolation must
        // reproduce the (degenerate, zero) integral there exactly.
        assert_eq!(t.interpolate([0.0; 5]), 0.0);
    }

    #[test]
    fn interpolation_error_within_budget() {
        let t = DirectTable::table1_default().unwrap();
        let exact = AnalyticIntegrator;
        let mut worst: f64 = 0.0;
        let mut mean = 0.0;
        let queries = sample_queries(400, 11);
        for q in &queries {
            let e = exact.eval(q);
            let v = t.eval(q);
            let rel = (v - e).abs() / e.abs().max(0.1);
            worst = worst.max(rel);
            mean += rel;
        }
        mean /= queries.len() as f64;
        // The paper reaches 1 % with 1.5 MB on its (narrower, application-
        // chosen) domain; with warped axes our deliberately wide random
        // domain keeps the mean well under 1 % at comparable memory.
        assert!(mean < 0.01, "mean relative error {mean}");
        assert!(worst < 0.08, "worst relative error {worst}");
    }

    #[test]
    fn memory_reported() {
        let t = DirectTable::build([-1.0; 5], [1.0; 5], [4; 5], LINEAR).unwrap();
        assert_eq!(t.memory_bytes(), 4usize.pow(5) * 4);
        let big = DirectTable::table1_default().unwrap();
        // Order of the paper's 1.5 MB.
        assert!(big.memory_bytes() > 800_000 && big.memory_bytes() < 3_000_000);
    }

    #[test]
    fn clamps_outside_domain() {
        let t = DirectTable::build([-1.0; 5], [1.0; 5], [4; 5], LINEAR).unwrap();
        let inside = t.interpolate([1.0, 1.0, 1.0, 1.0, 1.0]);
        let outside = t.interpolate([5.0, 5.0, 5.0, 5.0, 5.0]);
        assert_eq!(inside, outside);
    }
}

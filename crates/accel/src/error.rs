//! Error types for the acceleration techniques.

use bemcap_linalg::LinalgError;
use std::error::Error;
use std::fmt;

/// Errors from building tables or fitting rational models.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelError {
    /// A table or fit was configured with an empty/inverted domain or zero
    /// resolution.
    BadConfig {
        /// What was wrong.
        detail: String,
    },
    /// The rational fit's least-squares problem failed.
    Fit(LinalgError),
    /// A query fell outside the tabulated domain.
    OutOfDomain {
        /// The offending parameter value.
        value: f64,
        /// Index of the parameter dimension.
        dim: usize,
    },
}

impl fmt::Display for AccelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelError::BadConfig { detail } => write!(f, "bad configuration: {detail}"),
            AccelError::Fit(e) => write!(f, "rational fit failed: {e}"),
            AccelError::OutOfDomain { value, dim } => {
                write!(f, "query value {value} outside tabulated domain (dimension {dim})")
            }
        }
    }
}

impl Error for AccelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AccelError::Fit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for AccelError {
    fn from(e: LinalgError) -> Self {
        AccelError::Fit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AccelError::Fit(LinalgError::NotFinite);
        assert!(format!("{e}").contains("fit"));
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&AccelError::BadConfig { detail: "x".into() }).is_none());
    }
}

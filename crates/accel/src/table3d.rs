//! Tabulation of the indefinite integral (§4.2.2).
//!
//! Instead of six (five) parameters, tabulate the *indefinite* double
//! primitive F(u, v, z) on a 3-D grid and recover the definite integral by
//! the 4-corner substitution of equation (9). The table is far smaller per
//! resolution, but — exactly as the paper warns — the corner substitution
//! subtracts nearly equal numbers, so several significant digits cancel
//! and the effective accuracy per byte is worse than direct tabulation.

use crate::error::AccelError;
use crate::technique::{Integrator2d, RectQuery};
use bemcap_quad::analytic;

/// Trilinear-interpolated table of the indefinite integral F(u, v, z).
#[derive(Debug, Clone)]
pub struct IndefiniteTable {
    lo: [f64; 3],
    hi: [f64; 3],
    n: [usize; 3],
    inv_step: [f64; 3],
    values: Vec<f32>,
}

impl IndefiniteTable {
    /// Builds the table on `[lo, hi]` with `n` points per axis.
    ///
    /// # Errors
    ///
    /// Returns [`AccelError::BadConfig`] for axes with fewer than two
    /// points or empty ranges.
    pub fn build(lo: [f64; 3], hi: [f64; 3], n: [usize; 3]) -> Result<IndefiniteTable, AccelError> {
        for d in 0..3 {
            // `partial_cmp` (not `<=`) so NaN bounds are rejected too.
            let increasing = hi[d].partial_cmp(&lo[d]) == Some(std::cmp::Ordering::Greater);
            if n[d] < 2 || !increasing {
                return Err(AccelError::BadConfig {
                    detail: format!("axis {d}: n={} range=[{},{}]", n[d], lo[d], hi[d]),
                });
            }
        }
        let mut values = vec![0.0f32; n[0] * n[1] * n[2]];
        for i in 0..n[0] {
            let u = lo[0] + (hi[0] - lo[0]) * i as f64 / (n[0] - 1) as f64;
            for j in 0..n[1] {
                let v = lo[1] + (hi[1] - lo[1]) * j as f64 / (n[1] - 1) as f64;
                for k in 0..n[2] {
                    let z = lo[2] + (hi[2] - lo[2]) * k as f64 / (n[2] - 1) as f64;
                    values[(i * n[1] + j) * n[2] + k] = analytic::double_primitive(u, v, z) as f32;
                }
            }
        }
        let mut inv_step = [0.0; 3];
        for d in 0..3 {
            inv_step[d] = (n[d] as f64 - 1.0) / (hi[d] - lo[d]);
        }
        Ok(IndefiniteTable { lo, hi, n, inv_step, values })
    }

    /// Default Table 1 configuration (~2 MB, dense to fight the corner
    /// cancellation).
    pub fn table1_default() -> Result<IndefiniteTable, AccelError> {
        IndefiniteTable::build([-3.0, -3.0, 0.1], [3.0, 3.0, 1.05], [160, 160, 20])
    }

    /// Trilinear lookup of F(u, v, z), clamped to the domain.
    pub fn primitive(&self, u: f64, v: f64, z: f64) -> f64 {
        let p = [u, v, z];
        let mut base = [0usize; 3];
        let mut frac = [0.0; 3];
        for d in 0..3 {
            let t = ((p[d] - self.lo[d]) * self.inv_step[d]).clamp(0.0, (self.n[d] - 1) as f64);
            let i = (t as usize).min(self.n[d] - 2);
            base[d] = i;
            frac[d] = t - i as f64;
        }
        let mut acc = 0.0;
        for c in 0..8usize {
            let bi = c & 1;
            let bj = (c >> 1) & 1;
            let bk = (c >> 2) & 1;
            let w = (if bi == 1 { frac[0] } else { 1.0 - frac[0] })
                * (if bj == 1 { frac[1] } else { 1.0 - frac[1] })
                * (if bk == 1 { frac[2] } else { 1.0 - frac[2] });
            if w != 0.0 {
                let flat =
                    ((base[0] + bi) * self.n[1] + (base[1] + bj)) * self.n[2] + (base[2] + bk);
                acc += w * self.values[flat] as f64;
            }
        }
        acc
    }

    /// `true` when the canonical parameter vector lies inside the table.
    pub fn contains(&self, p: [f64; 5]) -> bool {
        let z_ok = p[4] >= self.lo[2] && p[4] <= self.hi[2];
        let uv_ok = p[..4].iter().enumerate().all(|(i, &x)| {
            let d = if i < 2 { 0 } else { 1 };
            x >= self.lo[d] && x <= self.hi[d]
        });
        z_ok && uv_ok
    }
}

impl Integrator2d for IndefiniteTable {
    fn eval(&self, q: &RectQuery) -> f64 {
        let [ulo, uhi, vlo, vhi, z] = q.canonical();
        // Equation (9): 4-corner substitution of the tabulated primitive.
        self.primitive(uhi, vhi, z) - self.primitive(uhi, vlo, z) - self.primitive(ulo, vhi, z)
            + self.primitive(ulo, vlo, z)
    }

    fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<f32>()
    }

    fn name(&self) -> &'static str {
        "Tabulation of indef. int."
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::{sample_queries, AnalyticIntegrator};

    #[test]
    fn rejects_bad_config() {
        assert!(IndefiniteTable::build([0.0; 3], [1.0; 3], [1, 2, 2]).is_err());
        assert!(IndefiniteTable::build([0.0; 3], [0.0; 3], [4; 3]).is_err());
    }

    #[test]
    fn primitive_interpolation_accuracy() {
        let t = IndefiniteTable::table1_default().unwrap();
        for &(u, v, z) in &[(0.33, -1.2, 0.5), (2.0, 2.0, 0.9), (-0.7, 0.4, 0.2)] {
            let e = analytic::double_primitive(u, v, z);
            let g = t.primitive(u, v, z);
            assert!((g - e).abs() < 5e-3 * e.abs().max(0.5), "({u},{v},{z}): {g} vs {e}");
        }
    }

    #[test]
    fn definite_integral_with_cancellation_penalty() {
        // The corner substitution loses digits: accuracy markedly worse
        // than direct tabulation at comparable memory — the paper's point.
        let t = IndefiniteTable::table1_default().unwrap();
        let exact = AnalyticIntegrator;
        let mut worst: f64 = 0.0;
        for q in sample_queries(300, 3) {
            if !t.contains(q.canonical()) {
                continue;
            }
            let e = exact.eval(&q);
            let v = t.eval(&q);
            worst = worst.max((v - e).abs() / e.abs().max(0.1));
        }
        assert!(worst < 0.15, "worst relative error {worst}");
        assert!(worst > 1e-5, "cancellation penalty should be visible");
    }

    #[test]
    fn memory_in_expected_range() {
        let t = IndefiniteTable::table1_default().unwrap();
        // Order of the paper's 2.3 MB.
        assert!(t.memory_bytes() > 1_000_000 && t.memory_bytes() < 4_000_000);
    }

    #[test]
    fn contains_checks_domain() {
        let t = IndefiniteTable::build([-1.0, -1.0, 0.0], [1.0, 1.0, 1.0], [4; 3]).unwrap();
        assert!(t.contains([0.0, 0.5, -0.5, 0.5, 0.5]));
        assert!(!t.contains([2.0, 0.5, -0.5, 0.5, 0.5]));
        assert!(!t.contains([0.0, 0.5, -0.5, 0.5, 2.0]));
    }
}

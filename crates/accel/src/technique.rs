//! The common interface shared by the §4.2 techniques.

use bemcap_quad::analytic;
use std::fmt;

/// One evaluation request for the 2-D expression f₂D of equation (13):
/// the potential integral of the rectangle `[x0,x1] × [y0,y1]` at in-plane
/// target `(px, py)` with perpendicular offset `z`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RectQuery {
    /// Rectangle lower x bound.
    pub x0: f64,
    /// Rectangle upper x bound.
    pub x1: f64,
    /// Rectangle lower y bound.
    pub y0: f64,
    /// Rectangle upper y bound.
    pub y1: f64,
    /// Perpendicular offset of the target plane.
    pub z: f64,
    /// Target x.
    pub px: f64,
    /// Target y.
    pub py: f64,
}

impl RectQuery {
    /// Translation-invariant canonical parameters
    /// `(u_lo, u_hi, v_lo, v_hi, z)` with `u = px − x′`, `v = py − y′`.
    ///
    /// Translation invariance is why the "6-parameter" table of §4.2.1
    /// needs only five axes in practice.
    pub fn canonical(&self) -> [f64; 5] {
        [self.px - self.x1, self.px - self.x0, self.py - self.y1, self.py - self.y0, self.z]
    }
}

/// An evaluator of the 2-D analytic expression — the object Table 1
/// compares. Implementations trade accuracy, time and memory.
pub trait Integrator2d {
    /// Evaluates f₂D for the query.
    fn eval(&self, q: &RectQuery) -> f64;

    /// Bytes of table storage held by the technique (the "Memory" column
    /// of Table 1).
    fn memory_bytes(&self) -> usize {
        0
    }

    /// Display name for report tables.
    fn name(&self) -> &'static str;
}

/// Technique identifiers in the order of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Technique {
    /// Row 0: the original analytic expression (baseline).
    Analytic,
    /// Row 1: direct tabulation of the definite integral.
    DirectTabulation,
    /// Row 2: tabulation of the indefinite integral.
    IndefiniteTabulation,
    /// Row 3: tabulation of expensive subroutines (`log`, `atan`).
    SubroutineTabulation,
    /// Row 4: rational fitting.
    RationalFitting,
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Technique::Analytic => "Original analytical expr.",
            Technique::DirectTabulation => "Direct tabulation",
            Technique::IndefiniteTabulation => "Tabulation of indef. int.",
            Technique::SubroutineTabulation => "Tabulation of exp. routines",
            Technique::RationalFitting => "Rational fitting",
        };
        f.write_str(s)
    }
}

/// Row 0 of Table 1: the exact closed form evaluated with libm `ln`/`atan`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticIntegrator;

impl Integrator2d for AnalyticIntegrator {
    fn eval(&self, q: &RectQuery) -> f64 {
        analytic::rect_potential(q.x0, q.x1, q.y0, q.y1, q.z, q.px, q.py)
    }

    fn name(&self) -> &'static str {
        "Original analytical expr."
    }
}

/// Deterministic query generator covering the Table 1 evaluation domain:
/// unit-scale rectangles with targets within a few diameters, z bounded
/// away from the singular plane.
pub fn sample_queries(count: usize, seed: u64) -> Vec<RectQuery> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..count)
        .map(|_| {
            let x0 = next() * 0.5;
            let x1 = x0 + 0.3 + 0.7 * next();
            let y0 = next() * 0.5;
            let y1 = y0 + 0.3 + 0.7 * next();
            RectQuery {
                x0,
                x1,
                y0,
                y1,
                z: 0.15 + 0.85 * next(),
                px: -1.0 + 3.0 * next(),
                py: -1.0 + 3.0 * next(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_params() {
        let q = RectQuery { x0: 0.0, x1: 1.0, y0: 2.0, y1: 3.0, z: 0.5, px: 2.0, py: 2.5 };
        assert_eq!(q.canonical(), [1.0, 2.0, -0.5, 0.5, 0.5]);
    }

    #[test]
    fn analytic_matches_quad_crate() {
        let q = RectQuery { x0: 0.0, x1: 1.0, y0: 0.0, y1: 2.0, z: 0.7, px: 0.3, py: 0.4 };
        let v = AnalyticIntegrator.eval(&q);
        let r = analytic::rect_potential(0.0, 1.0, 0.0, 2.0, 0.7, 0.3, 0.4);
        assert_eq!(v, r);
        assert_eq!(AnalyticIntegrator.memory_bytes(), 0);
    }

    #[test]
    fn sample_queries_deterministic_and_in_domain() {
        let a = sample_queries(100, 42);
        let b = sample_queries(100, 42);
        assert_eq!(a, b);
        for q in &a {
            assert!(q.x1 > q.x0 && q.y1 > q.y0);
            assert!(q.z >= 0.15 && q.z <= 1.0);
        }
        // Different seeds differ.
        assert_ne!(a, sample_queries(100, 43));
    }

    #[test]
    fn technique_names() {
        for t in [
            Technique::Analytic,
            Technique::DirectTabulation,
            Technique::IndefiniteTabulation,
            Technique::SubroutineTabulation,
            Technique::RationalFitting,
        ] {
            assert!(!format!("{t}").is_empty());
        }
    }
}

//! Rational fitting (§4.2.4).
//!
//! The definite integral is approximated by a multivariable rational
//! function f(w) = f_N(w)/f_D(w) of degree (n, m) in the canonical
//! parameters w ∈ R⁵. Rational forms suit Green's functions that decay
//! with distance, and avoid the cancellation of the indefinite-integral
//! substitution (equation (9)).
//!
//! Training solves the linearized problem (12)
//!
//! ```text
//! minimize  Σ_i | f̃(w_i)·f_D(w_i) − f_N(w_i) |
//! subject to Σ β_D = 1
//! ```
//!
//! with the constraint eliminated by substitution and the residual
//! minimized in the 2-norm via Householder QR — our substitute for the
//! STINS SDP machinery \[2\] (DESIGN.md §3): the objective is linear in the
//! coefficients either way.

use crate::error::AccelError;
use crate::technique::{AnalyticIntegrator, Integrator2d, RectQuery};
use bemcap_linalg::{least_squares, Matrix};

/// All multi-indices α ∈ ℕ^k with |α| ≤ n, in graded lexicographic order.
pub fn multi_indices(k: usize, n: u32) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    let mut current = vec![0u32; k];
    fn rec(out: &mut Vec<Vec<u32>>, current: &mut Vec<u32>, dim: usize, remaining: u32) {
        if dim == current.len() {
            out.push(current.clone());
            return;
        }
        for e in 0..=remaining {
            current[dim] = e;
            rec(out, current, dim + 1, remaining - e);
        }
        current[dim] = 0;
    }
    rec(&mut out, &mut current, 0, n);
    out
}

/// A trained rational approximation of the 2-D integral.
#[derive(Debug, Clone)]
pub struct RationalFit {
    /// Input dimensionality (5 canonical parameters).
    k: usize,
    /// Flattened exponent arrays (stride k) for the allocation-free,
    /// cache-friendly evaluation hot path.
    num_exps_flat: Vec<u8>,
    den_exps_flat: Vec<u8>,
    beta_num: Vec<f64>,
    beta_den: Vec<f64>,
    /// Per-dimension affine normalization: w_norm = (w − center) * scale.
    center: Vec<f64>,
    scale: Vec<f64>,
}

impl RationalFit {
    /// Trains a degree-(n, m) fit from samples `(w_i, f̃(w_i))`.
    ///
    /// # Errors
    ///
    /// * [`AccelError::BadConfig`] for empty sample sets or inconsistent
    ///   input dimensions;
    /// * [`AccelError::Fit`] if the least-squares problem is rank
    ///   deficient.
    pub fn train(samples: &[(Vec<f64>, f64)], n: u32, m: u32) -> Result<RationalFit, AccelError> {
        let k = samples
            .first()
            .map(|(w, _)| w.len())
            .ok_or_else(|| AccelError::BadConfig { detail: "no training samples".into() })?;
        if samples.iter().any(|(w, _)| w.len() != k) {
            return Err(AccelError::BadConfig { detail: "inconsistent sample dimensions".into() });
        }
        // Normalize inputs to [-1, 1] for conditioning.
        let mut lo = vec![f64::INFINITY; k];
        let mut hi = vec![f64::NEG_INFINITY; k];
        for (w, _) in samples {
            for d in 0..k {
                lo[d] = lo[d].min(w[d]);
                hi[d] = hi[d].max(w[d]);
            }
        }
        let center: Vec<f64> = (0..k).map(|d| 0.5 * (lo[d] + hi[d])).collect();
        let scale: Vec<f64> =
            (0..k).map(|d| if hi[d] > lo[d] { 2.0 / (hi[d] - lo[d]) } else { 1.0 }).collect();
        let num_exps = multi_indices(k, n);
        let den_exps = multi_indices(k, m);
        let n_num = num_exps.len();
        let n_den = den_exps.len() - 1; // β_{D,0} eliminated by the constraint
        let rows = samples.len();
        if rows < n_num + n_den {
            return Err(AccelError::BadConfig {
                detail: format!("{rows} samples for {} unknowns", n_num + n_den),
            });
        }
        let mut a = Matrix::zeros(rows, n_num + n_den);
        let mut b = vec![0.0; rows];
        for (i, (w, f)) in samples.iter().enumerate() {
            let wn: Vec<f64> = (0..k).map(|d| (w[d] - center[d]) * scale[d]).collect();
            b[i] = -f;
            for (j, e) in num_exps.iter().enumerate() {
                a.set(i, j, -monomial(&wn, e));
            }
            for (j, e) in den_exps.iter().skip(1).enumerate() {
                a.set(i, n_num + j, f * (monomial(&wn, e) - 1.0));
            }
        }
        let x = least_squares(&a, &b)?;
        let beta_num = x[..n_num].to_vec();
        let mut beta_den = Vec::with_capacity(n_den + 1);
        beta_den.push(1.0 - x[n_num..].iter().sum::<f64>());
        beta_den.extend_from_slice(&x[n_num..]);
        let flatten = |exps: &[Vec<u32>]| -> Vec<u8> {
            exps.iter().flat_map(|e| e.iter().map(|&x| x as u8)).collect()
        };
        let num_exps_flat = flatten(&num_exps);
        let den_exps_flat = flatten(&den_exps);
        Ok(RationalFit { k, num_exps_flat, den_exps_flat, beta_num, beta_den, center, scale })
    }

    /// Trains the default Table 1 model on the standard query domain,
    /// using the exact analytic integrator as the teacher.
    ///
    /// Degree (4, 2): a rich numerator with a low-degree denominator —
    /// high denominator degrees invite spurious poles inside the training
    /// box (the error-control caveat of §4.2.4).
    pub fn table1_default() -> Result<RationalFit, AccelError> {
        let teacher = AnalyticIntegrator;
        let samples: Vec<(Vec<f64>, f64)> = crate::technique::sample_queries(8000, 101)
            .into_iter()
            .map(|q| (q.canonical().to_vec(), teacher.eval(&q)))
            .collect();
        RationalFit::train(&samples, 4, 2)
    }

    /// Evaluates the rational model at a canonical parameter vector.
    ///
    /// Allocation-free on the hot path (≤ 8 input dimensions, degree ≤ 7):
    /// per-dimension power tables are built once per call on the stack.
    ///
    /// # Panics
    ///
    /// Panics if `w.len()` differs from the training dimensionality, or
    /// exceeds the 8-dimension / degree-7 stack limits.
    pub fn eval_params(&self, w: &[f64]) -> f64 {
        assert_eq!(w.len(), self.k, "parameter dimensionality");
        assert!(self.k <= 8, "eval_params supports up to 8 dimensions");
        // pows[d][e] = wn[d]^e.
        let mut pows = [[1.0f64; 8]; 8];
        for d in 0..self.k {
            let x = (w[d] - self.center[d]) * self.scale[d];
            let mut p = 1.0;
            for pow in pows[d].iter_mut().skip(1) {
                p *= x;
                *pow = p;
            }
        }
        let k = self.k;
        let poly = |coeffs: &[f64], exps_flat: &[u8]| -> f64 {
            let mut acc = 0.0;
            for (t, c) in coeffs.iter().enumerate() {
                let mut m = *c;
                let e = &exps_flat[t * k..(t + 1) * k];
                for (d, &ed) in e.iter().enumerate() {
                    if ed != 0 {
                        m *= pows[d][ed as usize];
                    }
                }
                acc += m;
            }
            acc
        };
        poly(&self.beta_num, &self.num_exps_flat) / poly(&self.beta_den, &self.den_exps_flat)
    }

    /// Number of coefficients (numerator + denominator).
    pub fn coefficient_count(&self) -> usize {
        self.beta_num.len() + self.beta_den.len()
    }
}

#[inline]
fn monomial(w: &[f64], exps: &[u32]) -> f64 {
    let mut p = 1.0;
    for (x, &e) in w.iter().zip(exps) {
        for _ in 0..e {
            p *= x;
        }
    }
    p
}

impl Integrator2d for RationalFit {
    fn eval(&self, q: &RectQuery) -> f64 {
        self.eval_params(&q.canonical())
    }

    fn memory_bytes(&self) -> usize {
        // "≈ 0" in the paper: only the coefficient vectors.
        self.coefficient_count() * std::mem::size_of::<f64>()
    }

    fn name(&self) -> &'static str {
        "Rational fitting"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::sample_queries;

    #[test]
    fn multi_index_counts() {
        // |{α ∈ ℕ^k : |α| ≤ n}| = C(n+k, k)
        assert_eq!(multi_indices(2, 2).len(), 6);
        assert_eq!(multi_indices(3, 2).len(), 10);
        assert_eq!(multi_indices(5, 3).len(), 56);
        // Always includes the constant term first.
        assert_eq!(multi_indices(3, 2)[0], vec![0, 0, 0]);
    }

    #[test]
    fn monomial_eval() {
        assert_eq!(monomial(&[2.0, 3.0], &[2, 1]), 12.0);
        assert_eq!(monomial(&[2.0, 3.0], &[0, 0]), 1.0);
    }

    #[test]
    fn recovers_exact_rational_function() {
        // Teacher IS a rational function of matching degree: fit must be
        // near machine-exact.
        let teacher = |w: &[f64]| (1.0 + 2.0 * w[0] + w[1]) / (1.0 + 0.5 * w[0] * w[0]);
        let mut samples = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                let w = vec![-1.0 + i as f64 / 9.5, -1.0 + j as f64 / 9.5];
                let f = teacher(&w);
                samples.push((w.clone(), f));
            }
        }
        let fit = RationalFit::train(&samples, 2, 2).unwrap();
        for (w, f) in &samples {
            let g = fit.eval_params(w);
            assert!((g - f).abs() < 1e-8 * f.abs().max(1.0), "{g} vs {f}");
        }
    }

    #[test]
    fn denominator_normalized() {
        let samples: Vec<(Vec<f64>, f64)> =
            (0..50).map(|i| (vec![i as f64 / 25.0 - 1.0], 1.0 + i as f64)).collect();
        let fit = RationalFit::train(&samples, 1, 1).unwrap();
        let s: f64 = fit.beta_den.iter().sum();
        assert!((s - 1.0).abs() < 1e-12, "Σβ_D = {s}");
    }

    #[test]
    fn table1_model_accuracy() {
        let fit = RationalFit::table1_default().unwrap();
        let exact = AnalyticIntegrator;
        let mut worst: f64 = 0.0;
        let mut mean = 0.0;
        let queries = sample_queries(400, 202); // held-out seed
        for q in &queries {
            let e = exact.eval(q);
            let v = fit.eval(q);
            let rel = (v - e).abs() / e.abs().max(0.1);
            worst = worst.max(rel);
            mean += rel;
        }
        mean /= queries.len() as f64;
        assert!(mean < 0.05, "mean relative error {mean}");
        assert!(worst < 0.5, "worst relative error {worst}");
    }

    #[test]
    fn error_cases() {
        assert!(RationalFit::train(&[], 1, 1).is_err());
        let bad = vec![(vec![0.0], 1.0), (vec![0.0, 1.0], 2.0)];
        assert!(RationalFit::train(&bad, 1, 1).is_err());
        // Too few samples for the unknown count.
        let few = vec![(vec![0.0, 0.0], 1.0), (vec![1.0, 1.0], 2.0)];
        assert!(RationalFit::train(&few, 3, 3).is_err());
    }

    #[test]
    fn memory_is_negligible() {
        let fit = RationalFit::table1_default().unwrap();
        assert!(fit.memory_bytes() < 10_000); // "≈ 0" vs the MB-scale tables
    }
}

//! Tabulation of expensive subroutines (§4.2.3).
//!
//! Most of the time evaluating the closed forms goes into `log` and `atan`
//! calls. Following the paper (and \[5\]):
//!
//! * **log** exploits the IEEE-754 representation:
//!   log₂(m·2^e) = e + log₂(m); only log₂ of the mantissa is tabulated,
//!   indexed by its first 14 bits (16384 entries);
//! * **atan** is tabulated with zero-order hold on [0, 1] after the
//!   standard range reduction atan(x) = π/2 − atan(1/x) for |x| > 1.
//!
//! The module exposes both an [`Integrator2d`] implementation (Table 1,
//! row 3) and plain `fn` primitives ([`fast_double_primitive`],
//! [`fast_quad_primitive`]) that plug into
//! `bemcap_quad::GalerkinEngine::with_primitives` for the accelerated
//! production assembly (Table 2, "w/ accel").

use std::sync::OnceLock;

use crate::technique::{Integrator2d, RectQuery};

/// Number of mantissa bits used to index the log table (the paper finds 14
/// bits sufficient for <1 % error in the 4-D expression).
pub const LOG_MANTISSA_BITS: u32 = 14;
const LOG_TABLE_LEN: usize = 1 << LOG_MANTISSA_BITS;

/// Entries of the atan table on [0, 1].
pub const ATAN_TABLE_LEN: usize = 8192;

fn log_table() -> &'static [f32] {
    static TABLE: OnceLock<Vec<f32>> = OnceLock::new();
    TABLE.get_or_init(|| {
        (0..LOG_TABLE_LEN)
            .map(|i| {
                // Midpoint of the mantissa bucket for zero-order hold.
                let m = 1.0 + (i as f64 + 0.5) / LOG_TABLE_LEN as f64;
                m.log2() as f32
            })
            .collect()
    })
}

fn atan_table() -> &'static [f32] {
    static TABLE: OnceLock<Vec<f32>> = OnceLock::new();
    TABLE.get_or_init(|| {
        (0..ATAN_TABLE_LEN)
            .map(|i| {
                let x = (i as f64 + 0.5) / ATAN_TABLE_LEN as f64;
                x.atan() as f32
            })
            .collect()
    })
}

/// Forces construction of the log and atan tables.
///
/// The tables are lazily built behind `OnceLock`s on first use. Parallel
/// drivers (the batch extraction scheduler in `bemcap-core::batch`) call
/// this once before spawning workers so that the first accelerated job
/// does not pay the table build inside its timed region while the other
/// workers block on the lock.
pub fn warm_tables() {
    let _ = log_table();
    let _ = atan_table();
}

/// Fast natural logarithm by mantissa tabulation.
///
/// Accuracy ≈ 6·10⁻⁵ absolute — comfortably inside the 1 % budget of the
/// integral expressions.
///
/// # Panics
///
/// Debug-asserts `x > 0` and finite (matching `f64::ln`'s domain where the
/// integral guards call it).
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    debug_assert!(x > 0.0 && x.is_finite(), "fast_ln domain: {x}");
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let idx = ((bits >> (52 - LOG_MANTISSA_BITS as u64)) & (LOG_TABLE_LEN as u64 - 1)) as usize;
    (exp as f64 + log_table()[idx] as f64) * std::f64::consts::LN_2
}

/// Fast arctangent by zero-order-hold tabulation with range reduction.
#[inline]
pub fn fast_atan(x: f64) -> f64 {
    let ax = x.abs();
    let v = if ax <= 1.0 {
        let idx = ((ax * ATAN_TABLE_LEN as f64) as usize).min(ATAN_TABLE_LEN - 1);
        atan_table()[idx] as f64
    } else {
        let inv = 1.0 / ax;
        let idx = ((inv * ATAN_TABLE_LEN as f64) as usize).min(ATAN_TABLE_LEN - 1);
        std::f64::consts::FRAC_PI_2 - atan_table()[idx] as f64
    };
    if x < 0.0 {
        -v
    } else {
        v
    }
}

/// Stable ln(u + √(u²+p²)) using [`fast_ln`].
#[inline]
fn fast_ln_u_plus_r(u: f64, p2: f64) -> f64 {
    let r = (u * u + p2).sqrt();
    if u >= 0.0 {
        fast_ln(u + r)
    } else {
        fast_ln(p2 / (r - u))
    }
}

/// Drop-in replacement for `bemcap_quad::analytic::double_primitive` using
/// the tabulated subroutines.
#[inline]
pub fn fast_double_primitive(u: f64, v: f64, z: f64) -> f64 {
    let r = (u * u + v * v + z * z).sqrt();
    let mut acc = 0.0;
    if u != 0.0 {
        acc += u * fast_ln_u_plus_r(v, u * u + z * z);
    }
    if v != 0.0 {
        acc += v * fast_ln_u_plus_r(u, v * v + z * z);
    }
    if z != 0.0 && u != 0.0 && v != 0.0 {
        acc -= z * fast_atan(u * v / (z * r));
    }
    acc
}

/// Drop-in replacement for `bemcap_quad::analytic::quad_primitive` using
/// the tabulated subroutines.
#[inline]
pub fn fast_quad_primitive(u: f64, v: f64, z: f64) -> f64 {
    let u2 = u * u;
    let v2 = v * v;
    let z2 = z * z;
    let r2 = u2 + v2 + z2;
    let r = r2.sqrt();
    let mut acc = -u * r2 / 4.0 - u * v2 / 2.0 + z2 * r / 2.0 - r2 * r / 6.0;
    let cu = u * (v2 - z2) / 2.0;
    if cu != 0.0 {
        acc += cu * fast_ln_u_plus_r(u, v2 + z2);
    }
    let cv = v * (u2 - z2) / 2.0;
    if cv != 0.0 {
        acc += cv * fast_ln_u_plus_r(v, u2 + z2);
    }
    if u != 0.0 && v != 0.0 && z != 0.0 {
        acc -= u * v * z * (fast_atan(u * v / (z * r)) - fast_atan(v / z));
    }
    acc
}

/// Drop-in replacement for `bemcap_quad::analytic::triple_primitive`
/// using the tabulated subroutines.
#[inline]
pub fn fast_triple_primitive(u: f64, v: f64, z: f64) -> f64 {
    let v2 = v * v;
    let z2 = z * z;
    let r2 = u * u + v2 + z2;
    let r = r2.sqrt();
    let mut acc = -u * r / 2.0 - r2 / 4.0;
    if u != 0.0 && v != 0.0 {
        acc += u * v * fast_ln_u_plus_r(v, u * u + z2);
    }
    let cu = (v2 - z2) / 2.0;
    if cu != 0.0 {
        acc += cu * fast_ln_u_plus_r(u, v2 + z2);
    }
    if z != 0.0 && u != 0.0 && v != 0.0 {
        acc -= z * v * fast_atan(u * v / (z * r));
    }
    acc
}

/// Total bytes held by the two subroutine tables.
pub fn table_memory_bytes() -> usize {
    (LOG_TABLE_LEN + ATAN_TABLE_LEN) * std::mem::size_of::<f32>()
}

/// Table 1, row 3: the analytic expression with tabulated subroutines.
#[derive(Debug, Clone, Copy)]
pub struct FastMathIntegrator {
    _priv: (),
}

impl FastMathIntegrator {
    /// Creates the integrator (forces table initialization so the first
    /// timed evaluation is not penalized).
    pub fn new() -> FastMathIntegrator {
        let _ = log_table();
        let _ = atan_table();
        FastMathIntegrator { _priv: () }
    }
}

impl Default for FastMathIntegrator {
    fn default() -> Self {
        FastMathIntegrator::new()
    }
}

impl Integrator2d for FastMathIntegrator {
    fn eval(&self, q: &RectQuery) -> f64 {
        let [ulo, uhi, vlo, vhi, z] = q.canonical();
        fast_double_primitive(uhi, vhi, z)
            - fast_double_primitive(uhi, vlo, z)
            - fast_double_primitive(ulo, vhi, z)
            + fast_double_primitive(ulo, vlo, z)
    }

    fn memory_bytes(&self) -> usize {
        table_memory_bytes()
    }

    fn name(&self) -> &'static str {
        "Tabulation of exp. routines"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::technique::{sample_queries, AnalyticIntegrator};

    #[test]
    fn fast_ln_accuracy() {
        for &x in &[1e-9, 0.001, 0.5, 1.0, 1.5, 2.0, std::f64::consts::PI, 1e3, 1e9] {
            let err = (fast_ln(x) - x.ln()).abs();
            assert!(err < 1e-4, "x={x}: err={err}");
        }
    }

    #[test]
    fn fast_atan_accuracy_and_oddness() {
        for i in 0..1000 {
            let x = -50.0 + i as f64 * 0.1;
            let err = (fast_atan(x) - x.atan()).abs();
            assert!(err < 2e-4, "x={x}: err={err}");
        }
        assert_eq!(fast_atan(-2.0), -fast_atan(2.0));
    }

    #[test]
    fn integrator_within_one_percent() {
        let fast = FastMathIntegrator::new();
        let exact = AnalyticIntegrator;
        for q in sample_queries(500, 7) {
            let e = exact.eval(&q);
            let f = fast.eval(&q);
            assert!((f - e).abs() <= 0.01 * e.abs().max(1e-12), "query {q:?}: exact {e}, fast {f}");
        }
    }

    #[test]
    fn primitives_close_to_exact() {
        use bemcap_quad::analytic;
        for &(u, v, z) in &[(0.5, 0.7, 0.3), (-1.0, 2.0, 0.4), (3.0, -2.0, 1.5), (0.0, 1.0, 0.0)] {
            let a = analytic::double_primitive(u, v, z);
            let b = fast_double_primitive(u, v, z);
            assert!((a - b).abs() < 1e-3 * a.abs().max(1.0), "dp({u},{v},{z})");
            let a4 = analytic::quad_primitive(u, v, z);
            let b4 = fast_quad_primitive(u, v, z);
            assert!((a4 - b4).abs() < 1e-3 * a4.abs().max(1.0), "qp({u},{v},{z})");
            let a3 = analytic::triple_primitive(u, v, z);
            let b3 = fast_triple_primitive(u, v, z);
            assert!((a3 - b3).abs() < 1e-3 * a3.abs().max(1.0), "tp({u},{v},{z})");
        }
    }

    #[test]
    fn memory_accounting() {
        assert_eq!(FastMathIntegrator::new().memory_bytes(), (16384 + 8192) * 4);
    }
}

//! # bemcap-accel — integration acceleration techniques (§4.2)
//!
//! With instantiable basis functions the system-setup step dominates, so
//! accelerating the per-entry integrals directly accelerates the solver.
//! This crate implements the paper's four techniques, all evaluating the
//! 2-D analytic expression f₂D of equation (13) (the collocation integral
//! of a rectangle):
//!
//! 1. [`table6d`] — **direct tabulation** of the definite integral on a
//!    parameter grid with multilinear interpolation (§4.2.1);
//! 2. [`table3d`] — **tabulation of the indefinite integral** (3
//!    parameters) with 4-corner evaluation (§4.2.2) — cheaper table, but
//!    ill-conditioned by cancellation, exactly as the paper warns;
//! 3. [`fastmath`] — **tabulation of expensive subroutines**: IEEE-754
//!    mantissa-indexed `log` and a zero-order-hold `atan` (§4.2.3) — the
//!    technique the paper selects for its implementation;
//! 4. [`rational`] — **rational fitting**: a multivariable rational
//!    function trained by constrained linear least squares, our stand-in
//!    for STINS \[2\] (§4.2.4, see DESIGN.md §3).
//!
//! All four implement [`Integrator2d`] next to the exact
//! [`AnalyticIntegrator`] baseline, so the Table 1 harness can time them
//! interchangeably.
//!
//! ```
//! use bemcap_accel::{AnalyticIntegrator, Integrator2d, RectQuery};
//! use bemcap_accel::fastmath::FastMathIntegrator;
//!
//! let q = RectQuery { x0: 0.0, x1: 1.0, y0: 0.0, y1: 1.0, z: 0.5, px: 0.5, py: 0.5 };
//! let exact = AnalyticIntegrator.eval(&q);
//! let fast = FastMathIntegrator::new().eval(&q);
//! assert!((fast - exact).abs() / exact < 0.01); // 1 % error tolerance
//! ```

pub mod error;
pub mod fastmath;
pub mod rational;
pub mod table3d;
pub mod table6d;
pub mod technique;

pub use error::AccelError;
pub use technique::{AnalyticIntegrator, Integrator2d, RectQuery, Technique};

//! Row-major dense matrices.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use crate::blas;
use crate::error::LinalgError;

/// A dense row-major `rows × cols` matrix of `f64`.
///
/// This is the system-matrix container for the whole workspace: the paper's
/// P (N×N), the right-hand side Φ (N×n) and the capacitance matrix C (n×n)
/// are all `Matrix` values.
///
/// ```
/// use bemcap_linalg::Matrix;
/// let mut m = Matrix::zeros(2, 3);
/// m.set(1, 2, 5.0);
/// assert_eq!(m.get(1, 2), 5.0);
/// assert_eq!(m.transpose().get(2, 1), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if rows have unequal
    /// lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Matrix, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::DimensionMismatch {
                op: "from_rows",
                detail: "empty input".into(),
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::DimensionMismatch {
                    op: "from_rows",
                    detail: format!("row {i} has {} entries, expected {cols}", r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Creates a matrix by evaluating `f(i, j)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Wraps an existing buffer (row-major).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the buffer length is not
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_vec",
                detail: format!("buffer {} != {rows}x{cols}", data.len()),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Side length of a square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn dim(&self) -> usize {
        assert_eq!(self.rows, self.cols, "dim() requires a square matrix");
        self.rows
    }

    /// Entry (i, j).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of range");
        self.data[i * self.cols + j]
    }

    /// Sets entry (i, j).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of range");
        self.data[i * self.cols + j] = v;
    }

    /// Adds `v` to entry (i, j).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of range");
        self.data[i * self.cols + j] += v;
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row {i} out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row {i} out of range");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col {j} out of range");
        (0..self.rows).map(|i| self.get(i, j)).collect()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The underlying row-major buffer, mutable.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: length mismatch (x.len()={}, cols={})",
            x.len(),
            self.cols
        );
        let mut y = vec![0.0; self.rows];
        blas::gemv(self.rows, self.cols, &self.data, x, &mut y);
        y
    }

    /// Matrix-matrix product using the cache-blocked kernel.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on incompatible shapes.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                detail: format!("{}x{} * {}x{}", self.rows, self.cols, other.rows, other.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        blas::gemm_blocked(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Scales every entry in place (elementwise kernel, bit-identical to
    /// the scalar loop).
    pub fn scale(&mut self, s: f64) {
        crate::kernels::scale(s, &mut self.data);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// `true` when the matrix is square and symmetric to relative
    /// tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let scale = self.max_abs().max(f64::MIN_POSITIVE);
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tol * scale {
                    return false;
                }
            }
        }
        true
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Estimated heap memory of the matrix payload in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "matrix {}x{}", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            let show_cols = self.cols.min(8);
            for j in 0..show_cols {
                write!(f, "{:>12.4e} ", self.get(i, j))?;
            }
            if self.cols > 8 {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > 8 {
            writeln!(f, "...")?;
        }
        Ok(())
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "add_assign: shape mismatch");
        // `1.0 * b == b` exactly in IEEE, so axpy keeps the merge
        // bit-identical to the old elementwise loop — the threaded
        // assembly's serial-vs-parallel pin depends on that.
        crate::kernels::axpy(1.0, &rhs.data, &mut self.data);
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "sub: shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        let mut m = self.clone();
        m.scale(s);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    fn from_rows_errors() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_and_matmul() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        let sq = m.matmul(&m).unwrap();
        assert_eq!(sq.get(0, 0), 7.0);
        assert_eq!(sq.get(1, 1), 22.0);
    }

    #[test]
    fn matmul_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_manual() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![6.0, 15.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(1e-14));
        assert!(!ns.is_symmetric(1e-14));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-14));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 4.0]]).unwrap();
        assert_eq!((&a + &b).row(0), &[4.0, 6.0]);
        assert_eq!((&b - &a).row(0), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).row(0), &[2.0, 4.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.row(0), &[4.0, 6.0]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn finiteness_and_memory() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.is_finite());
        m.set(0, 0, f64::NAN);
        assert!(!m.is_finite());
        assert_eq!(m.memory_bytes(), 4 * 8);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Matrix::zeros(10, 10)).is_empty());
    }
}

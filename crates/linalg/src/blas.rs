//! Cache-blocked dense kernels.
//!
//! The paper credits much of direct solving's practical speed to linear
//! algebra kernels that respect the memory hierarchy ("ATLAS, GotoBLAS, and
//! other hardware vendor optimized routines"). These are our Rust
//! equivalents: simple register-tiled, cache-blocked loops — not
//! hand-vectorized, but with the same blocking structure, and an order of
//! magnitude faster than naive triple loops on large sizes.

/// Cache block edge (in elements) for [`gemm_blocked`]. 64×64 f64 blocks are
/// 32 KiB — comfortably inside a typical L1d.
pub const BLOCK: usize = 64;

/// `y = A x` for row-major `A` (`m × n`).
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `n`.
pub fn gemv(m: usize, n: usize, a: &[f64], x: &[f64], y: &mut [f64]) {
    assert_eq!(a.len(), m * n, "gemv: matrix buffer size");
    assert_eq!(x.len(), n, "gemv: x length");
    assert_eq!(y.len(), m, "gemv: y length");
    for i in 0..m {
        let row = &a[i * n..(i + 1) * n];
        let mut acc = 0.0;
        for (aij, xj) in row.iter().zip(x) {
            acc += aij * xj;
        }
        y[i] = acc;
    }
}

/// `C += A B` with naive loops (reference kernel for testing).
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn gemm_naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm: A buffer size");
    assert_eq!(b.len(), k * n, "gemm: B buffer size");
    assert_eq!(c.len(), m * n, "gemm: C buffer size");
    for i in 0..m {
        for p in 0..k {
            let aip = a[i * k + p];
            if aip == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let crow = &mut c[i * n..(i + 1) * n];
            for (cij, bpj) in crow.iter_mut().zip(brow) {
                *cij += aip * bpj;
            }
        }
    }
}

/// `C += A B` with cache blocking (row-major, `A: m×k`, `B: k×n`).
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn gemm_blocked(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    assert_eq!(a.len(), m * k, "gemm: A buffer size");
    assert_eq!(b.len(), k * n, "gemm: B buffer size");
    assert_eq!(c.len(), m * n, "gemm: C buffer size");
    for ib in (0..m).step_by(BLOCK) {
        let im = (ib + BLOCK).min(m);
        for pb in (0..k).step_by(BLOCK) {
            let pm = (pb + BLOCK).min(k);
            for jb in (0..n).step_by(BLOCK) {
                let jm = (jb + BLOCK).min(n);
                // Micro-kernel on the (ib..im) × (jb..jm) block.
                for i in ib..im {
                    for p in pb..pm {
                        let aip = a[i * k + p];
                        let brow = &b[p * n + jb..p * n + jm];
                        let crow = &mut c[i * n + jb..i * n + jm];
                        for (cij, bpj) in crow.iter_mut().zip(brow) {
                            *cij += aip * bpj;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(m: usize, n: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        let mut v = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                v[i * n + j] = f(i, j);
            }
        }
        v
    }

    #[test]
    fn gemv_small() {
        let a = fill(2, 3, |i, j| (i * 3 + j) as f64);
        let mut y = vec![0.0; 2];
        gemv(2, 3, &a, &[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![0.0 - 2.0, 3.0 - 5.0]);
    }

    #[test]
    fn blocked_matches_naive_across_sizes() {
        // Exercise sizes around the block boundary.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (63, 64, 65), (70, 70, 70), (128, 33, 96)] {
            let a = fill(m, k, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
            let b = fill(k, n, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            gemm_naive(m, k, n, &a, &b, &mut c1);
            gemm_blocked(m, k, n, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_accumulates() {
        let a = vec![1.0];
        let b = vec![2.0];
        let mut c = vec![10.0];
        gemm_blocked(1, 1, 1, &a, &b, &mut c);
        assert_eq!(c, vec![12.0]);
    }

    #[test]
    #[should_panic]
    fn gemv_size_check() {
        let mut y = vec![0.0; 2];
        gemv(2, 3, &[0.0; 5], &[0.0; 3], &mut y);
    }
}

//! Cache-blocked dense kernels (thin façade over [`crate::kernels`]).
//!
//! The paper credits much of direct solving's practical speed to linear
//! algebra kernels that respect the memory hierarchy ("ATLAS, GotoBLAS, and
//! other hardware vendor optimized routines"). The actual loops now live in
//! [`crate::kernels`] — blocked, multi-accumulator, register-tiled — and
//! this module keeps the historical `blas::gemv`/`gemm_*` entry points so
//! existing callers and docs keep working.

/// Cache block edge (in elements) for [`gemm_blocked`] — re-exported from
/// [`crate::kernels::BLOCK`].
pub const BLOCK: usize = crate::kernels::BLOCK;

/// `y = A x` for row-major `A` (`m × n`), via the cache-blocked
/// [`crate::kernels::gemv`].
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `n`; messages name the
/// mismatched lengths.
pub fn gemv(m: usize, n: usize, a: &[f64], x: &[f64], y: &mut [f64]) {
    crate::kernels::gemv(m, n, a, x, y)
}

/// `C += A B` with naive loops (reference kernel for testing), via
/// [`crate::kernels::naive::gemm`].
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn gemm_naive(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    crate::kernels::naive::gemm(m, k, n, a, b, c)
}

/// `C += A B`, cache-blocked with a 4×4 register micro-kernel, via
/// [`crate::kernels::gemm`] (row-major, `A: m×k`, `B: k×n`).
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn gemm_blocked(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    crate::kernels::gemm(m, k, n, a, b, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(m: usize, n: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
        let mut v = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                v[i * n + j] = f(i, j);
            }
        }
        v
    }

    #[test]
    fn gemv_small() {
        let a = fill(2, 3, |i, j| (i * 3 + j) as f64);
        let mut y = vec![0.0; 2];
        gemv(2, 3, &a, &[1.0, 0.0, -1.0], &mut y);
        assert_eq!(y, vec![0.0 - 2.0, 3.0 - 5.0]);
    }

    #[test]
    fn blocked_matches_naive_across_sizes() {
        // Exercise sizes around the block boundary.
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (63, 64, 65), (70, 70, 70), (128, 33, 96)] {
            let a = fill(m, k, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
            let b = fill(k, n, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
            let mut c1 = vec![0.0; m * n];
            let mut c2 = vec![0.0; m * n];
            gemm_naive(m, k, n, &a, &b, &mut c1);
            gemm_blocked(m, k, n, &a, &b, &mut c2);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-9, "mismatch {x} vs {y}");
            }
        }
    }

    #[test]
    fn gemm_accumulates() {
        let a = vec![1.0];
        let b = vec![2.0];
        let mut c = vec![10.0];
        gemm_blocked(1, 1, 1, &a, &b, &mut c);
        assert_eq!(c, vec![12.0]);
    }

    #[test]
    #[should_panic]
    fn gemv_size_check() {
        let mut y = vec![0.0; 2];
        gemv(2, 3, &[0.0; 5], &[0.0; 3], &mut y);
    }
}

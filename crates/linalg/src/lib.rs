//! # bemcap-linalg — dense linear algebra substrate
//!
//! Self-contained dense linear algebra for the `bemcap` workspace: row-major
//! matrices, cache-blocked products, LU with partial pivoting (the "standard
//! direct method" the paper relies on for the tiny instantiable-basis
//! system), Cholesky, Householder QR / least squares (used by the rational
//! fitting of §4.2.4), and Krylov solvers (GMRES, CG) for the FASTCAP-style
//! baselines.
//!
//! ```
//! use bemcap_linalg::{Matrix, LuFactor};
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuFactor::new(a)?;
//! let x = lu.solve_vec(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + 1.0 * x[1] - 1.0).abs() < 1e-12);
//! # Ok::<(), bemcap_linalg::LinalgError>(())
//! ```

// The factorization/substitution kernels index several slices from one
// textbook loop index; iterator rewrites obscure the formulas.
#![allow(clippy::needless_range_loop)]

pub mod blas;
pub mod cholesky;
pub mod error;
pub mod kernels;
pub mod krylov;
pub mod lu;
pub mod matrix;
pub mod qr;
pub mod sparse;

pub use cholesky::CholeskyFactor;
pub use error::LinalgError;
pub use krylov::{
    cg, gmres, gmres_grouped, gmres_with, BlockJacobiPrecond, DenseOperator, DiagonalPrecond,
    IdentityPrecond, KrylovConfig, KrylovStats, LinearOperator, OperatorPrecond, PrecondKind,
    Preconditioner,
};
pub use lu::LuFactor;
pub use matrix::Matrix;
pub use qr::{least_squares, QrFactor};
pub use sparse::{SparseBuilder, SparseMatrix};

/// Euclidean norm of a slice (chunked reduction — see [`kernels::norm2`]).
pub fn norm2(v: &[f64]) -> f64 {
    kernels::norm2(v)
}

/// Dot product of two slices (chunked reduction — see [`kernels::dot`]).
///
/// # Panics
///
/// Panics if the slices have different lengths; the message names both.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    kernels::dot(a, b)
}

/// `y += alpha * x` (elementwise, bit-identical to the scalar loop —
/// see [`kernels::axpy`]).
///
/// # Panics
///
/// Panics if the slices have different lengths; the message names both.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    kernels::axpy(alpha, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_helpers() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch (a.len()=1, b.len()=2)")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}

//! LU factorization with partial pivoting.
//!
//! This is the "standard direct method" of the paper's §3: with instantiable
//! basis functions the system is small (N in the hundreds), so Gaussian
//! elimination is cheap and — unlike approximated Krylov matvecs — maps onto
//! highly optimized dense kernels.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// An LU factorization `P A = L U` with partial (row) pivoting.
///
/// ```
/// use bemcap_linalg::{LuFactor, Matrix};
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[3.0, 1.0]])?;
/// let lu = LuFactor::new(a)?;
/// let x = lu.solve_vec(&[2.0, 4.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), bemcap_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (for determinants).
    perm_sign: f64,
}

impl LuFactor {
    /// Factorizes a square matrix, consuming it.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square;
    /// * [`LinalgError::NotFinite`] if `a` has non-finite entries;
    /// * [`LinalgError::Singular`] when a pivot column is exactly zero.
    pub fn new(a: Matrix) -> Result<LuFactor, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "lu",
                detail: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NotFinite);
        }
        let n = a.rows();
        let mut lu = a;
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        // Work on the raw row-major buffer with slice operations so the
        // rank-1 update inner loop vectorizes — the "optimized linear
        // algebra" the paper's direct-solve argument leans on.
        let data = lu.as_mut_slice();
        let mut pivot_row = vec![0.0f64; n];
        for k in 0..n {
            // Partial pivoting: choose the largest |entry| in column k.
            let mut piv = k;
            let mut max = data[k * n + k].abs();
            for i in (k + 1)..n {
                let v = data[i * n + k].abs();
                if v > max {
                    max = v;
                    piv = i;
                }
            }
            if max == 0.0 {
                return Err(LinalgError::Singular { index: k });
            }
            if piv != k {
                for j in 0..n {
                    data.swap(k * n + j, piv * n + j);
                }
                perm.swap(k, piv);
                perm_sign = -perm_sign;
            }
            let pivot = data[k * n + k];
            // Snapshot the pivot row's trailing segment once; the update
            // loop then touches disjoint rows only.
            pivot_row[k + 1..n].copy_from_slice(&data[k * n + k + 1..(k + 1) * n]);
            for i in (k + 1)..n {
                let m = data[i * n + k] / pivot;
                data[i * n + k] = m;
                if m != 0.0 {
                    let row = &mut data[i * n + k + 1..(i + 1) * n];
                    let prow = &pivot_row[k + 1..n];
                    // r − m·p ≡ r + (−m)·p bit for bit (negation is
                    // exact), so the chunked elementwise axpy changes
                    // nothing but speed.
                    crate::kernels::axpy(-m, prow, row);
                }
            }
        }
        Ok(LuFactor { lu, perm, perm_sign })
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                detail: format!("rhs length {} != {n}", b.len()),
            });
        }
        // Apply permutation.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Both substitution sweeps are row·x dot products over the already
        // solved prefix/suffix; the chunked kernel reduction vectorizes
        // them (reassociated, deterministic — see `kernels` module docs).
        // Forward substitution with unit lower triangle.
        for i in 1..n {
            let row = self.lu.row(i);
            let (head, tail) = x.split_at_mut(i);
            tail[0] -= crate::kernels::dot(&row[..i], head);
        }
        // Back substitution with upper triangle.
        for i in (0..n).rev() {
            let row = self.lu.row(i);
            let (head, tail) = x.split_at_mut(i + 1);
            head[i] = (head[i] - crate::kernels::dot(&row[i + 1..], tail)) / row[i];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve_matrix",
                detail: format!("rhs rows {} != {n}", b.rows()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = b.col(j);
            let x = self.solve_vec(&col)?;
            for i in 0..n {
                out.set(i, j, x[i]);
            }
        }
        Ok(out)
    }

    /// Determinant of the factorized matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu.get(i, i);
        }
        d
    }

    /// Magnitude of the smallest pivot relative to the largest — a cheap
    /// conditioning indicator.
    pub fn pivot_ratio(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0_f64;
        for i in 0..self.dim() {
            let p = self.lu.get(i, i).abs();
            lo = lo.min(p);
            hi = hi.max(p);
        }
        lo / hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [4/5, 7/5]
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let lu = LuFactor::new(a).unwrap();
        let x = lu.solve_vec(&[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-14);
        assert!((x[1] - 1.4).abs() < 1e-14);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuFactor::new(a).unwrap();
        let x = lu.solve_vec(&[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let lu = LuFactor::new(a).unwrap();
        assert!((lu.det() + 2.0).abs() < 1e-12);
        // Permutation sign accounted for.
        let b = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((LuFactor::new(b).unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(LuFactor::new(a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(LuFactor::new(Matrix::zeros(2, 3)).is_err());
        let mut a = Matrix::identity(2);
        a.set(0, 1, f64::NAN);
        assert!(matches!(LuFactor::new(a), Err(LinalgError::NotFinite)));
    }

    #[test]
    fn matrix_rhs_round_trip() {
        let a =
            Matrix::from_fn(
                5,
                5,
                |i, j| if i == j { 10.0 } else { 1.0 / (1.0 + i as f64 + j as f64) },
            );
        let x_true = Matrix::from_fn(5, 3, |i, j| (i + j) as f64 + 0.5);
        let b = a.matmul(&x_true).unwrap();
        let lu = LuFactor::new(a).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        for i in 0..5 {
            for j in 0..3 {
                assert!((x.get(i, j) - x_true.get(i, j)).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn random_round_trip_large() {
        // Deterministic pseudo-random well-conditioned system.
        let n = 40;
        let a = Matrix::from_fn(n, n, |i, j| {
            let v = (((i * 733 + j * 97) % 199) as f64 / 199.0) - 0.5;
            if i == j {
                v + n as f64
            } else {
                v
            }
        });
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.matvec(&x_true);
        let lu = LuFactor::new(a).unwrap();
        let x = lu.solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
        assert!(lu.pivot_ratio() > 0.0);
    }

    #[test]
    fn rhs_length_checked() {
        let lu = LuFactor::new(Matrix::identity(3)).unwrap();
        assert!(lu.solve_vec(&[1.0, 2.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(2, 2)).is_err());
    }
}

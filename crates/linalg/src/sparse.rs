//! Minimal sparse matrices in triplet → CSR form.
//!
//! The full-chip stitcher assembles per-window capacitance blocks into one
//! chip-level matrix whose sparsity mirrors the window overlap structure:
//! a net couples only to nets sharing a window, so the n×n matrix of a
//! large layout is overwhelmingly empty. [`SparseMatrix`] is the result
//! type of that assembly — accumulate `(row, col, value)` triplets with
//! [`SparseBuilder`], then [`SparseBuilder::build`] compresses them into
//! compressed-sparse-row storage.
//!
//! The build is **deterministic**: triplets are stably sorted by
//! `(row, col)` and duplicates are summed in insertion order, so the same
//! triplet stream always produces bit-identical values — the property the
//! chip layer's "stitched result is independent of pool size" contract
//! rests on.
//!
//! ```
//! use bemcap_linalg::SparseMatrix;
//!
//! let mut b = SparseMatrix::builder(2, 2);
//! b.push(0, 0, 2.0);
//! b.push(1, 1, 3.0);
//! b.push(0, 0, 0.5); // duplicate: summed
//! let m = b.build();
//! assert_eq!(m.nnz(), 2);
//! assert_eq!(m.get(0, 0), 2.5);
//! assert_eq!(m.get(0, 1), 0.0);
//! ```

use std::fmt;

use crate::matrix::Matrix;

/// Triplet accumulator for a [`SparseMatrix`].
///
/// Created by [`SparseMatrix::builder`]. Entries may arrive in any order;
/// duplicates are allowed and summed at [`build`](SparseBuilder::build)
/// time (in insertion order, so the sum is reproducible).
#[derive(Debug, Clone)]
pub struct SparseBuilder {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl SparseBuilder {
    /// Adds one `(row, col, value)` triplet.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of range.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows, "sparse row {row} out of range 0..{}", self.rows);
        assert!(col < self.cols, "sparse col {col} out of range 0..{}", self.cols);
        self.entries.push((row, col, value));
    }

    /// Number of accumulated triplets (before duplicate merging).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no triplets have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compresses the triplets into CSR storage.
    ///
    /// Stable-sorts by `(row, col)` and sums duplicates in insertion
    /// order, so identical triplet streams build bit-identical matrices.
    pub fn build(mut self) -> SparseMatrix {
        self.entries.sort_by_key(|&(i, j, _)| (i, j));
        let mut col_idx = Vec::with_capacity(self.entries.len());
        let mut values: Vec<f64> = Vec::with_capacity(self.entries.len());
        let mut row_counts = vec![0usize; self.rows];
        let mut last: Option<(usize, usize)> = None;
        for &(i, j, v) in &self.entries {
            if last == Some((i, j)) {
                *values.last_mut().expect("slot exists when last is set") += v;
            } else {
                col_idx.push(j);
                values.push(v);
                row_counts[i] += 1;
                last = Some((i, j));
            }
        }
        let mut row_ptr = vec![0usize; self.rows + 1];
        for (i, &count) in row_counts.iter().enumerate() {
            row_ptr[i + 1] = row_ptr[i] + count;
        }
        SparseMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

/// An immutable sparse matrix in compressed-sparse-row storage.
///
/// Built from triplets via [`SparseMatrix::builder`]. Entries within a
/// row are sorted by column, so [`get`](SparseMatrix::get) is a binary
/// search and iteration is row-major ordered.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    rows: usize,
    cols: usize,
    /// `row_ptr[i]..row_ptr[i+1]` indexes row `i`'s slots.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Starts a triplet accumulator for a `rows × cols` matrix.
    pub fn builder(rows: usize, cols: usize) -> SparseBuilder {
        SparseBuilder { rows, cols, entries: Vec::new() }
    }

    /// Builds directly from a triplet list (convenience over the builder).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> SparseMatrix {
        let mut b = SparseMatrix::builder(rows, cols);
        for &(i, j, v) in triplets {
            b.push(i, j, v);
        }
        b.build()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (structurally nonzero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Entry `(i, j)`, or `0.0` when the slot is not stored.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows, "sparse row {i} out of range 0..{}", self.rows);
        assert!(j < self.cols, "sparse col {j} out of range 0..{}", self.cols);
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// The stored `(column, value)` pairs of row `i`, column-sorted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        assert!(i < self.rows, "sparse row {i} out of range 0..{}", self.rows);
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Iterates stored entries as `(row, col, value)` in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |i| {
            let (cols, vals) = self.row(i);
            cols.iter().zip(vals).map(move |(&j, &v)| (i, j, v))
        })
    }

    /// `y = A x`, via the blocked CSR kernel ([`crate::kernels::spmv`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(
            x.len(),
            self.cols,
            "matvec: dimension mismatch (x.len()={}, cols={})",
            x.len(),
            self.cols
        );
        let mut y = vec![0.0; self.rows];
        crate::kernels::spmv(&self.row_ptr, &self.col_idx, &self.values, x, &mut y);
        y
    }

    /// Expands to a dense [`Matrix`] (for small matrices and tests).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for (i, j, v) in self.iter() {
            m.set(i, j, v);
        }
        m
    }

    /// Largest absolute stored entry (0 for an empty matrix).
    pub fn max_abs(&self) -> f64 {
        self.values.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Whether every stored entry is finite.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }

    /// Approximate resident size in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * size_of::<usize>()
            + self.col_idx.len() * size_of::<usize>()
            + self.values.len() * size_of::<f64>()
    }
}

impl fmt::Display for SparseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} sparse matrix, {} stored entries", self.rows, self.cols, self.nnz())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_sorts_and_compresses() {
        let m = SparseMatrix::from_triplets(3, 3, &[(2, 0, 5.0), (0, 1, 2.0), (0, 0, 1.0)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.get(1, 1), 0.0);
        let entries: Vec<_> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0, 1.0), (0, 1, 2.0), (2, 0, 5.0)]);
    }

    #[test]
    fn duplicates_sum_in_insertion_order() {
        let m = SparseMatrix::from_triplets(2, 2, &[(1, 1, 0.1), (0, 0, 1.0), (1, 1, 0.2)]);
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(1, 1), 0.1 + 0.2);
    }

    #[test]
    fn insertion_order_determines_bits() {
        // Same triplets, same insertion order, different interleaving of
        // other rows: values must be bit-identical.
        let a = SparseMatrix::from_triplets(2, 2, &[(0, 0, 1e-16), (0, 0, 1.0), (0, 0, -1.0)]);
        let b = SparseMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1e-16), (1, 0, 9.0), (0, 0, 1.0), (0, 0, -1.0)],
        );
        assert_eq!(a.get(0, 0).to_bits(), b.get(0, 0).to_bits());
    }

    #[test]
    fn empty_rows_have_monotone_pointers() {
        let m = SparseMatrix::from_triplets(4, 4, &[(3, 3, 1.0)]);
        for i in 0..4 {
            let (cols, _) = m.row(i);
            assert_eq!(cols.len(), usize::from(i == 3));
        }
        assert_eq!(m.get(3, 3), 1.0);
        let empty = SparseMatrix::builder(3, 2).build();
        assert_eq!(empty.nnz(), 0);
        assert_eq!(empty.get(2, 1), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let t = [(0, 0, 2.0), (0, 2, -1.0), (1, 1, 3.0), (2, 0, 0.5), (2, 2, 4.0)];
        let m = SparseMatrix::from_triplets(3, 3, &t);
        let x = [1.0, 2.0, 3.0];
        let dense = m.to_dense();
        assert_eq!(m.matvec(&x), dense.matvec(&x));
        assert_eq!(dense.get(0, 2), -1.0);
        assert_eq!(m.memory_bytes(), 4 * 8 + 5 * 8 + 5 * 8);
        assert!(m.is_finite());
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(format!("{m}"), "3x3 sparse matrix, 5 stored entries");
    }

    #[test]
    #[should_panic]
    fn out_of_range_push_panics() {
        let mut b = SparseMatrix::builder(2, 2);
        b.push(2, 0, 1.0);
    }

    #[test]
    fn builder_len() {
        let mut b = SparseMatrix::builder(2, 2);
        assert!(b.is_empty());
        b.push(0, 0, 1.0);
        b.push(0, 0, 1.0);
        assert_eq!(b.len(), 2);
        assert_eq!(b.build().nnz(), 1);
    }
}

//! Error types for linear algebra operations.

use std::error::Error;
use std::fmt;

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Matrix dimensions do not match the operation.
    DimensionMismatch {
        /// What was attempted.
        op: &'static str,
        /// Description of the shapes involved.
        detail: String,
    },
    /// A factorization hit a (numerically) singular pivot.
    Singular {
        /// Row/column index of the failing pivot.
        index: usize,
    },
    /// The matrix is not positive definite (Cholesky).
    NotPositiveDefinite {
        /// Index of the failing diagonal.
        index: usize,
    },
    /// An iterative solver failed to converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Final relative residual.
        residual: f64,
    },
    /// A non-finite value appeared in the input.
    NotFinite,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, detail } => {
                write!(f, "dimension mismatch in {op}: {detail}")
            }
            LinalgError::Singular { index } => {
                write!(f, "singular pivot at index {index}")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(f, "matrix not positive definite at diagonal {index}")
            }
            LinalgError::NoConvergence { iterations, residual } => {
                write!(f, "no convergence after {iterations} iterations (residual {residual:.3e})")
            }
            LinalgError::NotFinite => write!(f, "non-finite value in input"),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            LinalgError::Singular { index: 3 },
            LinalgError::NotPositiveDefinite { index: 1 },
            LinalgError::NoConvergence { iterations: 10, residual: 0.5 },
            LinalgError::NotFinite,
            LinalgError::DimensionMismatch { op: "gemm", detail: "2x3 * 4x5".into() },
        ] {
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<LinalgError>();
    }
}

//! Krylov subspace iterative solvers (GMRES, CG).
//!
//! These power the FASTCAP-style baselines: multipole- and FFT-accelerated
//! solvers replace the dense matrix by a fast approximate matvec operator
//! and iterate. The paper's §1 observes that precisely this structure — a
//! large residual vector shared across compute nodes every iteration — is
//! what ruins their parallel scalability; we reproduce that structure
//! faithfully via the [`LinearOperator`] abstraction.
//!
//! The Arnoldi orthogonalization and solution-update loops run on the
//! chunked [`crate::kernels`] `dot`/`axpy`/`norm2` (via the crate-root
//! re-exports), so every GMRES iteration gets the multi-accumulator
//! reductions without this module knowing about blocking.

use crate::error::LinalgError;
use crate::lu::LuFactor;
use crate::matrix::Matrix;
use crate::{axpy, dot, norm2};

/// Abstract matrix-vector product, the interface between Krylov solvers and
/// the dense/FMM/pFFT backends.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `x.len() != dim()` or
    /// `y.len() != dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Applies an approximate inverse for preconditioning, `y = M⁻¹ x`.
    /// The default is the identity (no preconditioning).
    fn precondition(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(x);
    }
}

/// An approximate inverse `y = M⁻¹ x` applied on the right of GMRES.
///
/// Splitting the preconditioner from the [`LinearOperator`] lets one
/// operator (an FMM or pFFT matvec) run under different preconditioners —
/// the identity, its own diagonal, or a block-Jacobi built from exact
/// near-field entries — without rebuilding anything.
pub trait Preconditioner {
    /// Computes `y = M⁻¹ x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `x.len() != y.len()` or when the
    /// length does not match the preconditioner's dimension.
    fn apply_inv(&self, x: &[f64], y: &mut [f64]);
}

/// No preconditioning: `M = I`.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPrecond;

impl Preconditioner for IdentityPrecond {
    fn apply_inv(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(x);
    }
}

/// Jacobi (diagonal) preconditioning from a stored inverse diagonal.
#[derive(Debug, Clone)]
pub struct DiagonalPrecond {
    inv_diag: Vec<f64>,
}

impl DiagonalPrecond {
    /// Wraps an already-inverted diagonal (`inv_diag[i] = 1/A_ii`).
    pub fn new(inv_diag: Vec<f64>) -> DiagonalPrecond {
        DiagonalPrecond { inv_diag }
    }

    /// Builds from the raw diagonal; exact zeros fall back to 1 so the
    /// preconditioner stays well-defined.
    pub fn from_diagonal(diag: &[f64]) -> DiagonalPrecond {
        DiagonalPrecond {
            inv_diag: diag.iter().map(|&d| if d != 0.0 { 1.0 / d } else { 1.0 }).collect(),
        }
    }

    /// The stored inverse diagonal.
    pub fn inv_diag(&self) -> &[f64] {
        &self.inv_diag
    }
}

impl Preconditioner for DiagonalPrecond {
    fn apply_inv(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..x.len() {
            y[i] = x[i] * self.inv_diag[i];
        }
    }
}

/// Block-Jacobi preconditioning: the operator's diagonal blocks (over
/// contiguous index ranges) are LU-factored once and back-substituted on
/// every application.
#[derive(Debug, Clone)]
pub struct BlockJacobiPrecond {
    /// Start index of each block (blocks are contiguous and in order).
    starts: Vec<usize>,
    factors: Vec<LuFactor>,
    dim: usize,
}

impl BlockJacobiPrecond {
    /// Factors the given contiguous diagonal blocks, consuming them.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] for a non-square block;
    /// * [`LinalgError::Singular`] when a block is singular.
    pub fn new(blocks: Vec<Matrix>) -> Result<BlockJacobiPrecond, LinalgError> {
        let mut starts = Vec::with_capacity(blocks.len());
        let mut factors = Vec::with_capacity(blocks.len());
        let mut dim = 0;
        for block in blocks {
            starts.push(dim);
            dim += block.rows();
            factors.push(LuFactor::new(block)?);
        }
        Ok(BlockJacobiPrecond { starts, factors, dim })
    }

    /// Total dimension covered by the blocks.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of diagonal blocks.
    pub fn block_count(&self) -> usize {
        self.factors.len()
    }
}

impl Preconditioner for BlockJacobiPrecond {
    fn apply_inv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.dim, "block-jacobi dimension mismatch");
        for (start, factor) in self.starts.iter().zip(&self.factors) {
            let end = start + factor.dim();
            let sol =
                factor.solve_vec(&x[*start..end]).expect("block shape fixed at factorization");
            y[*start..end].copy_from_slice(&sol);
        }
    }
}

/// Adapter: an operator's own [`LinearOperator::precondition`] viewed as a
/// [`Preconditioner`] (the historical behavior of [`gmres`]).
#[derive(Clone, Copy)]
pub struct OperatorPrecond<'a>(pub &'a dyn LinearOperator);

impl Preconditioner for OperatorPrecond<'_> {
    fn apply_inv(&self, x: &[f64], y: &mut [f64]) {
        self.0.precondition(x, y);
    }
}

/// Which preconditioner an iterative backend builds — the typed,
/// digestible description that travels through solver configs and the
/// wire protocol (the actual [`Preconditioner`] is built at prepare
/// time from the operator's entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrecondKind {
    /// No preconditioning.
    Identity,
    /// Jacobi from the operator's exact diagonal (the default).
    #[default]
    Diagonal,
    /// Block-Jacobi over contiguous index blocks of the given size.
    BlockJacobi {
        /// Panels per diagonal block (clamped to at least 1).
        block: usize,
    },
}

/// Iterative-solver caps shared by every Krylov-backed backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KrylovConfig {
    /// Relative residual tolerance ‖b − Ax‖/‖b‖.
    pub tol: f64,
    /// GMRES restart length.
    pub restart: usize,
    /// Cap on total matvecs per right-hand side.
    pub max_iters: usize,
}

impl Default for KrylovConfig {
    fn default() -> KrylovConfig {
        KrylovConfig { tol: 1e-6, restart: 40, max_iters: 600 }
    }
}

/// A dense matrix viewed as a [`LinearOperator`] with Jacobi (diagonal)
/// preconditioning.
#[derive(Debug, Clone)]
pub struct DenseOperator {
    a: Matrix,
    inv_diag: Vec<f64>,
}

impl DenseOperator {
    /// Wraps a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `a` is not square.
    pub fn new(a: Matrix) -> Result<DenseOperator, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "dense_operator",
                detail: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let inv_diag = (0..a.rows())
            .map(|i| {
                let d = a.get(i, i);
                if d != 0.0 {
                    1.0 / d
                } else {
                    1.0
                }
            })
            .collect();
        Ok(DenseOperator { a, inv_diag })
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }
}

impl LinearOperator for DenseOperator {
    fn dim(&self) -> usize {
        self.a.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let r = self.a.matvec(x);
        y.copy_from_slice(&r);
    }

    fn precondition(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..x.len() {
            y[i] = x[i] * self.inv_diag[i];
        }
    }
}

/// Statistics returned by the Krylov solvers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KrylovStats {
    /// Matrix-vector products performed (the iteration count).
    pub matvecs: usize,
    /// Times the GMRES Arnoldi basis was discarded and rebuilt (0 when
    /// convergence happened inside the first restart cycle).
    pub restarts: usize,
    /// Final relative residual ‖b − Ax‖/‖b‖.
    pub residual: f64,
}

impl KrylovStats {
    /// Accumulates another solve's counters into this one (residual keeps
    /// the worst of the two — the number that bounds every solution).
    pub fn absorb(&mut self, other: KrylovStats) {
        self.matvecs += other.matvecs;
        self.restarts += other.restarts;
        self.residual = self.residual.max(other.residual);
    }
}

/// Restarted, right-preconditioned GMRES(m) with the operator's own
/// [`LinearOperator::precondition`] as `M⁻¹`.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b.len() != op.dim()`;
/// * [`LinalgError::NoConvergence`] if the residual has not dropped below
///   `tol` after `max_iters` total inner iterations.
pub fn gmres(
    op: &dyn LinearOperator,
    b: &[f64],
    restart: usize,
    tol: f64,
    max_iters: usize,
) -> Result<(Vec<f64>, KrylovStats), LinalgError> {
    gmres_with(op, &OperatorPrecond(op), b, &KrylovConfig { tol, restart, max_iters })
}

/// Restarted, right-preconditioned GMRES(m) with an explicit
/// [`Preconditioner`] — the one Krylov driver behind every iterative
/// backend (FMM and pFFT both solve through here).
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b.len() != op.dim()`;
/// * [`LinalgError::NoConvergence`] if the residual has not dropped below
///   `cfg.tol` after `cfg.max_iters` total inner iterations.
pub fn gmres_with(
    op: &dyn LinearOperator,
    pre: &dyn Preconditioner,
    b: &[f64],
    cfg: &KrylovConfig,
) -> Result<(Vec<f64>, KrylovStats), LinalgError> {
    let n = op.dim();
    let (tol, max_iters) = (cfg.tol, cfg.max_iters);
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "gmres",
            detail: format!("rhs length {} != {n}", b.len()),
        });
    }
    let m = cfg.restart.max(1).min(n.max(1));
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return Ok((vec![0.0; n], KrylovStats::default()));
    }
    let mut x = vec![0.0; n];
    let mut matvecs = 0;
    let mut cycles = 0usize;
    let mut scratch = vec![0.0; n];
    let mut precond = vec![0.0; n];
    loop {
        // r = b - A x
        op.apply(&x, &mut scratch);
        matvecs += 1;
        let mut r: Vec<f64> = b.iter().zip(&scratch).map(|(bi, ai)| bi - ai).collect();
        let beta = norm2(&r);
        let restarts = cycles.saturating_sub(1);
        if beta / bnorm < tol {
            return Ok((x, KrylovStats { matvecs, restarts, residual: beta / bnorm }));
        }
        if matvecs >= max_iters {
            return Err(LinalgError::NoConvergence { iterations: matvecs, residual: beta / bnorm });
        }
        for ri in &mut r {
            *ri /= beta;
        }
        // Arnoldi with right preconditioning: K_j = span{ A M^-1 v }.
        let mut v: Vec<Vec<f64>> = vec![r];
        let mut h = vec![vec![0.0; m]; m + 1]; // h[i][j]
        let mut cs = vec![0.0; m];
        let mut sn = vec![0.0; m];
        let mut g = vec![0.0; m + 1];
        g[0] = beta;
        let mut j_done = 0;
        for j in 0..m {
            pre.apply_inv(&v[j], &mut precond);
            op.apply(&precond, &mut scratch);
            matvecs += 1;
            let mut w = scratch.clone();
            // Modified Gram-Schmidt.
            for (i, vi) in v.iter().enumerate() {
                let hij = dot(&w, vi);
                h[i][j] = hij;
                axpy(-hij, vi, &mut w);
            }
            let hj1 = norm2(&w);
            h[j + 1][j] = hj1;
            // Apply previous Givens rotations to column j.
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            // New rotation to annihilate h[j+1][j].
            let denom = (h[j][j] * h[j][j] + hj1 * hj1).sqrt();
            if denom == 0.0 {
                cs[j] = 1.0;
                sn[j] = 0.0;
            } else {
                cs[j] = h[j][j] / denom;
                sn[j] = hj1 / denom;
            }
            h[j][j] = cs[j] * h[j][j] + sn[j] * h[j + 1][j];
            h[j + 1][j] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            j_done = j + 1;
            let rel = g[j + 1].abs() / bnorm;
            if hj1 == 0.0 || rel < tol || matvecs >= max_iters {
                break;
            }
            for wi in &mut w {
                *wi /= hj1;
            }
            v.push(w);
        }
        // Solve the small triangular system for the update coefficients.
        let k = j_done;
        let mut y = vec![0.0; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for l in (i + 1)..k {
                acc -= h[i][l] * y[l];
            }
            y[i] = acc / h[i][i];
        }
        // x += M^-1 (V y)
        let mut update = vec![0.0; n];
        for (l, yl) in y.iter().enumerate() {
            axpy(*yl, &v[l], &mut update);
        }
        pre.apply_inv(&update, &mut precond);
        axpy(1.0, &precond, &mut x);
        cycles += 1;
        // Outer loop re-checks the true residual.
    }
}

/// The shared multi-right-hand-side capacitance driver: one preconditioned
/// GMRES solve per group (conductor), accumulating the grouped quadratic
/// form `C[g][k] = Σ_{i: group_of[i]=g} w_i x^{(k)}_i` where `x^{(k)}`
/// solves `A x = b^{(k)}` with `b^{(k)}_i = w_i [group_of[i] = k]`.
///
/// This is exactly the solve loop the FASTCAP-style baselines used to
/// duplicate: `w` are the Galerkin panel areas, groups are conductors, and
/// the result is the short-circuit capacitance matrix. Stats are
/// aggregated across all right-hand sides (matvecs and restarts summed,
/// residual the worst observed).
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `weights`/`group_of` do not
///   match `op.dim()` or a group index is out of range;
/// * any GMRES failure ([`LinalgError::NoConvergence`]).
pub fn gmres_grouped(
    op: &dyn LinearOperator,
    pre: &dyn Preconditioner,
    weights: &[f64],
    group_of: &[usize],
    groups: usize,
    cfg: &KrylovConfig,
) -> Result<(Matrix, KrylovStats), LinalgError> {
    let n = op.dim();
    if weights.len() != n || group_of.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "gmres_grouped",
            detail: format!("weights {} / groups {} != {n}", weights.len(), group_of.len()),
        });
    }
    if let Some(&bad) = group_of.iter().find(|&&g| g >= groups) {
        return Err(LinalgError::DimensionMismatch {
            op: "gmres_grouped",
            detail: format!("group index {bad} out of range 0..{groups}"),
        });
    }
    let mut c = Matrix::zeros(groups, groups);
    let mut stats = KrylovStats::default();
    for k in 0..groups {
        let rhs: Vec<f64> =
            weights.iter().zip(group_of).map(|(&w, &g)| if g == k { w } else { 0.0 }).collect();
        let (x, s) = gmres_with(op, pre, &rhs, cfg)?;
        stats.absorb(s);
        for (i, &g) in group_of.iter().enumerate() {
            c.add_to(g, k, weights[i] * x[i]);
        }
    }
    Ok((c, stats))
}

/// Conjugate gradients for symmetric positive-definite operators.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b.len() != op.dim()`;
/// * [`LinalgError::NoConvergence`] after `max_iters` iterations.
pub fn cg(
    op: &dyn LinearOperator,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> Result<(Vec<f64>, KrylovStats), LinalgError> {
    let n = op.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cg",
            detail: format!("rhs length {} != {n}", b.len()),
        });
    }
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return Ok((vec![0.0; n], KrylovStats::default()));
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    op.precondition(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];
    let mut matvecs = 0;
    for _ in 0..max_iters {
        op.apply(&p, &mut ap);
        matvecs += 1;
        let alpha = rz / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let res = norm2(&r) / bnorm;
        if res < tol {
            return Ok((x, KrylovStats { matvecs, restarts: 0, residual: res }));
        }
        op.precondition(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Err(LinalgError::NoConvergence { iterations: matvecs, residual: norm2(&r) / bnorm })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + i as f64 * 0.1
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs().powi(2))
            }
        })
    }

    #[test]
    fn gmres_solves_spd() {
        let n = 30;
        let a = spd(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let b = a.matvec(&x_true);
        let op = DenseOperator::new(a).unwrap();
        let (x, stats) = gmres(&op, &b, 20, 1e-12, 500).unwrap();
        assert!(stats.residual < 1e-12);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn gmres_nonsymmetric() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[0.1, 3.0, -1.0], &[0.0, 0.5, 4.0]]).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let op = DenseOperator::new(a.clone()).unwrap();
        let (x, _) = gmres(&op, &b, 3, 1e-13, 200).unwrap();
        let ax = a.matvec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn gmres_with_restart_smaller_than_dim() {
        let n = 25;
        let a = spd(n);
        let b = vec![1.0; n];
        let op = DenseOperator::new(a).unwrap();
        let (x, stats) = gmres(&op, &b, 5, 1e-10, 2000).unwrap();
        assert!(stats.residual < 1e-10);
        assert!(!x.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn cg_solves_spd() {
        let n = 40;
        let a = spd(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let b = a.matvec(&x_true);
        let op = DenseOperator::new(a).unwrap();
        let (x, stats) = cg(&op, &b, 1e-12, 500).unwrap();
        assert!(stats.residual < 1e-12);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let op = DenseOperator::new(Matrix::identity(4)).unwrap();
        let (x, stats) = gmres(&op, &[0.0; 4], 4, 1e-12, 10).unwrap();
        assert_eq!(x, vec![0.0; 4]);
        assert_eq!(stats.matvecs, 0);
        let (x, _) = cg(&op, &[0.0; 4], 1e-12, 10).unwrap();
        assert_eq!(x, vec![0.0; 4]);
    }

    #[test]
    fn no_convergence_reported() {
        let op = DenseOperator::new(spd(20)).unwrap();
        let err = gmres(&op, &[1.0; 20], 2, 1e-30, 3);
        assert!(matches!(err, Err(LinalgError::NoConvergence { .. })));
    }

    #[test]
    fn dimension_checked() {
        let op = DenseOperator::new(Matrix::identity(3)).unwrap();
        assert!(gmres(&op, &[1.0; 2], 2, 1e-10, 10).is_err());
        assert!(cg(&op, &[1.0; 2], 1e-10, 10).is_err());
        assert!(DenseOperator::new(Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn gmres_wrapper_is_bit_identical_to_explicit_operator_precond() {
        let n = 25;
        let a = spd(n);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).cos()).collect();
        let op = DenseOperator::new(a).unwrap();
        let (x1, s1) = gmres(&op, &b, 7, 1e-11, 1000).unwrap();
        let cfg = KrylovConfig { tol: 1e-11, restart: 7, max_iters: 1000 };
        let (x2, s2) = gmres_with(&op, &OperatorPrecond(&op), &b, &cfg).unwrap();
        assert_eq!(x1, x2);
        assert_eq!((s1.matvecs, s1.residual.to_bits()), (s2.matvecs, s2.residual.to_bits()));
    }

    #[test]
    fn restarts_are_counted() {
        let n = 25;
        let a = spd(n);
        let b = vec![1.0; n];
        let op = DenseOperator::new(a).unwrap();
        // A restart length far below the dimension forces several cycles.
        let (_, tight) = gmres(&op, &b, 3, 1e-12, 2000).unwrap();
        assert!(tight.restarts > 0, "restart 3 on n=25 must cycle: {tight:?}");
        // Full-length GMRES converges inside the first cycle.
        let (_, full) = gmres(&op, &b, n, 1e-12, 2000).unwrap();
        assert_eq!(full.restarts, 0, "{full:?}");
    }

    #[test]
    fn diagonal_precond_matches_operator_precondition() {
        let n = 20;
        let a = spd(n);
        let diag: Vec<f64> = (0..n).map(|i| a.get(i, i)).collect();
        let op = DenseOperator::new(a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let cfg = KrylovConfig { tol: 1e-12, restart: 10, max_iters: 1000 };
        let (x1, _) = gmres_with(&op, &OperatorPrecond(&op), &b, &cfg).unwrap();
        let (x2, _) = gmres_with(&op, &DiagonalPrecond::from_diagonal(&diag), &b, &cfg).unwrap();
        // DenseOperator's internal precondition is exactly the diagonal.
        assert_eq!(x1, x2);
    }

    #[test]
    fn identity_and_block_jacobi_preconds_still_converge() {
        let n = 24;
        let a = spd(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 3) as f64 * 0.05).sin()).collect();
        let b = a.matvec(&x_true);
        let blocks: Vec<Matrix> = (0..n / 4)
            .map(|blk| Matrix::from_fn(4, 4, |i, j| a.get(blk * 4 + i, blk * 4 + j)))
            .collect();
        let bj = BlockJacobiPrecond::new(blocks).unwrap();
        assert_eq!(bj.dim(), n);
        assert_eq!(bj.block_count(), 6);
        let op = DenseOperator::new(a).unwrap();
        let cfg = KrylovConfig { tol: 1e-12, restart: 12, max_iters: 2000 };
        for pre in [&IdentityPrecond as &dyn Preconditioner, &bj] {
            let (x, stats) = gmres_with(&op, pre, &b, &cfg).unwrap();
            assert!(stats.residual < 1e-12);
            for (xi, ti) in x.iter().zip(&x_true) {
                assert!((xi - ti).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn block_jacobi_rejects_singular_blocks() {
        assert!(BlockJacobiPrecond::new(vec![Matrix::zeros(2, 2)]).is_err());
    }

    #[test]
    fn grouped_driver_matches_the_hand_rolled_loop() {
        // 8 unknowns in 2 groups with unit-ish weights: the grouped driver
        // must produce exactly the per-RHS loop it replaces.
        let n = 8;
        let a = spd(n);
        let weights: Vec<f64> = (0..n).map(|i| 1.0 + 0.1 * i as f64).collect();
        let group_of = [0, 0, 1, 1, 0, 1, 0, 1];
        let op = DenseOperator::new(a).unwrap();
        let cfg = KrylovConfig { tol: 1e-12, restart: 8, max_iters: 500 };
        let pre = OperatorPrecond(&op);
        let (c, stats) = gmres_grouped(&op, &pre, &weights, &group_of, 2, &cfg).unwrap();
        let mut want = Matrix::zeros(2, 2);
        let mut matvecs = 0;
        for k in 0..2 {
            let rhs: Vec<f64> = weights
                .iter()
                .zip(&group_of)
                .map(|(&w, &g)| if g == k { w } else { 0.0 })
                .collect();
            let (x, s) = gmres_with(&op, &pre, &rhs, &cfg).unwrap();
            matvecs += s.matvecs;
            for (i, &g) in group_of.iter().enumerate() {
                want.add_to(g, k, weights[i] * x[i]);
            }
        }
        assert_eq!(c.as_slice(), want.as_slice());
        assert_eq!(stats.matvecs, matvecs);
        // Symmetric operator, symmetric grouping: C is symmetric to solver
        // tolerance.
        assert!(c.is_symmetric(1e-9));
    }

    #[test]
    fn grouped_driver_checks_shapes() {
        let op = DenseOperator::new(Matrix::identity(3)).unwrap();
        let cfg = KrylovConfig::default();
        let pre = IdentityPrecond;
        assert!(gmres_grouped(&op, &pre, &[1.0; 2], &[0, 0, 0], 1, &cfg).is_err());
        assert!(gmres_grouped(&op, &pre, &[1.0; 3], &[0, 2, 0], 2, &cfg).is_err());
    }
}

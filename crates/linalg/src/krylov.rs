//! Krylov subspace iterative solvers (GMRES, CG).
//!
//! These power the FASTCAP-style baselines: multipole- and FFT-accelerated
//! solvers replace the dense matrix by a fast approximate matvec operator
//! and iterate. The paper's §1 observes that precisely this structure — a
//! large residual vector shared across compute nodes every iteration — is
//! what ruins their parallel scalability; we reproduce that structure
//! faithfully via the [`LinearOperator`] abstraction.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::{axpy, dot, norm2};

/// Abstract matrix-vector product, the interface between Krylov solvers and
/// the dense/FMM/pFFT backends.
pub trait LinearOperator {
    /// Dimension of the (square) operator.
    fn dim(&self) -> usize;

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `x.len() != dim()` or
    /// `y.len() != dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);

    /// Applies an approximate inverse for preconditioning, `y = M⁻¹ x`.
    /// The default is the identity (no preconditioning).
    fn precondition(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(x);
    }
}

/// A dense matrix viewed as a [`LinearOperator`] with Jacobi (diagonal)
/// preconditioning.
#[derive(Debug, Clone)]
pub struct DenseOperator {
    a: Matrix,
    inv_diag: Vec<f64>,
}

impl DenseOperator {
    /// Wraps a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `a` is not square.
    pub fn new(a: Matrix) -> Result<DenseOperator, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "dense_operator",
                detail: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let inv_diag = (0..a.rows())
            .map(|i| {
                let d = a.get(i, i);
                if d != 0.0 {
                    1.0 / d
                } else {
                    1.0
                }
            })
            .collect();
        Ok(DenseOperator { a, inv_diag })
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }
}

impl LinearOperator for DenseOperator {
    fn dim(&self) -> usize {
        self.a.rows()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let r = self.a.matvec(x);
        y.copy_from_slice(&r);
    }

    fn precondition(&self, x: &[f64], y: &mut [f64]) {
        for i in 0..x.len() {
            y[i] = x[i] * self.inv_diag[i];
        }
    }
}

/// Statistics returned by the Krylov solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KrylovStats {
    /// Matrix-vector products performed.
    pub matvecs: usize,
    /// Final relative residual ‖b − Ax‖/‖b‖.
    pub residual: f64,
}

/// Restarted, right-preconditioned GMRES(m).
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b.len() != op.dim()`;
/// * [`LinalgError::NoConvergence`] if the residual has not dropped below
///   `tol` after `max_iters` total inner iterations.
pub fn gmres(
    op: &dyn LinearOperator,
    b: &[f64],
    restart: usize,
    tol: f64,
    max_iters: usize,
) -> Result<(Vec<f64>, KrylovStats), LinalgError> {
    let n = op.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "gmres",
            detail: format!("rhs length {} != {n}", b.len()),
        });
    }
    let m = restart.max(1).min(n.max(1));
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return Ok((vec![0.0; n], KrylovStats { matvecs: 0, residual: 0.0 }));
    }
    let mut x = vec![0.0; n];
    let mut matvecs = 0;
    let mut scratch = vec![0.0; n];
    let mut precond = vec![0.0; n];
    loop {
        // r = b - A x
        op.apply(&x, &mut scratch);
        matvecs += 1;
        let mut r: Vec<f64> = b.iter().zip(&scratch).map(|(bi, ai)| bi - ai).collect();
        let beta = norm2(&r);
        if beta / bnorm < tol {
            return Ok((x, KrylovStats { matvecs, residual: beta / bnorm }));
        }
        if matvecs >= max_iters {
            return Err(LinalgError::NoConvergence { iterations: matvecs, residual: beta / bnorm });
        }
        for ri in &mut r {
            *ri /= beta;
        }
        // Arnoldi with right preconditioning: K_j = span{ A M^-1 v }.
        let mut v: Vec<Vec<f64>> = vec![r];
        let mut h = vec![vec![0.0; m]; m + 1]; // h[i][j]
        let mut cs = vec![0.0; m];
        let mut sn = vec![0.0; m];
        let mut g = vec![0.0; m + 1];
        g[0] = beta;
        let mut j_done = 0;
        for j in 0..m {
            op.precondition(&v[j], &mut precond);
            op.apply(&precond, &mut scratch);
            matvecs += 1;
            let mut w = scratch.clone();
            // Modified Gram-Schmidt.
            for (i, vi) in v.iter().enumerate() {
                let hij = dot(&w, vi);
                h[i][j] = hij;
                axpy(-hij, vi, &mut w);
            }
            let hj1 = norm2(&w);
            h[j + 1][j] = hj1;
            // Apply previous Givens rotations to column j.
            for i in 0..j {
                let t = cs[i] * h[i][j] + sn[i] * h[i + 1][j];
                h[i + 1][j] = -sn[i] * h[i][j] + cs[i] * h[i + 1][j];
                h[i][j] = t;
            }
            // New rotation to annihilate h[j+1][j].
            let denom = (h[j][j] * h[j][j] + hj1 * hj1).sqrt();
            if denom == 0.0 {
                cs[j] = 1.0;
                sn[j] = 0.0;
            } else {
                cs[j] = h[j][j] / denom;
                sn[j] = hj1 / denom;
            }
            h[j][j] = cs[j] * h[j][j] + sn[j] * h[j + 1][j];
            h[j + 1][j] = 0.0;
            g[j + 1] = -sn[j] * g[j];
            g[j] *= cs[j];
            j_done = j + 1;
            let rel = g[j + 1].abs() / bnorm;
            if hj1 == 0.0 || rel < tol || matvecs >= max_iters {
                break;
            }
            for wi in &mut w {
                *wi /= hj1;
            }
            v.push(w);
        }
        // Solve the small triangular system for the update coefficients.
        let k = j_done;
        let mut y = vec![0.0; k];
        for i in (0..k).rev() {
            let mut acc = g[i];
            for l in (i + 1)..k {
                acc -= h[i][l] * y[l];
            }
            y[i] = acc / h[i][i];
        }
        // x += M^-1 (V y)
        let mut update = vec![0.0; n];
        for (l, yl) in y.iter().enumerate() {
            axpy(*yl, &v[l], &mut update);
        }
        op.precondition(&update, &mut precond);
        axpy(1.0, &precond, &mut x);
        // Outer loop re-checks the true residual.
    }
}

/// Conjugate gradients for symmetric positive-definite operators.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b.len() != op.dim()`;
/// * [`LinalgError::NoConvergence`] after `max_iters` iterations.
pub fn cg(
    op: &dyn LinearOperator,
    b: &[f64],
    tol: f64,
    max_iters: usize,
) -> Result<(Vec<f64>, KrylovStats), LinalgError> {
    let n = op.dim();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "cg",
            detail: format!("rhs length {} != {n}", b.len()),
        });
    }
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return Ok((vec![0.0; n], KrylovStats { matvecs: 0, residual: 0.0 }));
    }
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = vec![0.0; n];
    op.precondition(&r, &mut z);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];
    let mut matvecs = 0;
    for _ in 0..max_iters {
        op.apply(&p, &mut ap);
        matvecs += 1;
        let alpha = rz / dot(&p, &ap);
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        let res = norm2(&r) / bnorm;
        if res < tol {
            return Ok((x, KrylovStats { matvecs, residual: res }));
        }
        op.precondition(&r, &mut z);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Err(LinalgError::NoConvergence { iterations: matvecs, residual: norm2(&r) / bnorm })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                4.0 + i as f64 * 0.1
            } else {
                1.0 / (1.0 + (i as f64 - j as f64).abs().powi(2))
            }
        })
    }

    #[test]
    fn gmres_solves_spd() {
        let n = 30;
        let a = spd(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * i) as f64 * 0.01).sin()).collect();
        let b = a.matvec(&x_true);
        let op = DenseOperator::new(a).unwrap();
        let (x, stats) = gmres(&op, &b, 20, 1e-12, 500).unwrap();
        assert!(stats.residual < 1e-12);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn gmres_nonsymmetric() {
        let a =
            Matrix::from_rows(&[&[2.0, 1.0, 0.0], &[0.1, 3.0, -1.0], &[0.0, 0.5, 4.0]]).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let op = DenseOperator::new(a.clone()).unwrap();
        let (x, _) = gmres(&op, &b, 3, 1e-13, 200).unwrap();
        let ax = a.matvec(&x);
        for (ai, bi) in ax.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn gmres_with_restart_smaller_than_dim() {
        let n = 25;
        let a = spd(n);
        let b = vec![1.0; n];
        let op = DenseOperator::new(a).unwrap();
        let (x, stats) = gmres(&op, &b, 5, 1e-10, 2000).unwrap();
        assert!(stats.residual < 1e-10);
        assert!(!x.iter().any(|v| v.is_nan()));
    }

    #[test]
    fn cg_solves_spd() {
        let n = 40;
        let a = spd(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let b = a.matvec(&x_true);
        let op = DenseOperator::new(a).unwrap();
        let (x, stats) = cg(&op, &b, 1e-12, 500).unwrap();
        assert!(stats.residual < 1e-12);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let op = DenseOperator::new(Matrix::identity(4)).unwrap();
        let (x, stats) = gmres(&op, &[0.0; 4], 4, 1e-12, 10).unwrap();
        assert_eq!(x, vec![0.0; 4]);
        assert_eq!(stats.matvecs, 0);
        let (x, _) = cg(&op, &[0.0; 4], 1e-12, 10).unwrap();
        assert_eq!(x, vec![0.0; 4]);
    }

    #[test]
    fn no_convergence_reported() {
        let op = DenseOperator::new(spd(20)).unwrap();
        let err = gmres(&op, &[1.0; 20], 2, 1e-30, 3);
        assert!(matches!(err, Err(LinalgError::NoConvergence { .. })));
    }

    #[test]
    fn dimension_checked() {
        let op = DenseOperator::new(Matrix::identity(3)).unwrap();
        assert!(gmres(&op, &[1.0; 2], 2, 1e-10, 10).is_err());
        assert!(cg(&op, &[1.0; 2], 1e-10, 10).is_err());
        assert!(DenseOperator::new(Matrix::zeros(2, 3)).is_err());
    }
}

//! Cholesky factorization for symmetric positive-definite systems.
//!
//! The Galerkin BEM matrix P of equation (3) is symmetric positive definite
//! for well-posed geometries, so Cholesky is the natural direct solver — it
//! halves both flops and memory traffic relative to LU.

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A lower-triangular Cholesky factor `A = L Lᵀ`.
///
/// ```
/// use bemcap_linalg::{CholeskyFactor, Matrix};
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = CholeskyFactor::new(&a)?;
/// let x = ch.solve_vec(&[6.0, 5.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), bemcap_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    l: Matrix,
}

impl CholeskyFactor {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `a` is not square;
    /// * [`LinalgError::NotFinite`] on non-finite input;
    /// * [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is
    ///   non-positive.
    pub fn new(a: &Matrix) -> Result<CholeskyFactor, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky",
                detail: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NotFinite);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut acc = a.get(i, j);
                for k in 0..j {
                    acc -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if acc <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { index: i });
                    }
                    l.set(i, i, acc.sqrt());
                } else {
                    l.set(i, j, acc / l.get(j, j));
                }
            }
        }
        Ok(CholeskyFactor { l })
    }

    /// System dimension.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor L.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                detail: format!("rhs length {} != {n}", b.len()),
            });
        }
        let mut x = b.to_vec();
        // L y = b
        for i in 0..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.l.get(i, j) * x[j];
            }
            x[i] = acc / self.l.get(i, i);
        }
        // Lᵀ x = y
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.l.get(j, i) * x[j];
            }
            x[i] = acc / self.l.get(i, i);
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != dim()`.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve_matrix",
                detail: format!("rhs rows {} != {n}", b.rows()),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve_vec(&b.col(j))?;
            for i in 0..n {
                out.set(i, j, x[i]);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_and_solve() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let ch = CholeskyFactor::new(&a).unwrap();
        // Known factor: L = [[5,0,0],[3,3,0],[-1,1,3]]
        assert!((ch.l().get(0, 0) - 5.0).abs() < 1e-12);
        assert!((ch.l().get(1, 0) - 3.0).abs() < 1e-12);
        assert!((ch.l().get(2, 2) - 3.0).abs() < 1e-12);
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = ch.solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(CholeskyFactor::new(&a), Err(LinalgError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn rejects_non_square_and_nan() {
        assert!(CholeskyFactor::new(&Matrix::zeros(2, 3)).is_err());
        let mut a = Matrix::identity(2);
        a.set(1, 1, f64::NAN);
        assert!(CholeskyFactor::new(&a).is_err());
    }

    #[test]
    fn matrix_rhs() {
        let a = Matrix::from_fn(4, 4, |i, j| if i == j { 6.0 } else { 1.0 });
        let ch = CholeskyFactor::new(&a).unwrap();
        let xt = Matrix::from_fn(4, 2, |i, j| (i + 2 * j) as f64);
        let b = a.matmul(&xt).unwrap();
        let x = ch.solve_matrix(&b).unwrap();
        for i in 0..4 {
            for j in 0..2 {
                assert!((x.get(i, j) - xt.get(i, j)).abs() < 1e-11);
            }
        }
    }
}

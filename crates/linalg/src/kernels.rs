//! Portable blocked compute kernels — the workspace's innermost loops.
//!
//! Every flop-bound path in the workspace (GMRES dot/axpy, dense and
//! sparse matvec, `gemm` behind `Matrix::matmul`, the pFFT precorrection
//! and the FMM near field) funnels through this module. The kernels are
//! plain safe Rust shaped so LLVM can vectorize them: reductions carry
//! [`LANES`] **independent partial accumulators** (breaking the serial
//! add chain that forbids SIMD on strict IEEE semantics), matrices are
//! walked in cache-sized panels, and the `gemm` inner loop is a 4×4
//! register tile. With FMA contraction enabled (`-C target-cpu=native`)
//! the accumulator updates fuse; without it they still vectorize.
//!
//! # Accumulation order
//!
//! Chunked reductions sum in a *different, but still deterministic*,
//! order than the textbook left-to-right loop: same inputs always give
//! the same bits, but the bits differ from [`naive`]'s by O(ε) rounding.
//! Callers that pin bit-identity across runs (batch, daemon, chip) are
//! unaffected — both runs go through the same kernel — but committed
//! fixtures generated before the rewire may move within their tolerance
//! bands. The [`naive`] submodule keeps the reference implementations:
//! property tests pin blocked-vs-naive agreement at 1e-12 relative
//! tolerance, and exact bit equality where a kernel promises it
//! ([`axpy`], [`scale`]).

/// Independent partial accumulators per reduction (and the chunk width
/// walked per iteration). Eight f64 lanes fill one AVX-512 register or
/// two AVX2 registers, and give enough independent add chains to hide
/// the floating-point add latency; on narrower ISAs the pattern still
/// buys instruction-level parallelism.
pub const LANES: usize = 8;

/// Cache block edge (in elements) for [`gemm`]. 64×64 f64 tiles are
/// 32 KiB — comfortably inside a typical L1d.
pub const BLOCK: usize = 64;

/// Column-panel width for [`gemv`]: an 8 KiB slice of `x` that stays
/// L1-resident while every row's partial dot streams over it.
pub const GEMV_COLS: usize = 1024;

/// Reference (scalar, left-to-right) implementations of every blocked
/// kernel. These are the semantics the blocked kernels approximate to
/// O(ε); the `kernels_properties` suite holds the two within 1e-12
/// relative tolerance on arbitrary shapes, including remainder lanes.
pub mod naive {
    /// Left-to-right dot product.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(
            a.len(),
            b.len(),
            "dot: length mismatch (a.len()={}, b.len()={})",
            a.len(),
            b.len()
        );
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    /// `y += alpha * x`, element at a time.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(
            x.len(),
            y.len(),
            "axpy: length mismatch (x.len()={}, y.len()={})",
            x.len(),
            y.len()
        );
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// `y = A x` with one accumulator per row (row-major `A`).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with `m`, `n`.
    pub fn gemv(m: usize, n: usize, a: &[f64], x: &[f64], y: &mut [f64]) {
        super::check_gemv(m, n, a, x, y);
        for (row, yi) in a.chunks_exact(n.max(1)).zip(y.iter_mut()) {
            let mut acc = 0.0;
            for (aij, xj) in row.iter().zip(x) {
                acc += aij * xj;
            }
            *yi = acc;
        }
    }

    /// `C += A B` with textbook triple loops (row-major).
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with `m`, `k`, `n`.
    pub fn gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
        super::check_gemm(m, k, n, a, b, c);
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                let brow = &b[p * n..(p + 1) * n];
                let crow = &mut c[i * n..(i + 1) * n];
                for (cij, bpj) in crow.iter_mut().zip(brow) {
                    *cij += aip * bpj;
                }
            }
        }
    }

    /// `y = A x` for CSR `A`, one left-to-right accumulator per row.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent CSR buffers (see [`super::spmv`]).
    pub fn spmv(row_ptr: &[usize], col_idx: &[usize], values: &[f64], x: &[f64], y: &mut [f64]) {
        super::check_spmv(row_ptr, col_idx, values, y);
        for (i, yi) in y.iter_mut().enumerate() {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            let mut acc = 0.0;
            for (j, v) in col_idx[lo..hi].iter().zip(&values[lo..hi]) {
                acc += v * x[*j];
            }
            *yi = acc;
        }
    }

    /// Gathered dot over `(index, value)` pairs, left to right.
    pub fn pair_dot(pairs: &[(u32, f64)], x: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &(j, v) in pairs {
            acc += v * x[j as usize];
        }
        acc
    }
}

#[inline]
fn check_gemv(m: usize, n: usize, a: &[f64], x: &[f64], y: &[f64]) {
    assert_eq!(a.len(), m * n, "gemv: matrix buffer is {} elements, expected {m}x{n}", a.len());
    assert_eq!(x.len(), n, "gemv: x length mismatch (x.len()={}, cols={n})", x.len());
    assert_eq!(y.len(), m, "gemv: y length mismatch (y.len()={}, rows={m})", y.len());
}

#[inline]
fn check_gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &[f64]) {
    assert_eq!(a.len(), m * k, "gemm: A buffer is {} elements, expected {m}x{k}", a.len());
    assert_eq!(b.len(), k * n, "gemm: B buffer is {} elements, expected {k}x{n}", b.len());
    assert_eq!(c.len(), m * n, "gemm: C buffer is {} elements, expected {m}x{n}", c.len());
}

#[inline]
fn check_spmv(row_ptr: &[usize], col_idx: &[usize], values: &[f64], y: &[f64]) {
    assert_eq!(
        row_ptr.len(),
        y.len() + 1,
        "spmv: row_ptr length mismatch (row_ptr.len()={}, rows={})",
        row_ptr.len(),
        y.len()
    );
    assert_eq!(
        col_idx.len(),
        values.len(),
        "spmv: col_idx/values length mismatch ({} vs {})",
        col_idx.len(),
        values.len()
    );
}

/// Reduces [`LANES`] partial accumulators pairwise — the one fixed
/// reduction order every chunked kernel shares.
#[inline(always)]
fn reduce(acc: [f64; LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Chunked dot product with [`LANES`] independent partial accumulators.
///
/// Deterministic, but the accumulation order differs from
/// [`naive::dot`]'s by design (see the module docs).
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch (a.len()={}, b.len()={})", a.len(), b.len());
    dot_unchecked(a, b)
}

/// [`dot`] minus the length check, for callers that slice both inputs
/// from one loop bound (the blocked `gemv` panels).
#[inline(always)]
fn dot_unchecked(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = a.len() / LANES * LANES;
    for (ca, cb) in a[..chunks].chunks_exact(LANES).zip(b[..chunks].chunks_exact(LANES)) {
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let mut tail = 0.0;
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        tail += x * y;
    }
    reduce(acc) + tail
}

/// Euclidean norm via the chunked [`dot`].
pub fn norm2(v: &[f64]) -> f64 {
    dot_unchecked(v, v).sqrt()
}

/// `y += alpha * x`.
///
/// **Bit-identity promise:** every `y[i]` is updated by exactly
/// `y[i] + alpha * x[i]` — there is no cross-element accumulation, so
/// the result is bit-identical to [`naive::axpy`] at every length.
///
/// Deliberately NOT hand-chunked: an elementwise update has no serial
/// dependency chain, so LLVM already vectorizes the plain zip loop at
/// full width — measured on the LU elimination pattern, manual
/// `LANES`-chunking made this ~65 % *slower* (worse tail handling,
/// blocked unrolling). Chunked accumulators only pay for reductions,
/// where strict IEEE ordering is what forbids vectorization.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(
        x.len(),
        y.len(),
        "axpy: length mismatch (x.len()={}, y.len()={})",
        x.len(),
        y.len()
    );
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `v *= alpha`, chunked. Elementwise, so bit-identical to the scalar
/// loop at every length (same promise as [`axpy`]).
#[inline]
pub fn scale(alpha: f64, v: &mut [f64]) {
    for vi in v {
        *vi *= alpha;
    }
}

/// Cache-blocked `y = A x` for row-major `A` (`m × n`).
///
/// Columns are walked in [`GEMV_COLS`]-wide panels so the active slice
/// of `x` stays L1-resident, and each row×panel partial product runs
/// through the chunked [`dot`] (so the reduction vectorizes). Panel
/// partials accumulate into `y` in ascending panel order —
/// deterministic, order differs from [`naive::gemv`].
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `n`.
pub fn gemv(m: usize, n: usize, a: &[f64], x: &[f64], y: &mut [f64]) {
    check_gemv(m, n, a, x, y);
    y.fill(0.0);
    if n == 0 {
        return;
    }
    for jb in (0..n).step_by(GEMV_COLS) {
        let jm = (jb + GEMV_COLS).min(n);
        let xp = &x[jb..jm];
        for (i, yi) in y.iter_mut().enumerate() {
            *yi += dot_unchecked(&a[i * n + jb..i * n + jm], xp);
        }
    }
}

/// `C += A B`, cache-blocked with a 4×4 register micro-kernel
/// (row-major, `A: m×k`, `B: k×n`).
///
/// The [`BLOCK`]-edge outer tiling is the classic three-loop cache
/// blocking; inside a tile, full 4×4 sub-tiles of `C` accumulate in
/// sixteen locals over the whole `p` range (one store per entry per
/// tile instead of one per `p`), and edge rows/columns fall back to a
/// scalar loop in the same `p` order. Deterministic; accumulation
/// order differs from [`naive::gemm`].
///
/// # Panics
///
/// Panics if slice lengths disagree with `m`, `k`, `n`.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], c: &mut [f64]) {
    check_gemm(m, k, n, a, b, c);
    const MR: usize = 4;
    const NR: usize = 4;
    for ib in (0..m).step_by(BLOCK) {
        let im = (ib + BLOCK).min(m);
        for pb in (0..k).step_by(BLOCK) {
            let pm = (pb + BLOCK).min(k);
            for jb in (0..n).step_by(BLOCK) {
                let jm = (jb + BLOCK).min(n);
                // Full 4×4 register tiles of the (ib..im) × (jb..jm)
                // block.
                let i_full = ib + (im - ib) / MR * MR;
                let j_full = jb + (jm - jb) / NR * NR;
                let mut i = ib;
                while i < i_full {
                    let mut j = jb;
                    while j < j_full {
                        let mut acc = [[0.0f64; NR]; MR];
                        for p in pb..pm {
                            let bq = &b[p * n + j..p * n + j + NR];
                            for (r, accr) in acc.iter_mut().enumerate() {
                                let aip = a[(i + r) * k + p];
                                for (s, slot) in accr.iter_mut().enumerate() {
                                    *slot += aip * bq[s];
                                }
                            }
                        }
                        for (r, accr) in acc.iter().enumerate() {
                            let crow = &mut c[(i + r) * n + j..(i + r) * n + j + NR];
                            for (cij, v) in crow.iter_mut().zip(accr) {
                                *cij += v;
                            }
                        }
                        j += NR;
                    }
                    // Right edge of the block: columns j_full..jm.
                    for r in 0..MR {
                        edge_row(k, n, a, b, c, i + r, pb, pm, j_full, jm);
                    }
                    i += MR;
                }
                // Bottom edge of the block: rows i_full..im, all columns.
                for ie in i_full..im {
                    edge_row(k, n, a, b, c, ie, pb, pm, jb, jm);
                }
            }
        }
    }
}

/// Scalar tail of [`gemm`]: `C[i, jb..jm] += A[i, pb..pm] B[pb..pm, jb..jm]`
/// with a per-entry accumulator over the same `p` order the micro-kernel
/// uses.
#[inline]
#[allow(clippy::too_many_arguments)]
fn edge_row(
    k: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    i: usize,
    pb: usize,
    pm: usize,
    jb: usize,
    jm: usize,
) {
    if jb == jm {
        return;
    }
    for j in jb..jm {
        let mut acc = 0.0;
        for p in pb..pm {
            acc += a[i * k + p] * b[p * n + j];
        }
        c[i * n + j] += acc;
    }
}

/// Blocked CSR `y = A x`: each row's gathered products accumulate into
/// [`LANES`] independent partials. Deterministic; accumulation order
/// differs from [`naive::spmv`].
///
/// # Panics
///
/// Panics when `row_ptr.len() != y.len() + 1` or
/// `col_idx.len() != values.len()`; out-of-range column indices panic
/// via slice indexing.
pub fn spmv(row_ptr: &[usize], col_idx: &[usize], values: &[f64], x: &[f64], y: &mut [f64]) {
    check_spmv(row_ptr, col_idx, values, y);
    for (i, yi) in y.iter_mut().enumerate() {
        let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
        *yi = gather_dot(&col_idx[lo..hi], &values[lo..hi], x);
    }
}

/// Chunked gathered dot: `Σ values[t] * x[col_idx[t]]` with [`LANES`]
/// partial accumulators (the per-row kernel of [`spmv`]).
#[inline]
pub fn gather_dot(col_idx: &[usize], values: &[f64], x: &[f64]) -> f64 {
    debug_assert_eq!(col_idx.len(), values.len());
    let mut acc = [0.0f64; LANES];
    let chunks = col_idx.len() / LANES * LANES;
    for (cj, cv) in col_idx[..chunks].chunks_exact(LANES).zip(values[..chunks].chunks_exact(LANES))
    {
        for l in 0..LANES {
            acc[l] += cv[l] * x[cj[l]];
        }
    }
    let mut tail = 0.0;
    for (j, v) in col_idx[chunks..].iter().zip(&values[chunks..]) {
        tail += v * x[*j];
    }
    reduce(acc) + tail
}

/// Chunked gathered dot over `(index, value)` pairs — the FMM
/// near-field and pFFT precorrection row kernel. Deterministic;
/// accumulation order differs from [`naive::pair_dot`].
#[inline]
pub fn pair_dot(pairs: &[(u32, f64)], x: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let chunks = pairs.len() / LANES * LANES;
    for quad in pairs[..chunks].chunks_exact(LANES) {
        for (l, &(j, v)) in quad.iter().enumerate() {
            acc[l] += v * x[j as usize];
        }
    }
    let mut tail = 0.0;
    for &(j, v) in &pairs[chunks..] {
        tail += v * x[j as usize];
    }
    reduce(acc) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random vector (splitmix64 → [-1, 1)).
    fn vector(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        (0..n)
            .map(|_| {
                s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    #[test]
    fn dot_matches_naive_across_remainders() {
        for n in [0, 1, 2, 3, 4, 5, 7, 8, 9, 63, 64, 65, 1000] {
            let a = vector(n, 1);
            let b = vector(n, 2);
            let blocked = dot(&a, &b);
            let reference = naive::dot(&a, &b);
            let scale: f64 =
                a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum::<f64>().max(f64::MIN_POSITIVE);
            assert!(
                (blocked - reference).abs() <= 1e-12 * scale,
                "n={n}: {blocked} vs {reference}"
            );
        }
    }

    #[test]
    fn axpy_is_bit_identical_to_naive() {
        for n in [0, 1, 3, 4, 5, 17, 64, 129] {
            let x = vector(n, 3);
            let mut y1 = vector(n, 4);
            let mut y2 = y1.clone();
            axpy(0.37, &x, &mut y1);
            naive::axpy(0.37, &x, &mut y2);
            for (a, b) in y1.iter().zip(&y2) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn gemv_matches_naive_across_panel_boundaries() {
        for (m, n) in [(1, 1), (3, 5), (7, 1023), (5, 1024), (4, 1025), (2, 2100)] {
            let a = vector(m * n, 5);
            let x = vector(n, 6);
            let mut y1 = vec![0.0; m];
            let mut y2 = vec![0.0; m];
            gemv(m, n, &a, &x, &mut y1);
            naive::gemv(m, n, &a, &x, &mut y2);
            for (i, (p, q)) in y1.iter().zip(&y2).enumerate() {
                assert!((p - q).abs() <= 1e-12 * n as f64, "({m},{n}) row {i}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn gemv_overwrites_stale_output() {
        let mut y = vec![7.0, 7.0];
        gemv(2, 2, &[1.0, 0.0, 0.0, 1.0], &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![3.0, 4.0]);
        // Degenerate shapes: n == 0 must still zero y.
        let mut y0 = vec![5.0];
        gemv(1, 0, &[], &[], &mut y0);
        assert_eq!(y0, vec![0.0]);
    }

    #[test]
    fn gemm_matches_naive_across_tile_edges() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 4, 4), (63, 64, 65), (70, 70, 70)] {
            let a = vector(m * k, 7);
            let b = vector(k * n, 8);
            let mut c1 = vector(m * n, 9);
            let mut c2 = c1.clone();
            gemm(m, k, n, &a, &b, &mut c1);
            naive::gemm(m, k, n, &a, &b, &mut c2);
            for (i, (p, q)) in c1.iter().zip(&c2).enumerate() {
                assert!((p - q).abs() <= 1e-12 * k as f64, "({m},{k},{n}) slot {i}: {p} vs {q}");
            }
        }
    }

    #[test]
    fn spmv_matches_naive_with_remainder_rows() {
        // A small banded CSR, rows of width 0..=6.
        let rows: usize = 9;
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for i in 0..rows {
            for j in i.saturating_sub(3)..(i + 3).min(rows) {
                col_idx.push(j);
                values.push(((i * 7 + j * 3) % 11) as f64 - 5.0);
            }
            row_ptr.push(col_idx.len());
        }
        let x = vector(rows, 10);
        let mut y1 = vec![0.0; rows];
        let mut y2 = vec![0.0; rows];
        spmv(&row_ptr, &col_idx, &values, &x, &mut y1);
        naive::spmv(&row_ptr, &col_idx, &values, &x, &mut y2);
        for (p, q) in y1.iter().zip(&y2) {
            assert!((p - q).abs() <= 1e-12, "{p} vs {q}");
        }
    }

    #[test]
    fn pair_dot_matches_naive() {
        let x = vector(40, 11);
        for len in [0, 1, 3, 4, 5, 9, 37] {
            let pairs: Vec<(u32, f64)> =
                (0..len).map(|t| ((t * 7 % 40) as u32, (t as f64 * 0.3).sin())).collect();
            let blocked = pair_dot(&pairs, &x);
            let reference = naive::pair_dot(&pairs, &x);
            assert!((blocked - reference).abs() <= 1e-12, "len={len}: {blocked} vs {reference}");
        }
    }

    #[test]
    fn norm2_and_scale() {
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        let mut v = vec![1.0, -2.0, 3.0];
        scale(2.0, &mut v);
        assert_eq!(v, vec![2.0, -4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dot: length mismatch (a.len()=1, b.len()=2)")]
    fn dot_names_both_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "axpy: length mismatch (x.len()=3, y.len()=1)")]
    fn axpy_names_both_lengths() {
        axpy(1.0, &[1.0, 2.0, 3.0], &mut [0.0]);
    }

    #[test]
    #[should_panic(expected = "gemv: x length mismatch (x.len()=2, cols=3)")]
    fn gemv_names_both_lengths() {
        let mut y = vec![0.0; 2];
        gemv(2, 3, &[0.0; 6], &[0.0; 2], &mut y);
    }
}

//! Householder QR factorization and linear least squares.
//!
//! Used by the rational-fitting acceleration technique (§4.2.4): the
//! coefficient fit (12) linearizes to an overdetermined linear system that
//! we solve in the 2-norm via QR — a numerically stable substitute for the
//! STINS machinery the paper cites (see DESIGN.md §3).

use crate::error::LinalgError;
use crate::matrix::Matrix;

/// A Householder QR factorization of an `m × n` matrix with `m ≥ n`.
///
/// ```
/// use bemcap_linalg::{least_squares, Matrix};
/// // Fit y = a + b t through three points, least squares.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let x = least_squares(&a, &[1.0, 2.0, 2.0])?;
/// assert!((x[1] - 0.5).abs() < 1e-12); // slope 1/2
/// # Ok::<(), bemcap_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct QrFactor {
    /// Householder vectors below the diagonal; R on and above it.
    qr: Matrix,
    /// Scalar β of each reflector H = I − β v vᵀ.
    betas: Vec<f64>,
}

impl QrFactor {
    /// Factorizes `a` (consuming it).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] when `m < n`;
    /// * [`LinalgError::NotFinite`] on non-finite input.
    pub fn new(a: Matrix) -> Result<QrFactor, LinalgError> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                op: "qr",
                detail: format!("{m}x{n} (need m >= n)"),
            });
        }
        if !a.is_finite() {
            return Err(LinalgError::NotFinite);
        }
        let mut qr = a;
        let mut betas = Vec::with_capacity(n);
        for k in 0..n {
            // Householder vector for column k, rows k..m.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr.get(i, k) * qr.get(i, k);
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                betas.push(0.0);
                continue;
            }
            let alpha = if qr.get(k, k) >= 0.0 { -norm } else { norm };
            // v = x - alpha e1, stored with v[k] implicit after scaling.
            let v0 = qr.get(k, k) - alpha;
            let beta = -v0 / alpha; // β = vᵀv/2 normalization folded in
                                    // Store normalized v (v[k] = 1 implicitly): v[i] /= v0.
            for i in (k + 1)..m {
                let t = qr.get(i, k) / v0;
                qr.set(i, k, t);
            }
            qr.set(k, k, alpha);
            betas.push(beta);
            // Apply H to the remaining columns.
            for j in (k + 1)..n {
                let mut s = qr.get(k, j);
                for i in (k + 1)..m {
                    s += qr.get(i, k) * qr.get(i, j);
                }
                s *= beta;
                qr.add_to(k, j, -s);
                for i in (k + 1)..m {
                    let vik = qr.get(i, k);
                    qr.add_to(i, j, -s * vik);
                }
            }
        }
        Ok(QrFactor { qr, betas })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns (unknowns).
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Solves the least-squares problem `min ||A x − b||₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] when `b.len() != rows()`;
    /// * [`LinalgError::Singular`] when R has a zero diagonal (rank
    ///   deficient).
    pub fn solve_ls(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = (self.rows(), self.cols());
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr_solve",
                detail: format!("rhs length {} != {m}", b.len()),
            });
        }
        // Apply Qᵀ to b.
        let mut y = b.to_vec();
        for k in 0..n {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut s = y[k];
            for i in (k + 1)..m {
                s += self.qr.get(i, k) * y[i];
            }
            s *= beta;
            y[k] -= s;
            for i in (k + 1)..m {
                y[i] -= s * self.qr.get(i, k);
            }
        }
        // Back-substitute R x = y[..n].
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr.get(i, j) * x[j];
            }
            let rii = self.qr.get(i, i);
            if rii == 0.0 {
                return Err(LinalgError::Singular { index: i });
            }
            x[i] = acc / rii;
        }
        Ok(x)
    }
}

/// One-shot least squares `min ||A x − b||₂` via Householder QR.
///
/// # Errors
///
/// Propagates the errors of [`QrFactor::new`] and [`QrFactor::solve_ls`].
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    QrFactor::new(a.clone())?.solve_ls(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_square_solve() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = least_squares(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn overdetermined_fit() {
        // Quadratic fit through noisy-free samples recovers coefficients.
        let ts: Vec<f64> = (0..10).map(|i| i as f64 / 3.0).collect();
        let a = Matrix::from_fn(10, 3, |i, j| ts[i].powi(j as i32));
        let b: Vec<f64> = ts.iter().map(|t| 1.5 - 2.0 * t + 0.25 * t * t).collect();
        let x = least_squares(&a, &b).unwrap();
        assert!((x[0] - 1.5).abs() < 1e-10);
        assert!((x[1] + 2.0).abs() < 1e-10);
        assert!((x[2] - 0.25).abs() < 1e-10);
    }

    #[test]
    fn residual_is_orthogonal_to_columns() {
        let a = Matrix::from_fn(8, 3, |i, j| ((i * 13 + j * 5) % 7) as f64 - 3.0);
        let b: Vec<f64> = (0..8).map(|i| (i as f64).cos()).collect();
        let x = least_squares(&a, &b).unwrap();
        let ax = a.matvec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, ai)| bi - ai).collect();
        // Aᵀ r ≈ 0 characterizes the LS minimizer.
        let at = a.transpose();
        for v in at.matvec(&r) {
            assert!(v.abs() < 1e-9, "normal equations violated: {v}");
        }
    }

    #[test]
    fn shape_errors() {
        assert!(QrFactor::new(Matrix::zeros(2, 3)).is_err());
        let qr = QrFactor::new(Matrix::identity(3)).unwrap();
        assert!(qr.solve_ls(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn rank_deficiency_detected() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let qr = QrFactor::new(a).unwrap();
        assert!(matches!(qr.solve_ls(&[1.0, 2.0, 3.0]), Err(LinalgError::Singular { .. })));
    }
}

//! Property tests for the blocked compute kernels.
//!
//! The blocked kernels in `bemcap_linalg::kernels` change accumulation
//! order relative to the textbook loops in `kernels::naive`. These tests
//! pin the contract: blocked and naive agree within **1e-12 relative
//! tolerance** at arbitrary sizes — including remainder lanes, sizes that
//! are not multiples of `LANES`, `BLOCK`, or the gemv column panel — and
//! elementwise kernels (`axpy`) are **bit-identical** to the scalar loop.
//!
//! The vendored proptest stub generates numeric scalars only, so vector
//! and matrix contents come from a deterministic splitmix64 generator
//! seeded by the proptest-drawn size/seed pair.

use bemcap_linalg::kernels::{self, naive};
use proptest::prelude::*;

/// Deterministic pseudo-random vector in [-1, 1) from a splitmix64 walk.
fn vector(n: usize, seed: u64) -> Vec<f64> {
    let mut s = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    (0..n)
        .map(|_| {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            ((z >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        })
        .collect()
}

/// `|blocked − reference| ≤ 1e-12 · scale`, where `scale` is the sum of
/// absolute products — the natural magnitude of the reduction, robust to
/// cancellation in the signed result.
fn close(blocked: f64, reference: f64, scale: f64) -> bool {
    (blocked - reference).abs() <= 1e-12 * scale.max(f64::MIN_POSITIVE)
}

proptest! {
    #[test]
    fn dot_blocked_matches_naive(n in 0usize..2200, seed in 0u64..1u64 << 32) {
        let a = vector(n, seed);
        let b = vector(n, seed ^ 0xabcdef);
        let blocked = kernels::dot(&a, &b);
        let reference = naive::dot(&a, &b);
        let scale: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        prop_assert!(close(blocked, reference, scale), "n={}: {} vs {}", n, blocked, reference);
    }

    #[test]
    fn axpy_blocked_is_bit_identical(n in 0usize..1500, seed in 0u64..1u64 << 32) {
        let alpha = vector(1, seed ^ 0x5eed)[0] * 3.0;
        let x = vector(n, seed);
        let mut y_blocked = vector(n, seed ^ 0x1234);
        let mut y_naive = y_blocked.clone();
        kernels::axpy(alpha, &x, &mut y_blocked);
        naive::axpy(alpha, &x, &mut y_naive);
        for (i, (p, q)) in y_blocked.iter().zip(&y_naive).enumerate() {
            prop_assert_eq!(p.to_bits(), q.to_bits(), "n={} slot {}", n, i);
        }
    }

    #[test]
    fn gemv_blocked_matches_naive(m in 1usize..40, n in 0usize..1400, seed in 0u64..1u64 << 32) {
        let a = vector(m * n, seed);
        let x = vector(n, seed ^ 0x77);
        let mut y_blocked = vec![0.0; m];
        let mut y_naive = vec![0.0; m];
        kernels::gemv(m, n, &a, &x, &mut y_blocked);
        naive::gemv(m, n, &a, &x, &mut y_naive);
        for (i, (p, q)) in y_blocked.iter().zip(&y_naive).enumerate() {
            let row = &a[i * n..(i + 1) * n];
            let scale: f64 = row.iter().zip(&x).map(|(u, v)| (u * v).abs()).sum();
            prop_assert!(close(*p, *q, scale), "({},{}) row {}: {} vs {}", m, n, i, p, q);
        }
    }

    #[test]
    fn gemm_blocked_matches_naive(m in 1usize..24, k in 1usize..96, n in 1usize..24, seed in 0u64..1u64 << 32) {
        let a = vector(m * k, seed);
        let b = vector(k * n, seed ^ 0x88);
        // Nonzero initial C: gemm accumulates, so the contract covers
        // the += semantics too.
        let mut c_blocked = vector(m * n, seed ^ 0x99);
        let mut c_naive = c_blocked.clone();
        kernels::gemm(m, k, n, &a, &b, &mut c_blocked);
        naive::gemm(m, k, n, &a, &b, &mut c_naive);
        for (slot, (p, q)) in c_blocked.iter().zip(&c_naive).enumerate() {
            let (i, j) = (slot / n, slot % n);
            let scale: f64 =
                (0..k).map(|p_| (a[i * k + p_] * b[p_ * n + j]).abs()).sum::<f64>() + q.abs();
            prop_assert!(
                close(*p, *q, scale),
                "({},{},{}) slot {}: {} vs {}", m, k, n, slot, p, q
            );
        }
    }

    #[test]
    fn spmv_blocked_matches_naive(rows in 1usize..60, width in 0usize..24, seed in 0u64..1u64 << 32) {
        // A banded CSR whose row widths straddle the LANES boundary.
        let cols = rows;
        let mut row_ptr = vec![0usize];
        let mut col_idx = Vec::new();
        let mut raw = vector(rows * width.max(1), seed ^ 0xAA).into_iter();
        let mut values = Vec::new();
        for i in 0..rows {
            let w = (i * 7 + width) % (width + 1);
            for d in 0..w {
                col_idx.push((i + d) % cols);
                values.push(raw.next().unwrap_or(0.5));
            }
            row_ptr.push(col_idx.len());
        }
        let x = vector(cols, seed ^ 0xBB);
        let mut y_blocked = vec![0.0; rows];
        let mut y_naive = vec![0.0; rows];
        kernels::spmv(&row_ptr, &col_idx, &values, &x, &mut y_blocked);
        naive::spmv(&row_ptr, &col_idx, &values, &x, &mut y_naive);
        for (i, (p, q)) in y_blocked.iter().zip(&y_naive).enumerate() {
            let (lo, hi) = (row_ptr[i], row_ptr[i + 1]);
            let scale: f64 =
                col_idx[lo..hi].iter().zip(&values[lo..hi]).map(|(&j, v)| (v * x[j]).abs()).sum();
            prop_assert!(close(*p, *q, scale), "row {}: {} vs {}", i, p, q);
        }
    }

    #[test]
    fn pair_dot_blocked_matches_naive(len in 0usize..500, seed in 0u64..1u64 << 32) {
        let x = vector(257, seed ^ 0xCC);
        let vals = vector(len, seed ^ 0xDD);
        let pairs: Vec<(u32, f64)> =
            vals.iter().enumerate().map(|(t, &v)| (((t * 31 + 7) % 257) as u32, v)).collect();
        let blocked = kernels::pair_dot(&pairs, &x);
        let reference = naive::pair_dot(&pairs, &x);
        let scale: f64 = pairs.iter().map(|&(j, v)| (v * x[j as usize]).abs()).sum();
        prop_assert!(close(blocked, reference, scale), "len={}: {} vs {}", len, blocked, reference);
    }
}

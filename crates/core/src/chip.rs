//! Full-chip windowed extraction with incremental (ECO) re-extraction.
//!
//! The paper's divide-and-conquer story at chip scale: a layout is cut
//! into an `nx × ny` grid of overlapping windows
//! ([`bemcap_geom::layout`]), each window's neighborhood-complete
//! geometry is extracted as an ordinary self-contained problem on the
//! shared [`Executor`] (inheriting its admission control and request
//! coalescing), and the owned rows of every per-window capacitance
//! matrix are stitched into one sparse chip-level
//! [`SparseMatrix`]. Three invariants carry the design:
//!
//! * **stitched ≈ monolithic** — a window sees every conductor within
//!   its halo, so its owned rows approach the full-chip answer as the
//!   halo grows; with one window the result *is* the monolithic
//!   extraction, bit for bit.
//! * **bit-determinism** — windows are extracted by the executor's
//!   bit-deterministic job path and stitched in window-index order, so
//!   pool size, coalescing, and completion order never change a bit of
//!   the chip matrix.
//! * **incremental reuse** — per-window results live in a
//!   [`WindowCache`] keyed by the exact bit-level content of the window
//!   geometry plus the solver-configuration digest. Re-extracting a
//!   revision only recomputes windows whose member content changed —
//!   which is precisely the set whose halo intersects the
//!   [`GeometryDiff`] — and an unchanged layout reuses every window,
//!   returning a bit-identical matrix without running a single job.
//!
//! ```
//! use bemcap_core::chip::ChipExtractor;
//! use bemcap_core::Extractor;
//! use bemcap_geom::structures::{self, BusParams};
//!
//! let geo = structures::bus_crossing(4, 4, BusParams::default());
//! let chip = ChipExtractor::new(Extractor::new()).windows(2, 2).halo(3.0e-6);
//! let full = chip.extract(&geo)?;
//! assert_eq!(full.capacitance().dim(), 8);
//! let again = chip.extract(&geo)?; // unchanged: every window reused
//! assert_eq!(again.report().reused, again.report().windows);
//! # Ok::<(), bemcap_core::CoreError>(())
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bemcap_geom::layout::{GeometryDiff, Layout, PartitionConfig};
use bemcap_geom::Geometry;
use bemcap_linalg::{Matrix, SparseMatrix};

use crate::batch::{default_pool_size, BatchJob};
use crate::cache::TemplateCache;
use crate::error::CoreError;
use crate::exec::{ExecConfig, Executor, Ticket};
use crate::extraction::Extractor;
use crate::metrics::{metrics, Span};
use crate::report::CacheStats;

/// Cache identity of one extracted window: the solver-configuration
/// digest ([`Extractor::config_digest`]) plus the exact bit-level
/// content of the window geometry. Two windows share an entry exactly
/// when recomputation would produce bit-identical results — including
/// identical windows at different chip positions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WindowKey {
    config: Vec<u64>,
    content: Vec<u64>,
}

impl WindowKey {
    /// Builds the key for extracting `geo` under `config`
    /// (an [`Extractor::config_digest`]).
    pub fn new(config: Vec<u64>, geo: &Geometry) -> WindowKey {
        let mut content = Vec::new();
        content.push(geo.eps_rel().to_bits());
        content.push(geo.conductor_count() as u64);
        for c in geo.conductors() {
            let bytes = c.name().as_bytes();
            content.push(bytes.len() as u64);
            for chunk in bytes.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                content.push(u64::from_le_bytes(word));
            }
            content.push(c.boxes().len() as u64);
            for b in c.boxes() {
                let (lo, hi) = (b.min(), b.max());
                for v in [lo.x, lo.y, lo.z, hi.x, hi.y, hi.z] {
                    content.push(v.to_bits());
                }
            }
        }
        WindowKey { config, content }
    }
}

/// The cached result of one window extraction: the window-local
/// conductor names and capacitance matrix, free of global indices so
/// identical windows anywhere on the chip share one entry.
#[derive(Debug)]
pub struct WindowResult {
    names: Vec<String>,
    matrix: Matrix,
}

impl WindowResult {
    /// Window-local conductor names, in window-member order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The window's capacitance matrix, indexed like
    /// [`WindowResult::names`].
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Approximate resident bytes of this result (matrix + names).
    fn bytes(&self) -> usize {
        self.matrix.memory_bytes() + self.names.iter().map(|n| n.len() + 24).sum::<usize>() + 64
    }
}

const SHARDS: usize = 16;

struct Entry {
    result: Arc<WindowResult>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<WindowKey, Entry>,
    bytes: usize,
}

/// A process-lifetime, memory-bounded, sharded cache of per-window
/// extraction results — the [`TemplateCache`] design applied one level
/// up the stack.
///
/// Keys are exact ([`WindowKey`]), so a hit returns the very bits a
/// recomputation would produce; eviction can only cause recomputation,
/// never a different answer. Bounded instances evict least-recently-used
/// entries (by a global epoch advanced on every lookup) until an insert
/// fits; the newest entry always stays resident, so a bound smaller than
/// one result degrades to "cache of the last window".
pub struct WindowCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget; `None` = unbounded.
    shard_cap: Option<usize>,
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserted_bytes: AtomicU64,
}

impl fmt::Debug for WindowCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WindowCache")
            .field("entries", &self.len())
            .field("resident_bytes", &self.resident_bytes())
            .field("max_bytes", &self.max_bytes())
            .field("lifetime", &self.lifetime())
            .finish()
    }
}

impl WindowCache {
    /// A cache with no memory bound.
    pub fn unbounded() -> WindowCache {
        WindowCache::build(None)
    }

    /// A cache bounded to approximately `max_bytes` resident bytes.
    /// Every bound, however small, keeps at least the most recently
    /// inserted entry per shard.
    pub fn with_max_bytes(max_bytes: usize) -> WindowCache {
        WindowCache::build(Some((max_bytes / SHARDS).max(1)))
    }

    fn build(shard_cap: Option<usize>) -> WindowCache {
        WindowCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap,
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserted_bytes: AtomicU64::new(0),
        }
    }

    /// The configured memory bound in bytes (`None` = unbounded), as
    /// rounded to the per-shard budget actually enforced.
    pub fn max_bytes(&self) -> Option<usize> {
        self.shard_cap.map(|cap| cap * SHARDS)
    }

    /// Number of resident window results.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("window cache poisoned").map.len()).sum()
    }

    /// `true` when no result is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes across all shards.
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("window cache poisoned").bytes).sum()
    }

    /// Lifetime counters: every hit, miss, eviction, and inserted byte
    /// since construction, across all users of the cache.
    pub fn lifetime(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed) as usize,
            misses: self.misses.load(Ordering::Relaxed) as usize,
            evictions: self.evictions.load(Ordering::Relaxed) as usize,
            inserted_bytes: self.inserted_bytes.load(Ordering::Relaxed) as usize,
        }
    }

    /// Drops every resident result (counters keep running).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().expect("window cache poisoned");
            s.map.clear();
            s.bytes = 0;
        }
    }

    fn shard(&self, key: &WindowKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks `key` up, counting a hit or a miss.
    pub fn get(&self, key: &WindowKey) -> Option<Arc<WindowResult>> {
        let now = self.epoch.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard(key).lock().expect("window cache poisoned");
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.last_used = now;
                self.hits.fetch_add(1, Ordering::Relaxed);
                metrics().window_cache_hits.inc();
                Some(Arc::clone(&entry.result))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                metrics().window_cache_misses.inc();
                None
            }
        }
    }

    /// Stores a freshly computed result, evicting least-recently-used
    /// entries until it fits the shard budget. Returns how many entries
    /// were evicted. Re-inserting an existing key replaces the entry
    /// (the bits are identical by key construction).
    pub fn insert(&self, key: WindowKey, result: Arc<WindowResult>) -> usize {
        let stamp = self.epoch.fetch_add(1, Ordering::Relaxed);
        let bytes = result.bytes();
        let mut shard = self.shard(&key).lock().expect("window cache poisoned");
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.bytes;
        }
        let mut evicted = 0;
        if let Some(cap) = self.shard_cap {
            while shard.bytes + bytes > cap && !shard.map.is_empty() {
                let oldest = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty shard has an oldest entry");
                let dropped = shard.map.remove(&oldest).expect("oldest entry exists");
                shard.bytes -= dropped.bytes;
                evicted += 1;
            }
        }
        shard.bytes += bytes;
        shard.map.insert(key, Entry { result, bytes, last_used: stamp });
        self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        self.inserted_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        metrics().window_cache_evictions.add(evicted as u64);
        metrics().window_cache_inserted_bytes.add(bytes as u64);
        evicted
    }
}

/// The sparse full-chip capacitance matrix, indexed like the layout's
/// conductor order.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipCapacitance {
    names: Vec<String>,
    c: SparseMatrix,
}

impl ChipCapacitance {
    /// Number of conductors.
    pub fn dim(&self) -> usize {
        self.names.len()
    }

    /// Net names in matrix order (the layout's conductor order).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Matrix index of a net name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Entry `(i, j)` in farad; `0.0` for net pairs sharing no window.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.c.get(i, j)
    }

    /// The underlying sparse matrix.
    pub fn matrix(&self) -> &SparseMatrix {
        &self.c
    }

    /// Worst relative asymmetry `|c_ij − c_ji| / max|c|` over stored
    /// entries — the chip-level analogue of
    /// [`crate::extraction::CapacitanceMatrix::asymmetry`]. Windowing
    /// adds its own asymmetry: `c_ij` comes from `i`'s owner window and
    /// `c_ji` from `j`'s, which see different neighborhoods.
    pub fn asymmetry(&self) -> f64 {
        let scale = self.c.max_abs().max(f64::MIN_POSITIVE);
        let mut worst = 0.0_f64;
        for (i, j, v) in self.c.iter() {
            if j > i {
                worst = worst.max((v - self.c.get(j, i)).abs() / scale);
            }
        }
        worst
    }
}

impl fmt::Display for ChipCapacitance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chip capacitance: {} conductors, {} stored entries ({:.1} % dense)",
            self.dim(),
            self.c.nnz(),
            100.0 * self.c.nnz() as f64 / (self.dim() * self.dim()).max(1) as f64
        )
    }
}

/// Performance and reuse record of one chip extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipReport {
    /// Windows in the partition (`nx × ny`).
    pub windows: usize,
    /// Windows extracted this run (window-cache misses).
    pub extracted: usize,
    /// Windows reused from the window cache (hits).
    pub reused: usize,
    /// For [`ChipExtractor::reextract`]: how many windows the diff
    /// touched (`None` for plain [`ChipExtractor::extract`] runs).
    pub touched: Option<usize>,
    /// Stored entries of the stitched sparse matrix.
    pub nnz: usize,
    /// Worker threads of the executor the windows ran on.
    pub workers: usize,
    /// Wall-clock seconds of the whole chip extraction.
    pub wall_seconds: f64,
    /// Sum of per-window job seconds (work the pool absorbed).
    pub busy_seconds: f64,
    /// Seconds window submissions waited in the executor queue.
    pub queue_seconds: f64,
    /// Window-cache counters of this run (hits = reused windows).
    pub window_cache: CacheStats,
    /// Pair-integral cache counters aggregated over the extracted
    /// windows.
    pub template_cache: CacheStats,
}

impl fmt::Display for ChipReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} windows ({} extracted, {} reused) on {} workers in {:.3} s, \
             {} stored entries; window cache {}",
            self.windows,
            self.extracted,
            self.reused,
            self.workers,
            self.wall_seconds,
            self.nnz,
            self.window_cache,
        )?;
        if let Some(t) = self.touched {
            write!(f, "; diff touched {t} windows")?;
        }
        Ok(())
    }
}

/// A completed chip extraction: the stitched sparse matrix plus the
/// run's report.
#[derive(Debug, Clone, PartialEq)]
pub struct ChipExtraction {
    capacitance: ChipCapacitance,
    report: ChipReport,
}

impl ChipExtraction {
    /// The stitched sparse capacitance matrix.
    pub fn capacitance(&self) -> &ChipCapacitance {
        &self.capacitance
    }

    /// The run's performance and reuse record.
    pub fn report(&self) -> &ChipReport {
        &self.report
    }
}

/// Builder and driver of full-chip windowed extraction.
///
/// Construction is cheap; the same `ChipExtractor` can extract many
/// layouts (or many revisions of one layout) and carries the window
/// cache that makes revisions incremental. See the module docs for the
/// invariants.
#[derive(Debug, Clone)]
pub struct ChipExtractor {
    extractor: Extractor,
    partition: PartitionConfig,
    workers: Option<usize>,
    executor: Option<Arc<Executor>>,
    window_cache: Arc<WindowCache>,
    template_cache: Arc<TemplateCache>,
}

impl ChipExtractor {
    /// A chip extractor running `extractor` per window, with the default
    /// 2×2 partition, a private unbounded window cache, and a private
    /// unbounded pair-integral cache.
    pub fn new(extractor: Extractor) -> ChipExtractor {
        ChipExtractor {
            extractor,
            partition: PartitionConfig::default(),
            workers: None,
            executor: None,
            window_cache: Arc::new(WindowCache::unbounded()),
            template_cache: Arc::new(TemplateCache::unbounded()),
        }
    }

    /// Sets the window grid (`nx` columns × `ny` rows).
    pub fn windows(mut self, nx: usize, ny: usize) -> ChipExtractor {
        self.partition.nx = nx;
        self.partition.ny = ny;
        self
    }

    /// Sets the halo margin around each core tile, in layout units.
    pub fn halo(mut self, halo: f64) -> ChipExtractor {
        self.partition.halo = halo;
        self
    }

    /// Sets the whole partition configuration at once.
    pub fn partition_config(mut self, cfg: PartitionConfig) -> ChipExtractor {
        self.partition = cfg;
        self
    }

    /// Worker threads for the private per-run executor (default:
    /// `BEMCAP_POOL` or 1). Ignored when [`ChipExtractor::executor`]
    /// installs a shared executor.
    pub fn workers(mut self, workers: usize) -> ChipExtractor {
        self.workers = Some(workers.max(1));
        self
    }

    /// Runs window jobs on a shared executor instead of a private one.
    /// Window submissions then honor the shared admission bound — an
    /// overloaded executor fails the extraction with
    /// [`CoreError::Busy`] — and coalesce with other same-configuration
    /// traffic.
    pub fn executor(mut self, exec: Arc<Executor>) -> ChipExtractor {
        self.executor = Some(exec);
        self
    }

    /// Shares a window cache (e.g. a daemon's process-lifetime one)
    /// instead of the private default.
    pub fn window_cache(mut self, cache: Arc<WindowCache>) -> ChipExtractor {
        self.window_cache = cache;
        self
    }

    /// Shares a pair-integral cache instead of the private default.
    pub fn shared_cache(mut self, cache: Arc<TemplateCache>) -> ChipExtractor {
        self.template_cache = cache;
        self
    }

    /// The window cache this extractor reuses across runs.
    pub fn window_cache_handle(&self) -> &Arc<WindowCache> {
        &self.window_cache
    }

    /// The partition configuration currently set.
    pub fn partition(&self) -> &PartitionConfig {
        &self.partition
    }

    /// Extracts the full chip: partition, per-window extraction (cache
    /// misses only), stitch. See the module docs for the invariants.
    ///
    /// # Errors
    ///
    /// [`CoreError::Geometry`] for unusable layouts or partition
    /// configurations, [`CoreError::ChipWindow`] when a window's
    /// extraction fails, [`CoreError::Busy`] when a shared executor
    /// refuses the window jobs.
    pub fn extract(&self, geo: &Geometry) -> Result<ChipExtraction, CoreError> {
        self.run(geo, None)
    }

    /// Extracts a revised layout, reporting how many windows `diff`
    /// touched ([`ChipReport::touched`]).
    ///
    /// Reuse is driven by the window cache's exact content keys, so this
    /// is [`ChipExtractor::extract`] plus diff accounting: with the
    /// prior revision's windows resident, exactly the touched windows
    /// re-extract, and an empty diff reuses everything bit-identically.
    pub fn reextract(
        &self,
        geo: &Geometry,
        diff: &GeometryDiff,
    ) -> Result<ChipExtraction, CoreError> {
        self.run(geo, Some(diff))
    }

    fn run(
        &self,
        geo: &Geometry,
        diff: Option<&GeometryDiff>,
    ) -> Result<ChipExtraction, CoreError> {
        let start = Instant::now();
        let layout = Layout::new(geo.clone())?;
        let part = layout.partition(&self.partition)?;
        let touched = diff.map(|d| part.windows_touched(d).len());
        let config = self.extractor.config_digest();

        // Probe the window cache; collect the misses as executor jobs.
        let mut results: Vec<Option<Arc<WindowResult>>> = vec![None; part.window_count()];
        let mut misses: Vec<(usize, WindowKey, Geometry)> = Vec::new();
        let mut run_cache = CacheStats::default();
        for w in part.windows() {
            // A window whose halo holds no conductor has nothing to
            // extract and owns nothing to stitch — skip it entirely
            // (it counts neither as a hit nor as a miss).
            if w.members().is_empty() {
                continue;
            }
            let sub = w.geometry(&layout);
            let key = WindowKey::new(config.clone(), &sub);
            match self.window_cache.get(&key) {
                Some(r) => {
                    run_cache.hits += 1;
                    results[w.index()] = Some(r);
                }
                None => {
                    run_cache.misses += 1;
                    misses.push((w.index(), key, sub));
                }
            }
        }

        // Extract the misses on the executor.
        let mut busy_seconds = 0.0;
        let mut queue_seconds = 0.0;
        let mut template_cache = CacheStats::default();
        let workers;
        if misses.is_empty() {
            workers = 0;
        } else {
            let private;
            let (exec, chunk) = match &self.executor {
                Some(e) => (e.as_ref(), 1),
                None => {
                    let w = self.workers.unwrap_or_else(default_pool_size);
                    let chunk = misses.len().div_ceil(w);
                    private = Executor::new(ExecConfig {
                        workers: w,
                        queue_depth: misses.len(),
                        coalesce_limit: chunk,
                    });
                    (&private, chunk)
                }
            };
            workers = exec.config().workers;
            let tickets: Vec<Ticket> = misses
                .chunks(chunk)
                .map(|c| {
                    let jobs = c
                        .iter()
                        .map(|(w, _, sub)| BatchJob::new(format!("window{w}"), sub.clone()))
                        .collect();
                    exec.submit(&self.extractor, Some(Arc::clone(&self.template_cache)), jobs)
                })
                .collect::<Result<_, _>>()?;
            let mut first_failure: Option<(usize, CoreError)> = None;
            for (chunk_index, ticket) in tickets.into_iter().enumerate() {
                let sub = ticket.wait();
                queue_seconds += sub.queue_seconds;
                for (offset, outcome) in sub.outcomes.into_iter().enumerate() {
                    let (window, key, _) = &misses[chunk_index * chunk + offset];
                    busy_seconds += outcome.seconds;
                    match outcome.result {
                        Err(e) => {
                            if first_failure.is_none() {
                                first_failure = Some((*window, e));
                            }
                        }
                        Ok((extraction, stats)) => {
                            template_cache.absorb(stats);
                            let result = Arc::new(WindowResult {
                                names: extraction.capacitance().names().to_vec(),
                                matrix: extraction.capacitance().matrix().clone(),
                            });
                            run_cache.evictions +=
                                self.window_cache.insert(key.clone(), Arc::clone(&result));
                            run_cache.inserted_bytes += result.bytes();
                            results[*window] = Some(result);
                        }
                    }
                }
            }
            if let Some((window, e)) = first_failure {
                return Err(CoreError::ChipWindow { window, source: Box::new(e) });
            }
        }

        // Stitch owned rows in window-index order. Ownership is a
        // partition of the conductors, so every (row, col) slot is
        // written by exactly one window and build order cannot matter.
        let stitch_span = Span::enter(metrics().chip_stitch_nanos);
        let n = layout.conductor_count();
        let mut builder = SparseMatrix::builder(n, n);
        for w in part.windows() {
            let Some(r) = results[w.index()].as_ref() else {
                debug_assert!(w.members().is_empty(), "only empty windows are skipped");
                continue;
            };
            debug_assert_eq!(r.names.len(), w.members().len(), "cached result matches window");
            for (li, gi) in w.members().iter().copied().enumerate() {
                if w.owned().binary_search(&gi).is_err() {
                    continue;
                }
                for (lj, gj) in w.members().iter().copied().enumerate() {
                    builder.push(gi, gj, r.matrix.get(li, lj));
                }
            }
        }
        let c = builder.build();
        drop(stitch_span);
        let names = layout.names().into_iter().map(str::to_string).collect();
        let nnz = c.nnz();
        let extracted = run_cache.misses;
        let reused = run_cache.hits;
        // Non-empty windows only, so extracted + reused == windows holds
        // for the metric triple even when the partition has empty tiles.
        metrics().chip_windows.add((extracted + reused) as u64);
        metrics().chip_windows_extracted.add(extracted as u64);
        metrics().chip_windows_reused.add(reused as u64);
        Ok(ChipExtraction {
            capacitance: ChipCapacitance { names, c },
            report: ChipReport {
                windows: part.window_count(),
                extracted,
                reused,
                touched,
                nnz,
                workers,
                wall_seconds: start.elapsed().as_secs_f64(),
                busy_seconds,
                queue_seconds,
                window_cache: run_cache,
                template_cache,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::structures::{self, BusParams};

    fn bus() -> Geometry {
        structures::bus_crossing(3, 3, BusParams::default())
    }

    fn window_key(i: u64) -> WindowKey {
        WindowKey { config: vec![i], content: vec![i, i + 1] }
    }

    fn result_of_bytes(n: usize) -> Arc<WindowResult> {
        Arc::new(WindowResult { names: vec!["x".repeat(n); 1], matrix: Matrix::zeros(1, 1) })
    }

    #[test]
    fn window_key_separates_configs_and_content() {
        let geo = bus();
        let a = WindowKey::new(vec![1, 2], &geo);
        let b = WindowKey::new(vec![1, 3], &geo);
        let c = WindowKey::new(vec![1, 2], &geo.clone().with_eps_rel(3.9));
        let d = WindowKey::new(vec![1, 2], &bus());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, d, "same config and same content must collide");
    }

    #[test]
    fn window_cache_hit_miss_and_bytes() {
        let cache = WindowCache::unbounded();
        assert!(cache.get(&window_key(1)).is_none());
        let r = result_of_bytes(10);
        cache.insert(window_key(1), Arc::clone(&r));
        let hit = cache.get(&window_key(1)).expect("hit");
        assert!(Arc::ptr_eq(&hit, &r));
        let stats = cache.lifetime();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(cache.resident_bytes(), r.bytes());
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.resident_bytes(), 0);
    }

    #[test]
    fn bounded_window_cache_evicts_lru_and_keeps_newest() {
        let one = result_of_bytes(100).bytes();
        // Room for about two entries per shard; keys may collide into
        // one shard, so only the aggregate bound is asserted.
        let cache = WindowCache::with_max_bytes(2 * one * SHARDS);
        for i in 0..200 {
            cache.insert(window_key(i), result_of_bytes(100));
            assert!(
                cache.resident_bytes() <= cache.max_bytes().expect("bounded"),
                "resident {} over bound after insert {i}",
                cache.resident_bytes()
            );
        }
        assert!(cache.lifetime().evictions > 0);
        // The newest entry always survives its own insert.
        assert!(cache.get(&window_key(199)).is_some());
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let cache = WindowCache::unbounded();
        cache.insert(window_key(1), result_of_bytes(10));
        let before = cache.resident_bytes();
        cache.insert(window_key(1), result_of_bytes(10));
        assert_eq!(cache.resident_bytes(), before);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn single_window_chip_is_bitwise_monolithic() {
        let geo = bus();
        let ex = Extractor::new();
        let chip = ChipExtractor::new(ex.clone()).windows(1, 1).halo(0.0);
        let full = chip.extract(&geo).expect("chip");
        let mono = ex.extract(&geo).expect("monolithic");
        let c = mono.capacitance();
        assert_eq!(full.capacitance().dim(), c.dim());
        assert_eq!(full.capacitance().names(), c.names());
        for i in 0..c.dim() {
            for j in 0..c.dim() {
                assert_eq!(
                    full.capacitance().get(i, j).to_bits(),
                    c.get(i, j).to_bits(),
                    "entry ({i},{j})"
                );
            }
        }
        assert_eq!(full.report().windows, 1);
        assert_eq!(full.report().extracted, 1);
    }

    #[test]
    fn second_run_reuses_every_window_bit_identically() {
        let geo = bus();
        let chip = ChipExtractor::new(Extractor::new()).windows(2, 2).halo(2.0e-6);
        let first = chip.extract(&geo).expect("first");
        assert_eq!(first.report().extracted, first.report().windows);
        let second = chip.extract(&geo).expect("second");
        assert_eq!(second.report().extracted, 0);
        assert_eq!(second.report().reused, second.report().windows);
        assert_eq!(second.capacitance(), first.capacitance());
        assert_eq!(second.report().busy_seconds, 0.0, "no jobs ran");
    }

    #[test]
    fn reextract_reports_touched_windows() {
        let geo = bus();
        let chip = ChipExtractor::new(Extractor::new()).windows(2, 2).halo(1.0e-6);
        chip.extract(&geo).expect("warm");
        let diff = GeometryDiff::between(&geo, &geo.clone());
        let again = chip.reextract(&geo, &diff).expect("reextract");
        assert_eq!(again.report().touched, Some(0));
        assert_eq!(again.report().extracted, 0);
    }

    #[test]
    fn chip_errors_are_typed() {
        let chip = ChipExtractor::new(Extractor::new());
        match chip.extract(&Geometry::new(vec![])) {
            Err(CoreError::Geometry(_)) => {}
            other => panic!("expected Geometry error, got {other:?}"),
        }
        let bad = ChipExtractor::new(Extractor::new()).windows(0, 1);
        match bad.extract(&bus()) {
            Err(CoreError::Geometry(_)) => {}
            other => panic!("expected Geometry error, got {other:?}"),
        }
    }

    #[test]
    fn empty_windows_are_skipped_not_extracted() {
        // Two conductors at the chip's x extremes with a tiny halo: the
        // middle window of a 3×1 grid holds nothing and must neither be
        // submitted (an empty geometry would fail) nor counted.
        use bemcap_geom::{Box3, Conductor};
        let micron_box = |x0: f64, x1: f64| {
            Box3::from_bounds((x0 * 1.0e-6, x1 * 1.0e-6), (0.0, 1.0e-6), (0.0, 1.0e-6))
                .expect("valid box")
        };
        let geo = Geometry::new(vec![
            Conductor::new("a").with_box(micron_box(0.0, 1.0)),
            Conductor::new("b").with_box(micron_box(9.0, 10.0)),
        ]);
        let chip = ChipExtractor::new(Extractor::new()).windows(3, 1).halo(0.5e-6);
        let full = chip.extract(&geo).expect("chip");
        assert_eq!(full.report().windows, 3);
        assert_eq!(full.report().extracted, 2);
        assert_eq!(full.capacitance().dim(), 2);
        assert!(full.capacitance().get(0, 0) > 0.0 && full.capacitance().get(1, 1) > 0.0);
    }

    #[test]
    fn shared_executor_busy_propagates() {
        // Queue depth 1 with >1 windows missing: the second submission
        // cannot be admitted while the first blocks the only slot — but
        // with a live worker the first may drain first, so force the
        // issue with a queue the whole miss set cannot fit.
        let exec =
            Arc::new(Executor::new(ExecConfig { workers: 1, queue_depth: 1, coalesce_limit: 1 }));
        // Occupy the queue so admission is guaranteed to refuse.
        let blocker = {
            let (tx, rx) = std::sync::mpsc::channel::<()>();
            let e = Arc::clone(&exec);
            let t = std::thread::spawn(move || {
                let ticket = e
                    .submit(
                        &Extractor::new().mesh_divisions(2),
                        None,
                        vec![BatchJob::new("hold", bus())],
                    )
                    .expect("admitted");
                tx.send(()).expect("alive");
                ticket.wait()
            });
            let () = rx.recv().expect("blocker admitted");
            t
        };
        let chip = ChipExtractor::new(Extractor::new()).windows(2, 2).executor(Arc::clone(&exec));
        // Either the blocker still holds the slot (Busy) or it drained
        // in time and the run succeeds; both are legal — retry until the
        // race shows the Busy path at least once or the blocker is done.
        let r = chip.extract(&bus());
        let _ = blocker.join();
        if let Err(e) = r {
            assert!(matches!(e, CoreError::Busy { .. }), "unexpected error {e:?}");
        }
    }

    #[test]
    fn display_and_asymmetry() {
        let geo = bus();
        let chip = ChipExtractor::new(Extractor::new()).windows(2, 1).halo(4.0e-6);
        let full = chip.extract(&geo).expect("chip");
        let shown = format!("{}", full.capacitance());
        assert!(shown.contains("conductors"), "{shown}");
        let report = format!("{}", full.report());
        assert!(report.contains("windows") && report.contains("extracted"), "{report}");
        assert!(full.capacitance().asymmetry() < 0.5);
        assert_eq!(full.capacitance().index_of(full.capacitance().names()[0].as_str()), Some(0));
        assert!(full.capacitance().matrix().is_finite());
    }
}

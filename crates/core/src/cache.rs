//! The process-lifetime pair-integral cache behind batch and service
//! extraction.
//!
//! The paper's instantiable-basis economics (conf_dac_HsiaoD11) make the
//! pair integral the dominant, *reusable* unit of setup work: two
//! structures that share a template pair share the integral exactly.
//! PR 2's batch layer exploited that within one run; this module promotes
//! the cache to a first-class, process-lifetime object so a long-running
//! daemon (`bemcap-serve`) can keep integrals warm across requests:
//!
//! * **bit-identity** — keys are exact bit-level template identities
//!   ([`TemplateKey`]), so a hit returns the very `f64` a recomputation
//!   would produce. Eviction can only cause recomputation, never a
//!   different answer: results are bit-identical at any bound, including
//!   zero.
//! * **bounded memory** — [`TemplateCache::with_max_bytes`] caps the
//!   resident footprint ([`ENTRY_BYTES`] per entry). When a shard fills,
//!   the least-recently-used quarter of its entries (by a global epoch
//!   counter advanced on every lookup) is evicted in one sweep, so the
//!   bound holds after every insert while keeping the hot working set.
//! * **sharded locking** — a fixed 32-way shard array keyed by hash keeps
//!   lock traffic off the hot path; integrals are computed outside any
//!   lock, so two workers may rarely duplicate a computation, which is
//!   wasted work but never a wrong answer.
//!
//! [`crate::batch::BatchExtractor`] uses a private per-run instance by
//! default and accepts a shared one via
//! [`crate::batch::BatchExtractor::shared_cache`]; the daemon constructs
//! one at startup and shares it across every connection.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bemcap_basis::TemplateKey;

use crate::metrics::metrics;
use crate::report::CacheStats;

/// A cache key: the ordered pair of template identities of one Galerkin
/// pair integral.
pub type PairKey = (TemplateKey, TemplateKey);

/// Approximate resident bytes per cache entry, used to convert the
/// configured memory bound into an entry budget: two 72-byte
/// [`TemplateKey`]s, the `f64` value, the `u64` epoch, and hash-map slot
/// overhead, rounded up.
pub const ENTRY_BYTES: usize = 192;

const SHARDS: usize = 32;

/// The smallest bound [`TemplateCache::with_max_bytes`] actually
/// enforces: one entry per shard (`SHARDS * ENTRY_BYTES`). Budgets below
/// this floor are rounded up to it, so the cache always absorbs repeated
/// lookups; [`TemplateCache::max_bytes`] reports the effective bound.
pub const MIN_MAX_BYTES: usize = SHARDS * ENTRY_BYTES;

/// Fraction of a full shard evicted in one sweep (a quarter): large
/// enough to amortize the O(n) epoch scan, small enough to keep the hot
/// working set resident.
const EVICT_DENOMINATOR: usize = 4;

struct Entry {
    value: f64,
    last_used: u64,
}

/// The outcome of one [`TemplateCache::get_or_compute`] lookup, for
/// per-job accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lookup {
    /// Whether the value came from the cache.
    pub hit: bool,
    /// Entries evicted to make room for this insert (0 on hits and on
    /// unbounded caches).
    pub evicted: usize,
}

/// A process-lifetime, memory-bounded, sharded map from template-pair
/// keys to raw pair integrals. See the module docs for the invariants.
///
/// ```
/// use bemcap_core::cache::TemplateCache;
///
/// let cache = TemplateCache::with_max_bytes(16 << 20);
/// let key = ([1u64; 9].into(), [2u64; 9].into());
/// let (v, first) = cache.get_or_compute(key, || 42.0);
/// let (w, second) = cache.get_or_compute(key, || unreachable!("cached"));
/// assert_eq!((v, w), (42.0, 42.0));
/// assert!(!first.hit && second.hit);
/// ```
pub struct TemplateCache {
    shards: Vec<Mutex<HashMap<PairKey, Entry>>>,
    /// Per-shard entry budget; `None` = unbounded.
    shard_cap: Option<usize>,
    /// Global logical clock: advanced on every lookup, stamped into the
    /// touched entry for LRU ordering.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for TemplateCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TemplateCache")
            .field("entries", &self.len())
            .field("max_bytes", &self.max_bytes())
            .field("lifetime", &self.lifetime())
            .finish()
    }
}

impl TemplateCache {
    /// A cache with no memory bound — every integral ever computed stays
    /// resident. The per-run default of [`crate::batch::BatchExtractor`].
    pub fn unbounded() -> TemplateCache {
        TemplateCache::build(None)
    }

    /// A cache bounded to approximately `max_bytes` resident bytes
    /// ([`ENTRY_BYTES`] per entry). The budget is rounded **down** to a
    /// whole number of entries per shard, but never below one entry per
    /// shard: any `max_bytes` under [`MIN_MAX_BYTES`] (including 0) is
    /// silently raised to that floor so the cache still absorbs repeats.
    /// [`TemplateCache::max_bytes`] reports the bound actually enforced,
    /// which may therefore differ from `max_bytes` in either direction.
    pub fn with_max_bytes(max_bytes: usize) -> TemplateCache {
        TemplateCache::build(Some((max_bytes / ENTRY_BYTES / SHARDS).max(1)))
    }

    fn build(shard_cap: Option<usize>) -> TemplateCache {
        TemplateCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            shard_cap,
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The effective memory bound in bytes (`None` = unbounded): the
    /// per-shard entry budget actually enforced, after the rounding and
    /// the [`MIN_MAX_BYTES`] floor of [`TemplateCache::with_max_bytes`].
    pub fn max_bytes(&self) -> Option<usize> {
        self.shard_cap.map(|cap| cap * SHARDS * ENTRY_BYTES)
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("template cache poisoned").len()).sum()
    }

    /// `true` when no entry is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate resident bytes ([`ENTRY_BYTES`] per entry).
    pub fn resident_bytes(&self) -> usize {
        self.len() * ENTRY_BYTES
    }

    /// Lifetime counters: every hit, miss, and eviction since
    /// construction, across all users of the cache.
    pub fn lifetime(&self) -> CacheStats {
        let misses = self.misses.load(Ordering::Relaxed) as usize;
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed) as usize,
            misses,
            evictions: self.evictions.load(Ordering::Relaxed) as usize,
            inserted_bytes: misses * ENTRY_BYTES,
        }
    }

    /// Drops every resident entry (counters keep running).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("template cache poisoned").clear();
        }
    }

    fn shard(&self, key: &PairKey) -> &Mutex<HashMap<PairKey, Entry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Returns the cached integral for `key`, or computes, stores, and
    /// returns it, evicting least-recently-used entries first when the
    /// shard is at its budget. The computation runs outside the shard
    /// lock.
    pub fn get_or_compute(&self, key: PairKey, f: impl FnOnce() -> f64) -> (f64, Lookup) {
        let now = self.epoch.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(&key);
        if let Some(entry) = shard.lock().expect("template cache poisoned").get_mut(&key) {
            entry.last_used = now;
            self.hits.fetch_add(1, Ordering::Relaxed);
            metrics().template_cache_hits.inc();
            return (entry.value, Lookup { hit: true, evicted: 0 });
        }
        let value = f();
        self.misses.fetch_add(1, Ordering::Relaxed);
        metrics().template_cache_misses.inc();
        // Re-stamp after the computation: concurrent lookups advanced the
        // epoch while the integral ran, and stamping the stale `now` would
        // make the entry we just paid for look like the oldest in the
        // shard — first in line for eviction instead of freshest.
        let stamp = self.epoch.fetch_add(1, Ordering::Relaxed);
        let mut map = shard.lock().expect("template cache poisoned");
        let mut evicted = 0;
        if let Some(cap) = self.shard_cap {
            // Another worker may have inserted the key while we computed;
            // inserting over it is a no-op for correctness (identical
            // bits), so only the capacity check needs the fresh state.
            if !map.contains_key(&key) && map.len() >= cap {
                evicted = evict_lru(&mut map, cap);
                self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
                metrics().template_cache_evictions.add(evicted as u64);
            }
        }
        map.insert(key, Entry { value, last_used: stamp });
        (value, Lookup { hit: false, evicted })
    }

    /// Writes every resident entry to `w` in the versioned snapshot
    /// format (see [`SNAPSHOT_HEADER`]) and returns how many entries
    /// were written. The format is binary-safe *text*: one header line,
    /// then one line per entry of 19 lowercase-hex `u64` words (the two
    /// 9-word [`TemplateKey`] identities followed by the value's raw
    /// `f64` bits), so a restored value is the identical `f64`, bit for
    /// bit, and the file survives any text transport.
    ///
    /// Concurrent lookups during the snapshot are safe (each shard is
    /// locked only while it is copied out); the snapshot is a consistent
    /// view per shard, not across shards — fine for its purpose of
    /// warm-starting a fresh process.
    ///
    /// # Errors
    ///
    /// Any I/O error from `w`.
    pub fn snapshot_to(&self, w: &mut impl Write) -> io::Result<usize> {
        let mut entries: Vec<(PairKey, f64)> = Vec::new();
        for shard in &self.shards {
            let map = shard.lock().expect("template cache poisoned");
            entries.extend(map.iter().map(|(k, e)| (*k, e.value)));
        }
        // Deterministic file contents for identical cache contents:
        // sort by key words, not by shard/hash iteration order.
        entries.sort_by_key(|((a, b), _)| (a.words(), b.words()));
        writeln!(w, "{} {}", SNAPSHOT_HEADER, entries.len())?;
        for ((a, b), value) in &entries {
            let mut line = String::with_capacity(19 * 17);
            for word in a.words().iter().chain(b.words().iter()) {
                push_hex(&mut line, *word);
                line.push(' ');
            }
            push_hex(&mut line, value.to_bits());
            writeln!(w, "{line}")?;
        }
        Ok(entries.len())
    }

    /// Restores entries from a snapshot produced by
    /// [`TemplateCache::snapshot_to`] and returns how many were
    /// admitted. Restored entries behave exactly like computed ones (a
    /// later lookup is a hit returning the identical bits) but the
    /// restore itself moves **no** hit/miss counters — warm-start is not
    /// traffic. On a bounded cache, entries beyond a shard's budget are
    /// skipped rather than evicting each other, so the memory bound
    /// holds and the admitted count may be less than the file's.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] for a missing/foreign header, an
    /// unsupported snapshot version, or a malformed entry line; any I/O
    /// error from `r`.
    pub fn restore_from(&self, r: impl BufRead) -> io::Result<usize> {
        let mut lines = r.lines();
        let header = lines.next().ok_or_else(|| bad_snapshot("empty snapshot file"))??;
        let declared = parse_snapshot_header(&header)?;
        let mut restored = 0usize;
        let mut seen = 0usize;
        for line in lines {
            let line = line?;
            if line.is_empty() {
                continue;
            }
            seen += 1;
            let mut words = [0u64; 19];
            let mut fields = line.split_ascii_whitespace();
            for (i, slot) in words.iter_mut().enumerate() {
                let field = fields
                    .next()
                    .ok_or_else(|| bad_snapshot(format!("entry {seen}: expected 19 words")))?;
                *slot = u64::from_str_radix(field, 16).map_err(|e| {
                    bad_snapshot(format!("entry {seen} word {i}: not a hex u64: {e}"))
                })?;
            }
            if fields.next().is_some() {
                return Err(bad_snapshot(format!("entry {seen}: more than 19 words")));
            }
            let mut a = [0u64; 9];
            let mut b = [0u64; 9];
            a.copy_from_slice(&words[0..9]);
            b.copy_from_slice(&words[9..18]);
            let key: PairKey = (a.into(), b.into());
            let value = f64::from_bits(words[18]);
            let stamp = self.epoch.fetch_add(1, Ordering::Relaxed);
            let mut map = self.shard(&key).lock().expect("template cache poisoned");
            if let Some(cap) = self.shard_cap {
                if !map.contains_key(&key) && map.len() >= cap {
                    continue;
                }
            }
            map.insert(key, Entry { value, last_used: stamp });
            restored += 1;
        }
        if seen != declared {
            return Err(bad_snapshot(format!(
                "snapshot declares {declared} entries but carries {seen} (truncated file?)"
            )));
        }
        Ok(restored)
    }
}

/// Magic-plus-version tag opening every [`TemplateCache::snapshot_to`]
/// file. Bump the version on any change to the entry encoding; restore
/// refuses versions it does not know instead of misreading them.
pub const SNAPSHOT_HEADER: &str = "bemcap-template-cache v1";

fn push_hex(out: &mut String, word: u64) {
    use std::fmt::Write as _;
    write!(out, "{word:x}").expect("writing to a String is infallible");
}

fn bad_snapshot(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

/// Validates the header line and returns the declared entry count.
fn parse_snapshot_header(header: &str) -> io::Result<usize> {
    let mut fields = header.split_ascii_whitespace();
    let (magic, version) = (fields.next().unwrap_or(""), fields.next().unwrap_or(""));
    if magic != "bemcap-template-cache" {
        return Err(bad_snapshot(format!(
            "not a template-cache snapshot (expected a '{SNAPSHOT_HEADER}' header, got '{header}')"
        )));
    }
    if version != "v1" {
        return Err(bad_snapshot(format!(
            "unsupported template-cache snapshot version '{version}' (this build reads v1)"
        )));
    }
    fields
        .next()
        .and_then(|n| n.parse::<usize>().ok())
        .filter(|_| fields.next().is_none())
        .ok_or_else(|| bad_snapshot(format!("snapshot header lacks an entry count: '{header}'")))
}

/// Removes the least-recently-used quarter of `map` (at least one entry)
/// and returns how many were dropped. `map.len() >= cap >= 1` on entry,
/// so the subsequent insert keeps the shard at or under `cap`.
fn evict_lru(map: &mut HashMap<PairKey, Entry>, cap: usize) -> usize {
    let target = (cap / EVICT_DENOMINATOR).max(1);
    let mut epochs: Vec<u64> = map.values().map(|e| e.last_used).collect();
    epochs.sort_unstable();
    // Evict everything not newer than the target-th oldest stamp. Epoch
    // stamps are unique except for unbounded-cache races (no eviction
    // there), so this drops exactly `target` entries in practice and at
    // most a few more if stamps ever tie.
    let threshold = epochs[target - 1];
    let before = map.len();
    map.retain(|_, e| e.last_used > threshold);
    before - map.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PairKey {
        ([i; 9].into(), [i.wrapping_mul(31); 9].into())
    }

    #[test]
    fn hit_returns_stored_bits_and_counts() {
        let cache = TemplateCache::unbounded();
        let v = 0.1 + 0.2; // a value with a non-trivial bit pattern
        let (a, l1) = cache.get_or_compute(key(1), || v);
        let (b, l2) = cache.get_or_compute(key(1), || unreachable!("must hit"));
        assert_eq!(a.to_bits(), v.to_bits());
        assert_eq!(b.to_bits(), v.to_bits());
        assert!(!l1.hit && l2.hit);
        let stats = cache.lifetime();
        assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 1, 0));
        assert_eq!(stats.inserted_bytes, ENTRY_BYTES);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), ENTRY_BYTES);
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = TemplateCache::unbounded();
        for i in 0..10_000 {
            cache.get_or_compute(key(i), || i as f64);
        }
        assert_eq!(cache.len(), 10_000);
        assert_eq!(cache.lifetime().evictions, 0);
        assert_eq!(cache.max_bytes(), None);
    }

    #[test]
    fn memory_bound_is_respected_under_pressure() {
        let max = 512 * ENTRY_BYTES;
        let cache = TemplateCache::with_max_bytes(max);
        let bound = cache.max_bytes().expect("bounded");
        assert!(bound <= max);
        for i in 0..5_000 {
            cache.get_or_compute(key(i), || i as f64);
            assert!(
                cache.resident_bytes() <= bound,
                "resident {} over bound {bound} after insert {i}",
                cache.resident_bytes()
            );
        }
        let stats = cache.lifetime();
        assert!(stats.evictions > 0, "pressure must evict");
        assert_eq!(stats.misses, 5_000);
        // Evicted keys recompute to the same value (bit-identity is
        // trivially preserved: the cache stores what f returns).
        let (v, _) = cache.get_or_compute(key(0), || 0.0);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn lru_keeps_the_hot_entry() {
        // One shard would make this exact; across shards, keep the bound
        // large enough that only cold keys age out.
        let cache = TemplateCache::with_max_bytes(256 * ENTRY_BYTES);
        cache.get_or_compute(key(0), || 7.0);
        for i in 1..40_000 {
            // Touch the hot key frequently so its epoch stays fresh.
            if i % 4 == 0 {
                let (v, l) = cache.get_or_compute(key(0), || unreachable!("hot key evicted"));
                assert!(l.hit);
                assert_eq!(v, 7.0);
            }
            cache.get_or_compute(key(i), || i as f64);
        }
    }

    #[test]
    fn tiny_bound_still_caches_repeats() {
        let cache = TemplateCache::with_max_bytes(1);
        let (_, l1) = cache.get_or_compute(key(5), || 1.0);
        let (_, l2) = cache.get_or_compute(key(5), || unreachable!("repeat must hit"));
        assert!(!l1.hit && l2.hit);
    }

    #[test]
    fn sub_floor_budgets_report_the_documented_floor() {
        // A zero budget is legal: it clamps to the one-entry-per-shard
        // floor, and max_bytes() reports that effective bound rather
        // than echoing the request.
        let zero = TemplateCache::with_max_bytes(0);
        assert_eq!(zero.max_bytes(), Some(MIN_MAX_BYTES));
        let (_, l1) = zero.get_or_compute(key(9), || 3.0);
        let (v, l2) = zero.get_or_compute(key(9), || unreachable!("repeat must hit"));
        assert!(!l1.hit && l2.hit);
        assert_eq!(v, 3.0);

        // Every budget under the floor lands exactly on the floor...
        for budget in [1, ENTRY_BYTES - 1, ENTRY_BYTES, MIN_MAX_BYTES - 1] {
            let cache = TemplateCache::with_max_bytes(budget);
            assert_eq!(cache.max_bytes(), Some(MIN_MAX_BYTES), "budget {budget}");
        }
        // ...and the floor itself is representable exactly, as is any
        // whole multiple of it.
        assert_eq!(TemplateCache::with_max_bytes(MIN_MAX_BYTES).max_bytes(), Some(MIN_MAX_BYTES));
        assert_eq!(
            TemplateCache::with_max_bytes(4 * MIN_MAX_BYTES).max_bytes(),
            Some(4 * MIN_MAX_BYTES)
        );
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = TemplateCache::unbounded();
        cache.get_or_compute(key(1), || 1.0);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.lifetime().misses, 1);
        let (_, l) = cache.get_or_compute(key(1), || 2.0);
        assert!(!l.hit, "cleared entry recomputes");
    }

    #[test]
    fn concurrent_lookups_agree() {
        use std::sync::Arc;
        let cache = Arc::new(TemplateCache::with_max_bytes(64 * ENTRY_BYTES));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for round in 0..200 {
                        for i in 0..32 {
                            let (v, _) = cache.get_or_compute(key(i), || i as f64 * 1.5);
                            assert_eq!(v, i as f64 * 1.5, "thread {t} round {round}");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker");
        }
    }

    #[test]
    fn debug_is_compact() {
        let cache = TemplateCache::with_max_bytes(1 << 20);
        let s = format!("{cache:?}");
        assert!(s.contains("entries") && s.contains("max_bytes"), "{s}");
    }

    #[test]
    fn snapshot_restore_round_trips_bit_exactly() {
        let cache = TemplateCache::unbounded();
        // Values with non-trivial bit patterns, including a negative zero
        // and a subnormal, so bit-identity is actually exercised.
        let values = [0.1 + 0.2, -0.0, f64::MIN_POSITIVE / 2.0, -3.25e-18, 7.0];
        for (i, v) in values.iter().enumerate() {
            cache.get_or_compute(key(i as u64), || *v);
        }
        let mut file = Vec::new();
        let written = cache.snapshot_to(&mut file).unwrap();
        assert_eq!(written, values.len());

        let restored = TemplateCache::unbounded();
        let admitted = restored.restore_from(&file[..]).unwrap();
        assert_eq!(admitted, values.len());
        assert_eq!(restored.len(), values.len());
        // A restore is not traffic: no hit/miss movement yet.
        let stats = restored.lifetime();
        assert_eq!((stats.hits, stats.misses), (0, 0));
        for (i, v) in values.iter().enumerate() {
            let (got, l) = restored.get_or_compute(key(i as u64), || unreachable!("restored"));
            assert!(l.hit, "entry {i} must be resident after restore");
            assert_eq!(got.to_bits(), v.to_bits(), "entry {i}");
        }
    }

    #[test]
    fn snapshot_is_deterministic_for_equal_contents() {
        let a = TemplateCache::unbounded();
        let b = TemplateCache::unbounded();
        // Insert in different orders; the snapshot sorts by key words.
        for i in 0..50 {
            a.get_or_compute(key(i), || i as f64);
        }
        for i in (0..50).rev() {
            b.get_or_compute(key(i), || i as f64);
        }
        let (mut fa, mut fb) = (Vec::new(), Vec::new());
        a.snapshot_to(&mut fa).unwrap();
        b.snapshot_to(&mut fb).unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn bounded_restore_respects_the_memory_bound() {
        let big = TemplateCache::unbounded();
        for i in 0..5_000 {
            big.get_or_compute(key(i), || i as f64);
        }
        let mut file = Vec::new();
        big.snapshot_to(&mut file).unwrap();

        let small = TemplateCache::with_max_bytes(256 * ENTRY_BYTES);
        let bound = small.max_bytes().expect("bounded");
        let admitted = small.restore_from(&file[..]).unwrap();
        assert!(admitted < 5_000, "a small cache cannot admit the whole snapshot");
        assert!(admitted > 0);
        assert!(small.resident_bytes() <= bound);
        assert_eq!(small.lifetime().evictions, 0, "restore skips, never evicts");
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let cache = TemplateCache::unbounded();
        let errors = [
            ("", "empty"),
            ("not a snapshot\n", "foreign header"),
            ("bemcap-template-cache v9 0\n", "future version"),
            ("bemcap-template-cache v1\n", "missing count"),
            ("bemcap-template-cache v1 2\n", "truncated body"),
            ("bemcap-template-cache v1 1\n1 2 3\n", "short entry"),
            ("bemcap-template-cache v1 1\nzz 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1\n", "bad hex"),
        ];
        for (text, what) in errors {
            let e = cache.restore_from(text.as_bytes()).unwrap_err();
            assert_eq!(e.kind(), io::ErrorKind::InvalidData, "{what}: {e}");
        }
        assert!(cache.is_empty() || !cache.is_empty(), "no panic is the contract");
        // The future-version message names the version problem.
        let e = cache.restore_from("bemcap-template-cache v9 0\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let cache = TemplateCache::unbounded();
        let mut file = Vec::new();
        assert_eq!(cache.snapshot_to(&mut file).unwrap(), 0);
        let restored = TemplateCache::unbounded();
        assert_eq!(restored.restore_from(&file[..]).unwrap(), 0);
        assert!(restored.is_empty());
    }
}

//! Error type of the extraction layer.

use std::error::Error;
use std::fmt;

use bemcap_basis::BasisError;
use bemcap_fmm::FmmError;
use bemcap_geom::GeomError;
use bemcap_linalg::LinalgError;
use bemcap_pfft::PfftError;

/// Errors from the extraction pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Basis instantiation failed.
    Basis(BasisError),
    /// A dense factorization or Krylov solve failed.
    Linalg(LinalgError),
    /// The multipole baseline failed.
    Fmm(FmmError),
    /// The precorrected-FFT baseline failed.
    Pfft(PfftError),
    /// The geometry has no conductors.
    EmptyGeometry,
    /// The execution core refused a submission because its admission
    /// queue is full — the structured backpressure signal of
    /// [`crate::exec::Executor`]. Retry later, or submit to an executor
    /// with a deeper queue; nothing was executed.
    Busy {
        /// Jobs already waiting in the executor queue.
        queued: usize,
        /// The executor's configured queue depth.
        depth: usize,
    },
    /// A batch job failed. Carries the failing job's index in the input
    /// order, the swept parameter value when the job came from a
    /// parameterized family ([`crate::sweep::sweep`] /
    /// [`crate::batch::BatchExtractor::extract_family`]), and the
    /// underlying error.
    BatchJob {
        /// Index of the failing job in the batch input order.
        index: usize,
        /// The swept parameter value, if the job had one.
        parameter: Option<f64>,
        /// What went wrong inside the job.
        source: Box<CoreError>,
    },
    /// The geometry layer rejected an input (unusable layout, bad
    /// window partition, parse failure of an embedded description).
    Geometry(GeomError),
    /// A full-chip window extraction failed. Carries the failing
    /// window's index in the partition's window order and the
    /// underlying error.
    ChipWindow {
        /// Index of the failing window.
        window: usize,
        /// What went wrong inside the window's extraction.
        source: Box<CoreError>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Basis(e) => write!(f, "basis construction failed: {e}"),
            CoreError::Linalg(e) => write!(f, "linear algebra failed: {e}"),
            CoreError::Fmm(e) => write!(f, "multipole solver failed: {e}"),
            CoreError::Pfft(e) => write!(f, "pfft solver failed: {e}"),
            CoreError::EmptyGeometry => write!(f, "geometry has no conductors"),
            CoreError::Busy { queued, depth } => {
                write!(f, "executor busy: {queued} jobs waiting at queue depth {depth}")
            }
            CoreError::BatchJob { index, parameter: Some(p), source } => {
                write!(f, "batch job {index} (parameter {p:e}) failed: {source}")
            }
            CoreError::BatchJob { index, parameter: None, source } => {
                write!(f, "batch job {index} failed: {source}")
            }
            CoreError::Geometry(e) => write!(f, "geometry rejected: {e}"),
            CoreError::ChipWindow { window, source } => {
                write!(f, "chip window {window} failed: {source}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Basis(e) => Some(e),
            CoreError::Linalg(e) => Some(e),
            CoreError::Fmm(e) => Some(e),
            CoreError::Pfft(e) => Some(e),
            CoreError::EmptyGeometry | CoreError::Busy { .. } => None,
            CoreError::BatchJob { source, .. } => Some(source.as_ref()),
            CoreError::Geometry(e) => Some(e),
            CoreError::ChipWindow { source, .. } => Some(source.as_ref()),
        }
    }
}

impl From<BasisError> for CoreError {
    fn from(e: BasisError) -> Self {
        CoreError::Basis(e)
    }
}

impl From<LinalgError> for CoreError {
    fn from(e: LinalgError) -> Self {
        CoreError::Linalg(e)
    }
}

impl From<FmmError> for CoreError {
    fn from(e: FmmError) -> Self {
        CoreError::Fmm(e)
    }
}

impl From<PfftError> for CoreError {
    fn from(e: PfftError) -> Self {
        CoreError::Pfft(e)
    }
}

impl From<GeomError> for CoreError {
    fn from(e: GeomError) -> Self {
        CoreError::Geometry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = BasisError::EmptyGeometry.into();
        assert!(matches!(e, CoreError::Basis(_)));
        assert!(Error::source(&e).is_some());
        let e: CoreError = LinalgError::NotFinite.into();
        assert!(!format!("{e}").is_empty());
        assert!(Error::source(&CoreError::EmptyGeometry).is_none());
    }

    #[test]
    fn busy_reports_queue_state() {
        let e = CoreError::Busy { queued: 7, depth: 8 };
        let s = format!("{e}");
        assert!(s.contains("busy") && s.contains('7') && s.contains('8'), "{s}");
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn batch_job_context_in_display_and_source() {
        let e = CoreError::BatchJob {
            index: 3,
            parameter: Some(1.5e-6),
            source: Box::new(CoreError::EmptyGeometry),
        };
        let s = format!("{e}");
        assert!(s.contains("job 3") && s.contains("1.5e-6"), "{s}");
        assert!(Error::source(&e).is_some());
        let e = CoreError::BatchJob {
            index: 7,
            parameter: None,
            source: Box::new(CoreError::EmptyGeometry),
        };
        let s = format!("{e}");
        assert!(s.contains("job 7") && !s.contains("parameter"), "{s}");
    }
}

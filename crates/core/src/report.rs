//! Extraction performance records (the raw material of Tables 2 and 3).

use bemcap_linalg::KrylovStats;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Iterative-solver counters of one extraction, aggregated over every
/// right-hand side (one GMRES solve per conductor): present for the
/// Krylov-backed backends (`pwc-fmm`, `pwc-pfft`), absent for direct
/// solves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Total Krylov iterations (matrix-vector products).
    pub iterations: usize,
    /// Total GMRES restarts (Arnoldi bases discarded and rebuilt).
    pub restarts: usize,
    /// Worst final relative residual across the right-hand sides.
    pub residual: f64,
}

impl From<KrylovStats> for SolverStats {
    fn from(s: KrylovStats) -> SolverStats {
        SolverStats { iterations: s.matvecs, restarts: s.restarts, residual: s.residual }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} iterations ({} restarts), residual {:.2e}",
            self.iterations, self.restarts, self.residual
        )
    }
}

/// Performance record of one extraction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractionReport {
    /// Method name ("instantiable", "pwc-dense", "pwc-fmm", "pwc-pfft").
    /// `Method::Auto` reports the name of the backend it resolved to.
    pub method: String,
    /// System dimension N (basis functions or panels).
    pub n: usize,
    /// Template count M (instantiable method only).
    pub m_templates: Option<usize>,
    /// Workers used in the setup step.
    pub workers: usize,
    /// Seconds in the system setup step.
    pub setup_seconds: f64,
    /// Seconds in the system solving step.
    pub solve_seconds: f64,
    /// Estimated peak solver memory in bytes (system matrix + solver
    /// workspace or operator storage).
    pub memory_bytes: usize,
    /// Krylov counters for iterative backends (`None` for direct solves).
    pub krylov: Option<SolverStats>,
}

impl ExtractionReport {
    /// Total runtime.
    pub fn total_seconds(&self) -> f64 {
        self.setup_seconds + self.solve_seconds
    }

    /// Fraction of runtime spent in setup — the paper's ">95 %" claim for
    /// instantiable bases (§3).
    pub fn setup_fraction(&self) -> f64 {
        if self.total_seconds() == 0.0 {
            return 0.0;
        }
        self.setup_seconds / self.total_seconds()
    }
}

impl fmt::Display for ExtractionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: N={}", self.method, self.n)?;
        if let Some(m) = self.m_templates {
            write!(f, " (M={m} templates)")?;
        }
        write!(
            f,
            ", {} workers, setup {:.3} s ({:.0} %), solve {:.3} s, {:.1} MiB",
            self.workers,
            self.setup_seconds,
            100.0 * self.setup_fraction(),
            self.solve_seconds,
            self.memory_bytes as f64 / (1 << 20) as f64
        )?;
        if let Some(k) = &self.krylov {
            write!(f, ", krylov {k}")?;
        }
        Ok(())
    }
}

/// Pair-integral cache counters: lookups served from the shared cache
/// (`hits`) vs computed by the Galerkin engine (`misses`), plus the
/// eviction and byte traffic of a memory-bounded
/// [`crate::cache::TemplateCache`].
///
/// Only the instantiable-basis path of a caching batch run touches the
/// cache; every other configuration reports all-zero stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that fell through to the integration engine.
    pub misses: usize,
    /// Entries evicted to keep the cache inside its memory bound
    /// (always 0 for unbounded caches).
    pub evictions: usize,
    /// Approximate bytes inserted into the cache
    /// ([`crate::cache::ENTRY_BYTES`] per miss).
    pub inserted_bytes: usize,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> usize {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups() as f64
    }

    /// Accumulates another job's counters into this one.
    pub fn absorb(&mut self, other: CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.inserted_bytes += other.inserted_bytes;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lookups, {:.1} % hit rate, {} evictions",
            self.lookups(),
            100.0 * self.hit_rate(),
            self.evictions
        )
    }
}

/// Execution-core counters: how submissions moved through the
/// [`crate::exec::Executor`]'s admission queue and how aggressively
/// concurrent work was coalesced into shared micro-batches.
///
/// Surfaces in three places, mirroring [`CacheStats`]: per batch run in
/// [`BatchReport::exec`], per daemon lifetime through the `bemcap-serve`
/// `stats` op, and per submission in `bemcap_core::exec::Submission`.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecStats {
    /// Submissions admitted into the queue.
    pub submitted: usize,
    /// Submissions refused with [`crate::error::CoreError::Busy`] because
    /// the queue was at its configured depth.
    pub rejected: usize,
    /// Admitted submissions that joined an already-waiting micro-batch
    /// instead of opening a new one (request coalescing).
    pub coalesced: usize,
    /// Micro-batches executed (each builds one Galerkin engine).
    pub micro_batches: usize,
    /// Jobs executed across all micro-batches.
    pub jobs: usize,
    /// Total seconds submissions spent waiting in the queue before their
    /// micro-batch started.
    pub queue_seconds: f64,
}

impl ExecStats {
    /// Mean jobs per executed micro-batch — 1.0 means no coalescing
    /// happened, higher means engine and locality costs were amortized
    /// across that many jobs (0 when idle).
    pub fn coalescing_ratio(&self) -> f64 {
        if self.micro_batches == 0 {
            return 0.0;
        }
        self.jobs as f64 / self.micro_batches as f64
    }

    /// Mean seconds a submission waited in the queue (0 when idle).
    pub fn mean_queue_seconds(&self) -> f64 {
        if self.submitted == 0 {
            return 0.0;
        }
        self.queue_seconds / self.submitted as f64
    }

    /// Accumulates another run's counters into this one.
    pub fn absorb(&mut self, other: ExecStats) {
        self.submitted += other.submitted;
        self.rejected += other.rejected;
        self.coalesced += other.coalesced;
        self.micro_batches += other.micro_batches;
        self.jobs += other.jobs;
        self.queue_seconds += other.queue_seconds;
    }
}

impl fmt::Display for ExecStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} submitted ({} coalesced, {} rejected), {} micro-batches, \
             {:.2} jobs/micro-batch, mean queue wait {:.1} ms",
            self.submitted,
            self.coalesced,
            self.rejected,
            self.micro_batches,
            self.coalescing_ratio(),
            1e3 * self.mean_queue_seconds()
        )
    }
}

/// Performance record of one job inside a batch extraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobReport {
    /// Job index in the batch input order.
    pub index: usize,
    /// Scheduler worker that ran the job.
    pub worker: usize,
    /// Wall-clock seconds of the whole job (setup + solve).
    pub seconds: f64,
    /// Pair-integral cache counters for this job.
    pub cache: CacheStats,
}

/// Performance record of a whole batch extraction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchReport {
    /// Number of jobs.
    pub jobs: usize,
    /// Scheduler pool size.
    pub workers: usize,
    /// Whether the shared pair-integral cache was enabled.
    pub cache_enabled: bool,
    /// Wall-clock seconds of the whole batch (scheduling included).
    pub wall_seconds: f64,
    /// Sum of per-job seconds — the work the pool actually absorbed.
    pub busy_seconds: f64,
    /// Aggregated cache counters across all jobs.
    pub cache: CacheStats,
    /// Execution-core counters of this run (admission, queue wait,
    /// coalescing).
    pub exec: ExecStats,
}

impl BatchReport {
    /// Busy time over pool capacity — 1.0 means perfectly packed workers.
    pub fn parallel_efficiency(&self) -> f64 {
        if self.wall_seconds == 0.0 || self.workers == 0 {
            return 0.0;
        }
        self.busy_seconds / (self.workers as f64 * self.wall_seconds)
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} jobs on {} workers in {:.3} s ({:.0} % efficiency); cache {}: {}; \
             mean queue wait {:.1} ms, {:.2} jobs/micro-batch",
            self.jobs,
            self.workers,
            self.wall_seconds,
            100.0 * self.parallel_efficiency(),
            if self.cache_enabled { "on" } else { "off" },
            self.cache,
            1e3 * self.exec.mean_queue_seconds(),
            self.exec.coalescing_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let r = ExtractionReport {
            method: "instantiable".into(),
            n: 100,
            m_templates: Some(150),
            workers: 1,
            setup_seconds: 9.5,
            solve_seconds: 0.5,
            memory_bytes: 80_000,
            krylov: None,
        };
        assert!((r.total_seconds() - 10.0).abs() < 1e-12);
        assert!((r.setup_fraction() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn zero_total_is_safe() {
        let r = ExtractionReport {
            method: "x".into(),
            n: 0,
            m_templates: None,
            workers: 1,
            setup_seconds: 0.0,
            solve_seconds: 0.0,
            memory_bytes: 0,
            krylov: None,
        };
        assert_eq!(r.setup_fraction(), 0.0);
    }

    #[test]
    fn serializes() {
        let r = ExtractionReport {
            method: "pwc-fmm".into(),
            n: 10,
            m_templates: None,
            workers: 2,
            setup_seconds: 1.0,
            solve_seconds: 2.0,
            memory_bytes: 42,
            krylov: Some(SolverStats { iterations: 80, restarts: 1, residual: 4.2e-7 }),
        };
        // serde round trip through the derived impls (format-agnostic).
        let cloned = r.clone();
        assert_eq!(r, cloned);
    }

    #[test]
    fn extraction_report_display_shows_split_and_krylov() {
        let mut r = ExtractionReport {
            method: "pwc-pfft".into(),
            n: 640,
            m_templates: None,
            workers: 1,
            setup_seconds: 0.8,
            solve_seconds: 0.2,
            memory_bytes: 3 << 20,
            krylov: Some(SolverStats { iterations: 123, restarts: 2, residual: 7.5e-7 }),
        };
        let s = format!("{r}");
        assert!(s.contains("pwc-pfft") && s.contains("N=640"), "{s}");
        assert!(s.contains("setup 0.800 s (80 %)") && s.contains("solve 0.200 s"), "{s}");
        assert!(s.contains("123 iterations (2 restarts)") && s.contains("7.50e-7"), "{s}");
        r.krylov = None;
        r.m_templates = Some(900);
        r.method = "instantiable".into();
        let s = format!("{r}");
        assert!(!s.contains("krylov"), "{s}");
        assert!(s.contains("(M=900 templates)"), "{s}");
    }

    #[test]
    fn solver_stats_from_krylov_stats() {
        let s: SolverStats =
            bemcap_linalg::KrylovStats { matvecs: 42, restarts: 3, residual: 1.5e-8 }.into();
        assert_eq!((s.iterations, s.restarts), (42, 3));
        assert!(format!("{s}").contains("42 iterations (3 restarts)"));
    }

    #[test]
    fn cache_stats_rates_and_absorb() {
        let mut total = CacheStats::default();
        assert_eq!(total.hit_rate(), 0.0);
        total.absorb(CacheStats { hits: 3, misses: 1, evictions: 2, inserted_bytes: 192 });
        total.absorb(CacheStats { hits: 1, misses: 3, evictions: 1, inserted_bytes: 576 });
        assert_eq!(total.lookups(), 8);
        assert!((total.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(total.evictions, 3);
        assert_eq!(total.inserted_bytes, 768);
    }

    #[test]
    fn exec_stats_ratios_absorb_and_display() {
        let mut total = ExecStats::default();
        assert_eq!(total.coalescing_ratio(), 0.0);
        assert_eq!(total.mean_queue_seconds(), 0.0);
        total.absorb(ExecStats {
            submitted: 4,
            rejected: 1,
            coalesced: 2,
            micro_batches: 2,
            jobs: 4,
            queue_seconds: 0.02,
        });
        total.absorb(ExecStats {
            submitted: 2,
            rejected: 0,
            coalesced: 0,
            micro_batches: 2,
            jobs: 2,
            queue_seconds: 0.01,
        });
        assert_eq!((total.submitted, total.rejected, total.coalesced), (6, 1, 2));
        assert!((total.coalescing_ratio() - 6.0 / 4.0).abs() < 1e-12);
        assert!((total.mean_queue_seconds() - 0.03 / 6.0).abs() < 1e-12);
        let s = format!("{total}");
        assert!(s.contains("6 submitted") && s.contains("1 rejected"), "{s}");
        assert!(s.contains("jobs/micro-batch") && s.contains("queue wait"), "{s}");
    }

    #[test]
    fn batch_efficiency() {
        let r = BatchReport {
            jobs: 8,
            workers: 4,
            cache_enabled: true,
            wall_seconds: 2.0,
            busy_seconds: 6.0,
            cache: CacheStats { hits: 10, misses: 30, ..CacheStats::default() },
            exec: ExecStats::default(),
        };
        assert!((r.parallel_efficiency() - 0.75).abs() < 1e-12);
        let idle = BatchReport { wall_seconds: 0.0, ..r };
        assert_eq!(idle.parallel_efficiency(), 0.0);
    }

    #[test]
    fn batch_report_display_shows_hit_rate_evictions_queue_and_coalescing() {
        let r = BatchReport {
            jobs: 8,
            workers: 4,
            cache_enabled: true,
            wall_seconds: 2.0,
            busy_seconds: 6.0,
            cache: CacheStats { hits: 30, misses: 10, evictions: 5, inserted_bytes: 1920 },
            exec: ExecStats {
                submitted: 8,
                rejected: 0,
                coalesced: 4,
                micro_batches: 4,
                jobs: 8,
                queue_seconds: 0.0125,
            },
        };
        let s = format!("{r}");
        assert!(s.contains("75.0 % hit rate"), "{s}");
        assert!(s.contains("5 evictions"), "{s}");
        assert!(s.contains("8 jobs") && s.contains("cache on"), "{s}");
        // 12.5 ms total over 8 submissions: the one-line summary shows
        // the per-submission mean, not the sum.
        assert!(s.contains("mean queue wait 1.6 ms"), "{s}");
        assert!(s.contains("2.00 jobs/micro-batch"), "{s}");
        let off = BatchReport { cache_enabled: false, ..r };
        assert!(format!("{off}").contains("cache off"));
    }
}

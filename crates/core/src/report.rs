//! Extraction performance records (the raw material of Tables 2 and 3).

use serde::{Deserialize, Serialize};

/// Performance record of one extraction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtractionReport {
    /// Method name ("instantiable", "pwc-dense", "pwc-fmm", "pwc-pfft").
    pub method: String,
    /// System dimension N (basis functions or panels).
    pub n: usize,
    /// Template count M (instantiable method only).
    pub m_templates: Option<usize>,
    /// Workers used in the setup step.
    pub workers: usize,
    /// Seconds in the system setup step.
    pub setup_seconds: f64,
    /// Seconds in the system solving step.
    pub solve_seconds: f64,
    /// Estimated peak solver memory in bytes (system matrix + solver
    /// workspace or operator storage).
    pub memory_bytes: usize,
}

impl ExtractionReport {
    /// Total runtime.
    pub fn total_seconds(&self) -> f64 {
        self.setup_seconds + self.solve_seconds
    }

    /// Fraction of runtime spent in setup — the paper's ">95 %" claim for
    /// instantiable bases (§3).
    pub fn setup_fraction(&self) -> f64 {
        if self.total_seconds() == 0.0 {
            return 0.0;
        }
        self.setup_seconds / self.total_seconds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let r = ExtractionReport {
            method: "instantiable".into(),
            n: 100,
            m_templates: Some(150),
            workers: 1,
            setup_seconds: 9.5,
            solve_seconds: 0.5,
            memory_bytes: 80_000,
        };
        assert!((r.total_seconds() - 10.0).abs() < 1e-12);
        assert!((r.setup_fraction() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn zero_total_is_safe() {
        let r = ExtractionReport {
            method: "x".into(),
            n: 0,
            m_templates: None,
            workers: 1,
            setup_seconds: 0.0,
            solve_seconds: 0.0,
            memory_bytes: 0,
        };
        assert_eq!(r.setup_fraction(), 0.0);
    }

    #[test]
    fn serializes() {
        let r = ExtractionReport {
            method: "pwc-fmm".into(),
            n: 10,
            m_templates: None,
            workers: 2,
            setup_seconds: 1.0,
            solve_seconds: 2.0,
            memory_bytes: 42,
        };
        // serde round trip through the derived impls (format-agnostic).
        let cloned = r.clone();
        assert_eq!(r, cloned);
    }
}

//! Batched multi-net extraction: one solver configuration over a family
//! of geometries.
//!
//! The paper's economics (conf_dac_HsiaoD11) are that instantiable basis
//! functions make per-structure setup cheap — cheap enough that the
//! natural unit of work is not one geometry but a *family* of similar
//! geometries (a parameter sweep, a bus with many nets, a corner
//! enumeration). [`BatchExtractor`] packages that unit:
//!
//! * jobs are scheduled across the `bemcap-par` pool with the same static
//!   contiguous partition as Algorithm 1, and results always come back in
//!   **input order**, whatever the pool size — scheduling can never
//!   reorder or change a result;
//! * the Galerkin engine is built **once** and shared by every worker;
//! * with caching enabled (the default), pair integrals are shared across
//!   jobs through a [`bemcap_basis::TemplateKey`]-keyed
//!   [`crate::cache::TemplateCache`]: families that keep part of the
//!   geometry fixed (every sweep does) skip the integrals of the
//!   unchanged template pairs entirely. A cache hit returns the very f64
//!   a recomputation would produce, so cached and uncached runs yield
//!   **bit-identical** capacitance matrices. By default each run gets a
//!   private unbounded cache; [`BatchExtractor::shared_cache`] plugs in a
//!   process-lifetime (optionally memory-bounded) cache instead, which is
//!   how the `bemcap-serve` daemon keeps integrals warm across requests;
//! * per-job timings and cache counters come back as
//!   [`JobReport`]s under a whole-run [`BatchReport`].
//!
//! [`crate::sweep::sweep`] is a thin wrapper over this module.
//!
//! ```
//! use bemcap_core::batch::BatchExtractor;
//! use bemcap_core::Extractor;
//! use bemcap_geom::structures::{self, CrossingParams};
//!
//! let batch = BatchExtractor::new(Extractor::new()).workers(1);
//! let hs = [0.4e-6, 0.8e-6];
//! let result = batch.extract_family(&hs, |h| {
//!     structures::crossing_wires(CrossingParams { separation: h, ..Default::default() })
//! })?;
//! assert_eq!(result.points().len(), 2);
//! assert!(result.report().cache.hits > 0); // the fixed wire recurs
//! # Ok::<(), bemcap_core::CoreError>(())
//! ```

use std::sync::Arc;
use std::time::Instant;

use bemcap_basis::instantiate::instantiate;
use bemcap_basis::{accumulate_entry, pair_integral, Template, TemplateIndex, TemplateKey};
use bemcap_geom::Geometry;
use bemcap_linalg::Matrix;
use bemcap_par::{k_to_ij, pool, triangle_size};
use bemcap_quad::galerkin::GalerkinEngine;

use crate::assembly;
use crate::cache::{TemplateCache, ENTRY_BYTES};
use crate::error::CoreError;
use crate::extraction::{CapacitanceMatrix, Extraction, Extractor, Method};
use crate::report::{BatchReport, CacheStats, ExtractionReport, JobReport};
use crate::solver::solve_capacitance;

/// Name of the environment variable that sets the default pool size
/// (`BEMCAP_POOL=4`). CI runs the test suite under several values so
/// scheduler nondeterminism cannot hide behind a fixed default.
pub const POOL_ENV: &str = "BEMCAP_POOL";

/// The default scheduler pool size: `BEMCAP_POOL` when set to a positive
/// integer, 1 otherwise.
pub fn default_pool_size() -> usize {
    std::env::var(POOL_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// One unit of batch work: a geometry with a label and an optional swept
/// parameter value.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Human-readable job label (net name, corner name, "h=0.4e-6", ...).
    pub label: String,
    /// The swept parameter value for family jobs; `None` for ad-hoc jobs.
    pub parameter: Option<f64>,
    /// The geometry to extract.
    pub geometry: Geometry,
}

impl BatchJob {
    /// A job with no parameter annotation.
    pub fn new(label: impl Into<String>, geometry: Geometry) -> BatchJob {
        BatchJob { label: label.into(), parameter: None, geometry }
    }

    /// Attaches the swept parameter value (reported back in results and
    /// error contexts).
    #[must_use]
    pub fn with_parameter(mut self, parameter: f64) -> BatchJob {
        self.parameter = Some(parameter);
        self
    }
}

/// One completed job: its extraction plus the per-job scheduling record.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// The job label, as submitted.
    pub label: String,
    /// The swept parameter value, if the job had one.
    pub parameter: Option<f64>,
    /// The extraction result.
    pub extraction: Extraction,
    /// Scheduling and cache record of this job.
    pub job: JobReport,
}

/// All results of a batch run, in input order, plus the run-level report.
#[derive(Debug, Clone)]
pub struct BatchResult {
    points: Vec<BatchPoint>,
    report: BatchReport,
}

impl BatchResult {
    /// The per-job results, in input order.
    pub fn points(&self) -> &[BatchPoint] {
        &self.points
    }

    /// The run-level report (wall time, pool, aggregated cache counters).
    pub fn report(&self) -> &BatchReport {
        &self.report
    }

    /// Consumes the result into its points.
    pub fn into_points(self) -> Vec<BatchPoint> {
        self.points
    }

    /// One capacitance entry across the batch as `(parameter, C_ij)`
    /// pairs — the plottable curve of a family run. Jobs without a
    /// parameter annotation are skipped.
    pub fn entry_curve(&self, i: usize, j: usize) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| Some((p.parameter?, p.extraction.capacitance().get(i, j))))
            .collect()
    }
}

/// Batch extraction front end: an [`Extractor`] configuration applied to
/// many geometries with job-level parallelism and cross-job caching.
///
/// The cross-job cache applies to instantiable extractors with the
/// default sequential setup (the batch pool is then the parallelism).
/// Extractors that ask for within-job parallelism
/// ([`Extractor::parallelism`]) keep it: each job runs the unchanged
/// one-at-a-time path, scheduled across the pool but without the shared
/// cache — pick one level or the other rather than oversubscribing both.
#[derive(Debug, Clone)]
pub struct BatchExtractor {
    extractor: Extractor,
    workers: Option<usize>,
    cache: CacheChoice,
}

/// Which pair-integral cache a batch run uses.
#[derive(Debug, Clone)]
enum CacheChoice {
    /// No caching: every integral is computed.
    Off,
    /// A fresh unbounded [`TemplateCache`] per run (the default).
    PerRun,
    /// A caller-owned, typically process-lifetime cache shared across
    /// runs (and across threads — the daemon's configuration).
    Shared(Arc<TemplateCache>),
}

impl BatchExtractor {
    /// A batch front end over the given extractor configuration, with
    /// caching enabled and the pool size taken from `BEMCAP_POOL` (or 1).
    pub fn new(extractor: Extractor) -> BatchExtractor {
        BatchExtractor { extractor, workers: None, cache: CacheChoice::PerRun }
    }

    /// Pins the scheduler pool size.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn workers(mut self, n: usize) -> BatchExtractor {
        assert!(n > 0, "batch pool needs at least one worker");
        self.workers = Some(n);
        self
    }

    /// Enables or disables the shared pair-integral cache. Results are
    /// bit-identical either way; only the work (and the reported cache
    /// counters) changes. Enabling restores the default per-run cache,
    /// discarding any [`BatchExtractor::shared_cache`] choice.
    #[must_use]
    pub fn cache(mut self, on: bool) -> BatchExtractor {
        self.cache = if on { CacheChoice::PerRun } else { CacheChoice::Off };
        self
    }

    /// Uses a caller-owned [`TemplateCache`] instead of a fresh per-run
    /// one, so pair integrals survive across batch runs for the lifetime
    /// of the cache — the configuration behind the `bemcap-serve` daemon.
    /// Results stay bit-identical whatever the cache's bound or prior
    /// contents; only the hit/miss/eviction counters change.
    #[must_use]
    pub fn shared_cache(mut self, cache: Arc<TemplateCache>) -> BatchExtractor {
        self.cache = CacheChoice::Shared(cache);
        self
    }

    /// The pool size this batch will run with.
    pub fn effective_workers(&self) -> usize {
        self.workers.unwrap_or_else(default_pool_size)
    }

    /// Runs every job and returns the results in input order.
    ///
    /// All jobs are attempted; if any fail, the error of the **lowest
    /// failing index** is returned (deterministic under any pool size),
    /// wrapped in [`CoreError::BatchJob`] with the job's index and
    /// parameter.
    ///
    /// # Errors
    ///
    /// [`CoreError::BatchJob`] around the first failing job's error.
    pub fn extract_all(&self, jobs: &[BatchJob]) -> Result<BatchResult, CoreError> {
        let workers = self.effective_workers();
        if self.extractor.is_accelerated() {
            // Build the §4.2.3 tables before the pool starts so the first
            // accelerated job is not billed for them.
            bemcap_accel::fastmath::warm_tables();
        }
        let engine = self.extractor.engine();
        let cache: Option<Arc<TemplateCache>> = match &self.cache {
            CacheChoice::Off => None,
            CacheChoice::PerRun => Some(Arc::new(TemplateCache::unbounded())),
            CacheChoice::Shared(c) => Some(Arc::clone(c)),
        };
        let start = Instant::now();
        let (outcomes, _) = pool::map_ordered(workers, jobs.len(), |w, idx| {
            let t = Instant::now();
            let out = self.run_job(&engine, cache.as_deref(), &jobs[idx].geometry);
            (w, out, t.elapsed().as_secs_f64())
        });
        let wall_seconds = start.elapsed().as_secs_f64();

        let mut points = Vec::with_capacity(jobs.len());
        let mut busy_seconds = 0.0;
        let mut total_cache = CacheStats::default();
        for (idx, (job, (worker, outcome, seconds))) in jobs.iter().zip(outcomes).enumerate() {
            let (extraction, stats) = outcome.map_err(|e| CoreError::BatchJob {
                index: idx,
                parameter: job.parameter,
                source: Box::new(e),
            })?;
            busy_seconds += seconds;
            total_cache.absorb(stats);
            points.push(BatchPoint {
                label: job.label.clone(),
                parameter: job.parameter,
                extraction,
                job: JobReport { index: idx, worker, seconds, cache: stats },
            });
        }
        Ok(BatchResult {
            points,
            report: BatchReport {
                jobs: jobs.len(),
                workers,
                cache_enabled: cache.is_some(),
                wall_seconds,
                busy_seconds,
                cache: total_cache,
            },
        })
    }

    /// Runs the batch over `build(p)` for every parameter in `params` —
    /// the family form behind [`crate::sweep::sweep`].
    ///
    /// # Errors
    ///
    /// [`CoreError::BatchJob`] around the first failing job's error, with
    /// the parameter value attached.
    pub fn extract_family(
        &self,
        params: &[f64],
        mut build: impl FnMut(f64) -> Geometry,
    ) -> Result<BatchResult, CoreError> {
        let jobs: Vec<BatchJob> = params
            .iter()
            .map(|&p| BatchJob::new(format!("param={p:e}"), build(p)).with_parameter(p))
            .collect();
        self.extract_all(&jobs)
    }

    /// Runs the batch over plain geometries, labeled by index.
    ///
    /// # Errors
    ///
    /// [`CoreError::BatchJob`] around the first failing job's error.
    pub fn extract_geometries(
        &self,
        geometries: impl IntoIterator<Item = Geometry>,
    ) -> Result<BatchResult, CoreError> {
        let jobs: Vec<BatchJob> = geometries
            .into_iter()
            .enumerate()
            .map(|(i, g)| BatchJob::new(format!("job{i}"), g))
            .collect();
        self.extract_all(&jobs)
    }

    /// One job: the sequential-setup instantiable path goes through the
    /// shared engine and cache; everything else (mesh-based baselines,
    /// and instantiable extractors that asked for within-job
    /// [`crate::extraction::Parallelism`]) runs the one-at-a-time
    /// extractor unchanged — bit-identical to [`Extractor::extract`] by
    /// construction in every case.
    fn run_job(
        &self,
        engine: &GalerkinEngine,
        cache: Option<&TemplateCache>,
        geo: &Geometry,
    ) -> Result<(Extraction, CacheStats), CoreError> {
        match self.extractor.method_kind() {
            Method::InstantiableBasis if self.extractor.is_sequential_setup() => {
                extract_instantiable_cached(&self.extractor, engine, cache, geo)
            }
            _ => Ok((self.extractor.extract(geo)?, CacheStats::default())),
        }
    }
}

/// The instantiable extraction of [`Extractor::extract`], restated with a
/// caller-provided engine and an optional shared pair-integral cache.
///
/// The k-loop, accumulation order, and scaling are exactly those of
/// `assembly::assemble_sequential`, so the result is bit-identical to the
/// one-at-a-time sequential path — with or without the cache.
fn extract_instantiable_cached(
    extractor: &Extractor,
    engine: &GalerkinEngine,
    cache: Option<&TemplateCache>,
    geo: &Geometry,
) -> Result<(Extraction, CacheStats), CoreError> {
    if geo.conductor_count() == 0 {
        return Err(CoreError::EmptyGeometry);
    }
    let names: Vec<String> = geo.conductors().iter().map(|c| c.name().to_string()).collect();
    let set = instantiate(geo, extractor.instantiate_cfg())?;
    let index = TemplateIndex::new(&set);
    let n_cond = geo.conductor_count();

    let start = Instant::now();
    let scale = assembly::kernel_scale(geo.eps_rel());
    let n = index.basis_count();
    let mut p = Matrix::zeros(n, n);
    let mut stats = CacheStats::default();
    let keys: Vec<TemplateKey> = index.templates().iter().map(Template::key).collect();
    for k in 0..triangle_size(index.template_count()) {
        let (i, j) = k_to_ij(k);
        let raw = match cache {
            Some(c) => {
                let (v, lookup) = c.get_or_compute((keys[i], keys[j]), || {
                    pair_integral(engine, index.template(i), index.template(j))
                });
                if lookup.hit {
                    stats.hits += 1;
                } else {
                    stats.misses += 1;
                    stats.inserted_bytes += ENTRY_BYTES;
                }
                stats.evictions += lookup.evicted;
                v
            }
            None => pair_integral(engine, index.template(i), index.template(j)),
        };
        accumulate_entry(&mut p, i, j, index.label(i), index.label(j), scale * raw);
    }
    let phi = assembly::assemble_phi(engine, &set, n_cond);
    let setup_seconds = start.elapsed().as_secs_f64();
    let memory = p.memory_bytes() + phi.memory_bytes();
    let (c, solve_seconds) = solve_capacitance(p, &phi)?;
    let extraction = Extraction::from_parts(
        CapacitanceMatrix::from_parts(names, c),
        ExtractionReport {
            method: "instantiable".into(),
            n,
            m_templates: Some(index.template_count()),
            workers: 1,
            setup_seconds,
            solve_seconds,
            memory_bytes: memory,
        },
    );
    Ok((extraction, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::structures::{self, CrossingParams};

    fn family(hs: &[f64]) -> Vec<BatchJob> {
        hs.iter()
            .map(|&h| {
                BatchJob::new(
                    format!("h={h}"),
                    structures::crossing_wires(CrossingParams {
                        separation: h,
                        ..Default::default()
                    }),
                )
                .with_parameter(h)
            })
            .collect()
    }

    #[test]
    fn batch_matches_single_extraction_bit_for_bit() {
        let ex = Extractor::new();
        let jobs = family(&[0.4e-6, 0.7e-6, 1.1e-6]);
        let batch = BatchExtractor::new(ex.clone()).workers(2);
        let result = batch.extract_all(&jobs).expect("batch");
        assert_eq!(result.points().len(), 3);
        for (job, point) in jobs.iter().zip(result.points()) {
            let single = ex.extract(&job.geometry).expect("single");
            let a = single.capacitance().matrix();
            let b = point.extraction.capacitance().matrix();
            assert_eq!(a.as_slice(), b.as_slice(), "job {}", point.label);
        }
    }

    #[test]
    fn cache_on_off_identical_and_hits_counted() {
        let jobs = family(&[0.5e-6, 0.5e-6, 0.9e-6]);
        // One worker: jobs run in order, so job 1 (a duplicate of job 0)
        // must be answered entirely from the cache. With more workers the
        // duplicate jobs could race and legitimately both miss.
        let cached =
            BatchExtractor::new(Extractor::new()).workers(1).extract_all(&jobs).expect("cached");
        let uncached = BatchExtractor::new(Extractor::new())
            .workers(1)
            .cache(false)
            .extract_all(&jobs)
            .expect("uncached");
        for (a, b) in cached.points().iter().zip(uncached.points()) {
            assert_eq!(
                a.extraction.capacitance().matrix().as_slice(),
                b.extraction.capacitance().matrix().as_slice()
            );
        }
        // Jobs 0 and 1 are identical geometries: job 1 must be all hits.
        assert!(cached.points()[1].job.cache.hit_rate() > 0.99);
        assert_eq!(uncached.report().cache, CacheStats::default());
        assert!(cached.report().cache.hits > 0);
    }

    #[test]
    fn pool_size_cannot_change_results() {
        let jobs = family(&[0.4e-6, 0.6e-6, 0.8e-6, 1.0e-6, 1.2e-6]);
        let one = BatchExtractor::new(Extractor::new()).workers(1).extract_all(&jobs).expect("w1");
        for w in [2, 3, 5, 8] {
            let many =
                BatchExtractor::new(Extractor::new()).workers(w).extract_all(&jobs).expect("wn");
            for (a, b) in one.points().iter().zip(many.points()) {
                assert_eq!(a.parameter, b.parameter, "workers={w}");
                assert_eq!(
                    a.extraction.capacitance().matrix().as_slice(),
                    b.extraction.capacitance().matrix().as_slice(),
                    "workers={w}"
                );
            }
        }
    }

    #[test]
    fn failing_job_reports_index_and_parameter() {
        let mut jobs = family(&[0.4e-6, 0.8e-6]);
        jobs.insert(1, BatchJob::new("empty", Geometry::new(vec![])).with_parameter(42.0));
        let err = BatchExtractor::new(Extractor::new()).extract_all(&jobs).unwrap_err();
        match err {
            CoreError::BatchJob { index, parameter, source } => {
                assert_eq!(index, 1);
                assert_eq!(parameter, Some(42.0));
                assert!(matches!(*source, CoreError::EmptyGeometry));
            }
            other => panic!("expected BatchJob error, got {other:?}"),
        }
    }

    #[test]
    fn lowest_failing_index_wins_at_any_pool_size() {
        let mut jobs = family(&[0.4e-6, 0.8e-6, 1.2e-6]);
        jobs.insert(1, BatchJob::new("bad1", Geometry::new(vec![])));
        jobs.push(BatchJob::new("bad2", Geometry::new(vec![])));
        for w in [1, 2, 4] {
            let err =
                BatchExtractor::new(Extractor::new()).workers(w).extract_all(&jobs).unwrap_err();
            match err {
                CoreError::BatchJob { index, .. } => assert_eq!(index, 1, "workers={w}"),
                other => panic!("expected BatchJob error, got {other:?}"),
            }
        }
    }

    #[test]
    fn report_accounts_for_all_jobs() {
        let jobs = family(&[0.4e-6, 0.8e-6, 1.2e-6]);
        let result =
            BatchExtractor::new(Extractor::new()).workers(2).extract_all(&jobs).expect("batch");
        let r = result.report();
        assert_eq!(r.jobs, 3);
        assert_eq!(r.workers, 2);
        assert!(r.cache_enabled);
        assert!(r.wall_seconds > 0.0);
        assert!(r.busy_seconds > 0.0);
        let summed: usize = result.points().iter().map(|p| p.job.cache.lookups()).sum();
        assert_eq!(r.cache.lookups(), summed);
        for (i, p) in result.points().iter().enumerate() {
            assert_eq!(p.job.index, i);
            assert!(p.job.worker < 2);
            assert!(p.job.seconds >= 0.0);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let result = BatchExtractor::new(Extractor::new()).extract_all(&[]).expect("empty");
        assert!(result.points().is_empty());
        assert_eq!(result.report().jobs, 0);
    }

    #[test]
    fn entry_curve_skips_unparameterized_jobs() {
        let mut jobs = family(&[0.4e-6, 0.8e-6]);
        jobs.push(BatchJob::new("extra", structures::crossing_wires(CrossingParams::default())));
        let result = BatchExtractor::new(Extractor::new()).extract_all(&jobs).expect("batch");
        let curve = result.entry_curve(0, 1);
        assert_eq!(curve.len(), 2);
        assert!(curve[0].1.abs() > curve[1].1.abs(), "coupling falls with h");
    }

    #[test]
    fn within_job_parallelism_is_honored_and_bit_identical() {
        // An extractor that asked for threaded setup keeps it inside the
        // batch: the job goes through the unchanged one-at-a-time path
        // (same merge order), so results match extract() bit for bit.
        use crate::extraction::Parallelism;
        let ex = Extractor::new().parallelism(Parallelism::Threads(2));
        let jobs = family(&[0.5e-6, 0.9e-6]);
        let result = BatchExtractor::new(ex.clone()).extract_all(&jobs).expect("batch");
        for (job, point) in jobs.iter().zip(result.points()) {
            let single = ex.extract(&job.geometry).expect("single");
            assert_eq!(
                single.capacitance().matrix().as_slice(),
                point.extraction.capacitance().matrix().as_slice()
            );
            assert_eq!(point.extraction.report().workers, 2);
        }
        // The shared cache is bypassed on this path.
        assert_eq!(result.report().cache, CacheStats::default());
    }

    #[test]
    fn mesh_methods_run_through_batch() {
        let jobs = family(&[0.5e-6]);
        let result = BatchExtractor::new(Extractor::new().method(Method::PwcDense))
            .extract_all(&jobs)
            .expect("dense batch");
        assert_eq!(result.points()[0].extraction.report().method, "pwc-dense");
        assert_eq!(result.report().cache, CacheStats::default());
    }

    #[test]
    fn default_pool_size_is_positive() {
        assert!(default_pool_size() >= 1);
    }

    #[test]
    fn shared_cache_warms_across_runs() {
        let cache = Arc::new(TemplateCache::unbounded());
        let jobs = family(&[0.6e-6, 1.0e-6]);
        let batch =
            BatchExtractor::new(Extractor::new()).workers(1).shared_cache(Arc::clone(&cache));
        let cold = batch.extract_all(&jobs).expect("cold run");
        let warm = batch.extract_all(&jobs).expect("warm run");
        // Identical geometries, process-lifetime cache: the second run is
        // answered entirely from the cache...
        assert_eq!(warm.report().cache.misses, 0, "warm run must be all hits");
        assert!(cold.report().cache.misses > 0);
        // ...and bit-identical to the cold one.
        for (a, b) in cold.points().iter().zip(warm.points()) {
            assert_eq!(
                a.extraction.capacitance().matrix().as_slice(),
                b.extraction.capacitance().matrix().as_slice()
            );
        }
        assert!(!cache.is_empty());
        assert_eq!(cache.lifetime().lookups(), cold.report().cache.lookups() * 2);
    }

    #[test]
    fn bounded_shared_cache_evicts_but_results_are_unchanged() {
        // A bound far below the family's working set: evictions must
        // happen, the bound must hold, and every matrix must still be
        // bit-identical to the uncached run.
        let jobs = family(&[0.4e-6, 0.55e-6, 0.7e-6, 0.85e-6, 1.0e-6]);
        let cache = Arc::new(TemplateCache::with_max_bytes(64 * ENTRY_BYTES));
        let bounded = BatchExtractor::new(Extractor::new())
            .workers(1)
            .shared_cache(Arc::clone(&cache))
            .extract_all(&jobs)
            .expect("bounded run");
        let reference = BatchExtractor::new(Extractor::new())
            .workers(1)
            .cache(false)
            .extract_all(&jobs)
            .expect("reference");
        for (a, b) in bounded.points().iter().zip(reference.points()) {
            assert_eq!(
                a.extraction.capacitance().matrix().as_slice(),
                b.extraction.capacitance().matrix().as_slice(),
                "eviction changed a result at job {}",
                a.label
            );
        }
        assert!(bounded.report().cache.evictions > 0, "bound this small must evict");
        assert!(cache.resident_bytes() <= cache.max_bytes().expect("bounded"));
        assert_eq!(
            bounded.report().cache.inserted_bytes,
            bounded.report().cache.misses * ENTRY_BYTES
        );
    }
}

//! Batched multi-net extraction: one solver configuration over a family
//! of geometries.
//!
//! The paper's economics (conf_dac_HsiaoD11) are that instantiable basis
//! functions make per-structure setup cheap — cheap enough that the
//! natural unit of work is not one geometry but a *family* of similar
//! geometries (a parameter sweep, a bus with many nets, a corner
//! enumeration). [`BatchExtractor`] packages that unit as a thin client
//! of the shared execution core ([`crate::exec::Executor`]):
//!
//! * jobs are submitted to the executor's bounded work queue and results
//!   always come back in **input order**, whatever the pool size —
//!   scheduling can never reorder or change a result;
//! * each micro-batch builds its Galerkin engine **once** and shares it
//!   across its jobs; a private per-run executor receives the jobs as
//!   contiguous chunk submissions of the Algorithm-1 static share
//!   (`⌈jobs / workers⌉` jobs per micro-batch), so engine builds are
//!   amortized deterministically, matching the old dedicated scheduler;
//! * with caching enabled (the default), pair integrals are shared across
//!   jobs through a [`bemcap_basis::TemplateKey`]-keyed
//!   [`crate::cache::TemplateCache`]: families that keep part of the
//!   geometry fixed (every sweep does) skip the integrals of the
//!   unchanged template pairs entirely. A cache hit returns the very f64
//!   a recomputation would produce, so cached and uncached runs yield
//!   **bit-identical** capacitance matrices. By default each run gets a
//!   private unbounded cache; [`BatchExtractor::shared_cache`] plugs in a
//!   process-lifetime (optionally memory-bounded) cache instead, which is
//!   how the `bemcap-serve` daemon keeps integrals warm across requests;
//! * per-job timings and cache counters come back as
//!   [`JobReport`]s under a whole-run [`BatchReport`], which now also
//!   carries the run's executor counters ([`crate::report::ExecStats`]:
//!   queue wait, coalescing ratio, rejections).
//!
//! By default each run spins up a private executor sized so admission
//! never rejects; [`BatchExtractor::executor`] instead runs the batch as
//! one client among many of a shared, admission-controlled executor (the
//! daemon's configuration), where [`CoreError::Busy`] backpressure
//! applies.
//!
//! [`crate::sweep::sweep`] is a thin wrapper over this module.
//!
//! ```
//! use bemcap_core::batch::BatchExtractor;
//! use bemcap_core::Extractor;
//! use bemcap_geom::structures::{self, CrossingParams};
//!
//! let batch = BatchExtractor::new(Extractor::new()).workers(1);
//! let hs = [0.4e-6, 0.8e-6];
//! let result = batch.extract_family(&hs, |h| {
//!     structures::crossing_wires(CrossingParams { separation: h, ..Default::default() })
//! })?;
//! assert_eq!(result.points().len(), 2);
//! assert!(result.report().cache.hits > 0); // the fixed wire recurs
//! # Ok::<(), bemcap_core::CoreError>(())
//! ```

use std::sync::Arc;
use std::time::Instant;

use bemcap_geom::Geometry;

use crate::cache::TemplateCache;
use crate::error::CoreError;
use crate::exec::{ExecConfig, Executor, Ticket};
use crate::extraction::{Extraction, Extractor};
use crate::report::{BatchReport, CacheStats, ExecStats, JobReport};

/// Name of the environment variable that sets the default pool size
/// (`BEMCAP_POOL=4`). CI runs the test suite under several values so
/// scheduler nondeterminism cannot hide behind a fixed default.
pub const POOL_ENV: &str = "BEMCAP_POOL";

/// The default scheduler pool size: `BEMCAP_POOL` when set to a positive
/// integer, 1 otherwise.
pub fn default_pool_size() -> usize {
    std::env::var(POOL_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// One unit of batch work: a geometry with a label and an optional swept
/// parameter value.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Human-readable job label (net name, corner name, "h=0.4e-6", ...).
    pub label: String,
    /// The swept parameter value for family jobs; `None` for ad-hoc jobs.
    pub parameter: Option<f64>,
    /// The geometry to extract.
    pub geometry: Geometry,
}

impl BatchJob {
    /// A job with no parameter annotation.
    pub fn new(label: impl Into<String>, geometry: Geometry) -> BatchJob {
        BatchJob { label: label.into(), parameter: None, geometry }
    }

    /// Attaches the swept parameter value (reported back in results and
    /// error contexts).
    #[must_use]
    pub fn with_parameter(mut self, parameter: f64) -> BatchJob {
        self.parameter = Some(parameter);
        self
    }
}

/// One completed job: its extraction plus the per-job scheduling record.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// The job label, as submitted.
    pub label: String,
    /// The swept parameter value, if the job had one.
    pub parameter: Option<f64>,
    /// The extraction result.
    pub extraction: Extraction,
    /// Scheduling and cache record of this job.
    pub job: JobReport,
}

/// All results of a batch run, in input order, plus the run-level report.
#[derive(Debug, Clone)]
pub struct BatchResult {
    points: Vec<BatchPoint>,
    report: BatchReport,
}

impl BatchResult {
    /// The per-job results, in input order.
    pub fn points(&self) -> &[BatchPoint] {
        &self.points
    }

    /// The run-level report (wall time, pool, aggregated cache counters).
    pub fn report(&self) -> &BatchReport {
        &self.report
    }

    /// Consumes the result into its points.
    pub fn into_points(self) -> Vec<BatchPoint> {
        self.points
    }

    /// One capacitance entry across the batch as `(parameter, C_ij)`
    /// pairs — the plottable curve of a family run. Jobs without a
    /// parameter annotation are skipped.
    pub fn entry_curve(&self, i: usize, j: usize) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .filter_map(|p| Some((p.parameter?, p.extraction.capacitance().get(i, j))))
            .collect()
    }
}

/// Batch extraction front end: an [`Extractor`] configuration applied to
/// many geometries through the shared execution core, with job-level
/// parallelism and cross-job caching.
///
/// The cross-job cache applies to instantiable extractors with the
/// default sequential setup (the executor pool is then the parallelism).
/// Extractors that ask for within-job parallelism
/// ([`Extractor::parallelism`]) keep it: each job runs the unchanged
/// one-at-a-time path, scheduled on the executor but without the shared
/// cache — pick one level or the other rather than oversubscribing both.
#[derive(Debug, Clone)]
pub struct BatchExtractor {
    extractor: Extractor,
    workers: Option<usize>,
    cache: CacheChoice,
    executor: Option<Arc<Executor>>,
}

/// Which pair-integral cache a batch run uses.
#[derive(Debug, Clone)]
enum CacheChoice {
    /// No caching: every integral is computed.
    Off,
    /// A fresh unbounded [`TemplateCache`] per run (the default).
    PerRun,
    /// A caller-owned, typically process-lifetime cache shared across
    /// runs (and across threads — the daemon's configuration).
    Shared(Arc<TemplateCache>),
}

impl BatchExtractor {
    /// A batch front end over the given extractor configuration, with
    /// caching enabled and the pool size taken from `BEMCAP_POOL` (or 1).
    pub fn new(extractor: Extractor) -> BatchExtractor {
        BatchExtractor { extractor, workers: None, cache: CacheChoice::PerRun, executor: None }
    }

    /// Pins the scheduler pool size (of the private per-run executor;
    /// ignored when [`BatchExtractor::executor`] supplies a shared one).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn workers(mut self, n: usize) -> BatchExtractor {
        assert!(n > 0, "batch pool needs at least one worker");
        self.workers = Some(n);
        self
    }

    /// Enables or disables the shared pair-integral cache. Results are
    /// bit-identical either way; only the work (and the reported cache
    /// counters) changes. Enabling restores the default per-run cache,
    /// discarding any [`BatchExtractor::shared_cache`] choice.
    #[must_use]
    pub fn cache(mut self, on: bool) -> BatchExtractor {
        self.cache = if on { CacheChoice::PerRun } else { CacheChoice::Off };
        self
    }

    /// Uses a caller-owned [`TemplateCache`] instead of a fresh per-run
    /// one, so pair integrals survive across batch runs for the lifetime
    /// of the cache — the configuration behind the `bemcap-serve` daemon.
    /// Results stay bit-identical whatever the cache's bound or prior
    /// contents; only the hit/miss/eviction counters change.
    #[must_use]
    pub fn shared_cache(mut self, cache: Arc<TemplateCache>) -> BatchExtractor {
        self.cache = CacheChoice::Shared(cache);
        self
    }

    /// Runs this batch on a caller-owned, typically process-lifetime
    /// [`Executor`] instead of a private per-run one. The executor's own
    /// pool size applies (the [`BatchExtractor::workers`] setting is
    /// ignored) and so does its admission control: when its queue is
    /// full, [`BatchExtractor::extract_all`] returns [`CoreError::Busy`].
    #[must_use]
    pub fn executor(mut self, executor: Arc<Executor>) -> BatchExtractor {
        self.executor = Some(executor);
        self
    }

    /// The pool size this batch will run with.
    pub fn effective_workers(&self) -> usize {
        match &self.executor {
            Some(exec) => exec.config().workers,
            None => self.workers.unwrap_or_else(default_pool_size),
        }
    }

    /// Runs every job and returns the results in input order.
    ///
    /// All jobs are attempted; if any fail, the error of the **lowest
    /// failing index** is returned (deterministic under any pool size),
    /// wrapped in [`CoreError::BatchJob`] with the job's index and
    /// parameter.
    ///
    /// # Errors
    ///
    /// [`CoreError::BatchJob`] around the first failing job's error;
    /// [`CoreError::Busy`] when a shared executor
    /// ([`BatchExtractor::executor`]) refuses admission (already-admitted
    /// jobs still run, but no result is assembled).
    pub fn extract_all(&self, jobs: &[BatchJob]) -> Result<BatchResult, CoreError> {
        if jobs.is_empty() {
            return Ok(BatchResult {
                points: Vec::new(),
                report: BatchReport {
                    jobs: 0,
                    workers: self.effective_workers(),
                    cache_enabled: !matches!(self.cache, CacheChoice::Off),
                    wall_seconds: 0.0,
                    busy_seconds: 0.0,
                    cache: CacheStats::default(),
                    exec: ExecStats::default(),
                },
            });
        }
        match &self.executor {
            Some(exec) => {
                // On a shared executor, submit one job per submission:
                // admission is then per job, and jobs coalesce freely
                // with other clients' same-configuration work.
                self.run_on(exec, jobs, 1)
            }
            None => {
                let workers = self.effective_workers();
                // Private per-run executor, sized so admission never
                // rejects. Jobs are submitted as contiguous chunks of
                // the Algorithm-1 static share (one micro-batch per
                // worker share), so engine builds are amortized
                // deterministically — not left to the coalescing race.
                let chunk = jobs.len().div_ceil(workers);
                let exec = Executor::new(ExecConfig {
                    workers,
                    queue_depth: jobs.len(),
                    coalesce_limit: chunk,
                });
                self.run_on(&exec, jobs, chunk)
            }
        }
    }

    fn run_on(
        &self,
        exec: &Executor,
        jobs: &[BatchJob],
        chunk_size: usize,
    ) -> Result<BatchResult, CoreError> {
        let cache: Option<Arc<TemplateCache>> = match &self.cache {
            CacheChoice::Off => None,
            CacheChoice::PerRun => Some(Arc::new(TemplateCache::unbounded())),
            CacheChoice::Shared(c) => Some(Arc::clone(c)),
        };
        let start = Instant::now();
        let tickets: Vec<Ticket> = jobs
            .chunks(chunk_size)
            .map(|chunk| exec.submit(&self.extractor, cache.clone(), chunk.to_vec()))
            .collect::<Result<_, _>>()?;

        let mut points = Vec::with_capacity(jobs.len());
        let mut busy_seconds = 0.0;
        let mut total_cache = CacheStats::default();
        let mut exec_stats = ExecStats::default();
        let mut micro_batches: Vec<u64> = Vec::new();
        let mut first_failure: Option<(usize, CoreError)> = None;
        for (chunk_index, ticket) in tickets.into_iter().enumerate() {
            let sub = ticket.wait();
            exec_stats.submitted += 1;
            exec_stats.jobs += sub.outcomes.len();
            exec_stats.queue_seconds += sub.queue_seconds;
            if sub.coalesced {
                exec_stats.coalesced += 1;
            }
            if !micro_batches.contains(&sub.micro_batch) {
                micro_batches.push(sub.micro_batch);
            }
            for (offset, outcome) in sub.outcomes.into_iter().enumerate() {
                let idx = chunk_index * chunk_size + offset;
                let job = &jobs[idx];
                match outcome.result {
                    Err(e) => {
                        if first_failure.is_none() {
                            first_failure = Some((idx, e));
                        }
                    }
                    Ok((extraction, stats)) => {
                        busy_seconds += outcome.seconds;
                        total_cache.absorb(stats);
                        points.push(BatchPoint {
                            label: job.label.clone(),
                            parameter: job.parameter,
                            extraction,
                            job: JobReport {
                                index: idx,
                                worker: outcome.worker,
                                seconds: outcome.seconds,
                                cache: stats,
                            },
                        });
                    }
                }
            }
        }
        if let Some((index, source)) = first_failure {
            return Err(CoreError::BatchJob {
                index,
                parameter: jobs[index].parameter,
                source: Box::new(source),
            });
        }
        exec_stats.micro_batches = micro_batches.len();
        let wall_seconds = start.elapsed().as_secs_f64();
        Ok(BatchResult {
            points,
            report: BatchReport {
                jobs: jobs.len(),
                workers: exec.config().workers,
                cache_enabled: cache.is_some(),
                wall_seconds,
                busy_seconds,
                cache: total_cache,
                exec: exec_stats,
            },
        })
    }

    /// Runs the batch over `build(p)` for every parameter in `params` —
    /// the family form behind [`crate::sweep::sweep`].
    ///
    /// # Errors
    ///
    /// [`CoreError::BatchJob`] around the first failing job's error, with
    /// the parameter value attached.
    pub fn extract_family(
        &self,
        params: &[f64],
        mut build: impl FnMut(f64) -> Geometry,
    ) -> Result<BatchResult, CoreError> {
        let jobs: Vec<BatchJob> = params
            .iter()
            .map(|&p| BatchJob::new(format!("param={p:e}"), build(p)).with_parameter(p))
            .collect();
        self.extract_all(&jobs)
    }

    /// Runs the batch over plain geometries, labeled by index.
    ///
    /// # Errors
    ///
    /// [`CoreError::BatchJob`] around the first failing job's error.
    pub fn extract_geometries(
        &self,
        geometries: impl IntoIterator<Item = Geometry>,
    ) -> Result<BatchResult, CoreError> {
        let jobs: Vec<BatchJob> = geometries
            .into_iter()
            .enumerate()
            .map(|(i, g)| BatchJob::new(format!("job{i}"), g))
            .collect();
        self.extract_all(&jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ENTRY_BYTES;
    use crate::extraction::Method;
    use bemcap_geom::structures::{self, CrossingParams};

    fn family(hs: &[f64]) -> Vec<BatchJob> {
        hs.iter()
            .map(|&h| {
                BatchJob::new(
                    format!("h={h}"),
                    structures::crossing_wires(CrossingParams {
                        separation: h,
                        ..Default::default()
                    }),
                )
                .with_parameter(h)
            })
            .collect()
    }

    #[test]
    fn batch_matches_single_extraction_bit_for_bit() {
        let ex = Extractor::new();
        let jobs = family(&[0.4e-6, 0.7e-6, 1.1e-6]);
        let batch = BatchExtractor::new(ex.clone()).workers(2);
        let result = batch.extract_all(&jobs).expect("batch");
        assert_eq!(result.points().len(), 3);
        for (job, point) in jobs.iter().zip(result.points()) {
            let single = ex.extract(&job.geometry).expect("single");
            let a = single.capacitance().matrix();
            let b = point.extraction.capacitance().matrix();
            assert_eq!(a.as_slice(), b.as_slice(), "job {}", point.label);
        }
    }

    #[test]
    fn cache_on_off_identical_and_hits_counted() {
        let jobs = family(&[0.5e-6, 0.5e-6, 0.9e-6]);
        // One worker: jobs run in order, so job 1 (a duplicate of job 0)
        // must be answered entirely from the cache. With more workers the
        // duplicate jobs could race and legitimately both miss.
        let cached =
            BatchExtractor::new(Extractor::new()).workers(1).extract_all(&jobs).expect("cached");
        let uncached = BatchExtractor::new(Extractor::new())
            .workers(1)
            .cache(false)
            .extract_all(&jobs)
            .expect("uncached");
        for (a, b) in cached.points().iter().zip(uncached.points()) {
            assert_eq!(
                a.extraction.capacitance().matrix().as_slice(),
                b.extraction.capacitance().matrix().as_slice()
            );
        }
        // Jobs 0 and 1 are identical geometries: job 1 must be all hits.
        assert!(cached.points()[1].job.cache.hit_rate() > 0.99);
        assert_eq!(uncached.report().cache, CacheStats::default());
        assert!(cached.report().cache.hits > 0);
    }

    #[test]
    fn pool_size_cannot_change_results() {
        let jobs = family(&[0.4e-6, 0.6e-6, 0.8e-6, 1.0e-6, 1.2e-6]);
        let one = BatchExtractor::new(Extractor::new()).workers(1).extract_all(&jobs).expect("w1");
        for w in [2, 3, 5, 8] {
            let many =
                BatchExtractor::new(Extractor::new()).workers(w).extract_all(&jobs).expect("wn");
            for (a, b) in one.points().iter().zip(many.points()) {
                assert_eq!(a.parameter, b.parameter, "workers={w}");
                assert_eq!(
                    a.extraction.capacitance().matrix().as_slice(),
                    b.extraction.capacitance().matrix().as_slice(),
                    "workers={w}"
                );
            }
        }
    }

    #[test]
    fn failing_job_reports_index_and_parameter() {
        let mut jobs = family(&[0.4e-6, 0.8e-6]);
        jobs.insert(1, BatchJob::new("empty", Geometry::new(vec![])).with_parameter(42.0));
        let err = BatchExtractor::new(Extractor::new()).extract_all(&jobs).unwrap_err();
        match err {
            CoreError::BatchJob { index, parameter, source } => {
                assert_eq!(index, 1);
                assert_eq!(parameter, Some(42.0));
                assert!(matches!(*source, CoreError::EmptyGeometry));
            }
            other => panic!("expected BatchJob error, got {other:?}"),
        }
    }

    #[test]
    fn lowest_failing_index_wins_at_any_pool_size() {
        let mut jobs = family(&[0.4e-6, 0.8e-6, 1.2e-6]);
        jobs.insert(1, BatchJob::new("bad1", Geometry::new(vec![])));
        jobs.push(BatchJob::new("bad2", Geometry::new(vec![])));
        for w in [1, 2, 4] {
            let err =
                BatchExtractor::new(Extractor::new()).workers(w).extract_all(&jobs).unwrap_err();
            match err {
                CoreError::BatchJob { index, .. } => assert_eq!(index, 1, "workers={w}"),
                other => panic!("expected BatchJob error, got {other:?}"),
            }
        }
    }

    #[test]
    fn report_accounts_for_all_jobs() {
        let jobs = family(&[0.4e-6, 0.8e-6, 1.2e-6]);
        let result =
            BatchExtractor::new(Extractor::new()).workers(2).extract_all(&jobs).expect("batch");
        let r = result.report();
        assert_eq!(r.jobs, 3);
        assert_eq!(r.workers, 2);
        assert!(r.cache_enabled);
        assert!(r.wall_seconds > 0.0);
        assert!(r.busy_seconds > 0.0);
        let summed: usize = result.points().iter().map(|p| p.job.cache.lookups()).sum();
        assert_eq!(r.cache.lookups(), summed);
        // Executor accounting: 3 jobs on 2 workers go in as 2 chunk
        // submissions (the Algorithm-1 static share), each its own
        // micro-batch — deterministically, no coalescing race involved.
        assert_eq!(r.exec.submitted, 2);
        assert_eq!(r.exec.jobs, 3);
        assert_eq!(r.exec.rejected, 0);
        assert_eq!(r.exec.micro_batches, 2);
        assert_eq!(r.exec.coalesced, 0);
        for (i, p) in result.points().iter().enumerate() {
            assert_eq!(p.job.index, i);
            assert!(p.job.worker < 2);
            assert!(p.job.seconds >= 0.0);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let result = BatchExtractor::new(Extractor::new()).extract_all(&[]).expect("empty");
        assert!(result.points().is_empty());
        assert_eq!(result.report().jobs, 0);
    }

    #[test]
    fn entry_curve_skips_unparameterized_jobs() {
        let mut jobs = family(&[0.4e-6, 0.8e-6]);
        jobs.push(BatchJob::new("extra", structures::crossing_wires(CrossingParams::default())));
        let result = BatchExtractor::new(Extractor::new()).extract_all(&jobs).expect("batch");
        let curve = result.entry_curve(0, 1);
        assert_eq!(curve.len(), 2);
        assert!(curve[0].1.abs() > curve[1].1.abs(), "coupling falls with h");
    }

    #[test]
    fn within_job_parallelism_is_honored_and_bit_identical() {
        // An extractor that asked for threaded setup keeps it inside the
        // batch: the job goes through the unchanged one-at-a-time path
        // (same merge order), so results match extract() bit for bit.
        use crate::extraction::Parallelism;
        let ex = Extractor::new().parallelism(Parallelism::Threads(2));
        let jobs = family(&[0.5e-6, 0.9e-6]);
        let result = BatchExtractor::new(ex.clone()).extract_all(&jobs).expect("batch");
        for (job, point) in jobs.iter().zip(result.points()) {
            let single = ex.extract(&job.geometry).expect("single");
            assert_eq!(
                single.capacitance().matrix().as_slice(),
                point.extraction.capacitance().matrix().as_slice()
            );
            assert_eq!(point.extraction.report().workers, 2);
        }
        // The shared cache is bypassed on this path.
        assert_eq!(result.report().cache, CacheStats::default());
    }

    #[test]
    fn mesh_methods_run_through_batch() {
        let jobs = family(&[0.5e-6]);
        let result = BatchExtractor::new(Extractor::new().method(Method::PwcDense))
            .extract_all(&jobs)
            .expect("dense batch");
        assert_eq!(result.points()[0].extraction.report().method, "pwc-dense");
        assert_eq!(result.report().cache, CacheStats::default());
    }

    #[test]
    fn default_pool_size_is_positive() {
        assert!(default_pool_size() >= 1);
    }

    #[test]
    fn shared_cache_warms_across_runs() {
        let cache = Arc::new(TemplateCache::unbounded());
        let jobs = family(&[0.6e-6, 1.0e-6]);
        let batch =
            BatchExtractor::new(Extractor::new()).workers(1).shared_cache(Arc::clone(&cache));
        let cold = batch.extract_all(&jobs).expect("cold run");
        let warm = batch.extract_all(&jobs).expect("warm run");
        // Identical geometries, process-lifetime cache: the second run is
        // answered entirely from the cache...
        assert_eq!(warm.report().cache.misses, 0, "warm run must be all hits");
        assert!(cold.report().cache.misses > 0);
        // ...and bit-identical to the cold one.
        for (a, b) in cold.points().iter().zip(warm.points()) {
            assert_eq!(
                a.extraction.capacitance().matrix().as_slice(),
                b.extraction.capacitance().matrix().as_slice()
            );
        }
        assert!(!cache.is_empty());
        assert_eq!(cache.lifetime().lookups(), cold.report().cache.lookups() * 2);
    }

    #[test]
    fn bounded_shared_cache_evicts_but_results_are_unchanged() {
        // A bound far below the family's working set: evictions must
        // happen, the bound must hold, and every matrix must still be
        // bit-identical to the uncached run.
        let jobs = family(&[0.4e-6, 0.55e-6, 0.7e-6, 0.85e-6, 1.0e-6]);
        let cache = Arc::new(TemplateCache::with_max_bytes(64 * ENTRY_BYTES));
        let bounded = BatchExtractor::new(Extractor::new())
            .workers(1)
            .shared_cache(Arc::clone(&cache))
            .extract_all(&jobs)
            .expect("bounded run");
        let reference = BatchExtractor::new(Extractor::new())
            .workers(1)
            .cache(false)
            .extract_all(&jobs)
            .expect("reference");
        for (a, b) in bounded.points().iter().zip(reference.points()) {
            assert_eq!(
                a.extraction.capacitance().matrix().as_slice(),
                b.extraction.capacitance().matrix().as_slice(),
                "eviction changed a result at job {}",
                a.label
            );
        }
        assert!(bounded.report().cache.evictions > 0, "bound this small must evict");
        assert!(cache.resident_bytes() <= cache.max_bytes().expect("bounded"));
        assert_eq!(
            bounded.report().cache.inserted_bytes,
            bounded.report().cache.misses * ENTRY_BYTES
        );
    }

    #[test]
    fn batch_runs_as_a_client_of_a_shared_executor() {
        let exec =
            Arc::new(Executor::new(ExecConfig { workers: 2, queue_depth: 32, coalesce_limit: 4 }));
        let jobs = family(&[0.4e-6, 0.7e-6, 1.1e-6]);
        let on_shared = BatchExtractor::new(Extractor::new())
            .executor(Arc::clone(&exec))
            .extract_all(&jobs)
            .expect("shared-executor batch");
        let private =
            BatchExtractor::new(Extractor::new()).workers(1).extract_all(&jobs).expect("private");
        assert_eq!(on_shared.report().workers, 2, "workers come from the executor");
        for (a, b) in on_shared.points().iter().zip(private.points()) {
            assert_eq!(
                a.extraction.capacitance().matrix().as_slice(),
                b.extraction.capacitance().matrix().as_slice()
            );
        }
        // The run is visible in the executor's lifetime counters.
        let stats = exec.stats();
        assert_eq!(stats.submitted, 3);
        assert_eq!(stats.jobs, 3);
    }

    #[test]
    fn shared_executor_admission_control_applies_to_batch() {
        // Depth 2, and a 3-job batch submits one job per submission: the
        // third submission may be refused if the first two are still
        // waiting. Force it deterministically by occupying the executor
        // with an unrelated long batch first is racy here; instead use a
        // depth smaller than the batch minus what can possibly start:
        // with a queue this small and submissions this fast, rejection is
        // what the API promises when it happens — assert the error shape
        // by submitting more jobs than the whole queue admits at once.
        let exec =
            Arc::new(Executor::new(ExecConfig { workers: 1, queue_depth: 2, coalesce_limit: 1 }));
        // A single submission larger than the depth is always rejected —
        // wire `batch` frames lean on exactly this.
        let jobs = family(&[0.4e-6, 0.6e-6, 0.8e-6]);
        let err = exec
            .submit(&Extractor::new(), None, jobs.clone())
            .map(|_| ())
            .expect_err("3 jobs can never fit a depth-2 queue");
        assert!(matches!(err, CoreError::Busy { depth: 2, .. }), "{err:?}");
    }
}

//! The public extraction API: [`Extractor`] → [`Extraction`].

use bemcap_basis::instantiate::InstantiateConfig;
use bemcap_fmm::FmmConfig;
use bemcap_geom::Geometry;
use bemcap_linalg::{KrylovConfig, Matrix, PrecondKind};
use bemcap_pfft::PfftConfig;
use bemcap_quad::galerkin::{GalerkinConfig, GalerkinEngine};

use crate::backend::{
    AutoBackend, Backend, DensePwcBackend, FmmBackend, InstantiableBackend, PfftBackend,
    DEFAULT_AUTO_BUDGET,
};
use crate::error::CoreError;
use crate::report::ExtractionReport;

/// Which solver backend to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// The paper's method: instantiable basis functions + direct solve.
    InstantiableBasis,
    /// Piecewise-constant Galerkin, dense direct solve (exact reference
    /// for small problems).
    PwcDense,
    /// Piecewise-constant Galerkin with the multipole-accelerated matvec
    /// (the FASTCAP-style baseline).
    PwcFmm,
    /// Piecewise-constant Galerkin with the precorrected-FFT matvec.
    PwcPfft,
    /// Pick a piecewise-constant backend per geometry from the panel
    /// count and the configured memory budget
    /// ([`Extractor::auto_memory_budget`]); see
    /// [`crate::backend::AutoBackend::resolve`] for the policy.
    Auto,
}

/// How the setup step executes (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parallelism {
    /// Single thread.
    Sequential,
    /// Shared-memory threads (Fig. 4).
    Threads(usize),
    /// Message-passing ranks (Figs. 5–6).
    MessagePassing(usize),
}

/// The extraction front end (builder style).
///
/// ```
/// use bemcap_core::{Extractor, Method};
/// use bemcap_geom::structures;
///
/// let geo = structures::parallel_plates(1e-6, 1e-6, 0.2e-6);
/// let out = Extractor::new()
///     .method(Method::PwcDense)
///     .mesh_divisions(6)
///     .extract(&geo)?;
/// assert!(out.capacitance().get(0, 1) < 0.0);
/// # Ok::<(), bemcap_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Extractor {
    method: Method,
    parallelism: Parallelism,
    accelerated: bool,
    instantiate_cfg: InstantiateConfig,
    galerkin_cfg: GalerkinConfig,
    mesh_divisions: usize,
    fmm_cfg: FmmConfig,
    pfft_cfg: PfftConfig,
    krylov_cfg: KrylovConfig,
    precond: PrecondKind,
    auto_budget: usize,
}

impl Default for Extractor {
    fn default() -> Self {
        Extractor::new()
    }
}

impl Extractor {
    /// An extractor with the paper's defaults: instantiable basis,
    /// sequential setup, exact primitives.
    pub fn new() -> Extractor {
        Extractor {
            method: Method::InstantiableBasis,
            parallelism: Parallelism::Sequential,
            accelerated: false,
            instantiate_cfg: InstantiateConfig::default(),
            galerkin_cfg: GalerkinConfig::default(),
            mesh_divisions: 8,
            fmm_cfg: FmmConfig::default(),
            pfft_cfg: PfftConfig::default(),
            krylov_cfg: KrylovConfig::default(),
            precond: PrecondKind::default(),
            auto_budget: DEFAULT_AUTO_BUDGET,
        }
    }

    /// Selects the solver backend.
    pub fn method(mut self, method: Method) -> Extractor {
        self.method = method;
        self
    }

    /// Selects the setup-step execution mode (instantiable method only).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Extractor {
        self.parallelism = parallelism;
        self
    }

    /// Enables the §4.2.3 integration acceleration (tabulated `log` and
    /// `atan` primitives).
    pub fn accelerated(mut self, on: bool) -> Extractor {
        self.accelerated = on;
        self
    }

    /// Overrides the basis instantiation configuration.
    pub fn instantiate_config(mut self, cfg: InstantiateConfig) -> Extractor {
        self.instantiate_cfg = cfg;
        self
    }

    /// Overrides the integration engine configuration.
    pub fn galerkin_config(mut self, cfg: GalerkinConfig) -> Extractor {
        self.galerkin_cfg = cfg;
        self
    }

    /// Mesh resolution for the piecewise-constant backends.
    pub fn mesh_divisions(mut self, divisions: usize) -> Extractor {
        self.mesh_divisions = divisions;
        self
    }

    /// Tunes the multipole operator ([`Method::PwcFmm`] and the FMM arm
    /// of [`Method::Auto`]): opening angle and octree leaf size.
    pub fn fmm_config(mut self, cfg: FmmConfig) -> Extractor {
        self.fmm_cfg = cfg;
        self
    }

    /// Tunes the precorrected-FFT operator ([`Method::PwcPfft`] and the
    /// pFFT arm of [`Method::Auto`]): grid spacing, near-stencil radius,
    /// grid cap.
    pub fn pfft_config(mut self, cfg: PfftConfig) -> Extractor {
        self.pfft_cfg = cfg;
        self
    }

    /// Sets the iterative caps (GMRES tolerance, restart length, matvec
    /// cap) shared by the Krylov-backed backends.
    pub fn krylov_config(mut self, cfg: KrylovConfig) -> Extractor {
        self.krylov_cfg = cfg;
        self
    }

    /// Picks the preconditioner the Krylov-backed backends build at
    /// prepare time (default: Jacobi from the exact system diagonal).
    pub fn preconditioner(mut self, kind: PrecondKind) -> Extractor {
        self.precond = kind;
        self
    }

    /// Sets the [`Method::Auto`] memory budget in bytes (default
    /// [`DEFAULT_AUTO_BUDGET`]).
    pub fn auto_memory_budget(mut self, bytes: usize) -> Extractor {
        self.auto_budget = bytes;
        self
    }

    pub(crate) fn engine(&self) -> GalerkinEngine {
        let eng = GalerkinEngine::new(self.galerkin_cfg);
        if self.accelerated {
            eng.with_primitives(
                bemcap_accel::fastmath::fast_double_primitive,
                bemcap_accel::fastmath::fast_quad_primitive,
            )
            .with_triple_primitive(bemcap_accel::fastmath::fast_triple_primitive)
        } else {
            eng
        }
    }

    pub(crate) fn method_kind(&self) -> Method {
        self.method
    }

    pub(crate) fn instantiate_cfg(&self) -> &InstantiateConfig {
        &self.instantiate_cfg
    }

    pub(crate) fn is_accelerated(&self) -> bool {
        self.accelerated
    }

    pub(crate) fn is_sequential_setup(&self) -> bool {
        self.parallelism == Parallelism::Sequential
    }

    /// The [`Backend`] this configuration dispatches to — the typed
    /// description of what [`Extractor::extract`] will run.
    /// [`Method::Auto`] returns the resolving backend
    /// ([`crate::backend::AutoBackend`]); the concrete choice is made per
    /// geometry at prepare time.
    pub fn backend(&self) -> Box<dyn Backend> {
        match self.method {
            Method::InstantiableBasis => Box::new(InstantiableBackend {
                instantiate: self.instantiate_cfg,
                parallelism: self.parallelism,
            }),
            Method::PwcDense => Box::new(DensePwcBackend { mesh_divisions: self.mesh_divisions }),
            Method::PwcFmm => Box::new(FmmBackend {
                mesh_divisions: self.mesh_divisions,
                config: self.fmm_cfg,
                krylov: self.krylov_cfg,
                precond: self.precond,
            }),
            Method::PwcPfft => Box::new(PfftBackend {
                mesh_divisions: self.mesh_divisions,
                config: self.pfft_cfg,
                krylov: self.krylov_cfg,
                precond: self.precond,
            }),
            Method::Auto => Box::new(self.auto_backend()),
        }
    }

    fn auto_backend(&self) -> AutoBackend {
        AutoBackend {
            mesh_divisions: self.mesh_divisions,
            memory_budget: self.auto_budget,
            fmm: self.fmm_cfg,
            pfft: self.pfft_cfg,
            krylov: self.krylov_cfg,
            precond: self.precond,
        }
    }

    /// The [`Method`] that will actually run on `geo`: the configured one,
    /// with [`Method::Auto`] resolved through its panel-count/memory
    /// policy (deterministic per geometry and configuration).
    pub fn resolved_method(&self, geo: &Geometry) -> Method {
        match self.method {
            Method::Auto => self.auto_backend().resolve(geo),
            m => m,
        }
    }

    /// Bit-exact identity of the full solver configuration, including the
    /// active backend's typed config ([`Backend::digest`]). Two
    /// extractors with equal digests produce bit-identical results on the
    /// same geometry, which is what licenses the executor to coalesce
    /// their jobs into one shared micro-batch (`f64` fields compare by
    /// bit pattern, so even `-0.0` vs `0.0` keeps configs apart);
    /// extractors differing in any behavior-affecting knob — a pFFT grid
    /// spacing, an FMM tolerance, a preconditioner — can never share one.
    pub fn config_digest(&self) -> Vec<u64> {
        let g = &self.galerkin_cfg;
        let ic = &self.instantiate_cfg;
        let parallelism = match self.parallelism {
            Parallelism::Sequential => 0,
            Parallelism::Threads(n) => (1 << 32) | n as u64,
            Parallelism::MessagePassing(n) => (2 << 32) | n as u64,
        };
        let mut words = vec![
            match self.method {
                Method::InstantiableBasis => 0,
                Method::PwcDense => 1,
                Method::PwcFmm => 2,
                Method::PwcPfft => 3,
                Method::Auto => 4,
            },
            parallelism,
            u64::from(self.accelerated),
            self.mesh_divisions as u64,
            ic.laws.width_coeff.to_bits(),
            ic.laws.ext_coeff.to_bits(),
            ic.max_segment_aspect.to_bits(),
            ic.max_gap_ratio.to_bits(),
            g.far_ratio.to_bits(),
            g.mid_ratio.to_bits(),
            g.near_order as u64,
            g.mid_order as u64,
            g.touch_subdiv as u64,
            g.shape_order as u64,
        ];
        self.backend().digest(&mut words);
        words
    }

    /// Runs the extraction: resolves the backend, times its prepare
    /// (system setup) and solve (system solving) steps, and reports what
    /// actually ran (resolved method name, real worker count, Krylov
    /// stats for iterative backends).
    ///
    /// # Errors
    ///
    /// * [`CoreError::EmptyGeometry`] for conductor-less geometries;
    /// * backend errors ([`CoreError::Basis`], [`CoreError::Linalg`],
    ///   [`CoreError::Fmm`], [`CoreError::Pfft`]).
    pub fn extract(&self, geo: &Geometry) -> Result<Extraction, CoreError> {
        if geo.conductor_count() == 0 {
            return Err(CoreError::EmptyGeometry);
        }
        let names: Vec<String> = geo.conductors().iter().map(|c| c.name().to_string()).collect();
        let backend = self.backend();
        let engine = self.engine();
        let t = std::time::Instant::now();
        let prepared = {
            let _span = crate::metrics::Span::enter(crate::metrics::metrics().extract_setup_nanos);
            backend.prepare(&engine, geo)?
        };
        let setup_seconds = t.elapsed().as_secs_f64();
        let (method, n, m_templates, workers, memory_bytes) = (
            prepared.method_name().to_string(),
            prepared.n(),
            prepared.m_templates(),
            prepared.workers(),
            prepared.memory_bytes(),
        );
        let t = std::time::Instant::now();
        let out = {
            let _span = crate::metrics::Span::enter(crate::metrics::metrics().extract_solve_nanos);
            prepared.solve()?
        };
        let solve_seconds = t.elapsed().as_secs_f64();
        crate::metrics::metrics().extractions.inc();
        Ok(Extraction {
            capacitance: CapacitanceMatrix { names, c: out.capacitance },
            report: ExtractionReport {
                method,
                n,
                m_templates,
                workers,
                setup_seconds,
                solve_seconds,
                memory_bytes,
                krylov: out.krylov.map(Into::into),
            },
        })
    }
}

/// A labeled n×n short-circuit capacitance matrix (F).
#[derive(Debug, Clone, PartialEq)]
pub struct CapacitanceMatrix {
    names: Vec<String>,
    c: Matrix,
}

impl CapacitanceMatrix {
    pub(crate) fn from_parts(names: Vec<String>, c: Matrix) -> CapacitanceMatrix {
        CapacitanceMatrix { names, c }
    }

    /// Number of conductors.
    pub fn dim(&self) -> usize {
        self.c.rows()
    }

    /// Entry C_ij (self capacitance on the diagonal, negative coupling off
    /// it).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.c.get(i, j)
    }

    /// Conductor net names, in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.c
    }

    /// Largest relative asymmetry |C_ij − C_ji| / max|C| — a solver
    /// quality indicator (the exact matrix is symmetric).
    pub fn asymmetry(&self) -> f64 {
        let scale = self.c.max_abs().max(f64::MIN_POSITIVE);
        let mut worst = 0.0_f64;
        for i in 0..self.c.rows() {
            for j in (i + 1)..self.c.cols() {
                worst = worst.max((self.c.get(i, j) - self.c.get(j, i)).abs() / scale);
            }
        }
        worst
    }
}

impl std::fmt::Display for CapacitanceMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "capacitance matrix ({} conductors, farad):", self.dim())?;
        for i in 0..self.dim() {
            write!(f, "  {:>8}", self.names[i])?;
            for j in 0..self.dim() {
                write!(f, " {:>12.4e}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The result of one extraction: the capacitance matrix plus the
/// performance report.
#[derive(Debug, Clone)]
pub struct Extraction {
    capacitance: CapacitanceMatrix,
    report: ExtractionReport,
}

impl Extraction {
    pub(crate) fn from_parts(
        capacitance: CapacitanceMatrix,
        report: ExtractionReport,
    ) -> Extraction {
        Extraction { capacitance, report }
    }

    /// The capacitance matrix.
    pub fn capacitance(&self) -> &CapacitanceMatrix {
        &self.capacitance
    }

    /// The performance report.
    pub fn report(&self) -> &ExtractionReport {
        &self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bemcap_geom::structures::{self, CrossingParams};

    #[test]
    fn instantiable_extraction_end_to_end() {
        let geo = structures::crossing_wires(CrossingParams::default());
        let out = Extractor::new().extract(&geo).unwrap();
        let c = out.capacitance();
        assert_eq!(c.dim(), 2);
        assert!(c.get(0, 0) > 0.0);
        assert!(c.get(1, 1) > 0.0);
        assert!(c.get(0, 1) < 0.0);
        assert!(c.asymmetry() < 1e-6, "asymmetry {}", c.asymmetry());
        assert_eq!(c.names()[0], "target");
        let r = out.report();
        assert_eq!(r.method, "instantiable");
        assert!(r.m_templates.unwrap() >= r.n);
    }

    #[test]
    fn instantiable_matches_pwc_reference_loosely() {
        // The headline accuracy claim: the compact basis reproduces the
        // finely discretized reference within a few percent (2.8 % in the
        // paper's Table 2 — our basis is a reimplementation, so we accept
        // a looser band and measure precisely in EXPERIMENTS.md).
        let geo = structures::crossing_wires(CrossingParams::default());
        let inst = Extractor::new().extract(&geo).unwrap();
        let reference =
            Extractor::new().method(Method::PwcDense).mesh_divisions(16).extract(&geo).unwrap();
        let ci = -inst.capacitance().get(0, 1);
        let cr = -reference.capacitance().get(0, 1);
        let rel = (ci - cr).abs() / cr;
        assert!(rel < 0.25, "coupling {ci} vs reference {cr} (rel {rel:.3})");
    }

    #[test]
    fn all_parallel_modes_agree() {
        let geo = structures::crossing_wires(CrossingParams::default());
        let seq = Extractor::new().extract(&geo).unwrap();
        let thr = Extractor::new().parallelism(Parallelism::Threads(3)).extract(&geo).unwrap();
        let mp =
            Extractor::new().parallelism(Parallelism::MessagePassing(3)).extract(&geo).unwrap();
        for other in [&thr, &mp] {
            for i in 0..2 {
                for j in 0..2 {
                    let a = seq.capacitance().get(i, j);
                    let b = other.capacitance().get(i, j);
                    assert!((a - b).abs() < 1e-9 * a.abs().max(b.abs()));
                }
            }
        }
        assert_eq!(thr.report().workers, 3);
    }

    #[test]
    fn accelerated_engine_is_close_to_exact() {
        let geo = structures::crossing_wires(CrossingParams::default());
        let exact = Extractor::new().extract(&geo).unwrap();
        let fast = Extractor::new().accelerated(true).extract(&geo).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let a = exact.capacitance().get(i, j);
                let b = fast.capacitance().get(i, j);
                assert!((a - b).abs() < 0.01 * a.abs().max(b.abs()), "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn setup_dominates_runtime() {
        // The paper's §3 premise: >95 % of runtime in setup. On tiny
        // examples the ratio is noisy, so require a clear majority.
        let geo = structures::bus_crossing(2, 2, structures::BusParams::default());
        let out = Extractor::new().extract(&geo).unwrap();
        assert!(
            out.report().setup_fraction() > 0.8,
            "setup fraction {}",
            out.report().setup_fraction()
        );
    }

    #[test]
    fn empty_geometry_error() {
        let geo = Geometry::new(vec![]);
        assert!(matches!(Extractor::new().extract(&geo), Err(CoreError::EmptyGeometry)));
    }

    #[test]
    fn display_formats() {
        let geo = structures::crossing_wires(CrossingParams::default());
        let out = Extractor::new().extract(&geo).unwrap();
        let s = format!("{}", out.capacitance());
        assert!(s.contains("target") && s.contains("source"));
    }
}
